"""Parallel sweep runner: fan experiment configurations across workers.

The paper's figures are sweeps — hundreds of (scheme, stride) or
(program, organisation) pairs, each an independent simulation.  This module
provides a small, picklable-friendly fan-out helper on top of
:mod:`concurrent.futures` so any experiment driver can parallelise its sweep
without committing to an executor type.

Workers receive one task object each and must be module-level callables when
``mode="process"`` (the default executor requires picklable work items);
``mode="serial"`` runs in-line, which is also the automatic fallback whenever
a single worker is requested or the pool cannot be spawned (restricted
sandboxes).  Task order is always preserved in the result list.

Each worker process holds its own process-global trace cache
(:mod:`repro.trace.batching`) and derived-array memo
(:mod:`repro.engine.memo`) — thread-mode workers share their process's
caches, which are lock-guarded for exactly that reason — so chunked
dispatch compounds: the more related tasks a worker receives per sweep,
the more materialisation work it reuses.
"""

from __future__ import annotations

import concurrent.futures
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, TypeVar

__all__ = ["chunk_tasks", "run_sweep"]

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")

#: Executor modes accepted by :func:`run_sweep`.
_MODES = ("process", "thread", "serial")


def _noop() -> None:
    """Picklable probe task used to detect unusable worker pools."""


def chunk_tasks(tasks: Sequence[TaskT],
                chunksize: int) -> List[List[TaskT]]:
    """Group ``tasks`` into consecutive chunks of up to ``chunksize`` items.

    Tiny simulation tasks are dominated by per-task dispatch cost (pickling,
    IPC, result marshalling) when fanned across a process pool one at a
    time.  Batching them into chunk-level work items — each worker call
    processing a whole chunk and returning a list of results — amortises
    that overhead; order is preserved, so flattening the chunked results
    reproduces the unchunked result list exactly.
    """
    if chunksize < 1:
        raise ValueError("chunksize must be positive")
    tasks = list(tasks)
    return [tasks[i:i + chunksize] for i in range(0, len(tasks), chunksize)]


def run_sweep(worker: Callable[[TaskT], ResultT],
              tasks: Sequence[TaskT],
              workers: Optional[int] = None,
              mode: str = "process",
              chunksize: Optional[int] = None,
              initializer: Optional[Callable[..., None]] = None,
              initargs: tuple = ()) -> List[ResultT]:
    """Apply ``worker`` to every task, optionally across a worker pool.

    Parameters
    ----------
    worker:
        Callable applied to each task.  Must be a module-level function (and
        the tasks picklable) for ``mode="process"``.
    tasks:
        Work items; results come back in the same order.
    workers:
        Pool size.  ``None``, ``0`` or ``1`` runs serially in-process.
    mode:
        ``"process"`` (default), ``"thread"``, or ``"serial"``.  Threads only
        help when the worker releases the GIL (NumPy-heavy batches); process
        pools parallelise pure-Python simulation too.
    chunksize:
        Number of tasks handed to a pool worker per dispatch.  For process
        pools this is a pass-through to ``Executor.map``; for thread pools
        (whose ``map`` silently ignores ``chunksize``) the tasks are
        pre-grouped with :func:`chunk_tasks` and dispatched as chunk-level
        work items, so the parameter is honoured in every mode.  ``None``
        keeps the default heuristic of about four chunks per worker.  For
        coarser batching — e.g. one work item per group of related tasks —
        pre-group the tasks with :func:`chunk_tasks` and give ``worker`` a
        chunk-level callable.
    initializer, initargs:
        Run ``initializer(*initargs)`` once per worker before its first
        task — e.g. to pre-warm a process's trace cache so no task pays the
        first materialisation.  Passed through to the executor in pool
        modes; in serial mode (and on the degrade-to-serial fallback when a
        pool cannot spawn) the initializer runs once in-process, so the
        pre-warm semantics hold on every execution path.  Must be a
        module-level callable (and ``initargs`` picklable) for
        ``mode="process"``.
    """
    if mode not in _MODES:
        raise ValueError(f"unknown sweep mode {mode!r}; expected one of {_MODES}")
    if chunksize is not None and chunksize < 1:
        raise ValueError("chunksize must be positive")
    tasks = list(tasks)
    if not tasks:
        return []

    def run_serial() -> List[ResultT]:
        if initializer is not None:
            initializer(*initargs)
        return [worker(task) for task in tasks]

    if mode == "serial" or workers is None or workers <= 1:
        return run_serial()

    executor_cls = (concurrent.futures.ProcessPoolExecutor if mode == "process"
                    else concurrent.futures.ThreadPoolExecutor)
    if chunksize is None:
        chunksize = max(1, len(tasks) // (workers * 4))
    # Probe the pool with a no-op before committing the sweep to it, so
    # sandboxes without process-spawn rights degrade to serial execution —
    # without a blanket except around the real map that would otherwise
    # swallow a *worker* error and silently redo the whole sweep serially.
    pool = None
    try:
        pool = executor_cls(max_workers=workers, initializer=initializer,
                            initargs=initargs)
        pool.submit(_noop).result()
    except (OSError, BrokenProcessPool):
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        return run_serial()
    with pool:
        if mode == "process":
            return list(pool.map(worker, tasks, chunksize=chunksize))
        # ThreadPoolExecutor.map accepts but ignores chunksize; dispatch
        # explicit chunks so the batching the caller asked for is real.
        def _run_chunk(chunk: List[TaskT]) -> List[ResultT]:
            return [worker(task) for task in chunk]

        chunked = pool.map(_run_chunk, chunk_tasks(tasks, chunksize))
        return [result for chunk in chunked for result in chunk]
