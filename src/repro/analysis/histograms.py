"""Histogramming of miss ratios (Figure 1).

Figure 1 of the paper is a frequency distribution: for each indexing scheme,
how many of the 4096 tested strides fall into each miss-ratio decile?  A
conflict-resistant function concentrates all its mass in the lowest bucket; a
fragile one has a visible tail of pathological strides (miss ratio > 50%).

:class:`MissRatioHistogram` reproduces that bucketing (ten 0.1-wide bins plus
helpers for the "pathological" tail the text quotes) and renders a compact
ASCII view with a logarithmic frequency axis like the figure's log scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

__all__ = ["MissRatioHistogram", "compare_histograms"]


@dataclass
class MissRatioHistogram:
    """Frequency distribution of miss ratios over a set of experiments.

    The default ten buckets follow Figure 1's x-axis: bucket ``i`` counts
    experiments whose miss ratio ``r`` satisfies ``i/10 < r <= (i+1)/10``,
    with ratios of exactly zero landing in the first bucket.
    """

    num_buckets: int = 10
    label: str = ""
    counts: List[int] = field(default_factory=list)
    total: int = 0

    def __post_init__(self) -> None:
        if self.num_buckets < 1:
            raise ValueError("num_buckets must be positive")
        if not self.counts:
            self.counts = [0] * self.num_buckets
        elif len(self.counts) != self.num_buckets:
            raise ValueError("counts length must equal num_buckets")

    def bucket_of(self, miss_ratio: float) -> int:
        """Index of the bucket a miss ratio falls into."""
        if not 0.0 <= miss_ratio <= 1.0:
            raise ValueError(f"miss ratio must be in [0, 1], got {miss_ratio}")
        if miss_ratio == 0.0:
            return 0
        return min(self.num_buckets - 1,
                   int(math.ceil(miss_ratio * self.num_buckets)) - 1)

    def add(self, miss_ratio: float) -> None:
        """Record one experiment's miss ratio."""
        self.counts[self.bucket_of(miss_ratio)] += 1
        self.total += 1

    def add_all(self, miss_ratios: Sequence[float]) -> None:
        """Record many miss ratios."""
        for ratio in miss_ratios:
            self.add(ratio)

    def bucket_edges(self) -> List[float]:
        """Upper edge of each bucket (Figure 1's x labels: 0.1, 0.2, ... 1.0)."""
        return [(i + 1) / self.num_buckets for i in range(self.num_buckets)]

    def fraction_above(self, threshold: float) -> float:
        """Fraction of experiments with miss ratio strictly above ``threshold``.

        The paper quotes the fraction of strides with miss ratio above 50%
        ("more than 6% of all strides" for the conventional and skewed-XOR
        schemes, none for skewed I-Poly).
        """
        if self.total == 0:
            return 0.0
        first_bucket = self.bucket_of(min(1.0, threshold + 1e-9))
        # Buckets strictly above the threshold bucket are certainly above;
        # the threshold bucket itself is included only when the threshold
        # coincides with one of its edges (the Figure 1 use-case: 0.5).
        start = first_bucket
        if math.isclose(threshold * self.num_buckets,
                        round(threshold * self.num_buckets)):
            start = int(round(threshold * self.num_buckets))
        return sum(self.counts[start:]) / self.total

    def as_dict(self) -> Dict[float, int]:
        """Map from bucket upper edge to count."""
        return dict(zip(self.bucket_edges(), self.counts))

    def render(self, width: int = 40) -> str:
        """ASCII rendering with a log-scaled bar per bucket (like Figure 1)."""
        lines = [f"{self.label or 'miss-ratio distribution'} ({self.total} samples)"]
        max_count = max(self.counts) if any(self.counts) else 1
        log_max = math.log10(max_count + 1)
        for edge, count in zip(self.bucket_edges(), self.counts):
            bar_len = 0
            if count > 0 and log_max > 0:
                bar_len = max(1, int(round(width * math.log10(count + 1) / log_max)))
            lines.append(f"  <= {edge:4.1f}  {count:6d}  {'#' * bar_len}")
        return "\n".join(lines)


def compare_histograms(histograms: Sequence[MissRatioHistogram],
                       threshold: float = 0.5) -> Dict[str, float]:
    """Fraction of pathological samples (above ``threshold``) per labelled histogram."""
    return {h.label or f"scheme-{i}": h.fraction_above(threshold)
            for i, h in enumerate(histograms)}
