"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so the
package can be installed in environments whose tooling predates PEP 660
editable installs (``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup(
    # The batch engine (repro.engine) and trace materialization
    # (repro.trace.batching) are NumPy-based; everything else is pure Python.
    install_requires=["numpy"],
)
