"""Unit tests for the cache placement (index) functions."""

import pytest

from repro.core.gf2 import gf2_mod
from repro.core.index import (
    BitSelectIndexing,
    IPolyIndexing,
    PrimeModuloIndexing,
    SingleSetIndexing,
    XorFoldIndexing,
    make_index_function,
)


class TestBitSelect:
    def test_low_bits(self):
        fn = BitSelectIndexing(128)
        assert fn.index(0) == 0
        assert fn.index(5) == 5
        assert fn.index(128) == 0
        assert fn.index(131) == 3

    def test_range(self):
        fn = BitSelectIndexing(64)
        for block in range(0, 5000, 37):
            assert 0 <= fn.index(block) < 64

    def test_not_skewed(self):
        assert not BitSelectIndexing(64).is_skewed

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            BitSelectIndexing(100)

    def test_rejects_negative_block(self):
        with pytest.raises(ValueError):
            BitSelectIndexing(64).index(-1)

    def test_way_is_ignored(self):
        fn = BitSelectIndexing(64)
        assert fn.index(1234, 0) == fn.index(1234, 1)


class TestXorFold:
    def test_folds_two_fields(self):
        fn = XorFoldIndexing(128, skewed=False)
        # block = low | high << 7  ->  index = low ^ high
        assert fn.index((5 << 7) | 3) == 5 ^ 3

    def test_skewed_ways_differ_somewhere(self):
        fn = XorFoldIndexing(128, skewed=True)
        diffs = sum(1 for block in range(0, 4096, 7)
                    if fn.index(block, 0) != fn.index(block, 1))
        assert diffs > 0

    def test_unskewed_ways_equal(self):
        fn = XorFoldIndexing(128, skewed=False)
        assert all(fn.index(b, 0) == fn.index(b, 1) for b in range(0, 1000, 13))

    def test_range(self):
        fn = XorFoldIndexing(128)
        for block in range(0, 100000, 997):
            for way in (0, 1):
                assert 0 <= fn.index(block, way) < 128

    def test_uses_two_index_widths_of_address(self):
        assert XorFoldIndexing(128).address_bits_used == 14


class TestIPoly:
    def test_matches_gf2_mod(self):
        fn = IPolyIndexing(128, address_bits=19)
        poly = fn.polynomials[0]
        for block in (0, 1, 129, 5000, (1 << 19) - 1, 123456):
            assert fn.index(block) == gf2_mod(block & ((1 << 19) - 1), poly)

    def test_truncates_to_address_bits(self):
        fn = IPolyIndexing(128, address_bits=14)
        assert fn.index(1 << 20) == fn.index(0)

    def test_range(self):
        fn = IPolyIndexing(256, address_bits=19)
        for block in range(0, 200000, 1237):
            assert 0 <= fn.index(block) < 256

    def test_skewed_uses_distinct_polynomials(self):
        fn = IPolyIndexing(128, ways=2, skewed=True, address_bits=19)
        assert fn.polynomial_for_way(0) != fn.polynomial_for_way(1)

    def test_unskewed_single_polynomial(self):
        fn = IPolyIndexing(128, ways=2, skewed=False, address_bits=19)
        assert fn.polynomial_for_way(0) == fn.polynomial_for_way(1)

    def test_power_of_two_strides_conflict_free(self):
        """The paper's fundamental property: 2^k strides never conflict.

        Partition a 2^k-strided sequence into M-long subsequences; within each
        subsequence all cache indices must be distinct.
        """
        num_sets = 128
        fn = IPolyIndexing(num_sets, address_bits=19)
        for k in (0, 1, 2, 3, 5, 7):
            stride = 1 << k
            blocks = [i * stride for i in range(num_sets)]
            indices = [fn.index(b) for b in blocks]
            assert len(set(indices)) == num_sets, f"stride 2^{k} caused conflicts"

    def test_explicit_polynomial_validation(self):
        with pytest.raises(ValueError):
            IPolyIndexing(128, polynomials=[0b1011])  # degree 3 != 7

    def test_skewed_needs_enough_polynomials(self):
        with pytest.raises(ValueError):
            IPolyIndexing(128, ways=3, skewed=True, polynomials=[0b10000011])

    def test_address_bits_below_index_rejected(self):
        with pytest.raises(ValueError):
            IPolyIndexing(128, address_bits=3)

    def test_linearity(self):
        fn = IPolyIndexing(128, address_bits=19)
        for a, b in [(3, 5), (100, 4097), (65535, 12345)]:
            assert fn.index(a ^ b) == fn.index(a) ^ fn.index(b)


class TestPrimeModulo:
    def test_prime_below_sets(self):
        fn = PrimeModuloIndexing(128)
        assert fn.prime == 127
        assert fn.usable_sets == 127

    def test_range_is_within_prime(self):
        fn = PrimeModuloIndexing(128)
        assert all(fn.index(b) < 127 for b in range(0, 10000, 7))

    def test_simple_values(self):
        fn = PrimeModuloIndexing(128)
        assert fn.index(127) == 0
        assert fn.index(128) == 1


class TestSingleSet:
    def test_always_zero(self):
        fn = SingleSetIndexing()
        assert fn.index(0) == 0
        assert fn.index(123456789) == 0


class TestFactory:
    @pytest.mark.parametrize("label, cls", [
        ("a2", BitSelectIndexing),
        ("a2-Hx", XorFoldIndexing),
        ("a2-Hx-Sk", XorFoldIndexing),
        ("a2-Hp", IPolyIndexing),
        ("a2-Hp-Sk", IPolyIndexing),
        ("a2-prime", PrimeModuloIndexing),
        ("full", SingleSetIndexing),
    ])
    def test_labels(self, label, cls):
        fn = make_index_function(label, num_sets=128, ways=2, address_bits=19)
        assert isinstance(fn, cls)

    def test_case_insensitive(self):
        assert make_index_function("A2-HP-SK", 128, ways=2).is_skewed

    def test_unknown_label(self):
        with pytest.raises(ValueError):
            make_index_function("nonsense", 128)

    def test_names_match_paper_labels(self):
        assert make_index_function("a2", 128).name == "a2"
        assert make_index_function("a2-Hp-Sk", 128, ways=2).name == "a2-Hp-Sk"
