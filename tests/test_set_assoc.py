"""Unit tests for the set-associative cache model."""

import pytest

from repro.cache.set_assoc import SetAssociativeCache, WritePolicy
from repro.cache.stats import MissKind
from repro.core.index import IPolyIndexing, XorFoldIndexing


def small_cache(**kwargs):
    defaults = dict(size_bytes=1024, block_size=32, ways=2)
    defaults.update(kwargs)
    return SetAssociativeCache(**defaults)


class TestGeometry:
    def test_derived_quantities(self):
        cache = SetAssociativeCache(8 * 1024, 32, 2)
        assert cache.num_sets == 128
        assert cache.num_blocks == 256
        assert cache.block_size == 32
        assert cache.ways == 2

    def test_block_number_of(self):
        cache = small_cache()
        assert cache.block_number_of(0) == 0
        assert cache.block_number_of(31) == 0
        assert cache.block_number_of(32) == 1

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, 32, 2)        # not a multiple
        with pytest.raises(ValueError):
            SetAssociativeCache(1024, 48, 2)        # block not power of two
        with pytest.raises(ValueError):
            SetAssociativeCache(1024, 32, 0)        # zero ways
        with pytest.raises(ValueError):
            SetAssociativeCache(96, 32, 2, index_function=None)  # 1.5 sets

    def test_index_function_set_count_must_match(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1024, 32, 2, index_function=IPolyIndexing(64))

    def test_unknown_write_policy(self):
        with pytest.raises(ValueError):
            small_cache(write_policy="write-around")


class TestBasicBehaviour:
    def test_first_access_misses_then_hits(self):
        cache = small_cache()
        assert not cache.access(0x100).hit
        assert cache.access(0x100).hit
        assert cache.access(0x11F).hit          # same 32-byte block

    def test_distinct_blocks_tracked(self):
        cache = small_cache()
        cache.access(0)
        cache.access(64)
        assert cache.contains(0)
        assert cache.contains(64)
        assert not cache.contains(4096)

    def test_lru_eviction_within_set(self):
        # 1 KB, 2-way, 32 B blocks -> 16 sets; blocks 0, 16, 32 share set 0.
        cache = small_cache()
        cache.access(0 * 32)
        cache.access(16 * 32)
        cache.access(0 * 32)                    # refresh block 0
        result = cache.access(32 * 32)          # evicts block 16 (LRU)
        assert result.evicted_block == 16
        assert cache.contains_block(0)
        assert not cache.contains_block(16)

    def test_eviction_statistics(self):
        cache = small_cache()
        for i in range(3):
            cache.access(i * 16 * 32)
        assert cache.stats.evictions == 1

    def test_associativity_avoids_immediate_conflict(self):
        cache = small_cache()
        cache.access(0)
        cache.access(16 * 32)                   # same set, other way
        assert cache.contains_block(0)
        assert cache.contains_block(16)

    def test_flush(self):
        cache = small_cache()
        cache.access(0)
        cache.flush()
        assert not cache.contains(0)

    def test_invalidate(self):
        cache = small_cache()
        cache.access(0x40)
        assert cache.invalidate_address(0x40)
        assert not cache.contains(0x40)
        assert not cache.invalidate_address(0x40)
        assert cache.stats.invalidations == 1

    def test_fill_block_does_not_count_access(self):
        cache = small_cache()
        cache.fill_block(5)
        assert cache.stats.accesses == 0
        assert cache.contains_block(5)

    def test_resident_blocks(self):
        cache = small_cache()
        cache.access(0)
        cache.access(64)
        assert sorted(cache.resident_blocks()) == [0, 2]


class TestWritePolicies:
    def test_write_through_no_allocate_skips_allocation(self):
        cache = small_cache(write_policy=WritePolicy.WRITE_THROUGH_NO_ALLOCATE)
        result = cache.access(0x200, is_write=True)
        assert not result.hit
        assert result.way is None
        assert not cache.contains(0x200)
        assert cache.stats.store_misses == 1

    def test_write_back_allocates_and_marks_dirty(self):
        cache = small_cache(write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
        cache.access(0x200, is_write=True)
        assert cache.contains(0x200)
        # Force eviction of the dirty block: fill its set with newer blocks.
        block = cache.block_number_of(0x200)
        set_index = cache.index_function.index(block)
        victims = 0
        candidate = block + 16
        while victims < 2:
            if cache.index_function.index(candidate) == set_index:
                cache.access(candidate * 32)
                victims += 1
            candidate += 16
        assert cache.stats.writebacks >= 1

    def test_write_through_store_hit_not_dirty(self):
        cache = small_cache(write_policy=WritePolicy.WRITE_THROUGH_NO_ALLOCATE)
        cache.access(0x80)                       # load fills the line
        cache.access(0x80, is_write=True)        # store hit
        assert cache.stats.store_misses == 0
        assert cache.stats.writebacks == 0


class TestMissClassification:
    def test_conflict_misses_detected(self):
        cache = small_cache(classify_misses=True)
        # Three blocks in the same set of a 2-way cache, accessed repeatedly.
        blocks = [0, 16, 32]
        for _ in range(4):
            for b in blocks:
                cache.access(b * 32)
        kinds = cache.stats.miss_kinds
        assert kinds[MissKind.COMPULSORY] == 3
        assert kinds[MissKind.CONFLICT] > 0
        assert kinds[MissKind.CAPACITY] == 0

    def test_capacity_misses_detected(self):
        cache = small_cache(classify_misses=True)
        blocks = range(0, 64)                    # 64 blocks > 32-block capacity
        for _ in range(2):
            for b in blocks:
                cache.access(b * 32)
        assert cache.stats.miss_kinds[MissKind.CAPACITY] > 0


class TestSkewedOperation:
    def test_skewed_cache_uses_different_sets_per_way(self):
        fn = IPolyIndexing(16, ways=2, skewed=True, address_bits=14)
        cache = SetAssociativeCache(1024, 32, 2, index_function=fn)
        # Find a block whose two way-indices differ, fill both ways.
        block = next(b for b in range(200) if fn.index(b, 0) != fn.index(b, 1))
        cache.access_block(block)
        assert cache.contains_block(block)

    def test_conflicting_blocks_spread_by_skewed_xor(self):
        """Blocks that collide under bit selection coexist under skewing."""
        conventional = small_cache()
        skewed = SetAssociativeCache(
            1024, 32, 2, index_function=XorFoldIndexing(16, skewed=True))
        blocks = [i * 16 for i in range(8)]      # all map to set 0 conventionally
        for _ in range(4):
            for b in blocks:
                conventional.access_block(b)
                skewed.access_block(b)
        assert skewed.stats.miss_ratio < conventional.stats.miss_ratio

    def test_ipoly_cache_defeats_power_of_two_stride(self):
        """The headline behaviour: 2^k strides thrash a2 but not a2-Hp."""
        conventional = SetAssociativeCache(8 * 1024, 32, 2)
        ipoly = SetAssociativeCache(
            8 * 1024, 32, 2,
            index_function=IPolyIndexing(128, ways=2, skewed=True, address_bits=19))
        stride_bytes = 4096
        for _ in range(4):
            for i in range(64):
                conventional.access(i * stride_bytes)
                ipoly.access(i * stride_bytes)
        assert conventional.stats.miss_ratio > 0.9
        assert ipoly.stats.miss_ratio < 0.3
