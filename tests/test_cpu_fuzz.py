"""Fuzz harness tests for the out-of-order CPU path.

Tier-1 replays the committed corpus (``tests/corpus/cpu_fuzz_corpus.json``)
through the differential harness — every seed must stay bit-exact across the
reference and vectorized index engines *and* across the batch-kernel dcache
replay.  A small Hypothesis property fuzzes fresh short programs on every
run.  The open-ended loop (``-m slow``) generates fresh seeds under a time
budget for the nightly CI job; on failure it prints the one-line repro and
writes a JSON artifact with everything needed to rebuild the program.

Environment knobs for the slow loop:

``REPRO_FUZZ_PROGRAMS``
    How many fresh programs to fuzz (default 200).
``REPRO_FUZZ_BUDGET_SECONDS``
    Wall-clock budget; the loop stops early when exceeded (default 600).
``REPRO_FUZZ_ARTIFACT_DIR``
    Where to write failing-program JSON artifacts (default: skip artifacts).
"""

import dataclasses
import json
import os
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.fuzzer import (
    ADDRESS_PATTERNS,
    CONFIG_VARIANTS,
    FuzzParams,
    build_fuzz_program,
    fuzz_config,
    random_params,
    repro_line,
    run_differential,
)
from repro.cpu.isa import FP_REGS, INT_REGS, OpClass

CORPUS_PATH = Path(__file__).parent / "corpus" / "cpu_fuzz_corpus.json"

with open(CORPUS_PATH) as _handle:
    _CORPUS = json.load(_handle)

CORPUS_SEEDS = [entry["seed"] for entry in _CORPUS["programs"]]


# --------------------------------------------------------------------------- #
# committed corpus: tier-1 bit-exactness across engines and batch replay
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("seed", CORPUS_SEEDS)
def test_corpus_seed_is_bit_exact(seed):
    program, params = build_fuzz_program(seed)
    outcome = run_differential(program, params, seed=seed)
    outcome.assert_ok()
    # The harness really ran the batch replay for both engines.
    assert set(outcome.replay_strategies) == {"reference", "vectorized"}


def test_corpus_covers_generator_space():
    """The committed seeds span every address pattern and machine variant."""
    patterns, variants = set(), set()
    for seed in CORPUS_SEEDS:
        params = random_params(seed)
        patterns.add(params.address_pattern)
        variants.add(params.config_variant)
    assert patterns == set(ADDRESS_PATTERNS)
    assert variants == set(CONFIG_VARIANTS)


def test_corpus_entries_carry_notes():
    for entry in _CORPUS["programs"]:
        assert isinstance(entry["seed"], int)
        assert entry["note"]


# --------------------------------------------------------------------------- #
# generator validity
# --------------------------------------------------------------------------- #

def test_program_replays_identically():
    program, _ = build_fuzz_program(13)
    first = list(program.instructions())
    second = list(program.instructions())
    assert first == second


def test_program_honours_length_and_validity():
    params = random_params(21, length=500)
    program, params = build_fuzz_program(21, params)
    instructions = list(program.instructions())
    assert len(instructions) == 500
    assert program.length_hint == 500
    for inst in instructions:
        if inst.op is OpClass.STORE:
            assert inst.dest is None and inst.address is not None
        elif inst.op is OpClass.LOAD:
            assert inst.address is not None
        if inst.op is OpClass.BRANCH:
            assert inst.taken is not None
        if inst.dest is not None:
            assert 0 <= inst.dest < INT_REGS + FP_REGS
        for src in inst.srcs:
            assert 0 <= src < INT_REGS + FP_REGS


def test_conflict_pattern_folds_into_few_conventional_sets():
    """The conflict address pattern hammers a handful of bit-selection sets."""
    params = dataclasses.replace(random_params(3, length=600),
                                 address_pattern="conflict",
                                 config_variant="conv")
    program, _ = build_fuzz_program(3, params)
    config = fuzz_config(params)
    num_sets = config.cache_size_bytes // (config.cache_block_size
                                           * config.cache_ways)
    sets = {(inst.address // config.cache_block_size) % num_sets
            for inst in program.instructions()
            if inst.op in (OpClass.LOAD, OpClass.STORE)}
    assert len(sets) <= 8


def test_random_params_deterministic_and_valid():
    for seed in range(50):
        assert random_params(seed) == random_params(seed)  # also validates
    assert random_params(9, length=1234).length == 1234


def test_differential_run_is_deterministic():
    program, params = build_fuzz_program(5)
    first = run_differential(program, params, seed=5)
    second = run_differential(program, params, seed=5)
    assert first.ok and second.ok
    assert first.reference == second.reference
    assert first.vectorized == second.vectorized
    assert first.replay_strategies == second.replay_strategies


# --------------------------------------------------------------------------- #
# params validation and reproducibility plumbing
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("overrides", [
    dict(length=0),
    dict(memory_permille=0),
    dict(memory_permille=1000),
    dict(memory_permille=600, branch_permille=400),
    dict(branch_permille=-1),
    dict(fp_permille=1001),
    dict(store_permille=-5),
    dict(dependency_window=0),
    dict(recent_source_percent=101),
    dict(branch_sites=0),
    dict(branch_flip_permille=501),
    dict(address_pattern="zigzag"),
    dict(footprint_bytes=32),
    dict(config_variant="warp-drive"),
])
def test_fuzz_params_rejects_invalid(overrides):
    with pytest.raises(ValueError):
        FuzzParams(**overrides)


def test_fuzz_params_round_trips_through_json():
    params = random_params(77)
    rebuilt = FuzzParams(**json.loads(json.dumps(dataclasses.asdict(params))))
    assert rebuilt == params


def test_repro_line_rebuilds_the_failure():
    params = random_params(31)
    line = repro_line(31, params)
    assert "seed=31" in line
    assert repr(dataclasses.asdict(params)) in line
    assert "run_differential" in line


def test_assert_ok_raises_with_repro():
    program, params = build_fuzz_program(1)
    outcome = run_differential(program, params, seed=1)
    outcome.mismatches.append("synthetic: cycles differ")
    with pytest.raises(AssertionError, match="seed=1"):
        outcome.assert_ok()


# --------------------------------------------------------------------------- #
# property fuzz: fresh short programs on every tier-1 run
# --------------------------------------------------------------------------- #

@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_property_fresh_seeds_stay_bit_exact(seed):
    params = random_params(seed, length=300)
    program, params = build_fuzz_program(seed, params)
    run_differential(program, params, seed=seed).assert_ok()


# --------------------------------------------------------------------------- #
# open-ended nightly loop
# --------------------------------------------------------------------------- #

def _write_artifact(directory, outcome):
    path = Path(directory) / f"fuzz-failure-seed-{outcome.seed}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump({
            "seed": outcome.seed,
            "params": dataclasses.asdict(outcome.params),
            "mismatches": outcome.mismatches,
            "repro": repro_line(outcome.seed, outcome.params),
        }, handle, indent=1, sort_keys=True)
    return path


@pytest.mark.slow
def test_fuzz_loop():
    """Fuzz fresh random programs until the count or time budget runs out."""
    programs = int(os.environ.get("REPRO_FUZZ_PROGRAMS", "200"))
    budget = float(os.environ.get("REPRO_FUZZ_BUDGET_SECONDS", "600"))
    artifact_dir = os.environ.get("REPRO_FUZZ_ARTIFACT_DIR")
    start_seed = max(CORPUS_SEEDS) + 1
    started = time.monotonic()
    ran = 0
    for seed in range(start_seed, start_seed + programs):
        if time.monotonic() - started > budget:
            break
        program, params = build_fuzz_program(seed)
        outcome = run_differential(program, params, seed=seed)
        ran += 1
        if not outcome.ok:
            if artifact_dir:
                artifact = _write_artifact(artifact_dir, outcome)
                print(f"fuzz failure artifact: {artifact}")
            print(repro_line(seed, params))
            outcome.assert_ok()
    assert ran > 0
