"""Synthetic Spec95-like programs for the processor-level experiments.

The IPC experiments of Tables 2 and 3 need full dynamic instruction streams,
not just address traces.  Each of the 18 modelled programs is generated as a
probabilistic (but fully deterministic, seeded) mix of:

* memory instructions whose addresses come from the trace-level workload
  model of the same program (:mod:`repro.trace.workloads`), so the cache
  behaviour of the instruction stream matches the trace-level studies;
* integer and floating-point computation whose operation mix reflects whether
  the original program is an integer or floating-point code;
* conditional branches with a per-program bias, so the bimodal predictor's
  misprediction ratio lands in a realistic band (higher for the irregular
  integer codes, lower for the loop-dominated floating-point codes).

Dependences are created by drawing source registers from the most recently
written destinations, which yields dependence chains of realistic length —
in particular, computation regularly consumes load results, so load misses
stall the core and the cache organisation visibly moves IPC, exactly the
effect the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

from ..trace.generators import _SplitMix64
from ..trace.workloads import WORKLOADS, build_trace
from .isa import FP_REGS, INT_REGS, Instruction, OpClass
from .program import Program

__all__ = ["InstructionMix", "INSTRUCTION_MIXES", "build_program", "program_names"]


@dataclass(frozen=True)
class InstructionMix:
    """Operation mix and branch behaviour of one synthetic program.

    The fractions are relative weights; memory operations take their
    load/store split from the underlying address trace rather than from this
    mix.
    """

    memory_fraction: float
    branch_fraction: float
    fp_fraction: float
    complex_int_fraction: float = 0.03
    fp_div_fraction: float = 0.02
    branch_flip_rate: float = 0.08
    dependency_window: int = 6

    def __post_init__(self) -> None:
        total = self.memory_fraction + self.branch_fraction
        if not 0.0 < self.memory_fraction < 1.0:
            raise ValueError("memory_fraction must be in (0, 1)")
        if total >= 1.0:
            raise ValueError("memory + branch fractions must leave room for ALU work")
        if not 0.0 <= self.fp_fraction <= 1.0:
            raise ValueError("fp_fraction must be in [0, 1]")
        if not 0.0 <= self.branch_flip_rate <= 0.5:
            raise ValueError("branch_flip_rate must be in [0, 0.5]")
        if self.dependency_window < 1:
            raise ValueError("dependency_window must be positive")


_INT_MIX = InstructionMix(memory_fraction=0.36, branch_fraction=0.17,
                          fp_fraction=0.0, branch_flip_rate=0.09)
_FP_MIX = InstructionMix(memory_fraction=0.38, branch_fraction=0.08,
                         fp_fraction=0.55, branch_flip_rate=0.04)

#: Per-program instruction mixes.  Programs keep the integer/floating-point
#: template of their suite with small per-program adjustments to branch
#: predictability (the irregular codes — go, gcc, compress — mispredict more).
INSTRUCTION_MIXES: Dict[str, InstructionMix] = {
    "go":       InstructionMix(0.32, 0.20, 0.0, branch_flip_rate=0.16),
    "m88ksim":  InstructionMix(0.34, 0.18, 0.0, branch_flip_rate=0.05),
    "gcc":      InstructionMix(0.34, 0.19, 0.0, branch_flip_rate=0.11),
    "compress": InstructionMix(0.38, 0.16, 0.0, branch_flip_rate=0.11),
    "li":       InstructionMix(0.36, 0.18, 0.0, branch_flip_rate=0.07),
    "ijpeg":    InstructionMix(0.34, 0.12, 0.0, branch_flip_rate=0.08),
    "perl":     InstructionMix(0.36, 0.18, 0.0, branch_flip_rate=0.08),
    "vortex":   InstructionMix(0.38, 0.16, 0.0, branch_flip_rate=0.07),
    "tomcatv":  InstructionMix(0.40, 0.07, 0.55, branch_flip_rate=0.03),
    "swim":     InstructionMix(0.40, 0.06, 0.55, branch_flip_rate=0.02),
    "su2cor":   InstructionMix(0.38, 0.08, 0.55, branch_flip_rate=0.04),
    "hydro2d":  InstructionMix(0.38, 0.08, 0.55, branch_flip_rate=0.04),
    "applu":    InstructionMix(0.36, 0.07, 0.60, branch_flip_rate=0.03),
    "mgrid":    InstructionMix(0.36, 0.06, 0.60, branch_flip_rate=0.02),
    "turb3d":   InstructionMix(0.34, 0.08, 0.55, branch_flip_rate=0.04),
    "apsi":     InstructionMix(0.36, 0.09, 0.55, branch_flip_rate=0.05),
    "fpppp":    InstructionMix(0.30, 0.04, 0.70, fp_div_fraction=0.04,
                               branch_flip_rate=0.02),
    "wave5":    InstructionMix(0.38, 0.08, 0.55, branch_flip_rate=0.04),
}


def program_names() -> List[str]:
    """Names of all synthetic programs (same set as the trace workloads)."""
    return list(INSTRUCTION_MIXES)


def _instruction_stream(name: str, length: int, seed: int) -> Iterator[Instruction]:
    mix = INSTRUCTION_MIXES[name]
    rng = _SplitMix64(seed or 1)
    # Memory addresses follow the trace-level model of the same program; the
    # trace is drawn lazily so arbitrarily long programs stay cheap.
    accesses = build_trace(name, length=length, seed=seed + 17)

    # Registers 0-3 (integer) and 32-35 (floating point) act as long-lived
    # "base" registers: they are never used as destinations, so reads from
    # them are always ready.  This models the stable base/induction registers
    # real loop code keeps around and gives the stream realistic ILP — without
    # them every instruction would chain on the previous few results and the
    # core could never approach the paper's IPC range.
    base_int = [0, 1, 2, 3]
    base_fp = [INT_REGS, INT_REGS + 1, INT_REGS + 2, INT_REGS + 3]
    recent_int: List[int] = list(base_int)
    recent_fp: List[int] = list(base_fp)
    int_dest_cursor = len(base_int)
    fp_dest_cursor = INT_REGS + len(base_fp)

    mem_cut = int(mix.memory_fraction * 1_000_000)
    branch_cut = mem_cut + int(mix.branch_fraction * 1_000_000)
    # Per-branch-site bias: an array of "usually taken?" flags.
    branch_sites = 64
    site_bias = [(rng.next() & 1) == 0 for _ in range(branch_sites)]

    def pick_src(pool: List[int], base_pool: List[int],
                 recent_chance: int = 50) -> int:
        """Pick a source: sometimes a recent result, otherwise a base register."""
        if rng.below(100) < recent_chance:
            window = pool[-mix.dependency_window:]
            return window[rng.below(len(window))]
        return base_pool[rng.below(len(base_pool))]

    def next_int_dest() -> int:
        nonlocal int_dest_cursor
        dest = int_dest_cursor
        int_dest_cursor += 1
        if int_dest_cursor >= INT_REGS:
            int_dest_cursor = len(base_int)
        return dest

    def next_fp_dest() -> int:
        nonlocal fp_dest_cursor
        dest = fp_dest_cursor
        fp_dest_cursor += 1
        if fp_dest_cursor >= INT_REGS + FP_REGS:
            fp_dest_cursor = INT_REGS + len(base_fp)
        return dest

    emitted = 0
    pc = 0x0040_0000
    while emitted < length:
        draw = rng.below(1_000_000)
        pc += 4
        if draw < mem_cut:
            try:
                access = next(accesses)
            except StopIteration:  # pragma: no cover - trace sized to length
                accesses = build_trace(name, length=length, seed=seed + 31)
                access = next(accesses)
            if access.is_write:
                use_fp_data = mix.fp_fraction > 0 and rng.below(100) < 60
                data_src = pick_src(recent_fp if use_fp_data else recent_int,
                                    base_fp if use_fp_data else base_int)
                inst = Instruction(pc=access.pc or pc, op=OpClass.STORE,
                                   srcs=(pick_src(recent_int, base_int,
                                                  recent_chance=20), data_src),
                                   address=access.address, size=access.size)
            else:
                use_fp = mix.fp_fraction > 0 and rng.below(100) < 50
                dest = next_fp_dest() if use_fp else next_int_dest()
                # Load addresses come overwhelmingly from stable base
                # registers, so the load itself rarely waits on computation.
                inst = Instruction(pc=access.pc or pc, op=OpClass.LOAD,
                                   dest=dest,
                                   srcs=(pick_src(recent_int, base_int,
                                                  recent_chance=20),),
                                   address=access.address, size=access.size)
                (recent_fp if use_fp else recent_int).append(dest)
        elif draw < branch_cut:
            site = rng.below(branch_sites)
            taken = site_bias[site]
            if rng.below(1_000_000) < int(mix.branch_flip_rate * 1_000_000):
                taken = not taken
            inst = Instruction(pc=0x0041_0000 + site * 4, op=OpClass.BRANCH,
                               srcs=(pick_src(recent_int, base_int,
                                              recent_chance=40),), taken=taken)
        else:
            use_fp = rng.below(1_000_000) < int(mix.fp_fraction * 1_000_000)
            if use_fp:
                roll = rng.below(1_000_000)
                if roll < int(mix.fp_div_fraction * 1_000_000):
                    op = OpClass.FP_DIV
                elif roll < int(mix.fp_div_fraction * 1_000_000) + 5_000:
                    op = OpClass.FP_SQRT
                elif roll < 500_000:
                    op = OpClass.FP_MUL
                else:
                    op = OpClass.FP_ADD
                dest = next_fp_dest()
                inst = Instruction(pc=pc, op=op, dest=dest,
                                   srcs=(pick_src(recent_fp, base_fp),
                                         pick_src(recent_fp, base_fp)))
                recent_fp.append(dest)
            else:
                roll = rng.below(1_000_000)
                if roll < int(mix.complex_int_fraction * 1_000_000):
                    op = OpClass.INT_MUL
                elif roll < int(mix.complex_int_fraction * 1_000_000) + 3_000:
                    op = OpClass.INT_DIV
                else:
                    op = OpClass.INT_ALU
                dest = next_int_dest()
                inst = Instruction(pc=pc, op=op, dest=dest,
                                   srcs=(pick_src(recent_int, base_int),
                                         pick_src(recent_int, base_int)))
                recent_int.append(dest)
        # Keep the recent-destination pools bounded.
        if len(recent_int) > 4 * mix.dependency_window:
            del recent_int[: 2 * mix.dependency_window]
        if len(recent_fp) > 4 * mix.dependency_window:
            del recent_fp[: 2 * mix.dependency_window]
        emitted += 1
        yield inst


def build_program(name: str, length: int = 50_000, seed: int = 2027) -> Program:
    """Build the synthetic program model for the named Spec95 benchmark."""
    if name not in INSTRUCTION_MIXES:
        raise ValueError(f"unknown program {name!r}; known: {', '.join(INSTRUCTION_MIXES)}")
    if name not in WORKLOADS:
        raise ValueError(f"program {name!r} has no trace-level workload model")
    if length < 1:
        raise ValueError("length must be positive")
    return Program(name, lambda: _instruction_stream(name, length, seed),
                   length_hint=length)
