"""Unit tests for trace records, generators and trace I/O."""

import pytest

from repro.trace.generators import (
    interleave,
    matrix_traversal,
    multi_array_sweep,
    pointer_chase,
    random_accesses,
    strided_vector,
    tiled_matrix_multiply,
)
from repro.trace.record import MemoryAccess, materialise, replay, trace_length
from repro.trace.trace_io import (
    read_binary_trace,
    read_text_trace,
    write_binary_trace,
    write_text_trace,
)


class TestMemoryAccess:
    def test_defaults(self):
        access = MemoryAccess(address=0x100)
        assert not access.is_write
        assert access.size == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryAccess(address=-1)
        with pytest.raises(ValueError):
            MemoryAccess(address=0, size=0)
        with pytest.raises(ValueError):
            MemoryAccess(address=0, pc=-4)

    def test_helpers(self):
        trace = [MemoryAccess(i * 8) for i in range(10)]
        assert trace_length(iter(trace)) == 10
        assert materialise(iter(trace)) == trace


class TestStridedVector:
    def test_length(self):
        trace = list(strided_vector(stride=3, elements=64, sweeps=4))
        assert len(trace) == 256

    def test_addresses_follow_stride(self):
        trace = list(strided_vector(stride=5, elements=4, element_size=8, sweeps=1))
        assert [a.address for a in trace] == [0, 40, 80, 120]

    def test_repeats_identically_each_sweep(self):
        trace = list(strided_vector(stride=2, elements=8, sweeps=2))
        assert [a.address for a in trace[:8]] == [a.address for a in trace[8:]]

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            list(strided_vector(stride=0))


class TestMultiArraySweep:
    def test_lock_step_interleaving(self):
        trace = list(multi_array_sweep(num_arrays=3, elements=2, sweeps=1,
                                       array_spacing=1 << 16))
        addresses = [a.address for a in trace]
        assert addresses[0] % (1 << 16) == addresses[3] % (1 << 16) - 8

    def test_write_last_array(self):
        trace = list(multi_array_sweep(num_arrays=2, elements=4, sweeps=1,
                                       write_last=True))
        writes = [a for a in trace if a.is_write]
        assert len(writes) == 4
        assert all(a.address >= 64 * 1024 for a in writes)


class TestMatrixTraversal:
    def test_row_major_is_sequential(self):
        trace = list(matrix_traversal(2, 4, element_size=8, order="row"))
        assert [a.address for a in trace] == [0, 8, 16, 24, 32, 40, 48, 56]

    def test_column_major_strides_by_row(self):
        trace = list(matrix_traversal(4, 4, element_size=8, order="column"))
        assert trace[1].address - trace[0].address == 32

    def test_length(self):
        assert trace_length(matrix_traversal(8, 8, passes=2)) == 128

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            list(matrix_traversal(2, 2, order="diagonal"))


class TestTiledMatrixMultiply:
    def test_touches_all_three_matrices(self):
        n, e = 8, 8
        trace = list(tiled_matrix_multiply(n=n, tile=4, element_size=e))
        bases = {a.address // (n * n * e) for a in trace}
        assert bases == {0, 1, 2}

    def test_has_stores_to_c(self):
        trace = list(tiled_matrix_multiply(n=4, tile=2))
        assert any(a.is_write for a in trace)

    def test_tile_larger_than_n_is_clamped(self):
        assert trace_length(tiled_matrix_multiply(n=4, tile=64)) > 0


class TestPointerChase:
    def test_deterministic(self):
        a = [x.address for x in pointer_chase(nodes=64, hops=100, seed=3)]
        b = [x.address for x in pointer_chase(nodes=64, hops=100, seed=3)]
        assert a == b

    def test_visits_whole_cycle(self):
        nodes = 32
        trace = list(pointer_chase(nodes=nodes, node_size=64, hops=nodes))
        assert len({a.address for a in trace}) == nodes

    def test_addresses_aligned_to_node_size(self):
        assert all(a.address % 64 == 0
                   for a in pointer_chase(nodes=16, node_size=64, hops=50))


class TestRandomAccesses:
    def test_deterministic_and_bounded(self):
        a = list(random_accesses(200, footprint_bytes=4096, seed=5))
        b = list(random_accesses(200, footprint_bytes=4096, seed=5))
        assert [x.address for x in a] == [x.address for x in b]
        assert all(x.address < 4096 for x in a)

    def test_write_fraction_respected_roughly(self):
        trace = list(random_accesses(2000, footprint_bytes=1 << 16,
                                     write_fraction=0.5, seed=11))
        writes = sum(1 for a in trace if a.is_write)
        assert 0.4 < writes / len(trace) < 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            list(random_accesses(10, footprint_bytes=4, element_size=8))
        with pytest.raises(ValueError):
            list(random_accesses(10, footprint_bytes=64, write_fraction=1.5))


class TestInterleave:
    def test_round_robin(self):
        a = (MemoryAccess(i) for i in (0, 1))
        b = (MemoryAccess(i) for i in (100, 101))
        merged = [x.address for x in interleave([a, b])]
        assert merged == [0, 100, 1, 101]

    def test_uneven_lengths(self):
        a = (MemoryAccess(i) for i in (0,))
        b = (MemoryAccess(i) for i in (100, 101, 102))
        merged = [x.address for x in interleave([a, b])]
        assert merged == [0, 100, 101, 102]

    def test_chunked(self):
        a = (MemoryAccess(i) for i in range(4))
        b = (MemoryAccess(i + 100) for i in range(4))
        merged = [x.address for x in interleave([a, b], chunk=2)]
        assert merged[:4] == [0, 1, 100, 101]


class TestTraceIO:
    def test_text_round_trip(self, tmp_path):
        trace = [MemoryAccess(8 * i, is_write=(i % 3 == 0), pc=0x400 + i, size=4)
                 for i in range(25)]
        path = tmp_path / "trace.txt"
        assert write_text_trace(path, trace) == 25
        assert list(read_text_trace(path)) == trace

    def test_binary_round_trip(self, tmp_path):
        trace = [MemoryAccess(1 << 40, is_write=True, pc=2 ** 33, size=16)]
        path = tmp_path / "trace.bin"
        assert write_binary_trace(path, trace) == 1
        assert list(read_binary_trace(path)) == trace

    def test_text_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("R 0x10 0x0\n")          # missing size field
        with pytest.raises(ValueError):
            list(read_text_trace(path))

    def test_binary_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"NOTATRACE")
        with pytest.raises(ValueError):
            list(read_binary_trace(path))

    def test_mixed_round_trip_both_formats(self, tmp_path):
        """A varied trace survives both formats bit-exactly."""
        trace = [MemoryAccess((1 << 48) + 64 * i, is_write=(i % 2 == 0),
                              pc=(1 << 34) + 4 * i, size=1 + (i % 8))
                 for i in range(50)]
        text, binary = tmp_path / "t.txt", tmp_path / "t.bin"
        assert write_text_trace(text, trace) == 50
        assert write_binary_trace(binary, trace) == 50
        assert list(read_text_trace(text)) == trace
        assert list(read_binary_trace(binary)) == trace

    def test_replay_drives_a_cache(self, tmp_path):
        from repro.cache import SetAssociativeCache
        cache = SetAssociativeCache(1024, 32, 2)
        replay(iter([MemoryAccess(0), MemoryAccess(0)]), cache)
        assert cache.stats.accesses == 2
        assert cache.stats.hits == 1


class TestTraceCorruption:
    """The readers reject corrupt inputs with located errors instead of
    surfacing struct noise or yielding garbage accesses."""

    def test_text_non_hex_address_names_the_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("R 0x10 0x400 4\nW 0xZZ 0x404 8\n")
        with pytest.raises(ValueError, match=r"bad\.txt:2: non-hex"):
            list(read_text_trace(path))

    def test_text_non_integer_size_names_the_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# header\nR 0x10 0x400 four\n")
        with pytest.raises(ValueError, match=r"bad\.txt:2: non-integer size"):
            list(read_text_trace(path))

    @pytest.mark.parametrize("size", ["0", "-4"])
    def test_text_rejects_non_positive_size(self, tmp_path, size):
        path = tmp_path / "bad.txt"
        path.write_text(f"R 0x10 0x400 {size}\n")
        with pytest.raises(ValueError, match=r"bad\.txt:1: size must be"):
            list(read_text_trace(path))

    def test_text_rejects_negative_address(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("R -0x10 0x400 4\n")
        with pytest.raises(ValueError, match=r"bad\.txt:1: negative"):
            list(read_text_trace(path))

    def test_binary_rejects_truncated_header(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"CACT")  # a prefix of the real magic
        with pytest.raises(ValueError, match="truncated header"):
            list(read_binary_trace(path))

    def test_binary_rejects_truncated_record_with_offset(self, tmp_path):
        path = tmp_path / "bad.bin"
        trace = [MemoryAccess(0x1000, is_write=False, pc=0x400, size=4)]
        write_binary_trace(path, trace)
        whole = path.read_bytes()
        path.write_bytes(whole[:-5])  # chop the final record mid-way
        with pytest.raises(ValueError) as excinfo:
            list(read_binary_trace(path))
        message = str(excinfo.value)
        assert "truncated record 0" in message
        assert "byte offset 8" in message

    def test_binary_rejects_zero_size_record(self, tmp_path):
        import struct

        path = tmp_path / "bad.bin"
        record = struct.pack("<QQIB3x", 0x1000, 0x400, 0, 0)
        path.write_bytes(b"CACTR1\0\0" + record)
        with pytest.raises(ValueError, match="size must be positive"):
            list(read_binary_trace(path))

    def test_binary_rejects_corrupt_write_flag(self, tmp_path):
        import struct

        path = tmp_path / "bad.bin"
        record = struct.pack("<QQIB3x", 0x1000, 0x400, 4, 0x7F)
        path.write_bytes(b"CACTR1\0\0" + record)
        with pytest.raises(ValueError, match="corrupt write flag 0x7f"):
            list(read_binary_trace(path))

    def test_binary_rejects_nonzero_padding(self, tmp_path):
        import struct

        path = tmp_path / "bad.bin"
        record = bytearray(struct.pack("<QQIB3x", 0x1000, 0x400, 4, 1))
        record[-1] = 0xAB  # bit-rot in the padding bytes
        path.write_bytes(b"CACTR1\0\0" + bytes(record))
        with pytest.raises(ValueError, match="corrupt padding"):
            list(read_binary_trace(path))

    def test_binary_error_localises_later_records(self, tmp_path):
        import struct

        path = tmp_path / "bad.bin"
        good = struct.pack("<QQIB3x", 0x1000, 0x400, 4, 0)
        bad = struct.pack("<QQIB3x", 0x2000, 0x404, 0, 0)
        path.write_bytes(b"CACTR1\0\0" + good + bad)
        with pytest.raises(ValueError, match="record 1 at byte offset 32"):
            list(read_binary_trace(path))

    def test_binary_writer_rejects_oversized_fields(self, tmp_path):
        path = tmp_path / "big.bin"
        trace = [MemoryAccess(0x10, is_write=False, pc=0x400, size=1 << 40)]
        with pytest.raises(ValueError, match="record 0 does not fit"):
            write_binary_trace(path, trace)


class _RawAccess:
    """A duck-typed record that skips MemoryAccess construction checks."""

    def __init__(self, address, pc=0, size=8, is_write=False):
        self.address = address
        self.pc = pc
        self.size = size
        self.is_write = is_write


class TestWriterValidation:
    """The writers enforce what the readers enforce, so a writer can never
    produce a trace file its own reader refuses — even when handed
    duck-typed records that bypassed MemoryAccess validation."""

    WRITERS = [write_text_trace, write_binary_trace]

    @pytest.mark.parametrize("writer", WRITERS)
    def test_negative_address_rejected(self, tmp_path, writer):
        path = tmp_path / "bad.trace"
        with pytest.raises(ValueError, match="record 0: negative "
                                             "address/pc"):
            writer(path, [_RawAccess(address=-1)])

    @pytest.mark.parametrize("writer", WRITERS)
    def test_negative_pc_rejected(self, tmp_path, writer):
        path = tmp_path / "bad.trace"
        with pytest.raises(ValueError, match="record 0: negative "
                                             "address/pc"):
            writer(path, [_RawAccess(address=0x10, pc=-4)])

    @pytest.mark.parametrize("writer", WRITERS)
    @pytest.mark.parametrize("size", [0, -8])
    def test_non_positive_size_rejected(self, tmp_path, writer, size):
        path = tmp_path / "bad.trace"
        with pytest.raises(ValueError, match="record 0: size must be "
                                             "positive"):
            writer(path, [_RawAccess(address=0x10, size=size)])

    @pytest.mark.parametrize("writer", WRITERS)
    def test_error_names_the_offending_record(self, tmp_path, writer):
        path = tmp_path / "bad.trace"
        trace = [MemoryAccess(0x10), MemoryAccess(0x20),
                 _RawAccess(address=0x30, size=0)]
        with pytest.raises(ValueError, match="record 2: size must be "
                                             "positive"):
            writer(path, trace)
