"""Unit tests for GF(2) polynomial arithmetic."""

import pytest

from repro.core.gf2 import (
    degree,
    gf2_add,
    gf2_divmod,
    gf2_gcd,
    gf2_mod,
    gf2_mul,
    gf2_mul_mod,
    gf2_pow_mod,
    irreducible_polynomials,
    is_irreducible,
    is_primitive,
    poly_to_string,
    primitive_polynomials,
    string_to_poly,
)


class TestDegree:
    def test_zero_polynomial(self):
        assert degree(0) == -1

    def test_constant(self):
        assert degree(1) == 0

    def test_general(self):
        assert degree(0b1011) == 3
        assert degree(1 << 20) == 20

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            degree(-1)


class TestAddMul:
    def test_add_is_xor(self):
        assert gf2_add(0b101, 0b011) == 0b110

    def test_add_self_is_zero(self):
        assert gf2_add(0b11011, 0b11011) == 0

    def test_mul_by_zero(self):
        assert gf2_mul(0b1011, 0) == 0
        assert gf2_mul(0, 0b1011) == 0

    def test_mul_by_one(self):
        assert gf2_mul(0b1011, 1) == 0b1011

    def test_mul_known_value(self):
        # (x + 1)^2 = x^2 + 1 over GF(2)
        assert gf2_mul(0b11, 0b11) == 0b101

    def test_mul_is_commutative(self):
        assert gf2_mul(0b110101, 0b1011) == gf2_mul(0b1011, 0b110101)

    def test_mul_degree_adds(self):
        a, b = 0b1001001, 0b10011
        assert degree(gf2_mul(a, b)) == degree(a) + degree(b)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gf2_mul(-1, 2)


class TestDivMod:
    def test_division_identity(self):
        a, b = 0b1101101101, 0b1011
        q, r = gf2_divmod(a, b)
        assert gf2_add(gf2_mul(q, b), r) == a
        assert degree(r) < degree(b)

    def test_mod_matches_divmod(self):
        a, b = 0b111010111, 0b10011
        assert gf2_mod(a, b) == gf2_divmod(a, b)[1]

    def test_divide_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            gf2_divmod(0b101, 0)

    def test_small_numerator(self):
        assert gf2_divmod(0b11, 0b1011) == (0, 0b11)

    def test_mod_is_idempotent(self):
        a, p = 0xDEADBEEF, 0b100011011
        assert gf2_mod(gf2_mod(a, p), p) == gf2_mod(a, p)


class TestGcdPow:
    def test_gcd_common_factor(self):
        # gcd(x^2 + x, x^2) == x
        assert gf2_gcd(0b110, 0b100) == 0b10

    def test_gcd_coprime(self):
        assert gf2_gcd(0b1011, 0b111) == 1

    def test_gcd_with_zero(self):
        assert gf2_gcd(0b1011, 0) == 0b1011

    def test_pow_mod_small(self):
        # x^3 mod (x^3 + x + 1) = x + 1
        assert gf2_pow_mod(0b10, 3, 0b1011) == 0b11

    def test_pow_mod_fermat_like(self):
        # x^(2^3 - 1) = 1 mod any primitive degree-3 polynomial
        assert gf2_pow_mod(0b10, 7, 0b1011) == 1

    def test_pow_zero_exponent(self):
        assert gf2_pow_mod(0b1101, 0, 0b1011) == 1

    def test_mul_mod_stays_reduced(self):
        p = 0b100011011
        result = gf2_mul_mod(0xAB, 0xCD, p)
        assert degree(result) < degree(p)

    def test_pow_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            gf2_pow_mod(0b10, -1, 0b1011)


class TestIrreducibility:
    def test_known_irreducible(self):
        assert is_irreducible(0b1011)         # x^3 + x + 1
        assert is_irreducible(0b10011)        # x^4 + x + 1
        assert is_irreducible(0b100011011)    # AES polynomial

    def test_known_reducible(self):
        assert not is_irreducible(0b1001)     # x^3 + 1 = (x+1)(x^2+x+1)
        assert not is_irreducible(0b110)      # x^2 + x = x(x+1)

    def test_constants_not_irreducible(self):
        assert not is_irreducible(1)
        assert not is_irreducible(0)

    def test_degree_one_irreducible(self):
        assert is_irreducible(0b10)
        assert is_irreducible(0b11)

    def test_enumeration_degree_2(self):
        assert list(irreducible_polynomials(2)) == [0b111]

    def test_enumeration_count_degree_4(self):
        # There are exactly 3 irreducible polynomials of degree 4 over GF(2).
        assert len(list(irreducible_polynomials(4))) == 3

    def test_enumeration_count_degree_5(self):
        # (2^5 - 2) / 5 = 6 irreducible polynomials of degree 5.
        assert len(list(irreducible_polynomials(5))) == 6

    def test_enumerated_are_irreducible(self):
        for poly in irreducible_polynomials(6):
            assert is_irreducible(poly)
            assert degree(poly) == 6

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            list(irreducible_polynomials(0))


class TestPrimitivity:
    def test_primitive_examples(self):
        assert is_primitive(0b1011)      # x^3 + x + 1
        assert is_primitive(0b10011)     # x^4 + x + 1

    def test_irreducible_but_not_primitive(self):
        # x^4 + x^3 + x^2 + x + 1 is irreducible but its root has order 5, not 15.
        assert is_irreducible(0b11111)
        assert not is_primitive(0b11111)

    def test_reducible_not_primitive(self):
        assert not is_primitive(0b1001)

    def test_primitive_enumeration_subset_of_irreducible(self):
        prim = set(primitive_polynomials(4))
        irr = set(irreducible_polynomials(4))
        assert prim <= irr
        assert 0b11111 in irr - prim


class TestStringConversion:
    def test_round_trip(self):
        for poly in (0, 1, 0b10, 0b1011, 0b100011011):
            assert string_to_poly(poly_to_string(poly)) == poly

    def test_format(self):
        assert poly_to_string(0b1011) == "x^3 + x + 1"
        assert poly_to_string(0) == "0"
        assert poly_to_string(1) == "1"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            string_to_poly("x^2 + y")

    def test_parse_rejects_duplicates(self):
        with pytest.raises(ValueError):
            string_to_poly("x + x")
