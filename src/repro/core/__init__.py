"""Core of the reproduction: conflict-avoiding cache index functions.

This package contains the paper's primary contribution — the I-Poly
(irreducible polynomial modulus) placement function — together with the
baseline placement functions it is compared against and the GF(2) machinery
and hardware-cost models behind it.
"""

from .gf2 import (
    degree,
    gf2_add,
    gf2_divmod,
    gf2_gcd,
    gf2_mod,
    gf2_mul,
    gf2_mul_mod,
    gf2_pow_mod,
    irreducible_polynomials,
    is_irreducible,
    is_primitive,
    poly_to_string,
    primitive_polynomials,
    string_to_poly,
)
from .index import (
    BitSelectIndexing,
    IndexFunction,
    IPolyIndexing,
    PrimeModuloIndexing,
    SingleSetIndexing,
    XorFoldIndexing,
    make_index_function,
)
from .polynomials import (
    DEFAULT_IRREDUCIBLE,
    default_polynomial,
    find_irreducible,
    skewing_polynomials,
    validate_polynomial,
)
from .xor_matrix import (
    HardwareCost,
    XorMatrix,
    choose_low_fanin_polynomial,
    derive_xor_matrix,
    is_linear,
)

__all__ = [
    # gf2
    "degree",
    "gf2_add",
    "gf2_divmod",
    "gf2_gcd",
    "gf2_mod",
    "gf2_mul",
    "gf2_mul_mod",
    "gf2_pow_mod",
    "irreducible_polynomials",
    "is_irreducible",
    "is_primitive",
    "poly_to_string",
    "primitive_polynomials",
    "string_to_poly",
    # polynomials
    "DEFAULT_IRREDUCIBLE",
    "default_polynomial",
    "find_irreducible",
    "skewing_polynomials",
    "validate_polynomial",
    # index functions
    "IndexFunction",
    "BitSelectIndexing",
    "XorFoldIndexing",
    "IPolyIndexing",
    "PrimeModuloIndexing",
    "SingleSetIndexing",
    "make_index_function",
    # hardware view
    "XorMatrix",
    "HardwareCost",
    "choose_low_fanin_polynomial",
    "derive_xor_matrix",
    "is_linear",
]
