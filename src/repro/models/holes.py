"""Analytical model of Inclusion "holes" (Section 3.3, equations vii-ix).

With pseudo-random index functions at L1 (virtual) and L2 (physical) there is
no correlation between where a datum sits in the two levels.  When L2 evicts
a line, the probability that the same line is also resident in a
direct-mapped L1 is the capacity ratio

    P_r = 2^m1 / 2^m2 = 2^(m1 - m2)                                   (vii)

where ``m1`` and ``m2`` are the number of index bits at L1 and L2.  If it is
resident, the back-invalidation only creates a *hole* when the invalidated L1
frame is not the very frame being refilled by the miss that triggered the L2
replacement, which happens with probability

    P_d = (2^m1 - 1) / 2^m1                                           (viii)

giving a net hole probability per L2 miss of

    P_H = P_d * P_r = (2^m1 - 1) / 2^m2                               (ix)

The paper evaluates this for an 8 KB L1 / 256 KB L2 with 32-byte lines
(``P_H ~= 0.031``) and notes that the expected increase in L1 miss ratio is
``P_H`` times the L2 miss ratio, a negligible quantity for realistic size
ratios.  These functions reproduce those numbers and are checked against the
:class:`~repro.cache.virtual_real.VirtualRealHierarchy` simulator in the
benchmark harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "index_bits_for",
    "resident_probability",
    "displacement_probability",
    "hole_probability",
    "expected_l1_missratio_increase",
    "HoleModel",
]


def index_bits_for(size_bytes: int, block_size: int, ways: int = 1) -> int:
    """Number of index bits of a cache with the given geometry.

    For the analytical model the paper treats the caches as direct-mapped, in
    which case the index covers every block; for an associative cache the
    natural generalisation (used here) is ``log2(blocks / ways)`` sets, but
    callers studying the paper's formula verbatim should pass ``ways=1``.
    """
    if size_bytes <= 0 or block_size <= 0 or ways <= 0:
        raise ValueError("sizes and ways must be positive")
    if size_bytes % (block_size * ways):
        raise ValueError("size_bytes must be a multiple of block_size * ways")
    sets = size_bytes // (block_size * ways)
    bits = math.log2(sets)
    if not bits.is_integer():
        raise ValueError(f"number of sets ({sets}) is not a power of two")
    return int(bits)


def resident_probability(m1: int, m2: int) -> float:
    """Equation (vii): probability an evicted L2 line is also resident in L1."""
    _check_bits(m1, m2)
    return 2.0 ** (m1 - m2)


def displacement_probability(m1: int) -> float:
    """Equation (viii): probability the invalidated L1 line is not the one being refilled."""
    if m1 < 0:
        raise ValueError("m1 must be non-negative")
    return (2.0 ** m1 - 1.0) / 2.0 ** m1


def hole_probability(m1: int, m2: int) -> float:
    """Equation (ix): net probability that an L2 miss creates an L1 hole."""
    _check_bits(m1, m2)
    return (2.0 ** m1 - 1.0) / 2.0 ** m2


def expected_l1_missratio_increase(m1: int, m2: int, l2_miss_ratio: float) -> float:
    """Expected additional L1 miss ratio caused by holes.

    The paper models the increase in (compulsory) L1 miss ratio as the
    product of ``P_H`` and the L2 miss ratio, and reports that the
    approximation is accurate for L2:L1 size ratios of 16 or more.
    """
    if not 0.0 <= l2_miss_ratio <= 1.0:
        raise ValueError("l2_miss_ratio must be a probability")
    return hole_probability(m1, m2) * l2_miss_ratio


def _check_bits(m1: int, m2: int) -> None:
    if m1 < 0 or m2 < 0:
        raise ValueError("index bit counts must be non-negative")
    if m1 > m2:
        raise ValueError("the model assumes L2 has at least as many sets as L1")


@dataclass(frozen=True)
class HoleModel:
    """Convenience wrapper evaluating the hole model for a cache-size pair.

    >>> model = HoleModel(l1_bytes=8 * 1024, l2_bytes=256 * 1024, block_size=32)
    >>> round(model.hole_probability, 3)
    0.031
    """

    l1_bytes: int
    l2_bytes: int
    block_size: int = 32

    @property
    def m1(self) -> int:
        """Index bits of the (direct-mapped view of the) L1."""
        return index_bits_for(self.l1_bytes, self.block_size)

    @property
    def m2(self) -> int:
        """Index bits of the (direct-mapped view of the) L2."""
        return index_bits_for(self.l2_bytes, self.block_size)

    @property
    def resident_probability(self) -> float:
        """Equation (vii) for this size pair."""
        return resident_probability(self.m1, self.m2)

    @property
    def displacement_probability(self) -> float:
        """Equation (viii) for this size pair."""
        return displacement_probability(self.m1)

    @property
    def hole_probability(self) -> float:
        """Equation (ix) for this size pair."""
        return hole_probability(self.m1, self.m2)

    def missratio_increase(self, l2_miss_ratio: float) -> float:
        """Expected L1 miss-ratio increase for a given L2 miss ratio."""
        return expected_l1_missratio_increase(self.m1, self.m2, l2_miss_ratio)
