"""E-MR: Section 2.1 miss-ratio comparison across cache organisations.

Paper claim (quoting the companion ICS'97 study): on an 8 KB two-way cache,
conventional indexing averages 13.84% misses, I-Poly indexing 7.14%, and a
fully-associative cache 6.80% — i.e. I-Poly recovers nearly all of the
benefit of full associativity.  The benchmark checks the ordering and the
near-equality of the last two, and prints the full per-program table
(including the victim and column-associative baselines).
"""

import pytest

from repro.experiments.miss_ratio_study import run_miss_ratio_study


@pytest.mark.benchmark(group="miss-ratio")
def test_miss_ratio_across_organisations(benchmark, bench_accesses):
    result = benchmark.pedantic(
        lambda: run_miss_ratio_study(accesses=bench_accesses), rounds=1, iterations=1)

    print()
    print(result.render())
    averages = result.averages()

    conventional = averages["conventional-2way"]
    ipoly = averages["ipoly-skewed-2way"]
    full = averages["fully-associative"]

    # Ordering: conventional worst, I-Poly close to fully associative.
    assert conventional > ipoly
    assert ipoly <= full + 3.0           # percentage points
    assert conventional - ipoly > 3.0    # the gap is substantial
    # The unskewed I-Poly function also beats conventional indexing.
    assert averages["ipoly-2way"] < conventional
    # The victim cache helps a direct-mapped organisation but does not reach
    # the I-Poly cache.
    assert averages["victim-direct+8"] > ipoly
