"""Programs: bounded streams of dynamic instructions.

The processor model is trace-driven: a *program* is anything that can produce
an iterator of :class:`~repro.cpu.isa.Instruction` records representing the
committed dynamic instruction stream (the paper simulates 100 M committed
instructions per benchmark after a warm-up skip; the synthetic reproductions
are shorter but follow the same structure).

:class:`Program` wraps a generator factory so the same program can be
replayed for every cache configuration of an experiment — each call to
:meth:`instructions` produces a fresh, identical stream.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional

from .isa import Instruction

__all__ = ["Program"]


class Program:
    """A named, replayable dynamic instruction stream.

    Parameters
    ----------
    name:
        Program name (used in result tables).
    factory:
        Zero-argument callable returning a fresh iterator of instructions.
    length_hint:
        Expected number of dynamic instructions (informational).
    """

    def __init__(self, name: str, factory: Callable[[], Iterable[Instruction]],
                 length_hint: Optional[int] = None) -> None:
        if not name:
            raise ValueError("programs must be named")
        if length_hint is not None and length_hint < 0:
            raise ValueError("length_hint must be non-negative")
        self._name = name
        self._factory = factory
        self._length_hint = length_hint

    @property
    def name(self) -> str:
        """Program name."""
        return self._name

    @property
    def length_hint(self) -> Optional[int]:
        """Expected dynamic instruction count, when known."""
        return self._length_hint

    def instructions(self) -> Iterator[Instruction]:
        """Return a fresh iterator over the dynamic instruction stream."""
        return iter(self._factory())

    @classmethod
    def from_list(cls, name: str, instructions: List[Instruction]) -> "Program":
        """Build a program from a fixed list (convenient in tests)."""
        materialised = list(instructions)
        return cls(name, lambda: list(materialised), length_hint=len(materialised))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        hint = f", ~{self._length_hint} instructions" if self._length_hint else ""
        return f"Program({self._name!r}{hint})"
