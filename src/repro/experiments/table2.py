"""Experiment E-T2: Table 2 — IPC and load miss ratio per program and configuration.

Table 2 of the paper reports, for each of the 18 Spec95 programs, the IPC and
load miss ratio of six machine configurations:

====================  =============================================================
Column                Machine
====================  =============================================================
``16K-conv``          16 KB two-way conventional cache
``8K-conv``           8 KB two-way conventional cache
``8K-conv-pred``      8 KB conventional + memory address prediction
``8K-ipoly-noCP``     8 KB skewed I-Poly, XOR stage *not* on the critical path
``8K-ipoly-CP``       8 KB skewed I-Poly, XOR stage on the critical path (+1 cycle)
``8K-ipoly-CP-pred``  as above + memory address prediction
====================  =============================================================

plus arithmetic-mean miss ratios and geometric-mean IPCs for the integer
suite, the floating-point suite and the combination.  The conclusions also
quote the standard deviation of miss ratios across the suite (18.49
conventional vs 5.16 I-Poly), which :func:`miss_ratio_std_dev` reproduces.

The programs here are the synthetic Spec95-like models of
:mod:`repro.cpu.workloads`; see DESIGN.md for the substitution argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from typing import Tuple

from ..analysis.metrics import arithmetic_mean, geometric_mean, std_deviation
from ..analysis.reporting import TableBuilder
from ..cpu.processor import OutOfOrderProcessor, ProcessorConfig, SimulationResult
from ..cpu.workloads import build_program, program_names
from ..engine.sweep import TaskFailure, run_sweep
from ..trace.workloads import FP_PROGRAMS, INTEGER_PROGRAMS
from .config import TABLE2_CONFIGS

__all__ = ["Table2Result", "run_table2", "miss_ratio_std_dev"]

#: Columns that report IPC (the others report miss ratio).
IPC_COLUMNS: List[str] = list(TABLE2_CONFIGS)


@dataclass
class Table2Result:
    """Per-program, per-configuration results of the Table 2 experiment."""

    instructions_per_program: int
    results: Dict[str, Dict[str, SimulationResult]] = field(default_factory=dict)
    #: Programs that exhausted their retries under ``on_error="collect"``;
    #: they are absent from the tables and the suite averages.
    failures: List[TaskFailure] = field(default_factory=list)

    @property
    def programs(self) -> List[str]:
        """Programs simulated, in insertion order."""
        return list(self.results)

    @property
    def configurations(self) -> List[str]:
        """Configuration labels (Table 2 columns)."""
        if not self.results:
            return []
        first = next(iter(self.results.values()))
        return list(first)

    def ipc(self, program: str, configuration: str) -> float:
        """IPC of one (program, configuration) cell."""
        return self.results[program][configuration].ipc

    def miss_ratio_percent(self, program: str, configuration: str) -> float:
        """Load miss ratio (percent) of one cell."""
        return self.results[program][configuration].load_miss_ratio_percent

    def ipc_table(self) -> TableBuilder:
        """IPC per program and configuration, plus the paper's average rows."""
        table = TableBuilder(self.configurations, row_label="program")
        for program in self.programs:
            table.add_row(program, {cfg: self.ipc(program, cfg)
                                    for cfg in self.configurations})
        for label, names in self._groups().items():
            table.add_row(label, {
                cfg: geometric_mean([self.ipc(p, cfg) for p in names])
                for cfg in self.configurations
            })
        return table

    def miss_ratio_table(self) -> TableBuilder:
        """Load miss ratio (percent) per program/configuration plus averages."""
        table = TableBuilder(self.configurations, row_label="program")
        for program in self.programs:
            table.add_row(program, {cfg: self.miss_ratio_percent(program, cfg)
                                    for cfg in self.configurations})
        for label, names in self._groups().items():
            table.add_row(label, {
                cfg: arithmetic_mean([self.miss_ratio_percent(p, cfg) for p in names])
                for cfg in self.configurations
            })
        return table

    def _groups(self) -> Dict[str, List[str]]:
        ints = [p for p in self.programs if p in INTEGER_PROGRAMS]
        fps = [p for p in self.programs if p in FP_PROGRAMS]
        groups: Dict[str, List[str]] = {}
        if ints:
            groups["Int average"] = ints
        if fps:
            groups["Fp average"] = fps
        groups["Combined average"] = self.programs
        return groups

    def render(self) -> str:
        """Render both tables as text."""
        return (self.ipc_table().render(title="Table 2 (IPC)")
                + "\n\n"
                + self.miss_ratio_table().render(title="Table 2 (load miss ratio %)"))


#: One per-program work item of the parallel Table 2 sweep: everything a
#: worker process needs to rebuild the program and run every configuration.
_Table2Task = Tuple[str, int, int, str, Tuple[Tuple[str, tuple], ...]]


def _table2_program_task(task: _Table2Task) -> Dict[str, SimulationResult]:
    """Module-level sweep worker (must be picklable for process pools)."""
    name, instructions, seed, engine, config_items = task
    per_config: Dict[str, SimulationResult] = {}
    for label, override_items in config_items:
        merged = dict(override_items)
        merged.setdefault("index_engine", engine)
        processor = OutOfOrderProcessor(ProcessorConfig(**merged))
        program = build_program(name, length=instructions, seed=seed)
        per_config[label] = processor.run(program)
    return per_config


def run_table2(programs: Optional[Sequence[str]] = None,
               instructions: int = 30_000,
               configurations: Optional[Mapping[str, dict]] = None,
               seed: int = 2027,
               engine: str = "reference",
               workers: Optional[int] = None,
               chunksize: Optional[int] = None,
               timeout: Optional[float] = None,
               retries: int = 0,
               on_error: str = "raise",
               resume: Optional[str] = None) -> Table2Result:
    """Simulate every (program, configuration) pair of Table 2.

    ``instructions`` scales the per-program run length; the paper simulates
    100 M committed instructions per benchmark, which is far beyond what a
    pure-Python model can afford, but the synthetic programs reach their
    steady-state behaviour within a few tens of thousands of instructions.

    The processor pipeline is inherently sequential, so ``engine`` does not
    change *what* is simulated: ``"vectorized"`` swaps the I-Poly placement
    function for the engine's table-accelerated, bit-exact equivalent
    (:class:`~repro.engine.tabulated.TabulatedIPolyIndexing`), producing
    identical IPCs and miss ratios faster.

    ``workers`` fans the per-program tasks (each simulating all six machine
    configurations for one program) across a process pool via
    :func:`repro.engine.sweep.run_sweep` — programs are independent
    simulations, so the results are identical to the serial run in any
    ``workers``/``chunksize`` combination.  ``chunksize`` groups programs
    per worker dispatch.

    ``timeout`` (seconds per program), ``retries``, ``on_error`` and
    ``resume`` (sweep-journal path, appended to and resumed from) are
    forwarded to :func:`repro.engine.sweep.run_sweep`; under
    ``on_error="collect"`` a failed program lands in ``result.failures``
    instead of the tables.
    """
    if instructions < 1_000:
        raise ValueError("instructions should be at least 1000 for stable results")
    from ..engine import check_engine
    engine = check_engine(engine)
    program_list = list(programs) if programs is not None else program_names()
    config_map = dict(configurations) if configurations is not None else dict(TABLE2_CONFIGS)
    # Freeze the configuration overrides into tuples so the per-program
    # tasks are hashable, compact and unambiguously picklable.
    config_items = tuple((label, tuple(overrides.items()))
                         for label, overrides in config_map.items())

    tasks: List[_Table2Task] = [
        (name, instructions, seed, engine, config_items)
        for name in program_list
    ]
    per_program = run_sweep(_table2_program_task, tasks, workers=workers,
                            chunksize=chunksize, timeout=timeout,
                            retries=retries, on_error=on_error,
                            journal=resume, resume=resume)
    result = Table2Result(instructions_per_program=instructions)
    for name, per_config in zip(program_list, per_program):
        if isinstance(per_config, TaskFailure):
            result.failures.append(per_config)
            continue
        result.results[name] = per_config
    return result


def miss_ratio_std_dev(result: Table2Result,
                       conventional: str = "8K-conv",
                       ipoly: str = "8K-ipoly-noCP") -> Dict[str, float]:
    """Standard deviation of per-program miss ratios for two configurations.

    Reproduces the conclusions' claim that I-Poly indexing reduces the
    cross-suite standard deviation of miss ratios (18.49 -> 5.16 in the
    paper); the reproduction checks the *direction and rough magnitude* of
    that reduction.
    """
    conventional_values = [result.miss_ratio_percent(p, conventional)
                           for p in result.programs]
    ipoly_values = [result.miss_ratio_percent(p, ipoly) for p in result.programs]
    return {
        conventional: std_deviation(conventional_values),
        ipoly: std_deviation(ipoly_values),
    }
