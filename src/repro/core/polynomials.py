"""Catalogue of polynomials used for I-Poly cache indexing.

The quality of I-Poly indexing depends on the polynomial ``P(x)`` used as the
modulus.  The paper (following Rau, ISCA 1991) recommends *irreducible*
polynomials, and when the cache is skewed it uses a *different* irreducible
polynomial for each way so that two addresses that conflict in one way almost
never conflict in another.

This module provides:

* a table of default irreducible polynomials for every degree up to 24
  (:data:`DEFAULT_IRREDUCIBLE`), verified at import time in the test-suite;
* :func:`default_polynomial` / :func:`skewing_polynomials` to pick polynomials
  for a cache with ``2**m`` sets and ``w`` ways;
* :func:`find_irreducible` for callers that want a non-default choice.

Polynomials are encoded as integers, bit ``i`` holding the coefficient of
``x**i`` (see :mod:`repro.core.gf2`).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .gf2 import degree, irreducible_polynomials, is_irreducible

__all__ = [
    "DEFAULT_IRREDUCIBLE",
    "default_polynomial",
    "skewing_polynomials",
    "find_irreducible",
    "validate_polynomial",
]


#: One well-known irreducible polynomial per degree.  Degree ``m`` is what a
#: cache with ``2**m`` sets needs: the remainder then has ``m`` bits.  The
#: entries are standard low-weight irreducible (mostly primitive) polynomials.
DEFAULT_IRREDUCIBLE: Dict[int, int] = {
    1: 0b11,                      # x + 1
    2: 0b111,                     # x^2 + x + 1
    3: 0b1011,                    # x^3 + x + 1
    4: 0b10011,                   # x^4 + x + 1
    5: 0b100101,                  # x^5 + x^2 + 1
    6: 0b1000011,                 # x^6 + x + 1
    7: 0b10000011,                # x^7 + x + 1
    8: 0b100011011,               # x^8 + x^4 + x^3 + x + 1 (AES polynomial)
    9: 0b1000010001,              # x^9 + x^4 + 1
    10: 0b10000001001,            # x^10 + x^3 + 1
    11: 0b100000000101,           # x^11 + x^2 + 1
    12: 0b1000001010011,          # x^12 + x^6 + x^4 + x + 1
    13: 0b10000000011011,         # x^13 + x^4 + x^3 + x + 1
    14: 0b100010001000011,        # x^14 + x^10 + x^6 + x + 1
    15: 0b1000000000000011,       # x^15 + x + 1
    16: 0b10001000000001011,      # x^16 + x^12 + x^3 + x + 1
    17: 0b100000000000001001,     # x^17 + x^3 + 1
    18: 0b1000000000010000001,    # x^18 + x^7 + 1
    19: 0b10000000000000100111,   # x^19 + x^5 + x^2 + x + 1
    20: 0b100000000000000001001,  # x^20 + x^3 + 1
    21: 0b1000000000000000000101,  # x^21 + x^2 + 1
    22: 0b10000000000000000000011,  # x^22 + x + 1
    23: 0b100000000000000000100001,  # x^23 + x^5 + 1
    24: 0b1000000000000000010000111,  # x^24 + x^7 + x^2 + x + 1
}


def validate_polynomial(poly: int, index_bits: int) -> None:
    """Check that ``poly`` is a usable modulus for an ``index_bits``-bit index.

    The remainder of division by a degree-``m`` polynomial has at most ``m``
    bits, so the polynomial degree must equal ``index_bits`` exactly.  Raises
    :class:`ValueError` otherwise.
    """
    if index_bits < 1:
        raise ValueError(f"index_bits must be positive, got {index_bits}")
    if degree(poly) != index_bits:
        raise ValueError(
            f"polynomial degree {degree(poly)} does not match the required "
            f"index width of {index_bits} bits"
        )


def default_polynomial(index_bits: int) -> int:
    """Return the default irreducible polynomial producing an ``index_bits``-bit index.

    >>> default_polynomial(3)
    11
    """
    try:
        return DEFAULT_IRREDUCIBLE[index_bits]
    except KeyError:
        return find_irreducible(index_bits)[0]


def find_irreducible(index_bits: int, count: int = 1) -> List[int]:
    """Search for ``count`` distinct irreducible polynomials of degree ``index_bits``.

    Results are returned in increasing numeric order.  Raises
    :class:`ValueError` if fewer than ``count`` irreducible polynomials of
    that degree exist (only possible for tiny degrees).
    """
    if count < 1:
        raise ValueError("count must be at least 1")
    found: List[int] = []
    for poly in irreducible_polynomials(index_bits):
        found.append(poly)
        if len(found) == count:
            return found
    raise ValueError(
        f"only {len(found)} irreducible polynomials of degree {index_bits} exist, "
        f"but {count} were requested"
    )


def skewing_polynomials(index_bits: int, ways: int) -> List[int]:
    """Return ``ways`` distinct irreducible polynomials for a skewed I-Poly cache.

    The first polynomial returned is the degree-default, so a 1-way call
    degenerates to :func:`default_polynomial`.

    >>> skewing_polynomials(3, 2)
    [11, 13]
    """
    if ways < 1:
        raise ValueError("ways must be at least 1")
    default = default_polynomial(index_bits)
    polys = [default]
    for poly in irreducible_polynomials(index_bits):
        if len(polys) == ways:
            break
        if poly != default:
            polys.append(poly)
    if len(polys) < ways:
        raise ValueError(
            f"cannot find {ways} distinct irreducible polynomials of degree "
            f"{index_bits}; only {len(polys)} exist"
        )
    return polys


def _verify_table(table: Dict[int, int] = DEFAULT_IRREDUCIBLE) -> Sequence[int]:
    """Return the degrees whose table entry is *not* irreducible (for tests)."""
    return [deg for deg, poly in table.items()
            if degree(poly) != deg or not is_irreducible(poly)]
