"""Differential tests: the batch multi-level engine against the scalar models.

The batch hierarchy composes per-level kernels by exchanging *miss streams*
(:class:`~repro.engine.hierarchy_vec.MissStream`): an L1 collect pass emits
the L2 access batch, L2 evictions feed back as back-invalidations through an
epoch stop/rewind protocol.  These tests pin the whole composition to the
scalar :class:`~repro.cache.hierarchy.TwoLevelHierarchy` and
:class:`~repro.cache.virtual_real.VirtualRealHierarchy` protocols: per-level
:class:`~repro.cache.stats.CacheStats`, hole/back-invalidation/alias
counters, per-access hit sequences, resident-block sets, the Inclusion
invariant, and (for virtual-real) page-fault and TLB counters.
"""

import numpy as np
import pytest

from repro.cache.hierarchy import TwoLevelHierarchy
from repro.cache.set_assoc import SetAssociativeCache, WritePolicy
from repro.cache.virtual_real import VirtualRealHierarchy
from repro.core.index import IPolyIndexing
from repro.engine import (
    AddressBatch,
    BatchTwoLevelHierarchy,
    BatchVirtualRealHierarchy,
    MissStream,
    batch_cache_like,
    batch_hierarchy_like,
    batch_virtual_real_like,
)
from repro.memory.paging import TLB, PageTable
from repro.memory.translation import AddressTranslator
from repro.trace.generators import (
    multi_array_sweep,
    random_accesses,
    strided_vector,
)

TRACES = {
    "strided": lambda: strided_vector(17, elements=64, sweeps=6),
    "multi-array": lambda: multi_array_sweep(num_arrays=4, elements=400,
                                             sweeps=2),
    "random": lambda: random_accesses(4000, 48 * 1024, write_fraction=0.3,
                                      seed=11),
}


def _ipoly(num_sets, ways=2):
    return IPolyIndexing(num_sets, ways=ways, skewed=True, address_bits=16)


def make_l1(size=512, block=32, ways=2, ipoly=True, replacement=None,
            write_policy=WritePolicy.WRITE_THROUGH_NO_ALLOCATE):
    index = _ipoly(size // (block * ways), ways) if ipoly else None
    return SetAssociativeCache(size, block, ways, index_function=index,
                               replacement=replacement,
                               write_policy=write_policy)


def make_l2(size=2048, block=32, ways=2, replacement=None):
    return SetAssociativeCache(size, block, ways, replacement=replacement,
                               write_policy=WritePolicy.WRITE_BACK_ALLOCATE)


def stats_tuple(stats):
    return (stats.loads, stats.stores, stats.load_misses, stats.store_misses,
            stats.evictions, stats.writebacks, stats.invalidations,
            stats.holes_created)


def run_scalar_hierarchy(hierarchy, trace):
    l1_hits, l2_hits = [], []
    for access in trace:
        result = hierarchy.access(access.address, is_write=access.is_write)
        l1_hits.append(result.l1_hit)
        l2_hits.append(result.l2_hit)
    return l1_hits, l2_hits


def assert_hierarchies_match(scalar, batch, result=None, scalar_hits=None):
    assert stats_tuple(scalar.l1.stats) == stats_tuple(batch.l1.stats)
    assert stats_tuple(scalar.l2.stats) == stats_tuple(batch.l2.stats)
    assert scalar.holes_created == batch.holes_created
    assert scalar.l2_misses_causing_holes == batch.l2_misses_causing_holes
    assert sorted(scalar.l1.resident_blocks()) == sorted(
        batch.l1.resident_blocks())
    assert sorted(scalar.l2.resident_blocks()) == sorted(
        batch.l2.resident_blocks())
    assert scalar.check_inclusion() and batch.check_inclusion()
    if result is not None and scalar_hits is not None:
        l1_hits, l2_hits = scalar_hits
        assert result.l1_hits.tolist() == l1_hits
        assert result.l2_hits.tolist() == l2_hits


class TestHierarchyDifferential:
    @pytest.mark.parametrize("trace_name", sorted(TRACES))
    @pytest.mark.parametrize("ipoly", [True, False], ids=["ipoly", "conv"])
    def test_matches_scalar(self, trace_name, ipoly):
        trace = list(TRACES[trace_name]())
        scalar = TwoLevelHierarchy(make_l1(ipoly=ipoly), make_l2())
        batch = batch_hierarchy_like(scalar)
        hits = run_scalar_hierarchy(scalar, trace)
        result = batch.run(AddressBatch.from_trace(trace))
        assert_hierarchies_match(scalar, batch, result, hits)
        assert scalar.back_invalidations == batch.back_invalidations

    @pytest.mark.parametrize("trace_name", sorted(TRACES))
    def test_write_back_l1(self, trace_name):
        """Dirty L1 victims ride the miss stream as write-backs to L2."""
        trace = list(TRACES[trace_name]())
        scalar = TwoLevelHierarchy(
            make_l1(write_policy=WritePolicy.WRITE_BACK_ALLOCATE), make_l2())
        batch = batch_hierarchy_like(scalar)
        hits = run_scalar_hierarchy(scalar, trace)
        result = batch.run(AddressBatch.from_trace(trace))
        assert_hierarchies_match(scalar, batch, result, hits)

    def test_tiny_l2_forces_rewinds(self):
        """A barely-larger L2 makes back-invalidations dense; tiny pinned
        epochs force the stop/rewind path over and over."""
        trace = list(random_accesses(3000, 8 * 1024, write_fraction=0.2,
                                     seed=3))
        scalar = TwoLevelHierarchy(make_l1(size=512), make_l2(size=1024))
        batch = batch_hierarchy_like(scalar, epoch_hint=16)
        hits = run_scalar_hierarchy(scalar, trace)
        result = batch.run(AddressBatch.from_trace(trace))
        assert batch.rewinds > 0
        assert scalar.back_invalidations == batch.back_invalidations
        assert_hierarchies_match(scalar, batch, result, hits)

    def test_different_block_sizes(self):
        """L2 blocks twice the L1 size: one L2 eviction can punch two holes."""
        trace = list(random_accesses(3000, 16 * 1024, write_fraction=0.2,
                                     seed=5))
        scalar = TwoLevelHierarchy(
            make_l1(size=512, block=32),
            SetAssociativeCache(2048, 64, 2,
                                write_policy=WritePolicy.WRITE_BACK_ALLOCATE))
        batch = batch_hierarchy_like(scalar, epoch_hint=64)
        hits = run_scalar_hierarchy(scalar, trace)
        result = batch.run(AddressBatch.from_trace(trace))
        assert_hierarchies_match(scalar, batch, result, hits)

    @pytest.mark.parametrize("l1_policy,l2_policy",
                             [("fifo", None), (None, "plru"),
                              ("plru", "fifo")])
    def test_non_lru_policies_use_generic_kernels(self, l1_policy, l2_policy):
        trace = list(TRACES["random"]())
        scalar = TwoLevelHierarchy(make_l1(replacement=l1_policy),
                                   make_l2(replacement=l2_policy))
        batch = batch_hierarchy_like(scalar)
        if l1_policy is not None:
            assert batch.l1_collect_kernel == "collect-generic"
        if l2_policy is not None:
            assert batch.l2_consume_kernel == "consume-generic"
        hits = run_scalar_hierarchy(scalar, trace)
        result = batch.run(AddressBatch.from_trace(trace))
        assert_hierarchies_match(scalar, batch, result, hits)

    def test_non_inclusive_mode(self):
        trace = list(TRACES["random"]())
        scalar = TwoLevelHierarchy(make_l1(), make_l2(size=1024),
                                   enforce_inclusion=False)
        batch = batch_hierarchy_like(scalar)
        assert batch.dispatch_strategy() == "hierarchy-stream"
        hits = run_scalar_hierarchy(scalar, trace)
        result = batch.run(AddressBatch.from_trace(trace))
        assert batch.holes_created == 0 and batch.rewinds == 0
        assert stats_tuple(scalar.l1.stats) == stats_tuple(batch.l1.stats)
        assert stats_tuple(scalar.l2.stats) == stats_tuple(batch.l2.stats)
        assert result.l1_hits.tolist() == hits[0]
        assert result.l2_hits.tolist() == hits[1]

    def test_warm_state_across_batches(self):
        """State carries over between run() calls exactly like scalar state."""
        trace = list(TRACES["multi-array"]())
        scalar = TwoLevelHierarchy(make_l1(), make_l2(size=1024))
        batch = batch_hierarchy_like(scalar, epoch_hint=128)
        chunk = len(trace) // 3
        for i in range(3):
            part = trace[i * chunk:(i + 1) * chunk if i < 2 else len(trace)]
            hits = run_scalar_hierarchy(scalar, part)
            result = batch.run(AddressBatch.from_trace(part))
            assert_hierarchies_match(scalar, batch, result, hits)

    def test_flush_mid_stream(self):
        trace = list(TRACES["strided"]())
        half = len(trace) // 2
        scalar = TwoLevelHierarchy(make_l1(), make_l2(size=1024))
        batch = batch_hierarchy_like(scalar)
        run_scalar_hierarchy(scalar, trace[:half])
        batch.run(AddressBatch.from_trace(trace[:half]))
        scalar.flush()
        batch.flush()
        assert batch.check_inclusion()
        hits = run_scalar_hierarchy(scalar, trace[half:])
        result = batch.run(AddressBatch.from_trace(trace[half:]))
        assert_hierarchies_match(scalar, batch, result, hits)

    def test_empty_batch(self):
        batch = batch_hierarchy_like(TwoLevelHierarchy(make_l1(), make_l2()))
        result = batch.run(AddressBatch.from_arrays(
            np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=bool)))
        assert len(result) == 0 and batch.epochs == 0


def make_vr_pair(l1_size=512, l2_size=2048, tlb_entries=None, seed=7,
                 epoch_hint=None, l1_kwargs=None):
    """Identically-seeded scalar virtual-real hierarchy and batch twin."""
    page_size = 4096
    table = PageTable(page_size=page_size, allocation="scatter", seed=seed)
    tlb = TLB(entries=tlb_entries, page_size=page_size) if tlb_entries else None
    translate = (AddressTranslator(table, tlb).translate if tlb
                 else table.translate)
    scalar = VirtualRealHierarchy(make_l1(size=l1_size, **(l1_kwargs or {})),
                                  make_l2(size=l2_size),
                                  translate=translate, page_size=page_size)
    twin_table = PageTable(page_size=page_size, allocation="scatter",
                           seed=seed)
    twin_tlb = (TLB(entries=tlb_entries, page_size=page_size)
                if tlb_entries else None)
    batch = batch_virtual_real_like(scalar, twin_table, tlb=twin_tlb,
                                    epoch_hint=epoch_hint)
    return scalar, table, tlb, batch, twin_table, twin_tlb


def run_scalar_vr(hierarchy, trace):
    l1_hits, l2_hits = [], []
    for access in trace:
        result = hierarchy.access(access.address, is_write=access.is_write)
        l1_hits.append(result.l1_hit)
        l2_hits.append(result.l2_hit)
    return l1_hits, l2_hits


def assert_vr_match(scalar, batch, result=None, scalar_hits=None):
    assert stats_tuple(scalar.l1.stats) == stats_tuple(batch.l1.stats)
    assert stats_tuple(scalar.l2.stats) == stats_tuple(batch.l2.stats)
    assert scalar.holes_created == batch.holes_created
    assert scalar.l2_misses_causing_holes == batch.l2_misses_causing_holes
    assert scalar.alias_invalidations == batch.alias_invalidations
    assert sorted(scalar.l1.resident_blocks()) == sorted(
        batch.l1.resident_blocks())
    assert sorted(scalar.l2.resident_blocks()) == sorted(
        batch.l2.resident_blocks())
    assert scalar._phys_of_virt == batch._phys_of_virt
    assert scalar.check_inclusion() and batch.check_inclusion()
    if result is not None and scalar_hits is not None:
        assert result.l1_hits.tolist() == scalar_hits[0]
        assert result.l2_hits.tolist() == scalar_hits[1]


class TestVirtualRealDifferential:
    @pytest.mark.parametrize("trace_name", sorted(TRACES))
    @pytest.mark.parametrize("tlb_entries", [None, 8], ids=["no-tlb", "tlb8"])
    def test_matches_scalar(self, trace_name, tlb_entries):
        trace = list(TRACES[trace_name]())
        scalar, table, tlb, batch, twin_table, twin_tlb = make_vr_pair(
            tlb_entries=tlb_entries)
        assert batch.dispatch_strategy() == "vr-epoch-stream"
        hits = run_scalar_vr(scalar, trace)
        result = batch.run(AddressBatch.from_trace(trace))
        assert_vr_match(scalar, batch, result, hits)
        assert table.page_faults == twin_table.page_faults
        assert table._mapping == twin_table._mapping
        if tlb_entries:
            assert (tlb.hits, tlb.misses) == (twin_tlb.hits, twin_tlb.misses)
            assert list(tlb._table) == list(twin_tlb._table)

    def test_tiny_l2_forces_rewinds(self):
        trace = list(random_accesses(3000, 8 * 1024, write_fraction=0.2,
                                     seed=13))
        scalar, table, _tlb, batch, twin_table, _tt = make_vr_pair(
            l2_size=1024, epoch_hint=16)
        hits = run_scalar_vr(scalar, trace)
        result = batch.run(AddressBatch.from_trace(trace))
        assert batch.rewinds > 0
        assert_vr_match(scalar, batch, result, hits)
        assert table.page_faults == twin_table.page_faults

    def test_doctored_alias_mapping_dispatches_fused(self):
        """Duplicate frames in the page table break injectivity, so the
        engine must fall back to the alias-capable fused path — and still
        match the scalar protocol, alias invalidations included."""
        trace = list(random_accesses(2000, 16 * 1024, write_fraction=0.2,
                                     seed=17))
        page_size = 4096
        table = PageTable(page_size=page_size, allocation="sequential")
        table._mapping[0] = 0
        table._mapping[1] = 0      # virtual pages 0 and 1 alias to frame 0
        scalar = VirtualRealHierarchy(make_l1(), make_l2(),
                                      translate=table.translate,
                                      page_size=page_size)
        twin_table = PageTable(page_size=page_size, allocation="sequential")
        twin_table._mapping[0] = 0
        twin_table._mapping[1] = 0
        batch = batch_virtual_real_like(scalar, twin_table)
        assert batch.dispatch_strategy() == "vr-fused"
        hits = run_scalar_vr(scalar, trace)
        result = batch.run(AddressBatch.from_trace(trace))
        assert scalar.alias_invalidations > 0
        assert_vr_match(scalar, batch, result, hits)

    def test_external_invalidate_between_batches(self):
        trace = list(TRACES["multi-array"]())
        half = len(trace) // 2
        scalar, table, _tlb, batch, _twin, _tt = make_vr_pair()
        run_scalar_vr(scalar, trace[:half])
        batch.run(AddressBatch.from_trace(trace[:half]))
        # Invalidate the physical image of a line resident in both levels.
        virt_block = scalar.l1.resident_blocks()[0]
        physical = scalar._phys_of_virt[virt_block] * 32
        assert scalar.external_invalidate(physical)
        assert batch.external_invalidate(physical)
        assert scalar.external_invalidations == batch.external_invalidations
        hits = run_scalar_vr(scalar, trace[half:])
        result = batch.run(AddressBatch.from_trace(trace[half:]))
        assert_vr_match(scalar, batch, result, hits)

    def test_batch_tlb_matches_scalar_translator(self):
        """The run-collapsing TLB kernel leaves counters and LRU order
        exactly where per-access AddressTranslator lookups would."""
        trace = list(TRACES["strided"]())
        addresses = [a.address for a in trace]
        table = PageTable(page_size=4096, allocation="scatter", seed=23)
        tlb = TLB(entries=4, page_size=4096)
        translator = AddressTranslator(table, tlb)
        scalar_phys = [translator.translate(a) for a in addresses]

        from repro.engine import BatchTranslator
        twin_table = PageTable(page_size=4096, allocation="scatter", seed=23)
        twin_tlb = TLB(entries=4, page_size=4096)
        batch_result = BatchTranslator(twin_table, twin_tlb).lookup_batch(
            np.array(addresses, dtype=np.uint64))
        assert batch_result.physical.tolist() == scalar_phys
        assert (tlb.hits, tlb.misses) == (twin_tlb.hits, twin_tlb.misses)
        assert list(tlb._table.items()) == list(twin_tlb._table.items())
        assert table.page_faults == twin_table.page_faults

    def test_flush_clears_maps(self):
        trace = list(TRACES["strided"]())
        scalar, _table, _tlb, batch, _twin, _tt = make_vr_pair()
        run_scalar_vr(scalar, trace)
        batch.run(AddressBatch.from_trace(trace))
        batch.flush()
        assert batch.l1.resident_blocks() == []
        assert batch._phys_of_virt == {} and batch._virt_of_phys == {}
        assert batch.check_inclusion()


class TestIntrospection:
    def test_hierarchy_dispatch_and_kernel_names(self):
        batch = batch_hierarchy_like(TwoLevelHierarchy(make_l1(), make_l2()))
        assert batch.dispatch_strategy() == "hierarchy-epoch-stream"
        assert batch.l1_collect_kernel.startswith("collect-")
        assert batch.l2_consume_kernel.startswith("consume-")
        assert batch.l2_consume_kernel == "consume-dict-lru"

    def test_vr_exposes_translation_state(self):
        _s, _t, _l, batch, twin_table, twin_tlb = make_vr_pair(tlb_entries=8)
        assert batch.page_table is twin_table
        assert batch.tlb is twin_tlb

    def test_miss_stream_columns(self):
        stream = MissStream([(0, 5, False, True, -1, False),
                             (3, 7, True, True, 5, True)])
        assert len(stream) == 2
        assert stream.positions == [0, 3]
        assert stream.l2_blocks == [5, 7]
        assert stream.is_write == [False, True]
        assert stream.is_l1_miss == [True, True]
        assert stream.victim_blocks == [-1, 5]
        assert stream.victim_dirty == [False, True]

    def test_run_reports_epoch_counters(self):
        trace = list(TRACES["random"]())
        scalar = TwoLevelHierarchy(make_l1(), make_l2())
        batch = batch_hierarchy_like(scalar, epoch_hint=64)
        batch.run(AddressBatch.from_trace(trace))
        assert batch.epochs >= len(trace) // 64
        assert batch.stream_entries > 0


class TestValidation:
    def test_l1_block_must_not_exceed_l2_block(self):
        l1 = batch_cache_like(SetAssociativeCache(512, 64, 2))
        l2 = batch_cache_like(SetAssociativeCache(2048, 32, 2))
        with pytest.raises(ValueError, match="must not exceed"):
            BatchTwoLevelHierarchy(l1, l2)

    def test_l2_must_not_be_smaller_than_l1(self):
        l1 = batch_cache_like(SetAssociativeCache(2048, 32, 2))
        l2 = batch_cache_like(SetAssociativeCache(1024, 32, 2))
        with pytest.raises(ValueError, match="at least as large"):
            BatchTwoLevelHierarchy(l1, l2)

    def test_epoch_hint_must_be_positive(self):
        l1 = batch_cache_like(make_l1())
        l2 = batch_cache_like(make_l2())
        with pytest.raises(ValueError, match="positive"):
            BatchTwoLevelHierarchy(l1, l2, epoch_hint=0)

    def test_classifying_levels_rejected(self):
        from repro.engine import BatchSetAssociativeCache
        l1 = BatchSetAssociativeCache(512, 32, 2, classify_misses=True)
        l2 = batch_cache_like(make_l2())
        with pytest.raises(ValueError, match="classification"):
            BatchTwoLevelHierarchy(l1, l2)

    def test_vr_blocks_must_match(self):
        l1 = batch_cache_like(SetAssociativeCache(512, 32, 2))
        l2 = batch_cache_like(SetAssociativeCache(4096, 64, 2))
        with pytest.raises(ValueError, match="equal L1/L2 block sizes"):
            BatchVirtualRealHierarchy(l1, l2, PageTable(4096))

    def test_vr_page_size_must_cover_a_block(self):
        l1 = batch_cache_like(SetAssociativeCache(512, 64, 2))
        l2 = batch_cache_like(SetAssociativeCache(4096, 64, 2))
        with pytest.raises(ValueError, match="multiple of the cache block"):
            BatchVirtualRealHierarchy(l1, l2, PageTable(page_size=32))

    def test_vr_tlb_page_size_must_agree(self):
        l1 = batch_cache_like(make_l1())
        l2 = batch_cache_like(make_l2())
        with pytest.raises(ValueError, match="agree on page size"):
            BatchVirtualRealHierarchy(l1, l2, PageTable(4096),
                                      tlb=TLB(entries=8, page_size=8192))
