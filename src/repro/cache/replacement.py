"""Replacement policies.

When a block must be brought into a full set (or, in a skewed cache, when all
candidate frames across the ways are occupied), the replacement policy picks
the victim.  The paper's experiments use LRU; FIFO, random and tree-PLRU are
provided for ablation studies because pseudo-random placement interacts with
replacement (a skewed cache cannot implement true per-set LRU cheaply in
hardware, which is why PLRU and random are interesting comparison points).

Policies are stateless objects: all the state they need (insertion and
last-use timestamps) lives in the :class:`~repro.cache.block.CacheBlock`
frames themselves, except for the tree-PLRU bits which the policy keeps in a
small per-set table of its own.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence, Tuple

from .block import CacheBlock

__all__ = [
    "ReplacementPolicy",
    "LRUReplacement",
    "FIFOReplacement",
    "RandomReplacement",
    "TreePLRUReplacement",
    "make_replacement_policy",
]


class ReplacementPolicy(abc.ABC):
    """Chooses a victim among candidate frames and observes accesses."""

    name: str = "abstract"

    @abc.abstractmethod
    def choose_victim(
        self,
        candidates: Sequence[Tuple[int, int, CacheBlock]],
    ) -> Tuple[int, int]:
        """Pick the frame to evict.

        ``candidates`` is a sequence of ``(way, set_index, frame)`` tuples —
        one entry per way for a skewed cache, or the frames of a single set
        for a conventional cache.  Invalid frames are never passed here (the
        cache fills them first).  Returns the ``(way, set_index)`` of the
        victim.
        """

    def on_access(self, way: int, set_index: int, frame: CacheBlock, now: int) -> None:
        """Observe a hit or fill (default: no extra state)."""

    def on_invalidate(self, way: int, set_index: int) -> None:
        """Observe an invalidation (default: no extra state)."""

    def reset(self) -> None:
        """Forget any internal state (called by ``Cache.flush``)."""


class LRUReplacement(ReplacementPolicy):
    """Evict the least recently used candidate (the paper's default)."""

    name = "lru"

    def choose_victim(self, candidates):
        way, set_index, _ = min(candidates, key=lambda c: (c[2].last_used_at, c[0]))
        return way, set_index


class FIFOReplacement(ReplacementPolicy):
    """Evict the candidate that was filled longest ago."""

    name = "fifo"

    def choose_victim(self, candidates):
        way, set_index, _ = min(candidates, key=lambda c: (c[2].inserted_at, c[0]))
        return way, set_index


class RandomReplacement(ReplacementPolicy):
    """Evict a pseudo-randomly chosen candidate.

    Uses a deterministic xorshift generator seeded at construction so that
    simulations are reproducible run-to-run.
    """

    name = "random"

    def __init__(self, seed: int = 0x2545F4914F6CDD1D) -> None:
        if seed == 0:
            raise ValueError("seed must be non-zero for xorshift")
        self._seed = seed
        self._state = seed

    def _next(self) -> int:
        x = self._state
        x ^= (x << 13) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 7
        x ^= (x << 17) & 0xFFFFFFFFFFFFFFFF
        self._state = x
        return x

    def choose_victim(self, candidates):
        pick = self._next() % len(candidates)
        way, set_index, _ = candidates[pick]
        return way, set_index

    def reset(self) -> None:
        self._state = self._seed


class TreePLRUReplacement(ReplacementPolicy):
    """Tree pseudo-LRU over the ways of each set.

    Maintains a binary tree of direction bits per set index; on each access
    the bits along the path to the touched way are flipped to point away from
    it, and the victim is found by following the bits.  Only meaningful for
    non-skewed caches where all candidates share one set index; for skewed
    candidates (differing set indices) it falls back to true LRU, since the
    hardware analogue would keep per-bank state that the frames already
    capture via timestamps.
    """

    name = "plru"

    def __init__(self) -> None:
        self._bits: Dict[Tuple[int, int], List[bool]] = {}

    @staticmethod
    def _tree_size(ways: int) -> int:
        return max(ways - 1, 1)

    def _state_for(self, set_index: int, ways: int) -> List[bool]:
        key = (set_index, ways)
        if key not in self._bits:
            self._bits[key] = [False] * self._tree_size(ways)
        return self._bits[key]

    def on_access(self, way: int, set_index: int, frame: CacheBlock, now: int) -> None:
        ways = self._ways_hint
        if ways is None or ways < 2:
            return
        bits = self._state_for(set_index, ways)
        node = 0
        low, high = 0, ways
        while high - low > 1:
            mid = (low + high) // 2
            go_right = way >= mid
            bits[node] = not go_right  # point away from the touched half
            node = 2 * node + (2 if go_right else 1)
            if node - 1 >= len(bits):
                break
            low, high = (mid, high) if go_right else (low, mid)

    def choose_victim(self, candidates):
        set_indices = {c[1] for c in candidates}
        if len(set_indices) != 1:
            # Skewed cache: candidates live in different sets; use LRU.
            way, set_index, _ = min(candidates, key=lambda c: (c[2].last_used_at, c[0]))
            return way, set_index
        ways = len(candidates)
        self._ways_hint = ways
        set_index = candidates[0][1]
        bits = self._state_for(set_index, ways)
        node = 0
        low, high = 0, ways
        while high - low > 1:
            mid = (low + high) // 2
            go_right = bits[node] if node < len(bits) else False
            node = 2 * node + (2 if go_right else 1)
            low, high = (mid, high) if go_right else (low, mid)
            if node - 1 >= len(bits):
                break
        victim_way = low
        ordered = sorted(candidates, key=lambda c: c[0])
        way, set_index, _ = ordered[min(victim_way, ways - 1)]
        return way, set_index

    #: number of ways of the owning cache; set lazily by choose_victim and
    #: consulted by on_access.  None until the first replacement decision.
    _ways_hint = None

    def on_invalidate(self, way: int, set_index: int) -> None:
        pass

    def reset(self) -> None:
        self._bits.clear()
        self._ways_hint = None


_POLICIES = {
    "lru": LRUReplacement,
    "fifo": FIFOReplacement,
    "random": RandomReplacement,
    "plru": TreePLRUReplacement,
}


def make_replacement_policy(name: str) -> ReplacementPolicy:
    """Build a replacement policy from its short name (``lru``, ``fifo``, ``random``, ``plru``)."""
    try:
        return _POLICIES[name.strip().lower()]()
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; expected one of {sorted(_POLICIES)}"
        ) from None
