"""Memory-system substrate: addresses, paging, translation and main memory."""

from .address import (
    AddressLayout,
    block_base,
    block_number,
    block_offset,
    is_power_of_two,
    log2_exact,
    page_number,
    page_offset,
)
from .main_memory import Bus, MainMemory, MemoryRequest
from .paging import PageSizePolicy, PageTable, Segment, TLB
from .translation import AddressTranslator, TranslationResult

__all__ = [
    "AddressLayout",
    "block_base",
    "block_number",
    "block_offset",
    "is_power_of_two",
    "log2_exact",
    "page_number",
    "page_offset",
    "PageTable",
    "TLB",
    "Segment",
    "PageSizePolicy",
    "AddressTranslator",
    "TranslationResult",
    "MainMemory",
    "Bus",
    "MemoryRequest",
]
