"""Micro-ISA used by the out-of-order processor model.

The paper's evaluation drives a parametric out-of-order simulator with Spec95
programs.  Here the programs are synthetic, so the "ISA" only needs to carry
the information the timing model consumes: which functional unit class an
instruction needs, which registers it reads and writes, the memory address of
loads and stores, and the outcome of branches.  Values are never computed —
this is a timing model, not a functional emulator.

Registers are numbered 0-31 for the integer file and 32-63 for the
floating-point file, mirroring the two separate physical register files of
the modelled machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["OpClass", "Instruction", "INT_REGS", "FP_REGS", "is_fp_register"]

#: Number of architectural integer registers (indices ``0..INT_REGS-1``).
INT_REGS = 32
#: Number of architectural floating-point registers (indices ``INT_REGS..``).
FP_REGS = 32


def is_fp_register(reg: int) -> bool:
    """True when ``reg`` names a floating-point architectural register."""
    return reg >= INT_REGS


class OpClass:
    """Instruction classes, matching the functional units of Table 1."""

    INT_ALU = "int_alu"          # simple integer, latency 1
    INT_MUL = "int_mul"          # complex integer multiply, latency 9
    INT_DIV = "int_div"          # complex integer divide, latency 67
    FP_ADD = "fp_add"            # simple FP, latency 4
    FP_MUL = "fp_mul"            # FP multiply, latency 4
    FP_DIV = "fp_div"            # FP divide, latency 16
    FP_SQRT = "fp_sqrt"          # FP square root, latency 35
    LOAD = "load"                # effective address + cache access
    STORE = "store"              # effective address; data written at commit
    BRANCH = "branch"            # conditional branch

    ALL = (INT_ALU, INT_MUL, INT_DIV, FP_ADD, FP_MUL, FP_DIV, FP_SQRT,
           LOAD, STORE, BRANCH)
    MEMORY = (LOAD, STORE)


@dataclass
class Instruction:
    """One dynamic instruction.

    Attributes
    ----------
    pc:
        Instruction address (used by the branch and address predictors).
    op:
        One of :class:`OpClass`.
    dest:
        Destination architectural register, or ``None`` (stores, branches).
    srcs:
        Source architectural registers.
    address:
        Effective virtual address for loads and stores.
    taken:
        Actual outcome for branches.
    size:
        Access width for memory operations.
    seq:
        Dynamic sequence number, filled in by the processor front-end.
    """

    pc: int
    op: str
    dest: Optional[int] = None
    srcs: Tuple[int, ...] = field(default_factory=tuple)
    address: Optional[int] = None
    taken: Optional[bool] = None
    size: int = 8
    seq: int = -1

    def __post_init__(self) -> None:
        if self.op not in OpClass.ALL:
            raise ValueError(f"unknown op class {self.op!r}")
        if self.pc < 0:
            raise ValueError("pc must be non-negative")
        if self.op in OpClass.MEMORY and self.address is None:
            raise ValueError(f"{self.op} instructions need an address")
        if self.op == OpClass.BRANCH and self.taken is None:
            raise ValueError("branch instructions need an outcome")
        if self.dest is not None and not 0 <= self.dest < INT_REGS + FP_REGS:
            raise ValueError(f"destination register {self.dest} out of range")
        for src in self.srcs:
            if not 0 <= src < INT_REGS + FP_REGS:
                raise ValueError(f"source register {src} out of range")

    @property
    def is_load(self) -> bool:
        """True for loads."""
        return self.op == OpClass.LOAD

    @property
    def is_store(self) -> bool:
        """True for stores."""
        return self.op == OpClass.STORE

    @property
    def is_memory(self) -> bool:
        """True for loads and stores."""
        return self.op in OpClass.MEMORY

    @property
    def is_branch(self) -> bool:
        """True for branches."""
        return self.op == OpClass.BRANCH

    @property
    def writes_fp(self) -> bool:
        """True when the destination is a floating-point register."""
        return self.dest is not None and is_fp_register(self.dest)
