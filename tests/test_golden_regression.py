"""Golden regression fixtures: both engines must reproduce the seed numbers.

``tests/golden/`` holds small JSON snapshots of the Figure 1 stride sweep and
the Section 2.1 miss-ratio study, generated from the seed's scalar reference
models.  Any behavioural drift — in either the reference models or the batch
engine — fails these tests, pinning the paper-facing numbers across future
refactors.

Miss ratios are exact rationals evaluated in IEEE double precision by both
engines, so the comparison is equality, not approximation.
"""

import json
from pathlib import Path

import pytest

from repro.engine import ENGINES
from repro.experiments.figure1 import run_figure1
from repro.experiments.miss_ratio_study import run_miss_ratio_study
from repro.experiments.replacement_study import run_replacement_study
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3

GOLDEN_DIR = Path(__file__).parent / "golden"


def load_golden(name):
    with open(GOLDEN_DIR / name) as handle:
        return json.load(handle)


@pytest.mark.parametrize("engine", list(ENGINES))
def test_figure1_matches_golden(engine):
    golden = load_golden("figure1_miss_ratios.json")
    params = golden["params"]
    result = run_figure1(max_stride=params["max_stride"],
                         stride_step=params["stride_step"],
                         sweeps=params["sweeps"],
                         elements=params["elements"],
                         engine=engine)
    assert result.miss_ratios == golden["miss_ratios"]


@pytest.mark.parametrize("engine", list(ENGINES))
def test_miss_ratio_study_matches_golden(engine):
    golden = load_golden("miss_ratio_study.json")
    params = golden["params"]
    result = run_miss_ratio_study(programs=params["programs"],
                                  accesses=params["accesses"],
                                  seed=params["seed"],
                                  engine=engine)
    assert result.miss_ratios == golden["miss_ratios"]


@pytest.mark.parametrize("engine", list(ENGINES))
def test_fifo_figure1_matches_golden(engine):
    """FIFO stride sweep: pins the set-decomposed FIFO kernel (vectorized)
    and the scalar FIFO policy (reference) to one committed snapshot."""
    golden = load_golden("figure1_fifo.json")
    params = golden["params"]
    result = run_figure1(max_stride=params["max_stride"],
                         stride_step=params["stride_step"],
                         sweeps=params["sweeps"],
                         elements=params["elements"],
                         replacement=params["replacement"],
                         engine=engine)
    assert result.miss_ratios == golden["miss_ratios"]


@pytest.mark.parametrize("engine", list(ENGINES))
def test_plru_miss_ratio_study_matches_golden(engine):
    """PLRU miss-ratio study: pins the set-decomposed PLRU kernel across
    every study organisation (fully-associative included)."""
    golden = load_golden("miss_ratio_study_plru.json")
    params = golden["params"]
    result = run_miss_ratio_study(programs=params["programs"],
                                  accesses=params["accesses"],
                                  seed=params["seed"],
                                  replacement=params["replacement"],
                                  engine=engine)
    assert result.miss_ratios == golden["miss_ratios"]


@pytest.mark.parametrize("engine", list(ENGINES))
def test_skewed_plru_miss_ratio_matches_golden(engine):
    """Skewed-placement PLRU miss-ratio study: pins the skew-decomposed
    PLRU kernel (via the skewed-XOR and skewed-I-Poly organisations) so a
    kernel regression fails without the scalar engine in the loop."""
    golden = load_golden("miss_ratio_study_plru_skewed.json")
    params = golden["params"]
    result = run_miss_ratio_study(programs=params["programs"],
                                  accesses=params["accesses"],
                                  seed=params["seed"],
                                  replacement=params["replacement"],
                                  engine=engine)
    assert result.miss_ratios == golden["miss_ratios"]


@pytest.mark.parametrize("engine", list(ENGINES))
def test_replacement_study_matches_golden(engine):
    """Replacement study (policy x organisation, victim cache included):
    pins every decomposed victim kernel and every skew-decomposed kernel to
    one committed snapshot."""
    golden = load_golden("replacement_study.json")
    params = golden["params"]
    result = run_replacement_study(programs=params["programs"],
                                   accesses=params["accesses"],
                                   seed=params["seed"],
                                   engine=engine)
    assert result.miss_ratios == golden["miss_ratios"]


def _table2_snapshot(result):
    """The goldens' view of a Table 2 run: IPC and miss ratio per cell."""
    return (
        {p: {c: result.ipc(p, c) for c in result.configurations}
         for p in result.programs},
        {p: {c: result.miss_ratio_percent(p, c) for c in result.configurations}
         for p in result.programs},
    )


@pytest.mark.parametrize("engine", list(ENGINES))
def test_table2_matches_golden(engine):
    """Table 2 IPCs and load miss ratios through the full OoO CPU path:
    both index engines must reproduce the committed snapshot exactly."""
    golden = load_golden("table2.json")
    params = golden["params"]
    result = run_table2(programs=params["programs"],
                        instructions=params["instructions"],
                        seed=params["seed"],
                        engine=engine)
    ipc, miss = _table2_snapshot(result)
    assert ipc == golden["ipc"]
    assert miss == golden["load_miss_ratio_percent"]


@pytest.mark.parametrize("engine", list(ENGINES))
def test_table3_matches_golden(engine):
    """Table 3 view (high-conflict vs low-conflict groups) over the same
    committed per-cell numbers."""
    golden = load_golden("table3.json")
    params = golden["params"]
    table2 = run_table2(programs=params["programs"],
                        instructions=params["instructions"],
                        seed=params["seed"],
                        engine=engine)
    result = run_table3(table2_result=table2)
    assert result.bad_programs == golden["bad_programs"]
    assert result.good_programs == golden["good_programs"]
    ipc, miss = _table2_snapshot(table2)
    assert ipc == golden["ipc"]
    assert miss == golden["load_miss_ratio_percent"]


def test_goldens_are_committed():
    """The fixtures exist and cover the four Figure 1 schemes."""
    fig = load_golden("figure1_miss_ratios.json")
    assert sorted(fig["miss_ratios"]) == ["a2", "a2-Hp", "a2-Hp-Sk", "a2-Hx-Sk"]
    study = load_golden("miss_ratio_study.json")
    assert set(study["miss_ratios"]) == set(study["params"]["programs"])
    fifo = load_golden("figure1_fifo.json")
    assert fifo["params"]["replacement"] == "fifo"
    assert sorted(fifo["miss_ratios"]) == ["a2", "a2-Hp", "a2-Hp-Sk", "a2-Hx-Sk"]
    plru = load_golden("miss_ratio_study_plru.json")
    assert plru["params"]["replacement"] == "plru"
    assert set(plru["miss_ratios"]) == set(plru["params"]["programs"])
    skewed = load_golden("miss_ratio_study_plru_skewed.json")
    assert skewed["params"]["replacement"] == "plru"
    assert set(skewed["miss_ratios"]) == set(skewed["params"]["programs"])
    for row in skewed["miss_ratios"].values():
        assert "ipoly-skewed-2way" in row and "skewed-xor-2way" in row
    study = load_golden("replacement_study.json")
    assert set(study["miss_ratios"]) == {
        "conventional-2way", "skewed-ipoly-2way", "victim-direct+8"}
    for row in study["miss_ratios"].values():
        assert sorted(row) == ["fifo", "lru", "plru", "random"]
    table2 = load_golden("table2.json")
    assert set(table2["ipc"]) == set(table2["params"]["programs"])
    for row in table2["ipc"].values():
        assert sorted(row) == sorted(["16K-conv", "8K-conv", "8K-conv-pred",
                                      "8K-ipoly-noCP", "8K-ipoly-CP",
                                      "8K-ipoly-CP-pred"])
    table3 = load_golden("table3.json")
    assert set(table3["bad_programs"]) == {"tomcatv", "swim", "wave5"}
    assert set(table3["ipc"]) == set(table3["params"]["programs"])
    grid = load_golden("lru_grid_profile.json")
    expected_levels = {str(num_sets) for num_sets in grid["params"]["num_sets"]}
    assert set(grid["miss_ratios"]) == expected_levels
    assert set(grid["load_miss_ratios"]) == expected_levels


@pytest.mark.parametrize("profile", ["always", "never"])
def test_lru_grid_profile_matches_golden(profile):
    """Profiler-driven miss-ratio grid (capacities x ways): both the
    one-pass profile readout and the per-config batch kernels must
    reproduce the committed snapshot exactly."""
    from repro.engine import AddressBatch, run_lru_grid
    from repro.trace.batching import cached_workload_arrays

    golden = load_golden("lru_grid_profile.json")
    params = golden["params"]
    batch = AddressBatch.from_arrays(*cached_workload_arrays(
        params["program"], length=params["accesses"], seed=params["seed"]))
    grid = [(num_sets, ways) for num_sets in params["num_sets"]
            for ways in params["ways"]]
    results = run_lru_grid(batch, params["block_size"], grid, profile=profile)
    miss_ratios = {
        str(num_sets): {str(ways): results[(num_sets, ways)].miss_ratio
                        for ways in params["ways"]}
        for num_sets in params["num_sets"]
    }
    load_miss_ratios = {
        str(num_sets): {str(ways): results[(num_sets, ways)].load_miss_ratio
                        for ways in params["ways"]}
        for num_sets in params["num_sets"]
    }
    assert miss_ratios == golden["miss_ratios"]
    assert load_miss_ratios == golden["load_miss_ratios"]


def test_sampled_grid_profile_matches_golden():
    """SHARDS-sampled miss-ratio grid: the sampled profile is a pure
    function of (trace, rate, seed), so each profile seed's estimates are
    pinned *exactly* — any drift in the spatial hash, the mini-cache
    scaling or the ratio readout fails here."""
    from repro.engine import AddressBatch, run_lru_grid
    from repro.trace.batching import cached_workload_arrays

    golden = load_golden("sampled_grid_profile.json")
    params = golden["params"]
    batch = AddressBatch.from_arrays(*cached_workload_arrays(
        params["program"], length=params["accesses"], seed=params["seed"]))
    grid = [(num_sets, ways) for num_sets in params["num_sets"]
            for ways in params["ways"]]
    for profile_seed in params["profile_seeds"]:
        results = run_lru_grid(batch, params["block_size"], grid,
                               profile="sampled",
                               sample_rate=params["sample_rate"],
                               profile_seed=profile_seed)
        miss_ratios = {
            str(num_sets): {str(ways): results[(num_sets, ways)].miss_ratio
                            for ways in params["ways"]}
            for num_sets in params["num_sets"]
        }
        assert miss_ratios == golden["miss_ratios"][str(profile_seed)]


@pytest.mark.parametrize("engine", list(ENGINES))
def test_holes_study_matches_golden(engine):
    """Section 3.3 hole study: pins the virtual-real Inclusion protocol —
    hole accounting included — on both engines to one committed snapshot.
    The 16 KB L2 row keeps back-invalidations dense (hole rate ~0.59), so
    the batch engine's epoch stop/rewind path is exercised, not idled."""
    from repro.experiments.holes_study import run_holes_study

    golden = load_golden("holes_study.json")
    params = golden["params"]
    result = run_holes_study(l2_sizes=params["l2_sizes"],
                             programs=params["programs"],
                             accesses=params["accesses"],
                             seed=params["seed"],
                             engine=engine)
    for size in params["l2_sizes"]:
        key = str(size)
        assert result.predicted_hole_probability[size] == (
            golden["predicted_hole_probability"][key])
        assert result.simulated_hole_rate[size] == (
            golden["simulated_hole_rate"][key])
        assert result.per_program_hole_rate[size] == (
            golden["per_program_hole_rate"][key])
        assert result.l2_misses[size] == golden["l2_misses"][key]
