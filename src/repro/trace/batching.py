"""Materialising traces into NumPy arrays for the batch engine.

The generators in :mod:`repro.trace.generators` yield
:class:`~repro.trace.record.MemoryAccess` objects lazily; the batch engine
wants plain address / store-mask arrays.  :func:`to_arrays` converts any
trace, and the ``*_arrays`` builders below synthesise the hottest workloads
directly as arrays — no per-access object is ever created, which matters when
a sweep needs millions of references per configuration.

Array builders are bit-exact with their generator counterparts (asserted in
``tests/test_engine_equivalence.py``).

Sweep-wide trace memoisation
----------------------------

A sweep replays the same few traces against many configurations: the
replacement study drives one program trace through every (organisation,
policy) pair, the miss-ratio study through seven organisations, Figure 1
through four schemes per stride.  Re-materialising the trace per task is the
single largest fixed cost of small tasks, so :func:`cached_workload_arrays`
and :func:`cached_strided_arrays` keep a process-global, size-bounded cache
keyed by the trace's defining parameters (workload name / stride shape,
length, seed).  Every worker process of a fan-out sweep holds its own cache,
so a worker materialises a given trace once per sweep instead of once per
task.  Cached arrays are returned read-only and with stable identity — which
is what lets :mod:`repro.engine.memo` additionally share the *derived*
block-number and set-index arrays across tasks.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Tuple

import numpy as np

from ..core.memo_util import BoundedMemo
from .record import MemoryAccess

__all__ = [
    "to_arrays",
    "strided_vector_arrays",
    "cached_workload_arrays",
    "cached_strided_arrays",
    "trace_cache_info",
    "trace_cache_clear",
    "set_trace_cache_limit",
]


def to_arrays(trace: Iterable[MemoryAccess]) -> Tuple[np.ndarray, np.ndarray]:
    """Materialise a trace into ``(addresses, is_write)`` NumPy arrays.

    ``addresses`` is ``uint64``, ``is_write`` is ``bool``; both have one
    entry per access, in trace order.
    """
    addresses = []
    writes = []
    for access in trace:
        addresses.append(access.address)
        writes.append(access.is_write)
    if not addresses:
        return np.empty(0, dtype=np.uint64), np.empty(0, dtype=bool)
    return (np.array(addresses, dtype=np.uint64),
            np.array(writes, dtype=bool))


def strided_vector_arrays(
    stride: int,
    elements: int = 64,
    element_size: int = 8,
    sweeps: int = 4,
    base: int = 0,
    is_write: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Array-native :func:`~repro.trace.generators.strided_vector`.

    Returns the same address sequence as the generator (Figure 1's repeated
    strided sweeps) without constructing any :class:`MemoryAccess` objects.
    """
    if stride < 1:
        raise ValueError("stride must be at least 1")
    if elements < 1 or sweeps < 1:
        raise ValueError("elements and sweeps must be positive")
    if base < 0:
        raise ValueError("base must be non-negative")
    step = stride * element_size
    top = base + (elements - 1) * step
    if top >= 1 << 64:
        # The scalar generator keeps arbitrary-precision ints, so a uint64
        # wraparound here would silently diverge from it instead of failing.
        raise ValueError(
            f"address overflow: base {base:#x} plus the last element offset "
            f"{(elements - 1) * step:#x} reaches {top:#x}, past the uint64 "
            "address space")
    offsets = np.arange(elements, dtype=np.uint64)
    if elements > 1:
        offsets = offsets * np.uint64(step)
    one_sweep = np.uint64(base) + offsets
    addresses = np.tile(one_sweep, sweeps)
    writes = np.full(addresses.shape[0], bool(is_write), dtype=bool)
    return addresses, writes


# --------------------------------------------------------------------- #
# process-global trace cache
# --------------------------------------------------------------------- #

_TraceArrays = Tuple[np.ndarray, np.ndarray]

#: The process-global trace cache.  40 entries comfortably hold a full
#: workload suite (18 programs) plus strided traces; the byte bound keeps a
#: large-``accesses`` study from pinning gigabytes of dead trace arrays in
#: every worker process for its lifetime (traces bigger than half the
#: budget are returned uncached — at that size simulation, not
#: materialisation, dominates the task anyway).  Lock-guarded inside
#: :class:`BoundedMemo` because thread-mode sweep workers share it.
_TRACE_CACHE = BoundedMemo(
    40, 256 * 1024 * 1024,
    nbytes_of=lambda entry: entry[0].nbytes + entry[1].nbytes)


def _trace_cache_get(key: tuple,
                     build: Callable[[], _TraceArrays]) -> _TraceArrays:
    def build_frozen() -> _TraceArrays:
        addresses, writes = build()
        # Shared arrays must be immutable: a task scribbling on its "own"
        # trace would silently corrupt every later task's input (and the
        # engine-side memo only trusts read-only arrays).
        addresses.flags.writeable = False
        writes.flags.writeable = False
        return addresses, writes

    return _TRACE_CACHE.get(key, build_frozen)


def cached_workload_arrays(name: str, length: int = 100_000,
                           block_size: int = 32,
                           seed: int = 12345) -> _TraceArrays:
    """Materialised ``(addresses, is_write)`` of one synthetic workload.

    Bit-exact with ``to_arrays(build_trace(...))`` for the same parameters;
    the first call per process builds and caches, later calls return the
    identical (read-only) arrays.
    """
    from .workloads import build_trace

    key = ("workload", str(name), int(length), int(block_size), int(seed))
    return _trace_cache_get(
        key, lambda: to_arrays(build_trace(name, length=length,
                                           block_size=block_size, seed=seed)))


def cached_strided_arrays(stride: int, elements: int = 64,
                          element_size: int = 8, sweeps: int = 4,
                          base: int = 0,
                          is_write: bool = False) -> _TraceArrays:
    """Cached counterpart of :func:`strided_vector_arrays` (same semantics)."""
    key = ("strided", int(stride), int(elements), int(element_size),
           int(sweeps), int(base), bool(is_write))
    return _trace_cache_get(
        key, lambda: strided_vector_arrays(stride, elements=elements,
                                           element_size=element_size,
                                           sweeps=sweeps, base=base,
                                           is_write=is_write))


def trace_cache_info() -> Dict[str, int]:
    """Entry count, hit/miss counters and bounds of the trace cache."""
    return _TRACE_CACHE.info()


def trace_cache_clear() -> None:
    """Drop every cached trace and zero the hit/miss counters."""
    _TRACE_CACHE.clear()


def set_trace_cache_limit(limit: int) -> int:
    """Change the cache bound (evicting immediately); returns the old bound."""
    return _TRACE_CACHE.set_limit(limit)
