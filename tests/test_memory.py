"""Unit tests for the memory substrate: addresses, paging, translation, main memory."""

import pytest

from repro.memory.address import (
    AddressLayout,
    block_base,
    block_number,
    block_offset,
    is_power_of_two,
    log2_exact,
    page_number,
    page_offset,
)
from repro.memory.main_memory import Bus, MainMemory
from repro.memory.paging import PageSizePolicy, PageTable, Segment, TLB
from repro.memory.translation import AddressTranslator


class TestAddressHelpers:
    def test_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(4096)
        assert not is_power_of_two(0)
        assert not is_power_of_two(48)

    def test_log2_exact(self):
        assert log2_exact(32) == 5
        with pytest.raises(ValueError):
            log2_exact(33)

    def test_block_arithmetic(self):
        assert block_number(100, 32) == 3
        assert block_offset(100, 32) == 4
        assert block_base(100, 32) == 96

    def test_page_arithmetic(self):
        assert page_number(8192, 4096) == 2
        assert page_offset(8193, 4096) == 1

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            block_number(-1, 32)


class TestAddressLayout:
    def test_paper_8kb_cache_exceeds_4k_page(self):
        """The Section 3.1 motivation: an 8 KB 2-way cache (128 sets, 32 B
        blocks) needs index bits beyond a 4 KB page offset once hashing wants
        more than 7 bits; conventional indexing itself just fits."""
        layout = AddressLayout(block_size=32, num_sets=128, page_size=4096)
        assert layout.offset_bits == 5
        assert layout.index_bits == 7
        assert layout.untranslated_index_bits == 7
        assert not layout.index_exceeds_page
        assert layout.usable_hash_bits() == 7

    def test_larger_cache_exceeds_page(self):
        layout = AddressLayout(block_size=32, num_sets=1024, page_size=4096)
        assert layout.index_exceeds_page

    def test_large_pages_expose_more_bits(self):
        layout = AddressLayout(block_size=32, num_sets=128, page_size=256 * 1024)
        assert layout.usable_hash_bits() == 13   # the paper's option-2 example


class TestPageTable:
    def test_translation_preserves_offset(self):
        table = PageTable(page_size=4096)
        physical = table.translate(0x1234)
        assert physical % 4096 == 0x234

    def test_same_page_same_frame(self):
        table = PageTable()
        a = table.translate(0x1000)
        b = table.translate(0x1FFF)
        assert a // 4096 == b // 4096

    def test_scatter_allocation_not_identity(self):
        table = PageTable(allocation="scatter")
        frames = [table.frame_of(vpn) for vpn in range(32)]
        assert frames != sorted(frames) or frames != list(range(32))
        assert len(set(frames)) == 32            # no double allocation

    def test_sequential_allocation(self):
        table = PageTable(allocation="sequential")
        assert [table.frame_of(v) for v in (5, 9, 2)] == [0, 1, 2]

    def test_page_faults_counted(self):
        table = PageTable()
        table.translate(0)
        table.translate(10)          # same page
        table.translate(5000)        # new page
        assert table.page_faults == 2

    def test_invalid_allocation(self):
        with pytest.raises(ValueError):
            PageTable(allocation="hugepages")


class TestTLB:
    def test_miss_then_hit(self):
        tlb = TLB(entries=4)
        assert tlb.lookup(0x1000) is None
        tlb.insert(0x1000, frame=7)
        assert tlb.lookup(0x1080) == 7
        assert tlb.hits == 1 and tlb.misses == 1

    def test_lru_eviction(self):
        tlb = TLB(entries=2)
        tlb.insert(0x0000, 1)
        tlb.insert(0x1000, 2)
        tlb.lookup(0x0000)           # refresh page 0
        tlb.insert(0x2000, 3)        # evicts page 1
        assert tlb.lookup(0x1000) is None
        assert tlb.lookup(0x0000) == 1

    def test_flush(self):
        tlb = TLB(entries=4)
        tlb.insert(0, 1)
        tlb.flush()
        assert tlb.lookup(0) is None


class TestPageSizePolicy:
    def test_enables_only_when_all_segments_large(self):
        policy = PageSizePolicy(threshold=256 * 1024)
        policy.add_segment("data", Segment(0, 1 << 20, page_size=256 * 1024))
        assert policy.poly_indexing_enabled
        policy.add_segment("stack", Segment(1 << 30, 1 << 16, page_size=4096))
        assert not policy.poly_indexing_enabled

    def test_flush_counted_on_transitions(self):
        policy = PageSizePolicy()
        policy.add_segment("a", Segment(0, 4096, page_size=1 << 20))
        policy.add_segment("b", Segment(1 << 21, 4096, page_size=4096))
        policy.remove_segment("b")
        assert policy.flushes_required == 3   # off->on, on->off, off->on

    def test_unmapped_bits(self):
        policy = PageSizePolicy()
        policy.add_segment("a", Segment(0, 4096, page_size=256 * 1024))
        assert policy.unmapped_bits(cache_offset_bits=5) == 13


class TestTranslator:
    def test_tlb_hit_is_cheaper(self):
        table = PageTable()
        translator = AddressTranslator(table, TLB(entries=8),
                                       tlb_latency=1, walk_latency=20)
        first = translator.lookup(0x5000)
        second = translator.lookup(0x5010)
        assert not first.tlb_hit and second.tlb_hit
        assert second.latency < first.latency
        assert first.physical_address // 4096 == second.physical_address // 4096

    def test_translate_without_tlb(self):
        table = PageTable()
        translator = AddressTranslator(table)
        assert translator.translate(0x77) % 4096 == 0x77

    def test_page_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            AddressTranslator(PageTable(page_size=4096), TLB(page_size=8192))


class TestMainMemoryAndBus:
    def test_fixed_latency(self):
        memory = MainMemory(access_latency=20)
        request = memory.request(block_number=1, now=100)
        assert request.ready_at == 120
        assert request.latency == 20

    def test_bus_serialises_transfers(self):
        bus = Bus(cycles_per_transaction=4)
        first_done = bus.reserve(0)
        second_done = bus.reserve(0)
        assert first_done == 4
        assert second_done == 8
        assert bus.transactions == 2

    def test_bus_utilisation(self):
        bus = Bus(4)
        bus.reserve(0)
        assert bus.utilisation(8) == pytest.approx(0.5)
        assert bus.utilisation(0) == 0.0

    def test_memory_with_bus_contention(self):
        memory = MainMemory(access_latency=20, bus=Bus(4))
        r1 = memory.request(1, now=0)
        r2 = memory.request(2, now=0)
        assert r2.ready_at >= r1.ready_at
        assert memory.average_latency >= 20

    def test_validation(self):
        with pytest.raises(ValueError):
            MainMemory(access_latency=0)
        with pytest.raises(ValueError):
            Bus(0)
