"""Skew-aware decomposed replacement kernels: skewed caches + victim caches.

:mod:`repro.engine.set_decompose` exploits the independence of the sets of a
*conventional* cache: group accesses per set, simulate each group over dense
local state.  A skewed cache has no such independence to exploit — an access
touches one frame per way, each in a *different* set of its bank, so the
frames reachable from one way-0 group are shared with every other group
through the rehashed ways, and any per-group replay would reorder the
globally-ordered eviction decisions those shared frames carry.  (The victim
cache has the same obstruction one level up: its fully-associative buffer is
one shared side-structure coupling every main-cache set.)  The differential
suite is the enforcer: a grouping that breaks global order diverges from the
scalar models immediately.

What *can* be decomposed for these organisations is everything around the
per-access trace-order loop:

* **per-way index streams** — each way's rehashed set indices are computed
  array-at-a-time and memoised sweep-wide as arrays *and* as the plain-list
  views the kernels iterate (:func:`repro.engine.memo.cached_set_index_lists`),
  so tasks sharing a trace share the rehash work;
* **policy decisions** — the per-access :class:`~repro.engine.replacement_vec`
  method dispatch of the generic kernel is decomposed into policy-specific
  loops operating directly on the checked-out state-table views: FIFO's
  hit-transparency makes its hot path two tag compares, tree-PLRU walks a
  flat direction-bit view (one flag per set at the paper's two ways), and
  LRU/FIFO victim selection is an inline stamp comparison;
* **random draws** — the counter-based random policy's victim picks are a
  pure function of the eviction ordinal, so a whole batch's draws are
  precomputed in one vectorized pass
  (:func:`~repro.engine.replacement_vec.splitmix64_array`) and consumed by
  index, never calling into Python's ``splitmix64`` per eviction.

All kernels share state-table layout with the generic kernels through
:class:`~repro.engine.replacement_vec.VecReplacementState` (stamps, PLRU
bits, draw counters checked out at ``kernel_begin`` and back in at
``kernel_end``), so a cache can hand off mid-stream between the decomposed
kernel, the generic kernel and the scalar engine with bit-exact continuity —
which the differential suite asserts state-table-for-state-table.

Two kernel families:

* :func:`run_skew_decomposed_policy` — skewed
  :class:`~repro.engine.batch_cache.BatchSetAssociativeCache` with a
  non-LRU policy (LRU keeps its dedicated skewed fast paths): tight 2-way
  specialisations for the paper's geometry plus dense generic-ways variants.
  Caches with the 3C classifier stay on the generic kernel (the
  capacity/conflict split needs the classifier called in global order with
  per-access hit context).
* :func:`run_victim_decomposed` — :class:`~repro.engine.batch_cache.BatchVictimCache`
  with a 1-way (Jouppi's geometry) or 2-way main cache, any policy, skewed
  or conventional main indexing.  The victim buffer is carried as a dense
  side-structure probed with C-level list scans (``in`` / ``index`` over a
  handful of entries), swap-on-victim-hit and displaced-block insertion
  replicated from the generic kernel bit-exactly.  Wider main caches keep
  the generic victim kernel.
"""

from __future__ import annotations

import numpy as np

from ..cache.replacement import plru_touch, plru_victim
from ..cache.set_assoc import WritePolicy
from .memo import cached_set_index_lists
from .replacement_vec import splitmix64_array

__all__ = ["run_skew_decomposed_policy", "run_victim_decomposed"]


# --------------------------------------------------------------------- #
# skewed set-associative caches
# --------------------------------------------------------------------- #

def run_skew_decomposed_policy(cache, blocks: np.ndarray,
                               is_write: np.ndarray) -> np.ndarray:
    """Run one batch through the skew-decomposed kernel for the cache's policy.

    ``cache`` is a skewed, classifier-free
    :class:`~repro.engine.batch_cache.BatchSetAssociativeCache` with a bound
    non-LRU policy.  Mutates the cache's tag/dirty stores and policy state
    tables exactly like the generic kernel and returns the per-access hit
    mask.
    """
    name = cache._vec_policy.name
    if name == "fifo":
        kernels = (_skew_fifo_2way, _skew_fifo_ways)
    elif name == "random":
        kernels = (_skew_random_2way, _skew_random_ways)
    elif name == "plru":
        kernels = (_skew_plru_2way, _skew_plru_ways)
    else:
        # Unknown policy (future-proofing): the generic kernel handles
        # anything that implements the VecReplacementState protocol.
        return cache._run_policy_kernel(blocks, is_write)
    way_lists = [cached_set_index_lists(cache._vec_index, blocks, w)
                 for w in range(cache._ways)]
    blocks_l = blocks.tolist()
    writes_l = is_write.tolist()
    if cache._ways == 2:
        hits_l = kernels[0](cache, blocks_l, way_lists[0], way_lists[1],
                            writes_l)
    else:
        hits_l = kernels[1](cache, blocks_l, way_lists, writes_l)
    n = blocks.shape[0]
    stores = int(is_write.sum())
    cache._clock += n
    stats = cache.stats
    stats.loads += n - stores
    stats.stores += stores
    return np.array(hits_l, dtype=bool)


def _skew_fifo_2way(cache, blocks_l, s0_l, s1_l, writes_l):
    policy = cache._vec_policy
    write_back = cache._write_policy == WritePolicy.WRITE_BACK_ALLOCATE
    t0, t1 = cache._way_tags
    d0, d1 = cache._way_dirty
    clock = cache._clock
    stats = cache.stats
    hits_l = []
    ha = hits_l.append
    load_misses = store_misses = evictions = writebacks = 0

    policy.kernel_begin()
    try:
        stamp0, stamp1 = policy.stamp_lists
        for b, sa, sb, w in zip(blocks_l, s0_l, s1_l, writes_l):
            clock += 1
            # FIFO hits are transparent: no stamp refresh, only dirty marking.
            if t0[sa] == b:
                ha(True)
                if w and write_back:
                    d0[sa] = True
                continue
            if t1[sb] == b:
                ha(True)
                if w and write_back:
                    d1[sb] = True
                continue
            ha(False)
            if w:
                store_misses += 1
                if not write_back:
                    continue
            else:
                load_misses += 1
            dirty = w and write_back
            if t0[sa] < 0:
                t0[sa] = b
                d0[sa] = dirty
                stamp0[sa] = clock
            elif t1[sb] < 0:
                t1[sb] = b
                d1[sb] = dirty
                stamp1[sb] = clock
            elif stamp0[sa] <= stamp1[sb]:
                evictions += 1
                if d0[sa]:
                    writebacks += 1
                t0[sa] = b
                d0[sa] = dirty
                stamp0[sa] = clock
            else:
                evictions += 1
                if d1[sb]:
                    writebacks += 1
                t1[sb] = b
                d1[sb] = dirty
                stamp1[sb] = clock
    finally:
        policy.kernel_end()

    stats.load_misses += load_misses
    stats.store_misses += store_misses
    stats.evictions += evictions
    stats.writebacks += writebacks
    return hits_l


def _skew_random_2way(cache, blocks_l, s0_l, s1_l, writes_l):
    policy = cache._vec_policy
    write_back = cache._write_policy == WritePolicy.WRITE_BACK_ALLOCATE
    t0, t1 = cache._way_tags
    d0, d1 = cache._way_dirty
    stats = cache.stats
    # One draw per eviction, at most one eviction per access: n picks cover
    # the batch; the counter advances by the draws actually consumed.
    picks_l = (splitmix64_array(policy.seed, policy.counter, len(blocks_l))
               % np.uint64(2)).astype(bool).tolist()
    pe = 0
    hits_l = []
    ha = hits_l.append
    load_misses = store_misses = evictions = writebacks = 0

    for b, sa, sb, w in zip(blocks_l, s0_l, s1_l, writes_l):
        # Random hits are transparent (no policy state at all).
        if t0[sa] == b:
            ha(True)
            if w and write_back:
                d0[sa] = True
            continue
        if t1[sb] == b:
            ha(True)
            if w and write_back:
                d1[sb] = True
            continue
        ha(False)
        if w:
            store_misses += 1
            if not write_back:
                continue
        else:
            load_misses += 1
        dirty = w and write_back
        if t0[sa] < 0:
            t0[sa] = b
            d0[sa] = dirty
        elif t1[sb] < 0:
            t1[sb] = b
            d1[sb] = dirty
        elif picks_l[pe]:
            pe += 1
            evictions += 1
            if d1[sb]:
                writebacks += 1
            t1[sb] = b
            d1[sb] = dirty
        else:
            pe += 1
            evictions += 1
            if d0[sa]:
                writebacks += 1
            t0[sa] = b
            d0[sa] = dirty

    policy.counter += pe
    stats.load_misses += load_misses
    stats.store_misses += store_misses
    stats.evictions += evictions
    stats.writebacks += writebacks
    return hits_l


def _skew_plru_2way(cache, blocks_l, s0_l, s1_l, writes_l):
    policy = cache._vec_policy
    write_back = cache._write_policy == WritePolicy.WRITE_BACK_ALLOCATE
    t0, t1 = cache._way_tags
    d0, d1 = cache._way_dirty
    clock = cache._clock
    stats = cache.stats
    hits_l = []
    ha = hits_l.append
    load_misses = store_misses = evictions = writebacks = 0

    policy.kernel_begin()
    flat = None
    try:
        bits_l = policy.bit_lists
        stamp0, stamp1 = policy.stamp_lists
        # One direction bit per set at two ways: True sends the victim walk
        # to way 1.  Checked out flat, written back row-by-row at the end.
        flat = [row[0] for row in bits_l]
        for b, sa, sb, w in zip(blocks_l, s0_l, s1_l, writes_l):
            clock += 1
            if t0[sa] == b:
                ha(True)
                stamp0[sa] = clock
                flat[sa] = True
                if w and write_back:
                    d0[sa] = True
                continue
            if t1[sb] == b:
                ha(True)
                stamp1[sb] = clock
                flat[sb] = False
                if w and write_back:
                    d1[sb] = True
                continue
            ha(False)
            if w:
                store_misses += 1
                if not write_back:
                    continue
            else:
                load_misses += 1
            dirty = w and write_back
            if t0[sa] < 0:
                target = 0
            elif t1[sb] < 0:
                target = 1
            elif sa == sb:
                # Shared set: the per-set tree decides.
                target = 1 if flat[sa] else 0
                evictions += 1
            else:
                # Skewed candidates: true-LRU fallback over the stamps,
                # ties towards way 0 (the scalar policy's scan order).
                target = 0 if stamp0[sa] <= stamp1[sb] else 1
                evictions += 1
            if target:
                if t1[sb] >= 0 and d1[sb]:
                    writebacks += 1
                t1[sb] = b
                d1[sb] = dirty
                stamp1[sb] = clock
                flat[sb] = False
            else:
                if t0[sa] >= 0 and d0[sa]:
                    writebacks += 1
                t0[sa] = b
                d0[sa] = dirty
                stamp0[sa] = clock
                flat[sa] = True
    finally:
        if flat is not None:
            for s, value in enumerate(flat):
                bits_l[s][0] = value
        policy.kernel_end()

    stats.load_misses += load_misses
    stats.store_misses += store_misses
    stats.evictions += evictions
    stats.writebacks += writebacks
    return hits_l


def _skew_fifo_ways(cache, blocks_l, way_lists, writes_l):
    policy = cache._vec_policy
    write_back = cache._write_policy == WritePolicy.WRITE_BACK_ALLOCATE
    ways = cache._ways
    way_range = range(ways)
    tags = cache._way_tags
    dirty = cache._way_dirty
    clock = cache._clock
    stats = cache.stats
    hits_l = []
    ha = hits_l.append
    load_misses = store_misses = evictions = writebacks = 0

    policy.kernel_begin()
    try:
        stamp = policy.stamp_lists
        for i, b in enumerate(blocks_l):
            clock += 1
            w = writes_l[i]
            hit = False
            for wy in way_range:
                s = way_lists[wy][i]
                if tags[wy][s] == b:
                    hit = True
                    if w and write_back:
                        dirty[wy][s] = True
                    break
            if hit:
                ha(True)
                continue
            ha(False)
            if w:
                store_misses += 1
                if not write_back:
                    continue
            else:
                load_misses += 1
            target = -1
            for wy in way_range:
                if tags[wy][way_lists[wy][i]] < 0:
                    target = wy
                    break
            if target < 0:
                best = None
                for wy in way_range:
                    value = stamp[wy][way_lists[wy][i]]
                    if best is None or value < best:
                        best = value
                        target = wy
                s = way_lists[target][i]
                evictions += 1
                if dirty[target][s]:
                    writebacks += 1
            s = way_lists[target][i]
            tags[target][s] = b
            dirty[target][s] = w and write_back
            stamp[target][s] = clock
    finally:
        policy.kernel_end()

    stats.load_misses += load_misses
    stats.store_misses += store_misses
    stats.evictions += evictions
    stats.writebacks += writebacks
    return hits_l


def _skew_random_ways(cache, blocks_l, way_lists, writes_l):
    policy = cache._vec_policy
    write_back = cache._write_policy == WritePolicy.WRITE_BACK_ALLOCATE
    ways = cache._ways
    way_range = range(ways)
    tags = cache._way_tags
    dirty = cache._way_dirty
    stats = cache.stats
    picks_l = (splitmix64_array(policy.seed, policy.counter, len(blocks_l))
               % np.uint64(ways)).tolist()
    pe = 0
    hits_l = []
    ha = hits_l.append
    load_misses = store_misses = evictions = writebacks = 0

    for i, b in enumerate(blocks_l):
        w = writes_l[i]
        hit = False
        for wy in way_range:
            s = way_lists[wy][i]
            if tags[wy][s] == b:
                hit = True
                if w and write_back:
                    dirty[wy][s] = True
                break
        if hit:
            ha(True)
            continue
        ha(False)
        if w:
            store_misses += 1
            if not write_back:
                continue
        else:
            load_misses += 1
        target = -1
        for wy in way_range:
            if tags[wy][way_lists[wy][i]] < 0:
                target = wy
                break
        if target < 0:
            target = picks_l[pe]
            pe += 1
            s = way_lists[target][i]
            evictions += 1
            if dirty[target][s]:
                writebacks += 1
        s = way_lists[target][i]
        tags[target][s] = b
        dirty[target][s] = w and write_back

    policy.counter += pe
    stats.load_misses += load_misses
    stats.store_misses += store_misses
    stats.evictions += evictions
    stats.writebacks += writebacks
    return hits_l


def _skew_plru_ways(cache, blocks_l, way_lists, writes_l):
    policy = cache._vec_policy
    write_back = cache._write_policy == WritePolicy.WRITE_BACK_ALLOCATE
    ways = cache._ways
    way_range = range(ways)
    tags = cache._way_tags
    dirty = cache._way_dirty
    clock = cache._clock
    stats = cache.stats
    touch = plru_touch
    pick = plru_victim
    tree = ways >= 2
    hits_l = []
    ha = hits_l.append
    load_misses = store_misses = evictions = writebacks = 0

    policy.kernel_begin()
    try:
        bits_l = policy.bit_lists
        stamp = policy.stamp_lists
        for i, b in enumerate(blocks_l):
            clock += 1
            w = writes_l[i]
            hit_way = -1
            for wy in way_range:
                s = way_lists[wy][i]
                if tags[wy][s] == b:
                    hit_way = wy
                    break
            if hit_way >= 0:
                ha(True)
                stamp[hit_way][s] = clock
                if tree:
                    touch(bits_l[s], hit_way, ways)
                if w and write_back:
                    dirty[hit_way][s] = True
                continue
            ha(False)
            if w:
                store_misses += 1
                if not write_back:
                    continue
            else:
                load_misses += 1
            target = -1
            for wy in way_range:
                if tags[wy][way_lists[wy][i]] < 0:
                    target = wy
                    break
            if target < 0:
                first = way_lists[0][i]
                shared = True
                for wy in way_range:
                    if way_lists[wy][i] != first:
                        shared = False
                        break
                if shared:
                    target = pick(bits_l[first], ways)
                else:
                    best = None
                    for wy in way_range:
                        value = stamp[wy][way_lists[wy][i]]
                        if best is None or value < best:
                            best = value
                            target = wy
                s = way_lists[target][i]
                evictions += 1
                if dirty[target][s]:
                    writebacks += 1
            s = way_lists[target][i]
            tags[target][s] = b
            dirty[target][s] = w and write_back
            stamp[target][s] = clock
            if tree:
                touch(bits_l[s], target, ways)
    finally:
        policy.kernel_end()

    stats.load_misses += load_misses
    stats.store_misses += store_misses
    stats.evictions += evictions
    stats.writebacks += writebacks
    return hits_l


# --------------------------------------------------------------------- #
# victim caches (main array + fully-associative buffer side-structure)
# --------------------------------------------------------------------- #

def run_victim_decomposed(cache, blocks: np.ndarray,
                          is_write: np.ndarray) -> np.ndarray:
    """Run one batch through the decomposed victim kernel for the cache's policy.

    ``cache`` is a :class:`~repro.engine.batch_cache.BatchVictimCache` with a
    1- or 2-way main cache (skewed or conventional).  Mutates main/buffer
    tag stores, both policies' state tables and both clocks exactly like the
    generic victim kernel and returns the per-access overall hit mask.
    """
    name = cache._replacement_name
    way_lists = [cached_set_index_lists(cache._vec_index, blocks, w)
                 for w in range(cache._ways if cache._skewed else 1)]
    blocks_l = blocks.tolist()
    writes_l = is_write.tolist()
    if cache._ways == 1:
        if name in ("lru", "fifo"):
            hits_l = _victim_stamp_1way(cache, blocks_l, way_lists[0],
                                        writes_l, name == "lru")
        elif name == "random":
            hits_l = _victim_random_1way(cache, blocks_l, way_lists[0],
                                         writes_l)
        else:
            hits_l = _victim_plru_1way(cache, blocks_l, way_lists[0],
                                       writes_l)
    else:
        s0_l = way_lists[0]
        s1_l = way_lists[-1] if cache._skewed else way_lists[0]
        if name in ("lru", "fifo"):
            hits_l = _victim_stamp_2way(cache, blocks_l, s0_l, s1_l,
                                        writes_l, name == "lru")
        elif name == "random":
            hits_l = _victim_random_2way(cache, blocks_l, s0_l, s1_l,
                                         writes_l)
        else:
            hits_l = _victim_plru_2way(cache, blocks_l, s0_l, s1_l, writes_l)
    n = blocks.shape[0]
    stores = int(is_write.sum())
    stats = cache.stats
    stats.loads += n - stores
    stats.stores += stores
    return np.array(hits_l, dtype=bool)


class _VictimBuffer:
    """Checked-out dense view of the victim buffer and its policy state.

    One instance brackets one kernel run: :meth:`__init__` checks the
    buffer policy's tables out as flat lists, the kernel calls
    :meth:`stash` per displaced line, and :meth:`close` writes the stamp
    view back before ``kernel_end``.  Probing stays in the caller (C-level
    ``in`` / ``index`` over the tag list is the hot path).
    """

    __slots__ = ("tags", "dirty", "entries", "policy", "name", "stamps",
                 "bits", "picks", "pe", "clock", "writebacks")

    def __init__(self, cache, name, draws):
        self.tags = cache._victim_tags
        self.dirty = cache._victim_dirty
        self.entries = cache._entries
        self.policy = cache._victim_policy
        self.name = name
        self.clock = cache._victim_clock
        self.writebacks = 0
        self.pe = 0
        self.policy.kernel_begin()
        if name in ("lru", "fifo"):
            self.stamps = [row[0] for row in self.policy.stamp_lists]
            self.bits = None
            self.picks = None
        elif name == "plru":
            self.stamps = [row[0] for row in self.policy.stamp_lists]
            self.bits = self.policy.bit_lists[0]
            self.picks = None
        else:
            self.stamps = None
            self.bits = None
            self.picks = (splitmix64_array(self.policy.seed,
                                           self.policy.counter, draws)
                          % np.uint64(self.entries)).tolist()

    def stash(self, block, dirty):
        """Insert a displaced main-cache line, spilling the policy victim."""
        self.clock += 1
        tags = self.tags
        if -1 in tags:
            slot = tags.index(-1)
        else:
            name = self.name
            if name == "random":
                slot = self.picks[self.pe]
                self.pe += 1
            elif name == "plru":
                slot = plru_victim(self.bits, self.entries)
            else:
                stamps = self.stamps
                slot = stamps.index(min(stamps))
            if self.dirty[slot]:
                # A dirty line falling out of the buffer would be written
                # back to the next level.
                self.writebacks += 1
        tags[slot] = block
        self.dirty[slot] = dirty
        if self.stamps is not None:
            self.stamps[slot] = self.clock
        if self.bits is not None:
            plru_touch(self.bits, slot, self.entries)

    def close(self, cache):
        """Write flat views back and check the policy tables in."""
        try:
            if self.stamps is not None:
                for slot, row in enumerate(self.policy.stamp_lists):
                    row[0] = self.stamps[slot]
            if self.picks is not None:
                self.policy.counter += self.pe
        finally:
            self.policy.kernel_end()
        cache._victim_clock = self.clock
        cache.stats.writebacks += self.writebacks


def _victim_stamp_1way(cache, blocks_l, sets_l, writes_l, refresh_on_hit):
    t0 = cache._way_tags[0]
    d0 = cache._way_dirty[0]
    vtags = cache._victim_tags
    main_policy = cache._main_policy
    main_clock = cache._main_clock
    hits_l = []
    ha = hits_l.append
    load_misses = store_misses = main_hits = victim_hits = 0

    main_policy.kernel_begin()
    try:
        buffer = _VictimBuffer(cache, cache._replacement_name, len(blocks_l))
        try:
            mstamp = main_policy.stamp_lists[0]
            for b, s, w in zip(blocks_l, sets_l, writes_l):
                main_clock += 1
                if t0[s] == b:
                    if refresh_on_hit:
                        mstamp[s] = main_clock
                    if w:
                        d0[s] = True  # main cache is write-back
                    main_hits += 1
                    ha(True)
                    continue
                # Main miss: probe the victim buffer (C-level list scan).
                victim_hit = b in vtags
                ha(victim_hit)
                if victim_hit:
                    victim_hits += 1
                    slot = vtags.index(b)
                    vtags[slot] = -1
                    cache._victim_dirty[slot] = False
                elif w:
                    store_misses += 1
                else:
                    load_misses += 1
                # Refill the main cache (write-back / write-allocate).
                evicted = t0[s]
                t0[s] = b
                mstamp[s] = main_clock
                if evicted < 0:
                    d0[s] = bool(w)
                    continue
                evicted_dirty = d0[s]
                d0[s] = bool(w)
                buffer.stash(evicted, evicted_dirty)
        finally:
            buffer.close(cache)
    finally:
        main_policy.kernel_end()

    _finish_victim(cache, main_clock, main_hits, victim_hits,
                   load_misses, store_misses)
    return hits_l


def _victim_random_1way(cache, blocks_l, sets_l, writes_l):
    t0 = cache._way_tags[0]
    d0 = cache._way_dirty[0]
    vtags = cache._victim_tags
    main_policy = cache._main_policy
    main_clock = cache._main_clock
    hits_l = []
    ha = hits_l.append
    load_misses = store_misses = main_hits = victim_hits = 0
    main_evictions = 0

    buffer = _VictimBuffer(cache, "random", len(blocks_l))
    try:
        for b, s, w in zip(blocks_l, sets_l, writes_l):
            if t0[s] == b:
                if w:
                    d0[s] = True
                main_hits += 1
                ha(True)
                continue
            victim_hit = b in vtags
            ha(victim_hit)
            if victim_hit:
                victim_hits += 1
                slot = vtags.index(b)
                vtags[slot] = -1
                cache._victim_dirty[slot] = False
            elif w:
                store_misses += 1
            else:
                load_misses += 1
            evicted = t0[s]
            t0[s] = b
            if evicted < 0:
                d0[s] = bool(w)
                continue
            # A single way means the pick is forced, but the generic kernel
            # (and the scalar policy) still consume one draw per eviction —
            # advance the counter identically.
            main_evictions += 1
            evicted_dirty = d0[s]
            d0[s] = bool(w)
            buffer.stash(evicted, evicted_dirty)
    finally:
        buffer.close(cache)
        main_policy.counter += main_evictions

    _finish_victim(cache, main_clock + len(blocks_l), main_hits, victim_hits,
                   load_misses, store_misses)
    return hits_l


def _victim_plru_1way(cache, blocks_l, sets_l, writes_l):
    # A 1-way tree has no direction bits (plru_touch is a no-op below two
    # ways); only the LRU-fallback stamps are maintained.
    return _victim_stamp_1way(cache, blocks_l, sets_l, writes_l, True)


def _victim_stamp_2way(cache, blocks_l, s0_l, s1_l, writes_l,
                       refresh_on_hit):
    t0, t1 = cache._way_tags
    d0, d1 = cache._way_dirty
    vtags = cache._victim_tags
    main_policy = cache._main_policy
    main_clock = cache._main_clock
    hits_l = []
    ha = hits_l.append
    load_misses = store_misses = main_hits = victim_hits = 0

    main_policy.kernel_begin()
    buffer = None
    try:
        buffer = _VictimBuffer(cache, cache._replacement_name, len(blocks_l))
        stamp0, stamp1 = main_policy.stamp_lists
        for b, sa, sb, w in zip(blocks_l, s0_l, s1_l, writes_l):
            main_clock += 1
            if t0[sa] == b:
                if refresh_on_hit:
                    stamp0[sa] = main_clock
                if w:
                    d0[sa] = True
                main_hits += 1
                ha(True)
                continue
            if t1[sb] == b:
                if refresh_on_hit:
                    stamp1[sb] = main_clock
                if w:
                    d1[sb] = True
                main_hits += 1
                ha(True)
                continue
            victim_hit = b in vtags
            ha(victim_hit)
            if victim_hit:
                victim_hits += 1
                slot = vtags.index(b)
                vtags[slot] = -1
                cache._victim_dirty[slot] = False
            elif w:
                store_misses += 1
            else:
                load_misses += 1
            fill_dirty = bool(w)
            if t0[sa] < 0:
                t0[sa] = b
                d0[sa] = fill_dirty
                stamp0[sa] = main_clock
                continue
            if t1[sb] < 0:
                t1[sb] = b
                d1[sb] = fill_dirty
                stamp1[sb] = main_clock
                continue
            if stamp0[sa] <= stamp1[sb]:
                evicted = t0[sa]
                evicted_dirty = d0[sa]
                t0[sa] = b
                d0[sa] = fill_dirty
                stamp0[sa] = main_clock
            else:
                evicted = t1[sb]
                evicted_dirty = d1[sb]
                t1[sb] = b
                d1[sb] = fill_dirty
                stamp1[sb] = main_clock
            buffer.stash(evicted, evicted_dirty)
    finally:
        if buffer is not None:
            buffer.close(cache)
        main_policy.kernel_end()

    _finish_victim(cache, main_clock, main_hits, victim_hits,
                   load_misses, store_misses)
    return hits_l


def _victim_random_2way(cache, blocks_l, s0_l, s1_l, writes_l):
    t0, t1 = cache._way_tags
    d0, d1 = cache._way_dirty
    vtags = cache._victim_tags
    main_policy = cache._main_policy
    picks_l = (splitmix64_array(main_policy.seed, main_policy.counter,
                                len(blocks_l)) % np.uint64(2)).astype(
                                    bool).tolist()
    pe = 0
    hits_l = []
    ha = hits_l.append
    load_misses = store_misses = main_hits = victim_hits = 0

    buffer = _VictimBuffer(cache, "random", len(blocks_l))
    try:
        for b, sa, sb, w in zip(blocks_l, s0_l, s1_l, writes_l):
            if t0[sa] == b:
                if w:
                    d0[sa] = True
                main_hits += 1
                ha(True)
                continue
            if t1[sb] == b:
                if w:
                    d1[sb] = True
                main_hits += 1
                ha(True)
                continue
            victim_hit = b in vtags
            ha(victim_hit)
            if victim_hit:
                victim_hits += 1
                slot = vtags.index(b)
                vtags[slot] = -1
                cache._victim_dirty[slot] = False
            elif w:
                store_misses += 1
            else:
                load_misses += 1
            fill_dirty = bool(w)
            if t0[sa] < 0:
                t0[sa] = b
                d0[sa] = fill_dirty
                continue
            if t1[sb] < 0:
                t1[sb] = b
                d1[sb] = fill_dirty
                continue
            if picks_l[pe]:
                pe += 1
                evicted = t1[sb]
                evicted_dirty = d1[sb]
                t1[sb] = b
                d1[sb] = fill_dirty
            else:
                pe += 1
                evicted = t0[sa]
                evicted_dirty = d0[sa]
                t0[sa] = b
                d0[sa] = fill_dirty
            buffer.stash(evicted, evicted_dirty)
    finally:
        buffer.close(cache)
        main_policy.counter += pe

    _finish_victim(cache, cache._main_clock + len(blocks_l), main_hits,
                   victim_hits, load_misses, store_misses)
    return hits_l


def _victim_plru_2way(cache, blocks_l, s0_l, s1_l, writes_l):
    t0, t1 = cache._way_tags
    d0, d1 = cache._way_dirty
    vtags = cache._victim_tags
    main_policy = cache._main_policy
    main_clock = cache._main_clock
    hits_l = []
    ha = hits_l.append
    load_misses = store_misses = main_hits = victim_hits = 0

    main_policy.kernel_begin()
    buffer = None
    flat = None
    try:
        buffer = _VictimBuffer(cache, "plru", len(blocks_l))
        bits_l = main_policy.bit_lists
        stamp0, stamp1 = main_policy.stamp_lists
        flat = [row[0] for row in bits_l]
        for b, sa, sb, w in zip(blocks_l, s0_l, s1_l, writes_l):
            main_clock += 1
            if t0[sa] == b:
                stamp0[sa] = main_clock
                flat[sa] = True
                if w:
                    d0[sa] = True
                main_hits += 1
                ha(True)
                continue
            if t1[sb] == b:
                stamp1[sb] = main_clock
                flat[sb] = False
                if w:
                    d1[sb] = True
                main_hits += 1
                ha(True)
                continue
            victim_hit = b in vtags
            ha(victim_hit)
            if victim_hit:
                victim_hits += 1
                slot = vtags.index(b)
                vtags[slot] = -1
                cache._victim_dirty[slot] = False
            elif w:
                store_misses += 1
            else:
                load_misses += 1
            fill_dirty = bool(w)
            if t0[sa] < 0:
                target = 0
            elif t1[sb] < 0:
                target = 1
            elif sa == sb:
                target = 1 if flat[sa] else 0
            else:
                target = 0 if stamp0[sa] <= stamp1[sb] else 1
            if target:
                evicted = t1[sb]
                evicted_dirty = d1[sb]
                t1[sb] = b
                d1[sb] = fill_dirty
                stamp1[sb] = main_clock
                flat[sb] = False
            else:
                evicted = t0[sa]
                evicted_dirty = d0[sa]
                t0[sa] = b
                d0[sa] = fill_dirty
                stamp0[sa] = main_clock
                flat[sa] = True
            if evicted >= 0:
                buffer.stash(evicted, evicted_dirty)
    finally:
        if flat is not None:
            for s, value in enumerate(flat):
                bits_l[s][0] = value
        if buffer is not None:
            buffer.close(cache)
        main_policy.kernel_end()

    _finish_victim(cache, main_clock, main_hits, victim_hits,
                   load_misses, store_misses)
    return hits_l


def _finish_victim(cache, main_clock, main_hits, victim_hits,
                   load_misses, store_misses):
    cache._main_clock = main_clock
    stats = cache.stats
    stats.load_misses += load_misses
    stats.store_misses += store_misses
    cache.main_hits += main_hits
    cache.victim_hits += victim_hits
