"""Fault-tolerant parallel sweep runner: fan configurations across workers.

The paper's figures are sweeps — hundreds of (scheme, stride) or
(program, organisation) pairs, each an independent simulation — and the
ROADMAP's north star is serving those sweeps as a long-running service.
That makes the executor's failure behaviour part of the spec: a single
worker exception must not poison the whole grid, an OOM-killed worker
process (``BrokenProcessPool``) must not discard hours of completed
results, and a killed sweep must be resumable.  :func:`run_sweep` is that
executor:

* **future-per-chunk scheduling** — tasks are grouped into chunks
  (:func:`chunk_tasks` semantics, honoured identically in process and
  thread mode) and each chunk is submitted as its own future, with at most
  ``workers`` chunks in flight so per-task deadlines are meaningful;
* **per-task ``timeout=``** — a dispatched chunk of *k* tasks gets a
  ``k * timeout`` deadline; an expired, running dispatch tears the pool
  down (hung worker processes are terminated), the not-yet-completed tasks
  are resubmitted, and only the expired tasks are charged an attempt;
* **bounded ``retries=``** with exponential backoff and seeded jitter
  (:func:`backoff_delays` is the deterministic schedule, ``backoff_seed``
  pins it for tests);
* **``on_error={"raise","collect"}``** — ``"raise"`` aborts with a
  :class:`SweepError` once a task exhausts its retries; ``"collect"``
  slots a structured :class:`TaskFailure` into the task's result position
  and lets the rest of the sweep finish;
* **mid-sweep pool recovery** — a broken pool is rebuilt in place (every
  task that was in flight is charged an attempt, since the culprit cannot
  be attributed); after ``max_pool_rebuilds`` consecutive no-progress
  breaks the executor degrades ``process -> thread -> serial``, and only
  not-yet-completed tasks are ever resubmitted, so completed work is never
  re-run and result order is always preserved;
* **``journal=``/``resume=``** — completed results are appended to a
  :class:`~repro.engine.checkpoint.SweepJournal` as they arrive, and a
  resumed run pre-fills every journalled slot without executing it.

Workers receive one task object each and must be module-level callables
when ``mode="process"`` (work items must pickle); ``mode="serial"`` runs
in-line — it enforces retries and ``on_error`` but cannot pre-empt a hung
task, so ``timeout`` only bites in the pool modes.  Each worker process
holds its own process-global trace cache (:mod:`repro.trace.batching`) and
derived-array memo (:mod:`repro.engine.memo`) — thread-mode workers share
their process's lock-guarded caches — so chunked dispatch compounds: the
more related tasks a worker receives per sweep, the more materialisation
work it reuses.

The deterministic fault-injection harness for this module lives in
:mod:`repro.engine.faults`; ``tests/test_sweep_faults.py`` proves every
recovery path bit-exact against the serial run.
"""

from __future__ import annotations

import collections
import concurrent.futures
import random
import time
from concurrent.futures import BrokenExecutor
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)
from dataclasses import dataclass

from .checkpoint import SweepJournal, task_digest

__all__ = [
    "ON_ERROR_POLICIES",
    "SweepError",
    "TaskFailure",
    "backoff_delays",
    "chunk_tasks",
    "run_sweep",
]

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")

#: Executor modes accepted by :func:`run_sweep`.
_MODES = ("process", "thread", "serial")

#: Failure policies accepted by :func:`run_sweep`.
ON_ERROR_POLICIES = ("raise", "collect")

#: Degradation chain followed when a pool keeps breaking or cannot spawn.
_DEGRADE = {"process": "thread", "thread": "serial"}

#: Sentinel marking a result slot whose task has not completed yet.
_PENDING = object()


@dataclass(frozen=True)
class TaskFailure:
    """A task that exhausted its retries, slotted in place of its result.

    ``attempts`` counts every execution attempt (initial try included);
    ``mode`` is the executor mode of the final attempt, so degraded-pool
    failures are distinguishable from first-class ones.
    """

    task: str
    error_type: str
    message: str
    attempts: int
    mode: str


class SweepError(RuntimeError):
    """Raised under ``on_error="raise"`` when a task exhausts its retries."""

    def __init__(self, failure: TaskFailure) -> None:
        super().__init__(
            f"sweep task {failure.task} failed after {failure.attempts} "
            f"attempt(s) [{failure.mode}]: {failure.error_type}: "
            f"{failure.message}")
        self.failure = failure


class _PoolBroken(Exception):
    """Internal: the current pool must be torn down and rebuilt.

    ``penalised`` holds the indices charged an attempt (the tasks that were
    running when the pool broke, or the expired ones on a timeout).
    """

    def __init__(self, penalised: Sequence[int], error_type: str,
                 message: str) -> None:
        super().__init__(message)
        self.penalised = list(penalised)
        self.error_type = error_type
        self.message = message


def _noop() -> None:
    """Picklable probe task used to detect unusable worker pools."""


def _guarded_chunk(worker: Callable[[TaskT], ResultT],
                   chunk: List[TaskT]) -> List[tuple]:
    """Run one chunk, capturing per-task outcomes instead of raising.

    One task's exception must not discard its chunk-mates' finished work,
    and exception *objects* are not reliably picklable — so each task comes
    back as ``("ok", value)`` or ``("err", type_name, message)``.
    """
    outcomes: List[tuple] = []
    for task in chunk:
        try:
            outcomes.append(("ok", worker(task)))
        except Exception as exc:
            outcomes.append(("err", type(exc).__name__, str(exc)))
    return outcomes


def backoff_delays(attempts: int, base: float, seed: Optional[int] = None,
                   cap: float = 2.0) -> List[float]:
    """The deterministic retry-backoff schedule for a given seed.

    Delay ``k`` (0-based) is ``base * 2**k``, jittered by a factor drawn
    uniformly from ``[0.5, 1.5)`` and clamped to ``cap``.  Jitter keeps a
    retry stampede (many tasks failing together on a rebuilt pool) from
    resubmitting in lock-step; the seed keeps tests deterministic.
    """
    rng = random.Random(seed)
    return [min(cap, base * (2 ** k) * (0.5 + rng.random()))
            for k in range(attempts)]


def chunk_tasks(tasks: Sequence[TaskT],
                chunksize: int) -> List[List[TaskT]]:
    """Group ``tasks`` into consecutive chunks of up to ``chunksize`` items.

    Tiny simulation tasks are dominated by per-task dispatch cost (pickling,
    IPC, result marshalling) when fanned across a process pool one at a
    time.  Batching them into chunk-level work items — each worker call
    processing a whole chunk and returning a list of results — amortises
    that overhead; order is preserved, so flattening the chunked results
    reproduces the unchunked result list exactly.
    """
    if chunksize < 1:
        raise ValueError("chunksize must be positive")
    tasks = list(tasks)
    return [tasks[i:i + chunksize] for i in range(0, len(tasks), chunksize)]


def _spawn_pool(pool_mode: str, workers: int,
                initializer: Optional[Callable[..., None]],
                initargs: tuple):
    """Build and probe a pool; ``None`` when this mode cannot run here.

    The no-op probe commits nothing to the pool, so sandboxes without
    process-spawn rights (or initializers that only work in some modes)
    degrade cleanly instead of poisoning the sweep itself.
    """
    executor_cls = (concurrent.futures.ProcessPoolExecutor
                    if pool_mode == "process"
                    else concurrent.futures.ThreadPoolExecutor)
    pool = None
    try:
        pool = executor_cls(max_workers=workers, initializer=initializer,
                            initargs=initargs)
        pool.submit(_noop).result()
        return pool
    except (OSError, BrokenExecutor):
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        return None


def _terminate_pool(pool) -> None:
    """Tear a pool down without waiting on hung or dead workers.

    ``ProcessPoolExecutor.shutdown`` never kills a stuck worker; terminating
    the worker processes directly (best-effort, private attribute) is what
    actually frees a pool wedged on a hung task.
    """
    processes = dict(getattr(pool, "_processes", None) or {})
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes.values():
        try:
            process.terminate()
        except Exception:
            pass


def run_sweep(worker: Callable[[TaskT], ResultT],
              tasks: Sequence[TaskT],
              workers: Optional[int] = None,
              mode: str = "process",
              chunksize: Optional[int] = None,
              initializer: Optional[Callable[..., None]] = None,
              initargs: tuple = (),
              timeout: Optional[float] = None,
              retries: int = 0,
              on_error: str = "raise",
              backoff_base: float = 0.05,
              backoff_cap: float = 2.0,
              backoff_seed: Optional[int] = None,
              journal: Optional[str] = None,
              resume: Optional[str] = None,
              max_pool_rebuilds: int = 2) -> List[Any]:
    """Apply ``worker`` to every task, tolerating worker faults.

    Parameters
    ----------
    worker:
        Callable applied to each task.  Must be a module-level function (and
        the tasks picklable) for ``mode="process"``.
    tasks:
        Work items; results come back in the same order.
    workers:
        Pool size.  ``None``, ``0`` or ``1`` runs serially in-process;
        negative values are rejected.
    mode:
        ``"process"`` (default), ``"thread"``, or ``"serial"``.  Threads only
        help when the worker releases the GIL (NumPy-heavy batches); process
        pools parallelise pure-Python simulation too.  When a pool cannot
        spawn or keeps breaking, execution degrades along
        ``process -> thread -> serial``, resubmitting only unfinished tasks.
    chunksize:
        Tasks per dispatched work item, honoured identically in both pool
        modes.  ``None`` keeps the default heuristic of about four chunks
        per worker.  For coarser batching — e.g. one work item per group of
        related tasks — pre-group the tasks with :func:`chunk_tasks` and
        give ``worker`` a chunk-level callable.
    initializer, initargs:
        Run ``initializer(*initargs)`` once per worker before its first
        task — e.g. to pre-warm a process's trace cache.  On the serial path
        (requested or degraded-to) it runs exactly once in-process before
        the remaining tasks.
    timeout:
        Per-task deadline in seconds; a chunk of *k* tasks gets
        ``k * timeout``.  Enforced in the pool modes only (serial execution
        cannot pre-empt a running task).  An expired running dispatch tears
        the pool down — hung worker processes are terminated — and charges
        only the expired tasks an attempt.
    retries:
        Failed attempts a task may retry (so a task runs at most
        ``retries + 1`` times), with exponential backoff and seeded jitter
        (``backoff_base``/``backoff_cap``/``backoff_seed``; see
        :func:`backoff_delays`).  ``backoff_base=0`` disables sleeping.
    on_error:
        ``"raise"`` (default) aborts the sweep with :class:`SweepError` once
        any task exhausts its retries; ``"collect"`` stores a
        :class:`TaskFailure` in that task's result slot and completes the
        rest of the sweep.  Collected failures are never journalled, so a
        resumed run retries them.
    journal, resume:
        Paths to an append-only :class:`~repro.engine.checkpoint.SweepJournal`.
        ``journal`` records every completed result as it arrives; ``resume``
        pre-fills result slots from a previous journal (matched by position
        *and* task digest) so completed work is never re-executed.  Pass the
        same path for both to make one file the sweep's checkpoint.
    max_pool_rebuilds:
        Consecutive no-progress pool breaks tolerated in one mode before
        degrading to the next; a break that lands new results resets the
        counter.
    """
    if mode not in _MODES:
        raise ValueError(f"unknown sweep mode {mode!r}; expected one of {_MODES}")
    if on_error not in ON_ERROR_POLICIES:
        raise ValueError(f"unknown on_error policy {on_error!r}; expected one "
                         f"of {ON_ERROR_POLICIES}")
    if chunksize is not None and chunksize < 1:
        raise ValueError("chunksize must be positive")
    if workers is not None and workers < 0:
        raise ValueError("workers must be non-negative")
    if timeout is not None and timeout <= 0:
        raise ValueError("timeout must be positive")
    if retries < 0:
        raise ValueError("retries must be non-negative")
    tasks = list(tasks)
    if not tasks:
        return []

    results: List[Any] = [_PENDING] * len(tasks)
    attempts = [0] * len(tasks)
    rng = random.Random(backoff_seed)

    digests: List[str] = []
    if journal is not None or resume is not None:
        digests = [task_digest(task) for task in tasks]
    if resume is not None:
        loaded = SweepJournal(resume).load()
        for index in range(len(tasks)):
            record = loaded.get((index, digests[index]), _PENDING)
            if record is not _PENDING:
                results[index] = record
    writer: Optional[SweepJournal] = None
    if journal is not None:
        writer = SweepJournal(journal)
        writer.ensure_header()

    def record_result(index: int, value: Any) -> None:
        results[index] = value
        if writer is not None:
            writer.append(index, digests[index], value)

    def fail(index: int, error_type: str, message: str,
             failure_mode: str) -> None:
        failure = TaskFailure(task=repr(tasks[index]), error_type=error_type,
                              message=message, attempts=attempts[index],
                              mode=failure_mode)
        if on_error == "raise":
            raise SweepError(failure)
        results[index] = failure

    def sleep_backoff(attempt: int) -> None:
        if backoff_base <= 0:
            return
        delay = backoff_base * (2 ** (attempt - 1)) * (0.5 + rng.random())
        time.sleep(min(backoff_cap, delay))

    def pending_indices() -> List[int]:
        return [i for i in range(len(tasks)) if results[i] is _PENDING]

    def run_serial(pending: List[int]) -> None:
        if initializer is not None:
            initializer(*initargs)
        for index in pending:
            while True:
                try:
                    record_result(index, worker(tasks[index]))
                    break
                except Exception as exc:
                    attempts[index] += 1
                    if attempts[index] <= retries:
                        sleep_backoff(attempts[index])
                        continue
                    fail(index, type(exc).__name__, str(exc), "serial")
                    break

    def drain_pool(pool, pool_mode: str, pending: List[int],
                   pool_workers: int, pool_chunksize: int) -> None:
        """Push ``pending`` through ``pool`` until done or the pool breaks."""
        queue: Deque[List[int]] = collections.deque(
            chunk_tasks(pending, pool_chunksize))
        inflight: Dict[Any, Tuple[List[int], Optional[float]]] = {}

        def submit(indices: List[int]) -> None:
            chunk = [tasks[i] for i in indices]
            try:
                future = pool.submit(_guarded_chunk, worker, chunk)
            except BrokenExecutor as exc:
                raise _PoolBroken(
                    indices + [i for ind, _ in inflight.values() for i in ind],
                    type(exc).__name__,
                    str(exc) or "worker pool broke on submit")
            deadline = (time.monotonic() + timeout * len(indices)
                        if timeout is not None else None)
            inflight[future] = (indices, deadline)

        while queue or inflight:
            # Cap in-flight dispatches at the pool size so a submitted
            # chunk starts (approximately) immediately — the per-task
            # deadline below is measured from submission.
            while queue and len(inflight) < pool_workers:
                submit(queue.popleft())
            deadlines = [d for _, d in inflight.values() if d is not None]
            wait_for = (max(0.0, min(deadlines) - time.monotonic())
                        if deadlines else None)
            done, _ = concurrent.futures.wait(
                set(inflight), timeout=wait_for,
                return_when=concurrent.futures.FIRST_COMPLETED)
            if not done:
                now = time.monotonic()
                expired_running: List[int] = []
                for future in list(inflight):
                    indices, deadline = inflight[future]
                    if deadline is None or deadline > now or future.done():
                        continue
                    if future.cancel():
                        # Never started: not the task's fault — requeue
                        # without charging an attempt.
                        inflight.pop(future)
                        queue.append(indices)
                    else:
                        expired_running.extend(indices)
                if expired_running:
                    raise _PoolBroken(
                        expired_running, "TimeoutError",
                        f"task exceeded the {timeout:.6g}s per-task timeout")
                continue
            broken: Optional[BrokenExecutor] = None
            broken_indices: List[int] = []
            for future in done:
                indices, _ = inflight.pop(future)
                try:
                    outcomes = future.result()
                except BrokenExecutor as exc:
                    broken = exc
                    broken_indices.extend(indices)
                    continue
                except Exception as exc:
                    # The dispatch itself failed (e.g. unpicklable chunk):
                    # every task in it is charged the error.
                    outcomes = [("err", type(exc).__name__, str(exc))] * len(indices)
                for index, outcome in zip(indices, outcomes):
                    if outcome[0] == "ok":
                        record_result(index, outcome[1])
                        continue
                    attempts[index] += 1
                    if attempts[index] <= retries:
                        sleep_backoff(attempts[index])
                        queue.append([index])
                    else:
                        fail(index, outcome[1], outcome[2], pool_mode)
            if broken is not None:
                broken_indices.extend(
                    i for ind, _ in inflight.values() for i in ind)
                raise _PoolBroken(
                    broken_indices, type(broken).__name__,
                    str(broken) or "worker pool broke mid-sweep")

    pending = pending_indices()
    if not pending:
        return results
    if mode == "serial" or workers is None or workers <= 1:
        run_serial(pending)
        return results

    current_mode = mode
    rebuilds = 0
    completed_at_last_break = len(tasks) - len(pending)
    while True:
        pending = pending_indices()
        if not pending:
            break
        if current_mode == "serial":
            run_serial(pending)
            break
        pool = _spawn_pool(current_mode, workers, initializer, initargs)
        if pool is None:
            current_mode = _DEGRADE[current_mode]
            rebuilds = 0
            continue
        pool_chunksize = (chunksize if chunksize is not None
                          else max(1, len(pending) // (workers * 4)))
        try:
            drain_pool(pool, current_mode, pending, workers, pool_chunksize)
        except _PoolBroken as break_event:
            _terminate_pool(pool)
            for index in break_event.penalised:
                if results[index] is not _PENDING:
                    continue
                attempts[index] += 1
                if attempts[index] > retries:
                    fail(index, break_event.error_type, break_event.message,
                         current_mode)
            completed = len(tasks) - len(pending_indices())
            if completed > completed_at_last_break:
                rebuilds = 1
            else:
                rebuilds += 1
            completed_at_last_break = completed
            if rebuilds > max_pool_rebuilds:
                current_mode = _DEGRADE[current_mode]
                rebuilds = 0
            continue
        except BaseException:
            _terminate_pool(pool)
            raise
        else:
            pool.shutdown()
            break
    return results
