"""Address arithmetic helpers.

The simulators in this repository pass plain integers around as addresses,
but several subsystems need to slice those integers consistently: block
offset, set index, tag, page offset, virtual page number.  Collecting that
arithmetic here keeps the bit-twiddling in one audited place.

All helpers validate that the relevant size is a power of two, matching the
hardware structures they model.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "is_power_of_two",
    "log2_exact",
    "block_number",
    "block_offset",
    "block_base",
    "page_number",
    "page_offset",
    "AddressLayout",
]


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    return value > 0 and value & (value - 1) == 0


def log2_exact(value: int, what: str = "value") -> int:
    """Return ``log2(value)``, requiring an exact power of two."""
    if not is_power_of_two(value):
        raise ValueError(f"{what} must be a positive power of two, got {value}")
    return value.bit_length() - 1


def block_number(address: int, block_size: int) -> int:
    """The block (line) number containing ``address``."""
    if address < 0:
        raise ValueError("address must be non-negative")
    return address >> log2_exact(block_size, "block_size")


def block_offset(address: int, block_size: int) -> int:
    """Offset of ``address`` within its block."""
    if address < 0:
        raise ValueError("address must be non-negative")
    return address & (block_size - 1) if is_power_of_two(block_size) else _raise(block_size)


def block_base(address: int, block_size: int) -> int:
    """First byte address of the block containing ``address``."""
    return block_number(address, block_size) << log2_exact(block_size, "block_size")


def page_number(address: int, page_size: int) -> int:
    """The virtual/physical page number containing ``address``."""
    if address < 0:
        raise ValueError("address must be non-negative")
    return address >> log2_exact(page_size, "page_size")


def page_offset(address: int, page_size: int) -> int:
    """Offset of ``address`` within its page."""
    if address < 0:
        raise ValueError("address must be non-negative")
    return address & (page_size - 1)


def _raise(block_size: int):
    raise ValueError(f"block_size must be a positive power of two, got {block_size}")


@dataclass(frozen=True)
class AddressLayout:
    """Describes how a cache slices addresses into offset / index / tag.

    This is purely descriptive (the caches themselves work on block numbers),
    but it is what Section 3.1's page-size argument is about: with a 4 KB
    page and a conventional cache, only ``page_offset_bits - offset_bits``
    index bits are untranslated, which caps the virtually-indexed,
    physically-tagged cache size.  The layout object makes those quantities
    explicit so the experiments and documentation can compute them.
    """

    block_size: int
    num_sets: int
    page_size: int = 4096

    def __post_init__(self) -> None:
        log2_exact(self.block_size, "block_size")
        log2_exact(self.num_sets, "num_sets")
        log2_exact(self.page_size, "page_size")

    @property
    def offset_bits(self) -> int:
        """Bits used for the within-block offset."""
        return log2_exact(self.block_size)

    @property
    def index_bits(self) -> int:
        """Bits used for the set index."""
        return log2_exact(self.num_sets)

    @property
    def page_offset_bits(self) -> int:
        """Bits untranslated by paging."""
        return log2_exact(self.page_size)

    @property
    def untranslated_index_bits(self) -> int:
        """How many of the index bits lie inside the page offset."""
        available = self.page_offset_bits - self.offset_bits
        return max(0, min(self.index_bits, available))

    @property
    def index_exceeds_page(self) -> bool:
        """True when indexing needs address bits beyond the page offset.

        This is the situation that forces the design alternatives of
        Section 3.1 (physical indexing, large pages, virtual tags, or
        rehashing); it is always true for I-Poly functions of useful width.
        """
        return self.untranslated_index_bits < self.index_bits

    def usable_hash_bits(self) -> int:
        """Address bits available to a hash that must stay below the page boundary."""
        return self.page_offset_bits - self.offset_bits
