"""Unit tests for the processor building blocks (predictors, FUs, resources, LSQ)."""

import pytest

from repro.cpu.address_predictor import StrideAddressPredictor
from repro.cpu.branch_predictor import BimodalBranchPredictor
from repro.cpu.functional_units import (
    TABLE1_TIMINGS,
    FunctionalUnit,
    FunctionalUnitPool,
    OperationTiming,
)
from repro.cpu.isa import Instruction, OpClass
from repro.cpu.lsq import StoreForwardingBuffer
from repro.cpu.resources import ThroughputLimiter, WindowResource


class TestInstruction:
    def test_memory_needs_address(self):
        with pytest.raises(ValueError):
            Instruction(pc=4, op=OpClass.LOAD, dest=1)

    def test_branch_needs_outcome(self):
        with pytest.raises(ValueError):
            Instruction(pc=4, op=OpClass.BRANCH)

    def test_register_range_checked(self):
        with pytest.raises(ValueError):
            Instruction(pc=4, op=OpClass.INT_ALU, dest=99)
        with pytest.raises(ValueError):
            Instruction(pc=4, op=OpClass.INT_ALU, dest=1, srcs=(70,))

    def test_classification_properties(self):
        load = Instruction(pc=0, op=OpClass.LOAD, dest=1, address=64)
        assert load.is_load and load.is_memory and not load.is_store
        fp = Instruction(pc=0, op=OpClass.FP_ADD, dest=40, srcs=(33, 34))
        assert fp.writes_fp


class TestBranchPredictor:
    def test_learns_a_biased_branch(self):
        predictor = BimodalBranchPredictor(entries=64)
        pc = 0x400
        for _ in range(4):
            predictor.update(pc, taken=True)
        assert predictor.predict(pc) is True

    def test_counter_saturation_and_recovery(self):
        predictor = BimodalBranchPredictor(entries=64)
        pc = 0x404
        for _ in range(10):
            predictor.update(pc, taken=True)
        predictor.update(pc, taken=False)       # one anomaly
        assert predictor.predict(pc) is True     # still predicts taken

    def test_misprediction_ratio(self):
        predictor = BimodalBranchPredictor(entries=64)
        outcomes = [True, True, False, True]
        for taken in outcomes:
            predictor.update(0x500, taken)
        assert 0.0 <= predictor.misprediction_ratio <= 1.0
        assert predictor.predictions == len(outcomes)

    def test_distinct_branches_use_distinct_counters(self):
        predictor = BimodalBranchPredictor(entries=1024)
        for _ in range(4):
            predictor.update(0x100, True)
            predictor.update(0x200, False)
        assert predictor.predict(0x100) is True
        assert predictor.predict(0x200) is False

    def test_entries_power_of_two(self):
        with pytest.raises(ValueError):
            BimodalBranchPredictor(entries=100)

    def test_reset(self):
        predictor = BimodalBranchPredictor(entries=64)
        predictor.update(0, True)
        predictor.reset()
        assert predictor.predictions == 0


class TestAddressPredictor:
    def test_learns_constant_stride(self):
        predictor = StrideAddressPredictor(entries=64)
        pc = 0x400
        addresses = [1000 + 16 * i for i in range(10)]
        correct = [predictor.update(pc, a) for a in addresses]
        # After warm-up the predictions become confident and correct.
        assert correct[-1] is True
        prediction = predictor.predict(pc)
        assert prediction.usable
        assert prediction.predicted_address == addresses[-1] + 16

    def test_irregular_stream_not_confident(self):
        predictor = StrideAddressPredictor(entries=64)
        pc = 0x404
        for a in (10, 5000, 77, 123456, 42, 999):
            predictor.update(pc, a)
        assert not predictor.predict(pc).confident

    def test_stride_frozen_while_confident(self):
        """The paper's rule: the stride is only updated while the counter < 2."""
        predictor = StrideAddressPredictor(entries=64)
        pc = 0x408
        for i in range(8):
            predictor.update(pc, 100 + 8 * i)        # establish stride 8
        predictor.update(pc, 5000)                   # one irregular access
        entry = predictor._table[predictor._index(pc)]
        assert entry.stride == 8                     # stride survives

    def test_untagged_table_aliases(self):
        predictor = StrideAddressPredictor(entries=4)
        # PCs 0x0 and 0x10 map to the same entry (4-entry table, >>2 index).
        predictor.update(0x0, 100)
        predictor.update(0x10, 9999)
        entry0 = predictor._table[predictor._index(0x0)]
        entry1 = predictor._table[predictor._index(0x10)]
        assert entry0 is entry1

    def test_statistics(self):
        predictor = StrideAddressPredictor(entries=64)
        pc = 0x40C
        for i in range(20):
            predictor.predict(pc)
            predictor.update(pc, 64 * i)
        assert predictor.lookups == 20
        assert 0.0 <= predictor.coverage <= 1.0
        assert 0.0 <= predictor.accuracy <= 1.0

    def test_paper_configuration(self):
        predictor = StrideAddressPredictor(entries=1024)
        assert predictor.entries == 1024


class TestFunctionalUnits:
    def test_table1_latencies(self):
        assert TABLE1_TIMINGS[OpClass.INT_ALU].latency == 1
        assert TABLE1_TIMINGS[OpClass.INT_MUL].latency == 9
        assert TABLE1_TIMINGS[OpClass.INT_DIV].latency == 67
        assert TABLE1_TIMINGS[OpClass.FP_ADD].latency == 4
        assert TABLE1_TIMINGS[OpClass.FP_DIV].latency == 16
        assert TABLE1_TIMINGS[OpClass.FP_SQRT].latency == 35

    def test_pipelined_unit_repeat_rate_one(self):
        unit = FunctionalUnit("fp-mul", (OpClass.FP_MUL,), TABLE1_TIMINGS)
        s1, c1 = unit.issue(OpClass.FP_MUL, now=0)
        s2, c2 = unit.issue(OpClass.FP_MUL, now=0)
        assert (s1, c1) == (0, 4)
        assert (s2, c2) == (1, 5)       # fully pipelined: next cycle

    def test_unpipelined_divider_blocks(self):
        unit = FunctionalUnit("div", (OpClass.INT_DIV,), TABLE1_TIMINGS)
        unit.issue(OpClass.INT_DIV, now=0)
        start, _ = unit.issue(OpClass.INT_DIV, now=0)
        assert start == 67              # repeat rate equals the latency

    def test_unit_rejects_wrong_op(self):
        unit = FunctionalUnit("fp-mul", (OpClass.FP_MUL,), TABLE1_TIMINGS)
        with pytest.raises(ValueError):
            unit.issue(OpClass.INT_ALU, now=0)

    def test_pool_has_two_effective_address_units(self):
        pool = FunctionalUnitPool()
        # Three loads issued at the same cycle: the third must wait.
        starts = [pool.issue(OpClass.LOAD, now=0)[0] for _ in range(3)]
        assert starts.count(0) == 2
        assert max(starts) == 1

    def test_pool_routes_to_correct_unit(self):
        pool = FunctionalUnitPool()
        _, done = pool.issue(OpClass.FP_SQRT, now=0)
        assert done == 35

    def test_operation_timing_validation(self):
        with pytest.raises(ValueError):
            OperationTiming(latency=0, repeat=1)


class TestResources:
    def test_window_resource_delays_when_full(self):
        rob = WindowResource(capacity=2)
        rob.acquire(0, release_cycle=10)
        rob.acquire(0, release_cycle=12)
        # Third acquisition must wait until the oldest holder releases.
        assert rob.earliest_acquire(0) == 10
        actual = rob.acquire(0, release_cycle=20)
        assert actual == 10
        assert rob.stall_events == 1

    def test_window_resource_free_slots_do_not_delay(self):
        regs = WindowResource(capacity=4)
        assert regs.acquire(3, release_cycle=9) == 3
        assert regs.stall_events == 0

    def test_window_release_before_acquire_rejected(self):
        with pytest.raises(ValueError):
            WindowResource(2).acquire(5, release_cycle=4)

    def test_throughput_limiter_enforces_width(self):
        fetch = ThroughputLimiter(width=2)
        cycles = [fetch.record(0) for _ in range(5)]
        assert cycles == [0, 0, 1, 1, 2]

    def test_throughput_limiter_gaps_reset_bandwidth(self):
        commit = ThroughputLimiter(width=2)
        commit.record(0)
        commit.record(0)
        assert commit.record(10) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowResource(0)
        with pytest.raises(ValueError):
            ThroughputLimiter(0)


class TestStoreForwarding:
    def test_forwarding_from_buffered_store(self):
        buffer = StoreForwardingBuffer()
        buffer.record_store(seq=5, address=0x100, address_ready_cycle=10,
                            commit_cycle=50)
        ready = buffer.forward(load_seq=7, address=0x100, load_ready_cycle=20)
        assert ready == 21
        assert buffer.forwards == 1

    def test_no_forwarding_from_younger_store(self):
        buffer = StoreForwardingBuffer()
        buffer.record_store(seq=9, address=0x100, address_ready_cycle=10,
                            commit_cycle=50)
        assert buffer.forward(load_seq=7, address=0x100, load_ready_cycle=20) is None

    def test_no_forwarding_after_store_drains(self):
        buffer = StoreForwardingBuffer()
        buffer.record_store(seq=1, address=0x200, address_ready_cycle=5,
                            commit_cycle=8)
        assert buffer.forward(load_seq=3, address=0x200, load_ready_cycle=20) is None

    def test_different_address_no_forwarding(self):
        buffer = StoreForwardingBuffer()
        buffer.record_store(seq=1, address=0x200, address_ready_cycle=5,
                            commit_cycle=100)
        assert buffer.forward(load_seq=2, address=0x240, load_ready_cycle=10) is None

    def test_youngest_store_wins(self):
        buffer = StoreForwardingBuffer()
        buffer.record_store(seq=1, address=0x300, address_ready_cycle=5,
                            commit_cycle=100)
        buffer.record_store(seq=4, address=0x300, address_ready_cycle=30,
                            commit_cycle=120)
        ready = buffer.forward(load_seq=6, address=0x300, load_ready_cycle=10)
        assert ready == 31      # waits for the younger store's address

    def test_reset(self):
        buffer = StoreForwardingBuffer()
        buffer.record_store(1, 0x10, 1, 10)
        buffer.reset()
        assert buffer.forward(2, 0x10, 5) is None
