"""Hardware view of linear (XOR-based) index functions.

Both the conventional bit-select function and the I-Poly modulus are *linear*
over GF(2): each output index bit is the XOR of a fixed subset of input
address bits.  That means the whole placement function can be described by a
GF(2) bit matrix — exactly what a hardware implementation is: one XOR tree
per index bit whose inputs are the matrix's ones.

This module derives that matrix from any :class:`~repro.core.index.IndexFunction`
by probing it with single-bit inputs, checks that the probed function really
is linear, and reports the hardware cost figures the paper quotes in
Section 3 (per-bit fan-in, gate counts, XOR-tree depth).

The paper states that for its experiments the per-bit fan-in never exceeds 5
and that an 8-bit index needs "just eight XOR gates with fan-in of 3 or 4";
``tests/test_xor_matrix.py`` checks those claims against the polynomials used
by the experiment drivers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

from .index import IndexFunction

__all__ = [
    "XorMatrix",
    "HardwareCost",
    "derive_xor_matrix",
    "is_linear",
    "choose_low_fanin_polynomial",
]


@dataclass(frozen=True)
class HardwareCost:
    """Summary of the XOR-tree implementation cost of an index function.

    Attributes
    ----------
    index_bits:
        Number of output bits (one XOR tree each).
    max_fan_in:
        Largest number of address bits feeding any single index bit.
    mean_fan_in:
        Average fan-in over all index bits.
    total_inputs:
        Total number of (address-bit, index-bit) connections.
    two_input_gates:
        Number of 2-input XOR gates needed if each tree is built from
        2-input gates (``fan_in - 1`` per tree).
    tree_depth_gates:
        Depth of the deepest balanced XOR tree in 2-input-gate levels
        (``ceil(log2(fan_in))``); this is the extra delay the index function
        adds to the address path.
    """

    index_bits: int
    max_fan_in: int
    mean_fan_in: float
    total_inputs: int
    two_input_gates: int
    tree_depth_gates: int


@dataclass
class XorMatrix:
    """GF(2) matrix mapping address bits to index bits.

    ``rows[i]`` is an integer bit-mask over the input address bits: bit ``j``
    of ``rows[i]`` is set when address bit ``j`` participates in the XOR that
    produces index bit ``i``.
    """

    address_bits: int
    rows: List[int] = field(default_factory=list)

    @property
    def index_bits(self) -> int:
        """Number of output (index) bits."""
        return len(self.rows)

    def fan_in(self, index_bit: int) -> int:
        """Number of address bits XORed to produce ``index_bit``."""
        return bin(self.rows[index_bit]).count("1")

    def inputs_of(self, index_bit: int) -> List[int]:
        """The address-bit positions feeding ``index_bit``, ascending."""
        row = self.rows[index_bit]
        return [j for j in range(self.address_bits) if row >> j & 1]

    def apply(self, block_number: int) -> int:
        """Evaluate the matrix on ``block_number`` (for cross-checking)."""
        masked = block_number & ((1 << self.address_bits) - 1)
        result = 0
        for i, row in enumerate(self.rows):
            parity = bin(masked & row).count("1") & 1
            result |= parity << i
        return result

    def cost(self) -> HardwareCost:
        """Return the :class:`HardwareCost` summary for this matrix."""
        fan_ins = [self.fan_in(i) for i in range(self.index_bits)]
        max_fan_in = max(fan_ins) if fan_ins else 0
        total = sum(fan_ins)
        gates = sum(max(f - 1, 0) for f in fan_ins)
        depth = max((math.ceil(math.log2(f)) if f > 1 else 0) for f in fan_ins) if fan_ins else 0
        return HardwareCost(
            index_bits=self.index_bits,
            max_fan_in=max_fan_in,
            mean_fan_in=total / self.index_bits if self.index_bits else 0.0,
            total_inputs=total,
            two_input_gates=gates,
            tree_depth_gates=depth,
        )

    def pretty(self) -> str:
        """Render the matrix as a small table (index bit -> address bits)."""
        lines = []
        for i in range(self.index_bits):
            inputs = ", ".join(f"a{j}" for j in self.inputs_of(i))
            lines.append(f"index[{i}] = XOR({inputs})")
        return "\n".join(lines)


def derive_xor_matrix(func: IndexFunction, way: int = 0) -> XorMatrix:
    """Derive the XOR matrix of a linear index function by single-bit probing.

    Raises :class:`ValueError` if the function is not linear over GF(2)
    (e.g. :class:`~repro.core.index.PrimeModuloIndexing`), because such a
    function has no pure-XOR hardware realisation.
    """
    bits = func.address_bits_used
    if func.index(0, way) != 0:
        raise ValueError(f"{func.name} is not linear: f(0) != 0")
    rows = [0] * func.index_bits
    for j in range(bits):
        column = func.index(1 << j, way)
        for i in range(func.index_bits):
            if column >> i & 1:
                rows[i] |= 1 << j
    matrix = XorMatrix(address_bits=bits, rows=rows)
    if not is_linear(func, matrix, way=way):
        raise ValueError(f"{func.name} is not a linear (XOR-realisable) index function")
    return matrix


def choose_low_fanin_polynomial(index_bits: int, address_bits: int,
                                max_candidates: int = 64) -> int:
    """Pick the irreducible polynomial minimising the worst XOR fan-in.

    The paper emphasises that its index functions never need XOR gates with
    more than five inputs.  Fan-in depends on both the polynomial and the
    number of address bits fed to the hash, so this helper enumerates up to
    ``max_candidates`` irreducible polynomials of the right degree, derives
    each one's XOR matrix for ``address_bits`` inputs, and returns the
    polynomial whose largest per-bit fan-in is smallest (ties broken by total
    gate count, then by numeric value for determinism).
    """
    from .gf2 import irreducible_polynomials
    from .index import IPolyIndexing

    if index_bits < 1 or address_bits < index_bits:
        raise ValueError("address_bits must be at least index_bits (both positive)")
    best_poly = None
    best_key = None
    for count, poly in enumerate(irreducible_polynomials(index_bits)):
        if count >= max_candidates:
            break
        func = IPolyIndexing(1 << index_bits, address_bits=address_bits,
                             polynomials=[poly])
        cost = derive_xor_matrix(func).cost()
        key = (cost.max_fan_in, cost.total_inputs, poly)
        if best_key is None or key < best_key:
            best_key = key
            best_poly = poly
    if best_poly is None:
        raise ValueError(f"no irreducible polynomial of degree {index_bits} found")
    return best_poly


def is_linear(func: IndexFunction, matrix: XorMatrix, way: int = 0, samples: int = 256) -> bool:
    """Check that ``matrix`` reproduces ``func`` on a deterministic sample of inputs.

    Linearity is verified by comparing the matrix evaluation against the
    original function for a spread of block numbers, including all single-bit
    and adjacent two-bit patterns plus a deterministic pseudo-random sweep.
    """
    bits = func.address_bits_used
    probes = set()
    for j in range(bits):
        probes.add(1 << j)
        if j + 1 < bits:
            probes.add((1 << j) | (1 << (j + 1)))
    # Deterministic LCG sweep keeps the check reproducible without `random`.
    state = 0x9E3779B97F4A7C15
    for _ in range(samples):
        state = (state * 6364136223846793005 + 1442695040888963407) & ((1 << 64) - 1)
        probes.add(state & ((1 << bits) - 1))
    return all(func.index(p, way) == matrix.apply(p) for p in probes)
