"""Load/store queue behaviour: store buffering and store-to-load forwarding.

In the modelled machine (as in the PA8000 the paper cites) stores are issued
to memory only when they commit, so that exceptions stay precise; loads that
depend on an earlier, still-buffered store obtain their data by *forwarding*:
the effective addresses are compared and, on a match, the store's data is
supplied directly without waiting for (or accessing) the cache.  Memory
dependences are otherwise speculated — a load never waits for an older store
with an unresolved address — which matches the ARB-style mechanism the paper
assumes and means the dependence machinery never throttles the experiments.

The model keeps the most recent buffered store per address.  A load forwards
when such a store exists, its address was computed no later than the load is
ready to issue, and it has not yet drained from the store buffer (i.e. it
commits after the load issues).  Forwarded loads complete with a one-cycle
latency and do not access the data cache, so they do not perturb the miss
ratios the experiments report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["BufferedStore", "StoreForwardingBuffer"]


@dataclass(frozen=True)
class BufferedStore:
    """The forwarding-relevant facts about one buffered store."""

    seq: int
    address: int
    address_ready_cycle: int
    commit_cycle: int


class StoreForwardingBuffer:
    """Tracks buffered stores and answers forwarding queries from younger loads."""

    def __init__(self, forward_latency: int = 1) -> None:
        if forward_latency < 0:
            raise ValueError("forward_latency must be non-negative")
        self._forward_latency = forward_latency
        self._by_address: Dict[int, BufferedStore] = {}
        self.stores_observed = 0
        self.forwards = 0

    @property
    def forward_latency(self) -> int:
        """Cycles from a forwarding decision to data availability."""
        return self._forward_latency

    def record_store(self, seq: int, address: int, address_ready_cycle: int,
                     commit_cycle: int) -> None:
        """Register a store (the youngest store per address wins)."""
        if address < 0:
            raise ValueError("address must be non-negative")
        existing = self._by_address.get(address)
        if existing is None or existing.seq < seq:
            self._by_address[address] = BufferedStore(seq, address,
                                                      address_ready_cycle,
                                                      commit_cycle)
        self.stores_observed += 1

    def forward(self, load_seq: int, address: int,
                load_ready_cycle: int) -> Optional[int]:
        """Return the cycle at which forwarded data is available, or ``None``.

        ``None`` means the load must access the cache.
        """
        store = self._by_address.get(address)
        if store is None or store.seq >= load_seq:
            return None
        if store.commit_cycle <= load_ready_cycle:
            # The store has already drained to the cache; no forwarding.
            return None
        self.forwards += 1
        return max(load_ready_cycle, store.address_ready_cycle) + self._forward_latency

    @property
    def forward_ratio(self) -> float:
        """Fraction of observed stores that later fed a forwarding load."""
        return self.forwards / self.stores_observed if self.stores_observed else 0.0

    def reset(self) -> None:
        """Clear all buffered stores and statistics."""
        self._by_address.clear()
        self.stores_observed = 0
        self.forwards = 0
