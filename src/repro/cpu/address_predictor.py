"""Memory address prediction (Section 3.4 / Section 4).

The paper proposes hiding the XOR-stage delay of I-Poly indexing behind a
*memory address predictor*: a table indexed by the load's instruction address
that remembers the last effective address and the last observed stride, plus
a 2-bit confidence counter.  Early in the pipeline the predicted address
(last + stride) is computed and hashed; if the prediction later proves
correct the speculative cache access that was started with the predicted line
is used, so the XOR delay (and one cycle of address computation) disappears
from the load's critical path.

The experimental configuration is: "a direct-mapped table with 1K entries and
without tags", each entry holding the last address, the last stride and a
2-bit saturating confidence counter.  Only when the counter's most
significant bit is set is the prediction considered correct.  The address
field is updated on every reference; the stride field is only updated while
the counter is below ``10`` binary (i.e. below 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["AddressPrediction", "StrideAddressPredictor"]


@dataclass(frozen=True)
class AddressPrediction:
    """Outcome of consulting the predictor for one load."""

    predicted_address: Optional[int]
    confident: bool

    @property
    def usable(self) -> bool:
        """True when the pipeline should launch a speculative access."""
        return self.confident and self.predicted_address is not None


class _Entry:
    __slots__ = ("last_address", "stride", "counter")

    def __init__(self) -> None:
        self.last_address = 0
        self.stride = 0
        self.counter = 0


class StrideAddressPredictor:
    """Tagless, direct-mapped last-address + stride predictor."""

    def __init__(self, entries: int = 1024, confidence_threshold: int = 2) -> None:
        if entries < 1 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        if not 1 <= confidence_threshold <= 3:
            raise ValueError("confidence_threshold must be between 1 and 3")
        self._entries = entries
        self._mask = entries - 1
        self._threshold = confidence_threshold
        self._table: List[_Entry] = [_Entry() for _ in range(entries)]
        self.lookups = 0
        self.confident_predictions = 0
        self.correct_predictions = 0

    @property
    def entries(self) -> int:
        """Number of table entries."""
        return self._entries

    def _index(self, pc: int) -> int:
        # The table is untagged: different loads may alias the same entry,
        # trading accuracy for cost exactly as the paper describes.
        return (pc >> 2) & self._mask

    def predict(self, pc: int) -> AddressPrediction:
        """Predict the next effective address of the load at ``pc``."""
        entry = self._table[self._index(pc)]
        self.lookups += 1
        confident = entry.counter >= self._threshold
        if confident:
            self.confident_predictions += 1
            return AddressPrediction(entry.last_address + entry.stride, True)
        return AddressPrediction(None, False)

    def update(self, pc: int, actual_address: int) -> bool:
        """Record the real address; returns True when a confident prediction was right.

        Implements the paper's update rules: the confidence counter saturates
        up on a correct last+stride prediction and down otherwise; the
        address field always tracks the latest reference; the stride field is
        frozen while the counter is confident (>= 2) so a single irregular
        access does not destroy an established stride.
        """
        if actual_address < 0:
            raise ValueError("actual_address must be non-negative")
        entry = self._table[self._index(pc)]
        predicted = entry.last_address + entry.stride
        was_confident = entry.counter >= self._threshold
        correct = predicted == actual_address

        if correct:
            entry.counter = min(3, entry.counter + 1)
        else:
            entry.counter = max(0, entry.counter - 1)
        if entry.counter < 2:
            entry.stride = actual_address - entry.last_address
        entry.last_address = actual_address

        if was_confident and correct:
            self.correct_predictions += 1
            return True
        return False

    @property
    def coverage(self) -> float:
        """Fraction of lookups that produced a confident prediction."""
        return (self.confident_predictions / self.lookups) if self.lookups else 0.0

    @property
    def accuracy(self) -> float:
        """Fraction of confident predictions that were correct."""
        if not self.confident_predictions:
            return 0.0
        return self.correct_predictions / self.confident_predictions

    def reset(self) -> None:
        """Clear the table and statistics."""
        self._table = [_Entry() for _ in range(self._entries)]
        self.lookups = 0
        self.confident_predictions = 0
        self.correct_predictions = 0
