"""Vectorized batch simulation engine.

The scalar models in :mod:`repro.cache` process one
:class:`~repro.trace.record.MemoryAccess` at a time and are the behavioural
reference; this package is the fast path.  It materialises traces into NumPy
arrays (:class:`AddressBatch`), computes placement indices for whole arrays
at once (:mod:`repro.engine.index_vec`, including a precomputed
GF(2)-remainder lookup table for I-Poly hashing), and simulates
set-associative, skewed and column-associative caches over address batches
(:mod:`repro.engine.batch_cache`) with bit-exact
:class:`~repro.cache.stats.CacheStats` agreement — enforced by the
differential suite in ``tests/test_engine_equivalence.py``.

:mod:`repro.engine.tabulated` accelerates the scalar I-Poly function itself
for the sequential processor simulator, :mod:`repro.engine.replay` replays
the recorded data-cache access stream of a processor simulation through the
batch kernels (bit-exact against the scalar L1 — the CPU leg of the
equivalence story, exercised by the :mod:`repro.cpu.fuzzer` harness), and
:mod:`repro.engine.sweep` fans experiment sweeps across
``concurrent.futures`` workers fault-tolerantly (per-task timeouts, seeded
retry backoff, ``on_error="collect"`` :class:`TaskFailure` slots, mid-sweep
pool rebuild with process→thread→serial degradation, and checkpoint/resume
through :mod:`repro.engine.checkpoint`; :mod:`repro.engine.faults` is the
deterministic chaos harness that proves those paths bit-exact).
:mod:`repro.engine.multiconfig` prices whole conventional-LRU
capacity/associativity sweeps out of single stack-distance /
all-associativity trace passes, and FIFO grids out of miss-driven event
replays of one occurrence-list pass (``MultiConfigPlan`` partitions a
sweep's tasks into profilable and kernel-run configurations; drivers
expose the policy as ``profile={"auto", "always", "never", "sampled"}``,
where ``"sampled"`` prices LRU groups approximately through the SHARDS
spatial-sampling profiles of :mod:`repro.engine.shards` at
``--sample-rate``/``--sample-size``/``--profile-seed``).

Experiment drivers expose the choice as ``engine={"reference", "vectorized"}``
(CLI: ``--engine``); :data:`ENGINES` names the valid values.
"""

from .batch import AddressBatch, materialise_batch
from .checkpoint import SweepJournal, task_digest
from .batch_cache import (
    BatchColumnAssociativeCache,
    BatchSetAssociativeCache,
    BatchVictimCache,
)
from .hierarchy_vec import (
    BatchTwoLevelHierarchy,
    BatchVirtualRealHierarchy,
    HierarchyBatchResult,
    MissStream,
    batch_hierarchy_like,
    batch_virtual_real_like,
)
from .index_vec import GF2RemainderTable, VectorizedIndex, vectorize_index
from .memo import (
    cached_block_numbers,
    cached_set_index_lists,
    cached_set_indices,
    memo_clear,
    memo_info,
)
from .multiconfig import (
    PROFILE_MODES,
    MultiCapacityFIFOProfile,
    MultiConfigFIFOBuilder,
    MultiConfigFIFOProfile,
    MultiConfigLRUProfile,
    MultiConfigPlan,
    MultiConfigProfileBuilder,
    ProfileCounts,
    StackDistanceBuilder,
    StackDistanceProfile,
    check_profile_mode,
    profile_cache_clear,
    profile_cache_info,
    run_lru_grid,
)
from .shards import (
    SampledMultiConfigLRUProfile,
    SampledMultiConfigProfileBuilder,
    SampledStackDistanceBuilder,
    SampledStackDistanceProfile,
)
from .replacement_vec import (
    VecReplacementState,
    make_vec_replacement,
    splitmix64_array,
)
from .replay import ReplayOutcome, batch_cache_like, replay_access_stream
from .set_decompose import group_by_set, run_decomposed_policy
from .skew_decompose import run_skew_decomposed_policy, run_victim_decomposed
from .sweep import (
    ON_ERROR_POLICIES,
    SweepError,
    TaskFailure,
    backoff_delays,
    chunk_tasks,
    run_sweep,
)
from .tabulated import TabulatedIPolyIndexing, tabulate_index_function
from .translate_vec import (
    BatchTranslationResult,
    BatchTranslator,
    batch_page_frames,
    batch_translate,
    run_tlb_kernel,
)

__all__ = [
    "ENGINES",
    "ENGINE_REFERENCE",
    "ENGINE_VECTORIZED",
    "check_engine",
    "AddressBatch",
    "materialise_batch",
    "BatchSetAssociativeCache",
    "BatchColumnAssociativeCache",
    "BatchVictimCache",
    "BatchTwoLevelHierarchy",
    "BatchVirtualRealHierarchy",
    "HierarchyBatchResult",
    "MissStream",
    "batch_hierarchy_like",
    "batch_virtual_real_like",
    "BatchTranslator",
    "BatchTranslationResult",
    "batch_page_frames",
    "batch_translate",
    "run_tlb_kernel",
    "VecReplacementState",
    "make_vec_replacement",
    "splitmix64_array",
    "group_by_set",
    "run_decomposed_policy",
    "run_skew_decomposed_policy",
    "run_victim_decomposed",
    "cached_block_numbers",
    "cached_set_indices",
    "cached_set_index_lists",
    "memo_info",
    "memo_clear",
    "PROFILE_MODES",
    "check_profile_mode",
    "ProfileCounts",
    "StackDistanceProfile",
    "StackDistanceBuilder",
    "MultiConfigLRUProfile",
    "MultiConfigProfileBuilder",
    "MultiCapacityFIFOProfile",
    "MultiConfigFIFOProfile",
    "MultiConfigFIFOBuilder",
    "SampledStackDistanceProfile",
    "SampledStackDistanceBuilder",
    "SampledMultiConfigLRUProfile",
    "SampledMultiConfigProfileBuilder",
    "MultiConfigPlan",
    "run_lru_grid",
    "profile_cache_info",
    "profile_cache_clear",
    "ReplayOutcome",
    "batch_cache_like",
    "replay_access_stream",
    "GF2RemainderTable",
    "VectorizedIndex",
    "vectorize_index",
    "run_sweep",
    "chunk_tasks",
    "ON_ERROR_POLICIES",
    "SweepError",
    "TaskFailure",
    "backoff_delays",
    "SweepJournal",
    "task_digest",
    "TabulatedIPolyIndexing",
    "tabulate_index_function",
]

#: The behavioural reference: scalar models, one access at a time.
ENGINE_REFERENCE = "reference"
#: The batch engine of this package.
ENGINE_VECTORIZED = "vectorized"
#: Valid values of every driver's ``engine`` parameter.
ENGINES = (ENGINE_REFERENCE, ENGINE_VECTORIZED)


def check_engine(engine: str) -> str:
    """Validate an ``engine`` parameter value, returning it normalised."""
    label = str(engine).strip().lower()
    if label not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    return label
