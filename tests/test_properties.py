"""Property-based tests (hypothesis) for the core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.fully_assoc import FullyAssociativeCache
from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.stats import MissKind
from repro.core.gf2 import degree, gf2_add, gf2_divmod, gf2_mod, gf2_mul
from repro.core.index import BitSelectIndexing, IPolyIndexing, XorFoldIndexing
from repro.core.xor_matrix import derive_xor_matrix
from repro.cpu.address_predictor import StrideAddressPredictor
from repro.cpu.resources import ThroughputLimiter, WindowResource

polys = st.integers(min_value=0, max_value=(1 << 24) - 1)
nonzero_polys = st.integers(min_value=1, max_value=(1 << 24) - 1)
blocks = st.integers(min_value=0, max_value=(1 << 30) - 1)


class TestGF2Properties:
    @given(polys, polys)
    def test_addition_is_commutative_and_self_inverse(self, a, b):
        assert gf2_add(a, b) == gf2_add(b, a)
        assert gf2_add(gf2_add(a, b), b) == a

    @given(polys, polys)
    def test_multiplication_commutes(self, a, b):
        assert gf2_mul(a, b) == gf2_mul(b, a)

    @given(polys, polys, polys)
    def test_multiplication_distributes_over_addition(self, a, b, c):
        assert gf2_mul(a, gf2_add(b, c)) == gf2_add(gf2_mul(a, b), gf2_mul(a, c))

    @given(polys, nonzero_polys)
    def test_division_identity(self, a, b):
        quotient, remainder = gf2_divmod(a, b)
        assert gf2_add(gf2_mul(quotient, b), remainder) == a
        assert degree(remainder) < degree(b)

    @given(polys, polys, nonzero_polys)
    def test_mod_is_additive(self, a, b, p):
        assert gf2_mod(gf2_add(a, b), p) == gf2_add(gf2_mod(a, p), gf2_mod(b, p))


class TestIndexFunctionProperties:
    @given(blocks, st.sampled_from([16, 64, 128, 256]))
    def test_bit_select_in_range(self, block, sets):
        assert 0 <= BitSelectIndexing(sets).index(block) < sets

    @given(blocks, st.sampled_from([16, 64, 128, 256]), st.integers(0, 3))
    def test_xor_fold_in_range(self, block, sets, way):
        assert 0 <= XorFoldIndexing(sets).index(block, way) < sets

    @settings(deadline=None)
    @given(blocks, st.sampled_from([64, 128, 256]), st.integers(0, 1))
    def test_ipoly_in_range(self, block, sets, way):
        fn = IPolyIndexing(sets, ways=2, skewed=True, address_bits=19)
        assert 0 <= fn.index(block, way) < sets

    @given(blocks, blocks)
    def test_ipoly_is_linear_over_gf2(self, a, b):
        fn = IPolyIndexing(128, address_bits=19)
        assert fn.index(a ^ b) == fn.index(a) ^ fn.index(b)

    @given(blocks)
    def test_ipoly_deterministic(self, block):
        fn = IPolyIndexing(128, address_bits=19)
        assert fn.index(block) == fn.index(block)

    @settings(max_examples=10, deadline=None)
    @given(st.sampled_from([32, 64, 128, 256]))
    def test_derived_matrix_agrees_with_function_everywhere_sampled(self, sets):
        fn = IPolyIndexing(sets, address_bits=16)
        matrix = derive_xor_matrix(fn)
        for block in range(0, 1 << 16, 997):
            assert matrix.apply(block) == fn.index(block)


class TestCacheProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 2 ** 20), min_size=1, max_size=300))
    def test_immediate_rereference_always_hits(self, addresses):
        cache = SetAssociativeCache(1024, 32, 2)
        for address in addresses:
            cache.access(address)
            assert cache.access(address).hit

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 2 ** 16), min_size=1, max_size=300))
    def test_resident_blocks_never_exceed_capacity(self, addresses):
        cache = SetAssociativeCache(512, 32, 2,
                                    index_function=IPolyIndexing(8, ways=2,
                                                                 skewed=True,
                                                                 address_bits=12))
        for address in addresses:
            cache.access(address)
            assert len(cache.resident_blocks()) <= cache.num_blocks

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 2 ** 18), min_size=1, max_size=300))
    def test_stats_are_consistent(self, addresses):
        cache = SetAssociativeCache(1024, 32, 2, classify_misses=True)
        for i, address in enumerate(addresses):
            cache.access(address, is_write=(i % 5 == 0))
        stats = cache.stats
        assert stats.accesses == len(addresses)
        assert stats.hits + stats.misses == stats.accesses
        assert stats.loads + stats.stores == stats.accesses
        assert sum(stats.miss_kinds.values()) == stats.misses

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 2 ** 16), min_size=1, max_size=200))
    def test_fully_associative_never_has_conflict_misses(self, addresses):
        cache = FullyAssociativeCache(512, 32, classify_misses=True)
        for address in addresses:
            cache.access(address)
        assert cache.stats.miss_kinds[MissKind.CONFLICT] == 0

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 2 ** 16), min_size=1, max_size=200),
           st.sampled_from(["a2", "a2-Hx-Sk", "a2-Hp-Sk"]))
    def test_miss_ratio_never_below_fully_associative_minus_margin(
            self, addresses, scheme):
        """Full associativity with LRU is at least as good as any placement
        function on these short traces (no Belady anomalies at same capacity
        arise in practice here, small tolerance allowed)."""
        from repro.core.index import make_index_function
        fn = make_index_function(scheme, num_sets=16, ways=2, address_bits=14)
        cache = SetAssociativeCache(1024, 32, 2, index_function=fn)
        full = FullyAssociativeCache(1024, 32)
        for address in addresses:
            cache.access(address)
            full.access(address)
        assert cache.stats.misses >= full.stats.misses - 2


class TestPredictorProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 2 ** 20), st.integers(1, 4096), st.integers(4, 40))
    def test_constant_stride_is_learned(self, base, stride, count):
        predictor = StrideAddressPredictor(entries=64)
        pc = 0x1000
        for i in range(count):
            predictor.update(pc, base + stride * i)
        prediction = predictor.predict(pc)
        assert prediction.usable
        assert prediction.predicted_address == base + stride * count

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 2 ** 24), min_size=1, max_size=100))
    def test_accuracy_and_coverage_bounded(self, addresses):
        predictor = StrideAddressPredictor(entries=16)
        for i, address in enumerate(addresses):
            predictor.predict(0x40 + (i % 8) * 4)
            predictor.update(0x40 + (i % 8) * 4, address)
        assert 0.0 <= predictor.coverage <= 1.0
        assert 0.0 <= predictor.accuracy <= 1.0


class TestResourceProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 5), min_size=1, max_size=200),
           st.integers(1, 8))
    def test_throughput_limiter_never_exceeds_width(self, deltas, width):
        limiter = ThroughputLimiter(width)
        cycle = 0
        granted = []
        for delta in deltas:
            cycle += delta
            granted.append(limiter.record(cycle))
        for value in set(granted):
            assert granted.count(value) <= width

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 3), min_size=1, max_size=200),
           st.integers(1, 16))
    def test_window_resource_grant_never_before_request(self, deltas, capacity):
        window = WindowResource(capacity)
        request = 0
        for delta in deltas:
            request += delta
            expected = window.earliest_acquire(request)
            grant = window.acquire(request, release_cycle=expected + 10)
            assert grant == expected
            assert grant >= request
