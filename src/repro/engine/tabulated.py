"""Table-accelerated scalar I-Poly indexing for the processor path.

The out-of-order processor simulator is inherently sequential — every data
cache access depends on pipeline state — so it cannot consume address arrays.
What *can* be accelerated bit-exactly is the placement function itself: the
scalar :class:`~repro.core.index.IPolyIndexing` calls
:func:`~repro.core.gf2.gf2_mod`, a Python long-division loop, twice per
access on a two-way cache.  :class:`TabulatedIPolyIndexing` replaces that
with the chunked GF(2) remainder lookup tables of
:class:`~repro.engine.index_vec.GF2RemainderTable` — identical results, a
handful of list lookups per call.

This is what ``--engine vectorized`` means for the Table 2 / Table 3
processor experiments: same machine model, same access-by-access simulation,
same numbers, faster index hardware model.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.index import IndexFunction, IPolyIndexing, _check_block_and_way
from .index_vec import GF2RemainderTable, remainder_table

__all__ = ["TabulatedIPolyIndexing", "tabulate_index_function"]


class TabulatedIPolyIndexing(IPolyIndexing):
    """Drop-in :class:`IPolyIndexing` whose ``index`` uses lookup tables.

    Construction parameters are identical to the parent class; behaviour is
    bit-exact (asserted by the Hypothesis suite), only faster.
    """

    def __init__(
        self,
        num_sets: int,
        ways: int = 1,
        skewed: bool = False,
        address_bits: Optional[int] = None,
        polynomials: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(num_sets, ways=ways, skewed=skewed,
                         address_bits=address_bits, polynomials=polynomials)
        tables: Dict[int, GF2RemainderTable] = {
            poly: remainder_table(poly, self.address_bits_used)
            for poly in self.polynomials
        }
        self._tables = tables
        # Per-way table list resolved once so `index` avoids the modulo +
        # dict hop of `polynomial_for_way` on every access.
        way_count = max(1, len(self.polynomials))
        self._way_tables: List[GF2RemainderTable] = [
            tables[self.polynomial_for_way(way)] for way in range(way_count)
        ]

    @property
    def cache_key(self):
        if type(self) is not TabulatedIPolyIndexing:
            return None
        # Deliberately the parent's key: this class is a bit-exact drop-in
        # (same constructor parameters, identical mapping, asserted by the
        # Hypothesis suite), so sharing memoised set-index arrays with plain
        # IPolyIndexing instances is sound and saves the sweep a recompute.
        return ("ipoly", self.num_sets, self.is_skewed,
                self.address_bits_used, tuple(self.polynomials))

    def index(self, block_number: int, way: int = 0) -> int:
        _check_block_and_way(block_number, way)
        if self.is_skewed:
            table = self._way_tables[way % len(self._way_tables)]
        else:
            table = self._way_tables[0]
        return table.reduce_scalar(block_number)


def tabulate_index_function(fn: IndexFunction) -> IndexFunction:
    """Return a table-accelerated equivalent of ``fn`` where one exists.

    I-Poly functions are rebuilt as :class:`TabulatedIPolyIndexing` (same
    polynomials, same address window); every other family is already a few
    integer operations per call and is returned unchanged.
    """
    if isinstance(fn, TabulatedIPolyIndexing):
        return fn
    if isinstance(fn, IPolyIndexing):
        return TabulatedIPolyIndexing(
            num_sets=fn.num_sets,
            ways=max(1, len(fn.polynomials)),
            skewed=fn.is_skewed,
            address_bits=fn.address_bits_used,
            polynomials=fn.polynomials,
        )
    return fn
