"""Vectorized placement functions: whole-array set-index computation.

The scalar :mod:`repro.core.index` functions map one block number to one set
index; every trace-level experiment calls them once per access (and, for
skewed caches, once per way).  This module computes the same indices for a
whole NumPy array of block numbers at once:

* bit selection is a vectorized mask;
* the XOR fold is two vectorized field extractions, a per-way rotate and an
  XOR;
* the I-Poly remainder exploits the linearity of GF(2) division — the
  remainder of a sum (XOR) of terms is the XOR of the terms' remainders — so
  the polynomial remainder of every address bit can be precomputed once into
  per-byte lookup tables (:class:`GF2RemainderTable`) and the whole-array
  remainder becomes a handful of table gathers and XORs;
* the prime-modulus scheme is a vectorized ``%``.

Every vectorized function is built *from* a scalar
:class:`~repro.core.index.IndexFunction` instance via :func:`vectorize_index`
and is bit-exact with it by construction; the differential test-suite
(``tests/test_engine_equivalence.py`` and the Hypothesis properties in
``tests/test_engine_properties.py``) asserts element-wise agreement for all
families.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Type

import numpy as np

from ..core.gf2 import gf2_mod
from ..core.index import (
    BitSelectIndexing,
    IndexFunction,
    IPolyIndexing,
    PrimeModuloIndexing,
    SingleSetIndexing,
    XorFoldIndexing,
)

__all__ = [
    "GF2RemainderTable",
    "remainder_table",
    "VectorizedIndex",
    "vectorize_index",
]

#: Width (in bits) of one lookup-table chunk.  Eight keeps every table at 256
#: entries, small enough to stay resident in L1 while the gather runs.
_CHUNK_BITS = 8
_CHUNK_SIZE = 1 << _CHUNK_BITS
_CHUNK_MASK = _CHUNK_SIZE - 1


class GF2RemainderTable:
    """Precomputed GF(2) remainders of byte-aligned chunks for one polynomial.

    ``gf2_mod`` is linear over GF(2): ``rem(a ^ b) == rem(a) ^ rem(b)``.
    Splitting an ``address_bits``-wide block number into 8-bit chunks
    therefore reduces the whole-array remainder to one 256-entry table lookup
    per chunk plus XORs — no per-element Python division at all.

    Parameters
    ----------
    polynomial:
        The modulus polynomial (integer bit-encoding, as in
        :mod:`repro.core.gf2`).
    address_bits:
        Number of low-order block-number bits that participate; higher bits
        are truncated exactly like the scalar
        :class:`~repro.core.index.IPolyIndexing` does.
    """

    def __init__(self, polynomial: int, address_bits: int) -> None:
        if polynomial <= 1:
            raise ValueError("polynomial must have degree >= 1")
        if address_bits < 1:
            raise ValueError("address_bits must be positive")
        self.polynomial = polynomial
        self.address_bits = address_bits
        self._address_mask = np.uint64((1 << address_bits) - 1)
        num_chunks = (address_bits + _CHUNK_BITS - 1) // _CHUNK_BITS
        tables = np.empty((num_chunks, _CHUNK_SIZE), dtype=np.uint64)
        for chunk in range(num_chunks):
            shift = chunk * _CHUNK_BITS
            for value in range(_CHUNK_SIZE):
                tables[chunk, value] = gf2_mod(value << shift, polynomial)
        self._tables = tables
        # Plain-Python view of the same tables for scalar (per-int) lookups.
        self.scalar_tables: List[List[int]] = tables.astype(int).tolist()

    def reduce(self, blocks: np.ndarray) -> np.ndarray:
        """Return ``gf2_mod(block & mask, polynomial)`` for a whole array."""
        masked = blocks.astype(np.uint64, copy=False) & self._address_mask
        result = self._tables[0][masked & np.uint64(_CHUNK_MASK)]
        for chunk in range(1, self._tables.shape[0]):
            shift = np.uint64(chunk * _CHUNK_BITS)
            result ^= self._tables[chunk][(masked >> shift) & np.uint64(_CHUNK_MASK)]
        return result

    def reduce_scalar(self, block: int) -> int:
        """Scalar chunked lookup, bit-exact with :func:`~repro.core.gf2.gf2_mod`."""
        if block < 0:
            raise ValueError("block_number must be non-negative")
        masked = block & ((1 << self.address_bits) - 1)
        result = 0
        chunk = 0
        while masked:
            result ^= self.scalar_tables[chunk][masked & _CHUNK_MASK]
            masked >>= _CHUNK_BITS
            chunk += 1
        return result


@functools.lru_cache(maxsize=None)
def remainder_table(polynomial: int, address_bits: int) -> GF2RemainderTable:
    """Shared, cached :class:`GF2RemainderTable` per (polynomial, window).

    Filling a table runs hundreds of scalar GF(2) divisions; sweeps that
    build one cache per configuration (e.g. Figure 1's per-stride caches)
    would otherwise rebuild identical tables thousands of times.  Tables are
    immutable after construction, so sharing them is safe.
    """
    return GF2RemainderTable(polynomial, address_bits)


def _check_blocks(blocks: np.ndarray) -> np.ndarray:
    """Validate and normalise a block-number array.

    Rejects negative entries (which a silent cast to an unsigned dtype would
    wrap to huge positive block numbers) and entries at or above ``2**63``
    (which would overflow the engine's signed tag stores) — mirroring the
    scalar functions' ``ValueError`` on negative input.
    """
    blocks = np.asarray(blocks)
    if blocks.dtype.kind not in "iu":
        raise ValueError(f"block numbers must be integers, got dtype {blocks.dtype}")
    if blocks.dtype.kind == "i" and blocks.size and int(blocks.min()) < 0:
        raise ValueError("block numbers must be non-negative")
    if blocks.size and int(blocks.max()) >= (1 << 63):
        raise ValueError("block numbers must be below 2**63")
    return blocks.astype(np.uint64, copy=False)


class VectorizedIndex:
    """Array-at-a-time view of one scalar :class:`IndexFunction`.

    Obtained from :func:`vectorize_index`; computes per-way set indices for
    whole block-number arrays, bit-exactly matching ``scalar.index`` element
    by element.
    """

    def __init__(self, scalar: IndexFunction) -> None:
        self._scalar = scalar

    @property
    def scalar(self) -> IndexFunction:
        """The scalar function this vectorization was built from."""
        return self._scalar

    @property
    def num_sets(self) -> int:
        """Number of sets indexed into (same as the scalar function)."""
        return self._scalar.num_sets

    def way_indices(self, blocks: np.ndarray, way: int = 0) -> np.ndarray:
        """Set index of every block in ``blocks`` for one way (uint64 array)."""
        if way < 0:
            raise ValueError("way must be non-negative")
        return self._way_indices(_check_blocks(blocks), way)

    def all_way_indices(self, blocks: np.ndarray, ways: int) -> np.ndarray:
        """Per-way indices as a ``(ways, n)`` array."""
        if ways < 1:
            raise ValueError("ways must be at least 1")
        blocks = _check_blocks(blocks)
        if not self._scalar.is_skewed:
            row = self._way_indices(blocks, 0)
            return np.broadcast_to(row, (ways, row.shape[0]))
        return np.stack([self._way_indices(blocks, way) for way in range(ways)])

    # Subclasses implement the actual computation on validated uint64 input.
    def _way_indices(self, blocks: np.ndarray, way: int) -> np.ndarray:
        raise NotImplementedError


class _VecBitSelect(VectorizedIndex):
    def _way_indices(self, blocks: np.ndarray, way: int) -> np.ndarray:
        return blocks & np.uint64(self.num_sets - 1)


class _VecSingleSet(VectorizedIndex):
    def _way_indices(self, blocks: np.ndarray, way: int) -> np.ndarray:
        return np.zeros(blocks.shape, dtype=np.uint64)


class _VecPrimeModulo(VectorizedIndex):
    def _way_indices(self, blocks: np.ndarray, way: int) -> np.ndarray:
        return blocks % np.uint64(self._scalar.prime)


class _VecXorFold(VectorizedIndex):
    def _way_indices(self, blocks: np.ndarray, way: int) -> np.ndarray:
        scalar = self._scalar
        m = scalar.index_bits
        mask = np.uint64(scalar.num_sets - 1)
        low = blocks & mask
        high = (blocks >> np.uint64(m)) & mask
        if scalar.is_skewed:
            amount = way % m if m else 0
            if amount:
                high = ((high << np.uint64(amount))
                        | (high >> np.uint64(m - amount))) & mask
        return low ^ high


class _VecIPoly(VectorizedIndex):
    def __init__(self, scalar: IPolyIndexing) -> None:
        super().__init__(scalar)
        address_bits = scalar.address_bits_used
        self._tables: Dict[int, GF2RemainderTable] = {
            poly: remainder_table(poly, address_bits)
            for poly in scalar.polynomials
        }

    def table_for_way(self, way: int) -> GF2RemainderTable:
        """The remainder table serving ``way``."""
        return self._tables[self._scalar.polynomial_for_way(way)]

    def _way_indices(self, blocks: np.ndarray, way: int) -> np.ndarray:
        return self.table_for_way(way).reduce(blocks)


_VECTORIZERS: Dict[Type[IndexFunction], Type[VectorizedIndex]] = {
    BitSelectIndexing: _VecBitSelect,
    SingleSetIndexing: _VecSingleSet,
    PrimeModuloIndexing: _VecPrimeModulo,
    XorFoldIndexing: _VecXorFold,
    IPolyIndexing: _VecIPoly,
}


def vectorize_index(fn: IndexFunction) -> VectorizedIndex:
    """Build the vectorized counterpart of a scalar index function.

    Dispatches on the concrete class (subclasses inherit their parent's
    vectorization, so e.g. :class:`~repro.cache.fully_assoc` single-set
    functions and tabulated I-Poly variants are covered automatically).
    """
    for klass in type(fn).__mro__:
        vectorizer = _VECTORIZERS.get(klass)
        if vectorizer is not None:
            return vectorizer(fn)
    raise ValueError(
        f"no vectorization registered for index function {type(fn).__name__}"
    )
