"""Unit tests for the inclusive two-level hierarchy and hole accounting."""

import pytest

from repro.cache.hierarchy import TwoLevelHierarchy
from repro.cache.set_assoc import SetAssociativeCache, WritePolicy
from repro.core.index import IPolyIndexing


def build_hierarchy(l1_size=512, l2_size=2048, block=32, enforce=True,
                    l1_index=None, l2_index=None):
    l1 = SetAssociativeCache(l1_size, block, 2, index_function=l1_index)
    l2 = SetAssociativeCache(l2_size, block, 2, index_function=l2_index,
                             write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
    return TwoLevelHierarchy(l1, l2, enforce_inclusion=enforce)


class TestBasicFlow:
    def test_miss_fills_both_levels(self):
        hierarchy = build_hierarchy()
        result = hierarchy.access(0x100)
        assert not result.l1_hit and not result.l2_hit
        assert hierarchy.l1.contains(0x100)
        assert hierarchy.l2.contains(0x100)

    def test_l1_hit_does_not_touch_l2_loads(self):
        hierarchy = build_hierarchy()
        hierarchy.access(0x100)
        l2_accesses_before = hierarchy.l2.stats.accesses
        result = hierarchy.access(0x100)
        assert result.l1_hit
        assert hierarchy.l2.stats.accesses == l2_accesses_before

    def test_write_through_propagates_stores_to_l2(self):
        hierarchy = build_hierarchy()
        hierarchy.access(0x100)
        hierarchy.access(0x100, is_write=True)
        assert hierarchy.l2.stats.stores == 1

    def test_l2_hit_after_l1_eviction(self):
        hierarchy = build_hierarchy(l1_size=128, l2_size=4096)  # tiny L1
        hierarchy.access(0)
        for i in range(1, 8):
            hierarchy.access(i * 512)        # push block 0 out of L1
        result = hierarchy.access(0)
        assert not result.l1_hit
        assert result.l2_hit


class TestInclusion:
    def test_inclusion_invariant_holds_under_stress(self):
        hierarchy = build_hierarchy(
            l1_size=512, l2_size=2048,
            l1_index=IPolyIndexing(8, ways=2, skewed=True, address_bits=16))
        for i in range(500):
            hierarchy.access((i * 37 % 211) * 32)
            if i % 50 == 0:
                assert hierarchy.check_inclusion()
        assert hierarchy.check_inclusion()

    def test_back_invalidation_creates_holes(self):
        hierarchy = build_hierarchy(
            l1_size=512, l2_size=1024,
            l1_index=IPolyIndexing(8, ways=2, skewed=True, address_bits=16))
        # Four blocks that collide in one L2 set (1 KB 2-way = 16 sets) but
        # all fit comfortably in the 16-block L1: every L2 eviction removes a
        # line that is still live in L1, forcing a back-invalidation.
        blocks = [0, 16, 32, 48]
        for _ in range(6):
            for b in blocks:
                hierarchy.access(b * 32)
        assert hierarchy.back_invalidations > 0
        assert hierarchy.holes_created > 0
        assert hierarchy.check_inclusion()

    def test_hole_rate_definition(self):
        hierarchy = build_hierarchy(l1_size=512, l2_size=1024)
        for i in range(256):
            hierarchy.access(i * 32)
        rate = hierarchy.hole_rate_per_l2_miss
        assert 0.0 <= rate <= 1.0
        if hierarchy.l2_misses_causing_holes:
            assert rate > 0

    def test_non_inclusive_mode_creates_no_holes(self):
        hierarchy = build_hierarchy(l1_size=512, l2_size=1024, enforce=False)
        for rounds in range(3):
            for i in range(128):
                hierarchy.access(i * 32)
        assert hierarchy.holes_created == 0
        assert hierarchy.back_invalidations == 0


class TestBackInvalidationEdges:
    def test_dirty_l1_victim_back_invalidated_by_l2_eviction(self):
        """A write-back L1 line killed by an L2 eviction vanishes silently:
        back-invalidation discards the dirty data without a writeback (the
        line's L2 copy is itself on the way out)."""
        l1 = SetAssociativeCache(
            1024, 32, 2,
            index_function=IPolyIndexing(16, ways=2, skewed=True,
                                         address_bits=16),
            write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
        l2 = SetAssociativeCache(2048, 32, 2,
                                 write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
        hierarchy = TwoLevelHierarchy(l1, l2)
        hierarchy.access(0, is_write=True)      # block 0 dirty in L1
        hierarchy.access(1024)                  # same L2 set (32 sets, 2-way)
        assert hierarchy.l1.contains_block(0)   # still live and dirty in L1
        writebacks_before = l1.stats.writebacks
        hierarchy.access(2048)                  # L2 evicts block 0
        assert not hierarchy.l1.contains_block(0)
        assert hierarchy.back_invalidations >= 1
        assert hierarchy.holes_created >= 1
        assert l1.stats.writebacks == writebacks_before
        assert hierarchy.check_inclusion()

    def test_check_inclusion_after_midstream_flush(self):
        hierarchy = build_hierarchy(
            l1_size=512, l2_size=1024,
            l1_index=IPolyIndexing(8, ways=2, skewed=True, address_bits=16))
        for i in range(64):
            hierarchy.access(i * 32)
        hierarchy.flush()
        assert hierarchy.check_inclusion()
        assert hierarchy.l1.resident_blocks() == []
        for i in range(64, 128):
            hierarchy.access(i * 32)
        assert hierarchy.check_inclusion()


class TestValidation:
    def test_l1_block_must_not_exceed_l2_block(self):
        l1 = SetAssociativeCache(512, 64, 2)
        l2 = SetAssociativeCache(2048, 32, 2)
        with pytest.raises(ValueError, match="must not exceed"):
            TwoLevelHierarchy(l1, l2)

    def test_l2_must_not_be_smaller_than_l1(self):
        l1 = SetAssociativeCache(2048, 32, 2)
        l2 = SetAssociativeCache(1024, 32, 2)
        with pytest.raises(ValueError):
            TwoLevelHierarchy(l1, l2)

    def test_block_sizes_must_nest(self):
        l1 = SetAssociativeCache(512, 64, 2)
        l2 = SetAssociativeCache(2048, 32, 2)
        with pytest.raises(ValueError):
            TwoLevelHierarchy(l1, l2)

    def test_different_block_sizes_supported_when_nested(self):
        l1 = SetAssociativeCache(512, 32, 2)
        l2 = SetAssociativeCache(4096, 64, 2,
                                 write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
        hierarchy = TwoLevelHierarchy(l1, l2)
        for i in range(64):
            hierarchy.access(i * 32)
        assert hierarchy.check_inclusion()
