"""Set-associative cache model with pluggable placement functions.

This is the workhorse cache simulator of the reproduction.  A single class
covers every organisation the paper's Figure 1 compares — conventional
(``a2``), skewed-associative XOR (``a2-Hx-Sk``) and I-Poly with or without
skewing (``a2-Hp``, ``a2-Hp-Sk``) — because the only difference between them
is the :class:`~repro.core.index.IndexFunction` supplied at construction.

The storage model is "ways x sets" frames.  For a conventional cache every
way uses the same set index; for a skewed cache each way computes its own.
Replacement chooses among the candidate frames (one per way).  Write policy
is either write-through / no-write-allocate (the paper's L1 configuration) or
write-back / write-allocate (used for L2 and for the victim-cache study).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from ..core.index import BitSelectIndexing, IndexFunction
from .block import CacheBlock
from .replacement import ReplacementPolicy, resolve_replacement
from .stats import CacheStats, MissClassifier

__all__ = ["AccessResult", "WritePolicy", "SetAssociativeCache"]


class WritePolicy:
    """Write-policy labels (plain strings for readability in configs)."""

    WRITE_THROUGH_NO_ALLOCATE = "write-through-no-allocate"
    WRITE_BACK_ALLOCATE = "write-back-allocate"

    ALL = (WRITE_THROUGH_NO_ALLOCATE, WRITE_BACK_ALLOCATE)


@dataclass
class AccessResult:
    """Outcome of a single cache access.

    Attributes
    ----------
    hit:
        Whether the access hit.
    block_number:
        The block that was accessed.
    way, set_index:
        Frame that hit or was filled; ``None`` when a store miss does not
        allocate (write-through / no-write-allocate policy).
    evicted_block:
        Block number displaced to make room, or ``None``.
    writeback:
        True when the evicted block was dirty and must be written back.
    miss_kind:
        3C classification of the miss (``None`` on hits or when the cache was
        built without a classifier).
    """

    hit: bool
    block_number: int
    way: Optional[int] = None
    set_index: Optional[int] = None
    evicted_block: Optional[int] = None
    writeback: bool = False
    miss_kind: Optional[str] = None


class SetAssociativeCache:
    """A (possibly skewed) set-associative cache.

    Parameters
    ----------
    size_bytes:
        Total capacity.
    block_size:
        Line size in bytes (power of two).
    ways:
        Associativity.
    index_function:
        Placement function; defaults to conventional bit selection over
        ``size_bytes / (block_size * ways)`` sets.
    replacement:
        Replacement policy: a short name (``lru``, ``fifo``, ``random``,
        ``plru``), a :class:`~repro.cache.replacement.ReplacementPolicy`
        instance, or ``None`` for the paper's default (LRU).  The cache binds
        the policy to its geometry; policy state lives in the policy's own
        per-set tables, not in the frames.
    write_policy:
        One of :class:`WritePolicy`; defaults to the paper's L1 policy
        (write-through, no-write-allocate).
    classify_misses:
        When true, a shadow fully-associative model classifies every miss as
        compulsory / capacity / conflict (slower, but required for the
        conflict-miss analyses).
    name:
        Optional label used in reports.
    """

    def __init__(
        self,
        size_bytes: int,
        block_size: int,
        ways: int,
        index_function: Optional[IndexFunction] = None,
        replacement: Union[str, ReplacementPolicy, None] = None,
        write_policy: str = WritePolicy.WRITE_THROUGH_NO_ALLOCATE,
        classify_misses: bool = False,
        name: str = "",
    ) -> None:
        if block_size < 1 or block_size & (block_size - 1):
            raise ValueError("block_size must be a positive power of two")
        if ways < 1:
            raise ValueError("ways must be at least 1")
        if size_bytes < block_size * ways:
            raise ValueError("cache must hold at least one set")
        if size_bytes % (block_size * ways):
            raise ValueError(
                "size_bytes must be a multiple of block_size * ways "
                f"({block_size * ways}), got {size_bytes}"
            )
        if write_policy not in WritePolicy.ALL:
            raise ValueError(f"unknown write policy {write_policy!r}")

        self._size_bytes = size_bytes
        self._block_size = block_size
        self._ways = ways
        self._num_sets = size_bytes // (block_size * ways)
        if self._num_sets & (self._num_sets - 1):
            raise ValueError(
                f"number of sets must be a power of two, got {self._num_sets}"
            )
        self._offset_bits = block_size.bit_length() - 1

        if index_function is None:
            index_function = BitSelectIndexing(self._num_sets)
        if index_function.num_sets != self._num_sets:
            raise ValueError(
                f"index function covers {index_function.num_sets} sets but the "
                f"cache has {self._num_sets}"
            )
        self._index_fn = index_function
        self._replacement = resolve_replacement(replacement)
        self._replacement.bind(ways, self._num_sets)
        self._write_policy = write_policy
        self._name = name or f"{size_bytes // 1024}KB-{ways}way-{index_function.name}"

        self._frames: List[List[CacheBlock]] = [
            [CacheBlock() for _ in range(self._num_sets)] for _ in range(ways)
        ]
        self._clock = 0
        self.stats = CacheStats()
        self._classifier = (
            MissClassifier(self.num_blocks) if classify_misses else None
        )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        """Human-readable label for reports."""
        return self._name

    @property
    def size_bytes(self) -> int:
        """Total capacity in bytes."""
        return self._size_bytes

    @property
    def block_size(self) -> int:
        """Line size in bytes."""
        return self._block_size

    @property
    def ways(self) -> int:
        """Associativity."""
        return self._ways

    @property
    def num_sets(self) -> int:
        """Number of sets per way."""
        return self._num_sets

    @property
    def num_blocks(self) -> int:
        """Total number of frames."""
        return self._num_sets * self._ways

    @property
    def index_function(self) -> IndexFunction:
        """The placement function in use."""
        return self._index_fn

    @property
    def write_policy(self) -> str:
        """The configured write policy."""
        return self._write_policy

    @property
    def replacement(self) -> ReplacementPolicy:
        """The bound replacement policy."""
        return self._replacement

    def block_number_of(self, address: int) -> int:
        """Map a byte address to its block number."""
        if address < 0:
            raise ValueError("address must be non-negative")
        return address >> self._offset_bits

    # ------------------------------------------------------------------ #
    # lookup / modify
    # ------------------------------------------------------------------ #

    def contains(self, address: int) -> bool:
        """Return True if the block containing ``address`` is resident."""
        return self._find(self.block_number_of(address)) is not None

    def contains_block(self, block_number: int) -> bool:
        """Return True if ``block_number`` is resident."""
        return self._find(block_number) is not None

    def resident_blocks(self) -> List[int]:
        """Return all resident block numbers (order unspecified)."""
        blocks = []
        for way_frames in self._frames:
            for frame in way_frames:
                if frame.valid:
                    blocks.append(frame.block_number)
        return blocks

    def access(self, address: int, is_write: bool = False) -> AccessResult:
        """Perform one access and update all state and statistics."""
        block = self.block_number_of(address)
        return self.access_block(block, is_write=is_write)

    def access_block(self, block_number: int, is_write: bool = False) -> AccessResult:
        """Access by block number (used by upper levels of a hierarchy)."""
        if block_number < 0:
            raise ValueError("block_number must be non-negative")
        self._clock += 1
        location = self._find(block_number)
        hit = location is not None

        miss_kind = None
        if self._classifier is not None:
            miss_kind = self._classifier.classify(block_number, hit)

        if hit:
            way, set_index = location
            frame = self._frames[way][set_index]
            frame.touch(self._clock)
            if is_write and self._write_policy == WritePolicy.WRITE_BACK_ALLOCATE:
                frame.dirty = True
            self._replacement.on_hit(way, set_index, self._clock)
            self.stats.record_access(is_write, True)
            return AccessResult(hit=True, block_number=block_number,
                                way=way, set_index=set_index)

        # Miss.
        self.stats.record_access(is_write, False, miss_kind)
        allocate = not (
            is_write and self._write_policy == WritePolicy.WRITE_THROUGH_NO_ALLOCATE
        )
        if not allocate:
            return AccessResult(hit=False, block_number=block_number,
                                miss_kind=miss_kind)
        way, set_index, evicted, writeback = self._fill(
            block_number, dirty=is_write and
            self._write_policy == WritePolicy.WRITE_BACK_ALLOCATE)
        return AccessResult(
            hit=False, block_number=block_number, way=way, set_index=set_index,
            evicted_block=evicted, writeback=writeback, miss_kind=miss_kind,
        )

    def fill_block(self, block_number: int, dirty: bool = False) -> AccessResult:
        """Install a block without counting an access (used for prefetch/refill paths)."""
        if self._find(block_number) is not None:
            way, set_index = self._find(block_number)
            return AccessResult(hit=True, block_number=block_number,
                                way=way, set_index=set_index)
        self._clock += 1
        way, set_index, evicted, writeback = self._fill(block_number, dirty=dirty)
        return AccessResult(hit=False, block_number=block_number, way=way,
                            set_index=set_index, evicted_block=evicted,
                            writeback=writeback)

    def invalidate_block(self, block_number: int) -> bool:
        """Remove ``block_number`` if resident; returns True if it was found."""
        location = self._find(block_number)
        if location is None:
            return False
        way, set_index = location
        self._frames[way][set_index].invalidate()
        self._replacement.on_invalidate(way, set_index)
        self.stats.invalidations += 1
        return True

    def invalidate_address(self, address: int) -> bool:
        """Remove the block containing ``address`` if resident."""
        return self.invalidate_block(self.block_number_of(address))

    def flush(self) -> None:
        """Empty the cache (statistics are preserved; reset them separately)."""
        for way_frames in self._frames:
            for frame in way_frames:
                frame.invalidate()
        self._replacement.reset()
        if self._classifier is not None:
            self._classifier.reset()

    def reset_stats(self) -> None:
        """Zero the statistics counters."""
        self.stats.reset()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _candidate_sets(self, block_number: int) -> List[int]:
        return [self._index_fn.index(block_number, way) for way in range(self._ways)]

    def _find(self, block_number: int) -> Optional[tuple]:
        for way, set_index in enumerate(self._candidate_sets(block_number)):
            frame = self._frames[way][set_index]
            if frame.valid and frame.block_number == block_number:
                return way, set_index
        return None

    def _fill(self, block_number: int, dirty: bool) -> tuple:
        candidates = self._candidate_sets(block_number)
        # Prefer an invalid frame.
        for way, set_index in enumerate(candidates):
            frame = self._frames[way][set_index]
            if not frame.valid:
                frame.fill(block_number, self._clock, dirty=dirty)
                self._replacement.on_fill(way, set_index, self._clock)
                return way, set_index, None, False
        # All candidates valid: evict.
        way, set_index = self._replacement.choose_victim(
            list(enumerate(candidates)))
        frame = self._frames[way][set_index]
        evicted = frame.block_number
        writeback = frame.dirty
        if writeback:
            self.stats.writebacks += 1
        self.stats.evictions += 1
        frame.fill(block_number, self._clock, dirty=dirty)
        self._replacement.on_fill(way, set_index, self._clock)
        return way, set_index, evicted, writeback

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetAssociativeCache({self._size_bytes}B, {self._ways}-way, "
            f"{self._block_size}B blocks, index={self._index_fn.name})"
        )
