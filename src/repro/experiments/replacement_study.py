"""Experiment E-RP: replacement policy x cache organisation sweep.

The paper's central trade-off is about *placement*, but placement interacts
with *replacement*: a conflict-avoiding (skewed, pseudo-randomly indexed)
cache cannot implement true per-set LRU cheaply, because the candidate
frames of one block live in different sets of every bank and no small
per-set state covers them.  The practical alternatives are the policies a
skewed cache *can* implement — FIFO counters, tree-PLRU bits, or a
pseudo-random pick.  This study quantifies what those alternatives cost, by
sweeping every replacement policy across three organisations at equal data
capacity:

* a conventional two-way set-associative cache (``a2``), where true LRU is
  cheap — the baseline cost of abandoning it;
* the paper's skewed I-Poly cache (``a2-Hp-Sk``), where LRU is the
  impractical policy the ablation replaces;
* a direct-mapped cache with a victim buffer, where replacement only
  matters inside the tiny fully-associative buffer.

If the skewed organisation's miss ratio is (nearly) policy-insensitive
while the conventional one degrades without LRU, the paper's position —
that giving up true LRU is a small price for conflict-avoiding placement —
is supported by this reproduction.

Both engines run the study; the vectorized path uses the replacement-aware
batch kernels (including :class:`~repro.engine.batch_cache.BatchVictimCache`)
and produces bit-identical ratios to the scalar models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.metrics import arithmetic_mean
from ..analysis.reporting import TableBuilder
from ..cache.replacement import REPLACEMENT_POLICIES
from ..engine import (
    ENGINE_REFERENCE,
    ENGINE_VECTORIZED,
    AddressBatch,
    MultiConfigPlan,
    TaskFailure,
    check_engine,
    check_profile_mode,
    run_sweep,
)
from ..trace.batching import cached_workload_arrays
from ..trace.workloads import build_trace, workload_names
from .config import PAPER_L1_8KB, CacheGeometry
from .miss_ratio_study import _batch_factory, _replay_batch, _scalar_factory
from .trace_input import load_miss_ratios_percent, stream_trace, trace_label

__all__ = [
    "ReplacementStudyResult",
    "run_replacement_study",
]

#: The organisations swept against every policy: (label, kind, params) rows
#: consumed by the same factory tables as the miss-ratio study.
_STUDY_ORGANISATIONS = (
    ("conventional-2way", "set-assoc", {"scheme": "a2"}),
    ("skewed-ipoly-2way", "set-assoc", {"scheme": "a2-Hp-Sk"}),
    ("victim-direct+8", "victim", {"ways": 1, "victim_entries": 8}),
)


@dataclass
class ReplacementStudyResult:
    """Suite-average load miss ratios (percent) per organisation x policy."""

    accesses_per_program: int
    programs: List[str] = field(default_factory=list)
    policies: List[str] = field(default_factory=list)
    #: ``miss_ratios[organisation][policy]`` -> suite-average percent.
    miss_ratios: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Programs that exhausted their retries under ``on_error="collect"``;
    #: the averages cover the surviving programs only.
    failures: List[TaskFailure] = field(default_factory=list)

    @property
    def organisations(self) -> List[str]:
        """Organisations swept."""
        return list(self.miss_ratios)

    def policy_spread(self, organisation: str) -> float:
        """Worst-minus-best miss ratio across policies (percentage points).

        The organisation's *replacement sensitivity*: how much choosing the
        wrong (or the only implementable) policy can cost.
        """
        values = self.miss_ratios[organisation].values()
        return max(values) - min(values)

    def lru_penalty(self, organisation: str, policy: str) -> float:
        """Miss-ratio cost (percentage points) of ``policy`` versus LRU."""
        row = self.miss_ratios[organisation]
        return row[policy] - row["lru"]

    def table(self) -> TableBuilder:
        """Organisation x policy table with a spread column."""
        table = TableBuilder(self.policies + ["spread"],
                             row_label="organisation")
        for organisation in self.organisations:
            row = dict(self.miss_ratios[organisation])
            row["spread"] = self.policy_spread(organisation)
            table.add_row(organisation, row)
        return table

    def render(self) -> str:
        """Render as text, with the replacement-sensitivity summary."""
        lines = [self.table().render(
            title="Load miss ratio (%) by organisation and replacement policy")]
        lines.append("")
        lines.append("replacement sensitivity (max - min across policies):")
        for organisation in self.organisations:
            lines.append(f"  {organisation:20s} "
                         f"{self.policy_spread(organisation):6.2f} pp")
        return "\n".join(lines)


#: One per-program work item of the parallel study (picklable primitives
#: only; the geometry is rebuilt from its defining numbers).
_StudyTask = Tuple[str, int, int, str, Tuple[str, ...], Tuple[int, int, int],
                   str, Tuple[float, Optional[int], int]]


def _program_policy_ratios(task: _StudyTask) -> Dict[str, Dict[str, float]]:
    """Module-level sweep worker: one program's organisation x policy grid."""
    (name, accesses, seed, engine, policy_list, geometry_tuple, profile,
     sampling) = task
    sample_rate, sample_size, profile_seed = sampling
    geometry = CacheGeometry(size_bytes=geometry_tuple[0],
                             block_size=geometry_tuple[1],
                             ways=geometry_tuple[2])
    factory = (_batch_factory if engine == ENGINE_VECTORIZED
               else _scalar_factory)
    ratios: Dict[str, Dict[str, float]] = {
        label: {} for label, _, _ in _STUDY_ORGANISATIONS}
    if engine == ENGINE_VECTORIZED:
        # One materialisation per (program, length, seed) per process —
        # every (organisation, policy) pair below reuses the cached
        # arrays, and with them the memoised per-scheme index arrays.  The
        # plan routes the profilable rows (conventional LRU) through the
        # one-pass stack-distance profiler when that wins (or when forced).
        batch = AddressBatch.from_arrays(
            *cached_workload_arrays(name, length=accesses, seed=seed))
        plan = MultiConfigPlan(profile=profile, sample_rate=sample_rate,
                               sample_size=sample_size,
                               profile_seed=profile_seed)
        for label, kind, params in _STUDY_ORGANISATIONS:
            for policy in policy_list:
                plan.add((label, policy), batch,
                         factory(kind, params, geometry, policy),
                         runner=_replay_batch)
        counts = plan.run()
        for label, _, _ in _STUDY_ORGANISATIONS:
            for policy in policy_list:
                ratios[label][policy] = (
                    100.0 * counts[(label, policy)].load_miss_ratio)
    else:
        for label, kind, params in _STUDY_ORGANISATIONS:
            for policy in policy_list:
                cache = factory(kind, params, geometry, policy)()
                for access in build_trace(name, length=accesses, seed=seed):
                    cache.access(access.address, is_write=access.is_write)
                ratios[label][policy] = 100.0 * cache.stats.load_miss_ratio
    return ratios


def run_replacement_study(programs: Optional[Sequence[str]] = None,
                          accesses: int = 40_000,
                          policies: Optional[Sequence[str]] = None,
                          geometry: CacheGeometry = PAPER_L1_8KB,
                          seed: int = 12345,
                          engine: str = ENGINE_REFERENCE,
                          workers: Optional[int] = None,
                          chunksize: Optional[int] = None,
                          profile: str = "auto",
                          sample_rate: float = 0.01,
                          sample_size: Optional[int] = None,
                          profile_seed: int = 0,
                          timeout: Optional[float] = None,
                          retries: int = 0,
                          on_error: str = "raise",
                          resume: Optional[str] = None,
                          trace: Optional[str] = None,
                          trace_chunk: int = 1 << 20,
                          ) -> ReplacementStudyResult:
    """Sweep replacement policy x organisation over the workload suite.

    Replays every program's trace through each (organisation, policy) pair
    and reports suite-average load miss ratios.  ``engine="vectorized"``
    materialises each trace once and drives the batch kernels; both engines
    produce identical numbers.  ``workers`` fans the per-program tasks
    across a process pool (``chunksize`` groups programs per dispatch so a
    worker reuses its materialised traces); ``profile`` selects the
    multi-configuration profiling policy of the vectorized LRU and FIFO rows
    (``auto``/``always``/``never`` — bit-exact — or ``sampled``, which prices
    the LRU rows approximately via SHARDS spatial sampling at ``sample_rate``
    / ``sample_size`` / ``profile_seed``; FIFO rows stay exact).
    ``timeout``/``retries``/``on_error``/``resume`` are forwarded to
    :func:`repro.engine.sweep.run_sweep`; under ``on_error="collect"`` a
    failed program lands in ``result.failures`` and the averages cover the
    surviving programs.

    ``trace`` replaces the synthetic suite with one recorded on-disk trace
    (any :mod:`repro.trace.stream` format); the reported ratios are then
    that single trace's, not suite averages.  On the vectorized engine the
    trace streams through the whole (organisation, policy) grid in
    ``trace_chunk``-access batches — bounded memory, bit-identical counters.
    """
    engine = check_engine(engine)
    profile = check_profile_mode(profile)
    policy_list = list(policies) if policies is not None else list(REPLACEMENT_POLICIES)
    for policy in policy_list:
        if policy not in REPLACEMENT_POLICIES:
            raise ValueError(
                f"unknown replacement policy {policy!r}; expected one of "
                f"{sorted(REPLACEMENT_POLICIES)}")
    if trace is not None:
        factory = (_batch_factory if engine == ENGINE_VECTORIZED
                   else _scalar_factory)
        caches = {
            (label, policy): factory(kind, params, geometry, policy)()
            for label, kind, params in _STUDY_ORGANISATIONS
            for policy in policy_list}
        total = stream_trace(caches, trace, engine, trace_chunk)
        ratios = load_miss_ratios_percent(caches)
        result = ReplacementStudyResult(accesses_per_program=total,
                                        programs=[trace_label(trace)],
                                        policies=policy_list)
        for label, _, _ in _STUDY_ORGANISATIONS:
            result.miss_ratios[label] = {
                policy: ratios[(label, policy)] for policy in policy_list}
        return result
    if accesses < 1_000:
        raise ValueError("accesses should be at least 1000 for stable ratios")
    program_list = list(programs) if programs is not None else workload_names()

    result = ReplacementStudyResult(accesses_per_program=accesses,
                                    programs=program_list,
                                    policies=policy_list)
    tasks: List[_StudyTask] = [
        (name, accesses, seed, engine, tuple(policy_list),
         (geometry.size_bytes, geometry.block_size, geometry.ways), profile,
         (sample_rate, sample_size, profile_seed))
        for name in program_list
    ]
    per_program = run_sweep(_program_policy_ratios, tasks, workers=workers,
                            chunksize=chunksize, timeout=timeout,
                            retries=retries, on_error=on_error,
                            journal=resume, resume=resume)
    # Accumulate per-program ratios, then average per (organisation, policy).
    per_pair: Dict[str, Dict[str, List[float]]] = {
        label: {policy: [] for policy in policy_list}
        for label, _, _ in _STUDY_ORGANISATIONS
    }
    for ratios in per_program:
        if isinstance(ratios, TaskFailure):
            result.failures.append(ratios)
            continue
        for label, _, _ in _STUDY_ORGANISATIONS:
            for policy in policy_list:
                per_pair[label][policy].append(ratios[label][policy])
    for label, _, _ in _STUDY_ORGANISATIONS:
        result.miss_ratios[label] = {
            policy: arithmetic_mean(per_pair[label][policy])
            for policy in policy_list
        }
    return result
