"""Unit tests for the data-cache timing model."""

import pytest

from repro.cache.set_assoc import SetAssociativeCache
from repro.cpu.dcache import DataCacheModel, DataCacheTiming


def make_model(**timing_kwargs):
    cache = SetAssociativeCache(8 * 1024, 32, 2)
    return DataCacheModel(cache, DataCacheTiming(**timing_kwargs))


class TestTimingParameters:
    def test_defaults_match_paper(self):
        timing = DataCacheTiming()
        assert timing.hit_time == 2
        assert timing.miss_penalty == 20
        assert timing.mshr_entries == 8
        assert timing.bus_cycles_per_line == 4
        assert timing.ports == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            DataCacheTiming(hit_time=0)
        with pytest.raises(ValueError):
            DataCacheTiming(ports=0)
        with pytest.raises(ValueError):
            DataCacheTiming(mshr_entries=0)


class TestLoadTiming:
    def test_hit_latency(self):
        model = make_model()
        model.load(0x100, request_cycle=0)          # miss, fills the line
        timing = model.load(0x100, request_cycle=100)
        assert timing.hit
        assert timing.latency == 2

    def test_miss_latency_includes_penalty(self):
        model = make_model()
        timing = model.load(0x200, request_cycle=0)
        assert not timing.hit
        assert timing.ready_cycle >= 22              # hit time + miss penalty

    def test_xor_penalty_applied_when_in_critical_path(self):
        base = make_model()
        slowed = make_model(xor_in_critical_path=True)
        base.load(0x100, 0)
        slowed.load(0x100, 0)
        fast = base.load(0x100, 100)
        slow = slowed.load(0x100, 100)
        assert slow.ready_cycle == fast.ready_cycle + 1
        assert slow.xor_penalty_paid

    def test_xor_penalty_removed_by_correct_prediction(self):
        model = make_model(xor_in_critical_path=True)
        model.load(0x100, 0)
        timing = model.load(0x100, 100, predicted_index_available=True)
        assert not timing.xor_penalty_paid
        assert timing.latency == 2

    def test_secondary_miss_merges(self):
        model = make_model()
        first = model.load(0x300, request_cycle=0)
        second = model.load(0x308, request_cycle=1)   # same 32-byte line
        assert second.merged
        assert second.ready_cycle >= first.ready_cycle
        assert model.merged_misses == 1

    def test_mshr_limit_stalls_ninth_outstanding_miss(self):
        model = make_model(mshr_entries=8, bus_cycles_per_line=1)
        results = [model.load(0x1000 * (i + 1), request_cycle=0) for i in range(9)]
        # The ninth primary miss cannot begin its fill until one of the first
        # eight outstanding fills completes.
        assert model.mshr_stall_cycles > 0
        assert results[8].ready_cycle > results[0].ready_cycle

    def test_bus_occupancy_serialises_back_to_back_misses(self):
        model = make_model()
        a = model.load(0x1000, request_cycle=0)
        b = model.load(0x2000, request_cycle=0)
        assert b.ready_cycle >= a.ready_cycle + 4 - 1   # one line per 4 cycles


class TestStores:
    def test_store_counts_in_cache_stats(self):
        model = make_model()
        model.store(0x400, commit_cycle=10)
        assert model.cache.stats.stores == 1
        assert model.store_accesses == 1

    def test_write_no_allocate(self):
        model = make_model()
        assert model.store(0x500, commit_cycle=1) is False
        assert not model.cache.contains(0x500)

    def test_load_miss_ratio_property(self):
        model = make_model()
        model.load(0x100, 0)
        model.load(0x100, 50)
        assert model.load_miss_ratio == pytest.approx(0.5)


class TestStreamRecording:
    def test_recording_captures_accesses_in_order(self):
        cache = SetAssociativeCache(8 * 1024, 32, 2)
        model = DataCacheModel(cache, DataCacheTiming(), record_stream=True)
        assert model.records_stream
        model.load(0x100, request_cycle=0)
        model.store(0x200, commit_cycle=5)
        model.load(0x300, request_cycle=10)
        addresses, is_store = model.recorded_stream()
        assert addresses == [0x100, 0x200, 0x300]
        assert is_store == [False, True, False]

    def test_recorded_stream_returns_copies(self):
        cache = SetAssociativeCache(8 * 1024, 32, 2)
        model = DataCacheModel(cache, DataCacheTiming(), record_stream=True)
        model.load(0x100, request_cycle=0)
        addresses, _ = model.recorded_stream()
        addresses.append(0xBAD)
        assert model.recorded_stream()[0] == [0x100]

    def test_recording_off_by_default(self):
        model = make_model()
        assert not model.records_stream
        model.load(0x100, request_cycle=0)
        with pytest.raises(RuntimeError):
            model.recorded_stream()


class TestReset:
    def test_reset_timing_state_keeps_contents(self):
        model = make_model()
        model.load(0x100, 0)
        model.reset_timing_state()
        assert model.cache.contains(0x100)
        timing = model.load(0x100, 10)
        assert timing.hit
