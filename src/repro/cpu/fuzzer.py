"""Random-program fuzzing for the out-of-order CPU path.

Every other subsystem of this reproduction is locked down by a differential
harness: the trace-level cache studies pit the batch kernels against the
scalar models on random geometries and random traces.  The IPC studies of
Tables 2 and 3 run through :mod:`repro.cpu` instead — a path that, until
this module, was only exercised by hand-written unit tests and the eighteen
synthetic Spec95 programs.

This module closes that gap with a seeded random-*program* generator and a
differential harness over it:

* :class:`FuzzParams` parameterises the generator — instruction mix,
  register pressure (how hard results chain into later operands), branch
  density and per-site predictability, program length, and the load/store
  address pattern (constant-stride streams, pointer-chase permutation
  walks, conflict-heavy same-set streams, uniform random, or a mixture);
* :func:`random_params` draws a valid :class:`FuzzParams` from a seed, so a
  single integer reproduces the whole program *and* the machine variant it
  ran on;
* :func:`build_fuzz_program` turns ``(seed, params)`` into a valid,
  replayable :class:`~repro.cpu.program.Program`;
* :func:`run_differential` simulates one program under both ``--engine``
  backends — the scalar reference I-Poly placement and the engine's
  table-accelerated :class:`~repro.engine.tabulated.TabulatedIPolyIndexing`
  — and compares architectural/timing state bit-exactly: committed
  instruction counts, cycle counts, per-op histograms, branch/address
  predictor statistics, the full :class:`~repro.cache.stats.CacheStats`,
  the data-cache model's timing counters, the resident cache contents and
  the recorded functional access streams.  It then replays each recorded
  stream through the batch kernels
  (:func:`repro.engine.replay.replay_access_stream`) and checks the
  hit/miss statistics a third time — the CPU path's entry into the engine
  equivalence story.

Every failure carries a one-line repro (:func:`repro_line`): the seed and
generator parameters that rebuild the failing program exactly.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Tuple

from ..trace.generators import _SplitMix64
from .dcache import DataCacheModel
from .isa import FP_REGS, INT_REGS, Instruction, OpClass
from .processor import OutOfOrderProcessor, ProcessorConfig, SimulationResult
from .program import Program

__all__ = [
    "ADDRESS_PATTERNS",
    "CONFIG_VARIANTS",
    "FuzzParams",
    "DifferentialOutcome",
    "random_params",
    "build_fuzz_program",
    "fuzz_config",
    "run_differential",
    "repro_line",
]

#: Valid load/store address patterns of the generator.
ADDRESS_PATTERNS = ("stride", "pointer-chase", "conflict", "random", "mixed")

#: Machine variants a fuzz seed can land on — the Table 2 axes that change
#: which code paths the differential run exercises: conventional
#: bit-selection vs skewed I-Poly placement (only the latter has two
#: distinct index implementations to diff), the XOR stage in or out of the
#: critical path, and the stride address predictor on or off.
CONFIG_VARIANTS: Dict[str, dict] = {
    "conv": dict(index_scheme="a2"),
    "conv-pred": dict(index_scheme="a2", address_prediction=True),
    "ipoly": dict(index_scheme="a2-Hp-Sk"),
    "ipoly-CP": dict(index_scheme="a2-Hp-Sk", xor_in_critical_path=True),
    "ipoly-CP-pred": dict(index_scheme="a2-Hp-Sk", xor_in_critical_path=True,
                          address_prediction=True),
}

#: I-Poly variants get the bulk of the draw weight: they are the only
#: configurations where the two index engines run genuinely different code.
_VARIANT_DRAW = ("ipoly", "ipoly-CP", "ipoly-CP-pred", "ipoly", "ipoly-CP",
                 "ipoly-CP-pred", "conv", "conv-pred")


@dataclass(frozen=True)
class FuzzParams:
    """Generator parameters for one random program.

    All fields are plain scalars so a params object round-trips through JSON
    (for the committed corpus and for CI failure artifacts).
    """

    #: Dynamic instruction count.
    length: int = 2_000
    #: Relative probability of memory operations (per-mille, 0..1000).
    memory_permille: int = 350
    #: Relative probability of branches (per-mille; memory + branch < 1000).
    branch_permille: int = 150
    #: Fraction of non-memory computation that is floating point (per-mille).
    fp_permille: int = 300
    #: Fraction of memory operations that are stores (per-mille).
    store_permille: int = 300
    #: Register pressure: how many of the most recent results feed operands.
    #: 1 = everything chains on the last result (serial); large = wide ILP.
    dependency_window: int = 6
    #: Chance (percent) that a source comes from a recent result rather than
    #: an always-ready base register.
    recent_source_percent: int = 50
    #: Number of distinct static branch sites.
    branch_sites: int = 32
    #: Chance (per-mille) that a branch deviates from its site's bias.
    branch_flip_permille: int = 100
    #: Load/store address pattern (one of :data:`ADDRESS_PATTERNS`).
    address_pattern: str = "mixed"
    #: Bytes of address space the memory stream touches.
    footprint_bytes: int = 1 << 16
    #: Machine variant label (one of :data:`CONFIG_VARIANTS`).
    config_variant: str = "ipoly-CP-pred"

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("length must be positive")
        if not 0 < self.memory_permille < 1000:
            raise ValueError("memory_permille must be in (0, 1000)")
        if self.branch_permille < 0 or self.memory_permille + self.branch_permille >= 1000:
            raise ValueError("memory + branch per-milles must leave room for ALU work")
        if not 0 <= self.fp_permille <= 1000:
            raise ValueError("fp_permille must be in [0, 1000]")
        if not 0 <= self.store_permille <= 1000:
            raise ValueError("store_permille must be in [0, 1000]")
        if self.dependency_window < 1:
            raise ValueError("dependency_window must be positive")
        if not 0 <= self.recent_source_percent <= 100:
            raise ValueError("recent_source_percent must be in [0, 100]")
        if self.branch_sites < 1:
            raise ValueError("branch_sites must be positive")
        if not 0 <= self.branch_flip_permille <= 500:
            raise ValueError("branch_flip_permille must be in [0, 500]")
        if self.address_pattern not in ADDRESS_PATTERNS:
            raise ValueError(
                f"unknown address_pattern {self.address_pattern!r}; "
                f"expected one of {ADDRESS_PATTERNS}")
        if self.footprint_bytes < 64:
            raise ValueError("footprint_bytes must be at least 64")
        if self.config_variant not in CONFIG_VARIANTS:
            raise ValueError(
                f"unknown config_variant {self.config_variant!r}; "
                f"expected one of {tuple(CONFIG_VARIANTS)}")


def random_params(seed: int, length: Optional[int] = None) -> FuzzParams:
    """Draw a valid :class:`FuzzParams` from ``seed`` (deterministic).

    ``length`` overrides the drawn program length — the corpus and the
    nightly loop use different budgets for the same seeds.
    """
    rng = _SplitMix64(seed * 2 + 1)
    memory = 150 + rng.below(400)                 # 150..549 per-mille
    branch = 30 + rng.below(min(250, 990 - memory))
    drawn = FuzzParams(
        length=length if length is not None else 800 + rng.below(2_200),
        memory_permille=memory,
        branch_permille=branch,
        fp_permille=rng.below(700),
        store_permille=50 + rng.below(500),
        dependency_window=1 + rng.below(10),
        recent_source_percent=10 + rng.below(80),
        branch_sites=1 << rng.below(7),           # 1..64 sites
        branch_flip_permille=rng.below(400),
        address_pattern=ADDRESS_PATTERNS[rng.below(len(ADDRESS_PATTERNS))],
        footprint_bytes=1 << (10 + rng.below(12)),  # 1 KiB .. 2 MiB
        config_variant=_VARIANT_DRAW[rng.below(len(_VARIANT_DRAW))],
    )
    return drawn


def fuzz_config(params: FuzzParams, **overrides) -> ProcessorConfig:
    """The :class:`ProcessorConfig` a fuzz program runs on (reference engine).

    ``overrides`` lets the harness flip ``index_engine`` without touching
    the variant table.
    """
    merged = dict(CONFIG_VARIANTS[params.config_variant])
    merged.update(overrides)
    return ProcessorConfig(**merged)


# --------------------------------------------------------------------------- #
# address-stream generators
# --------------------------------------------------------------------------- #

#: Conflict pattern: candidate blocks sit one bit-selection set apart for the
#: paper's 8 KB two-way L1 (128 sets x 32 B lines), so conventional placement
#: folds the whole stream into a handful of sets while I-Poly spreads it.
_CONFLICT_SET_STRIDE = 128 * 32


def _address_stream(rng: _SplitMix64, params: FuzzParams) -> Iterator[int]:
    """Infinite stream of (block-aligned-ish) effective addresses."""
    footprint = params.footprint_bytes
    pattern = params.address_pattern

    # Stride streams: up to four interleaved constant-stride walkers.
    stride_count = 1 + rng.below(4)
    stride_bases = [rng.below(footprint) & ~7 for _ in range(stride_count)]
    stride_steps = [8 * (1 + rng.below(64)) * (1 if rng.below(2) else -1)
                    for _ in range(stride_count)]
    stride_pos = list(stride_bases)

    # Pointer-chase: a fixed pseudo-random permutation over cache-line-sized
    # cells; each access follows the previous one through the permutation,
    # like walking a linked list that was scattered through the heap.
    chase_cells = max(8, min(4096, footprint // 32))
    chase_next = list(range(chase_cells))
    for i in range(chase_cells - 1, 0, -1):      # Fisher-Yates off the seed
        j = rng.below(i + 1)
        chase_next[i], chase_next[j] = chase_next[j], chase_next[i]
    chase_at = rng.below(chase_cells)

    # Conflict-heavy: rotate over more same-set blocks than the L1 has ways.
    conflict_blocks = 3 + rng.below(6)
    conflict_base = rng.below(1 << 14) & ~7
    conflict_at = 0

    def stride_addr() -> int:
        nonlocal stride_pos
        lane = rng.below(stride_count)
        addr = stride_pos[lane]
        nxt = addr + stride_steps[lane]
        if nxt < 0 or nxt >= footprint * 4:
            nxt = stride_bases[lane]
        stride_pos[lane] = nxt
        return addr

    def chase_addr() -> int:
        nonlocal chase_at
        chase_at = chase_next[chase_at]
        return chase_at * 32 + (rng.below(4) * 8)

    def conflict_addr() -> int:
        nonlocal conflict_at
        conflict_at = (conflict_at + 1) % conflict_blocks
        return conflict_base + conflict_at * _CONFLICT_SET_STRIDE

    def random_addr() -> int:
        return rng.below(footprint) & ~7

    makers = {"stride": stride_addr, "pointer-chase": chase_addr,
              "conflict": conflict_addr, "random": random_addr}
    while True:
        if pattern == "mixed":
            draw = rng.below(4)
            yield (stride_addr, chase_addr, conflict_addr, random_addr)[draw]()
        else:
            yield makers[pattern]()


# --------------------------------------------------------------------------- #
# program generation
# --------------------------------------------------------------------------- #

def _fuzz_stream(seed: int, params: FuzzParams) -> Iterator[Instruction]:
    rng = _SplitMix64(seed * 6364136223846793005 + 1442695040888963407)
    addresses = _address_stream(_SplitMix64(seed + 97), params)

    # Registers 0-3 / 32-35 are stable base registers (never destinations),
    # as in the Spec95-like workload generator; everything above rotates.
    base_int = [0, 1, 2, 3]
    base_fp = [INT_REGS, INT_REGS + 1, INT_REGS + 2, INT_REGS + 3]
    recent_int: List[int] = list(base_int)
    recent_fp: List[int] = list(base_fp)
    int_cursor = len(base_int)
    fp_cursor = INT_REGS + len(base_fp)

    site_bias = [(rng.next() & 1) == 0 for _ in range(params.branch_sites)]

    def pick_src(pool: List[int], base_pool: List[int]) -> int:
        if rng.below(100) < params.recent_source_percent:
            window = pool[-params.dependency_window:]
            return window[rng.below(len(window))]
        return base_pool[rng.below(len(base_pool))]

    def next_int_dest() -> int:
        nonlocal int_cursor
        dest = int_cursor
        int_cursor += 1
        if int_cursor >= INT_REGS:
            int_cursor = len(base_int)
        return dest

    def next_fp_dest() -> int:
        nonlocal fp_cursor
        dest = fp_cursor
        fp_cursor += 1
        if fp_cursor >= INT_REGS + FP_REGS:
            fp_cursor = INT_REGS + len(base_fp)
        return dest

    branch_cut = params.memory_permille + params.branch_permille
    pc = 0x0040_0000
    for _ in range(params.length):
        draw = rng.below(1000)
        pc += 4
        if draw < params.memory_permille:
            address = next(addresses)
            if rng.below(1000) < params.store_permille:
                use_fp = params.fp_permille > 0 and rng.below(2) == 0
                data = pick_src(recent_fp if use_fp else recent_int,
                                base_fp if use_fp else base_int)
                yield Instruction(pc=pc, op=OpClass.STORE,
                                  srcs=(pick_src(recent_int, base_int), data),
                                  address=address)
            else:
                use_fp = params.fp_permille > 0 and rng.below(2) == 0
                dest = next_fp_dest() if use_fp else next_int_dest()
                yield Instruction(pc=pc, op=OpClass.LOAD, dest=dest,
                                  srcs=(pick_src(recent_int, base_int),),
                                  address=address)
                (recent_fp if use_fp else recent_int).append(dest)
        elif draw < branch_cut:
            site = rng.below(params.branch_sites)
            taken = site_bias[site]
            if rng.below(1000) < params.branch_flip_permille:
                taken = not taken
            yield Instruction(pc=0x0041_0000 + site * 4, op=OpClass.BRANCH,
                              srcs=(pick_src(recent_int, base_int),),
                              taken=taken)
        elif rng.below(1000) < params.fp_permille:
            roll = rng.below(1000)
            if roll < 20:
                op = OpClass.FP_DIV
            elif roll < 30:
                op = OpClass.FP_SQRT
            elif roll < 500:
                op = OpClass.FP_MUL
            else:
                op = OpClass.FP_ADD
            dest = next_fp_dest()
            yield Instruction(pc=pc, op=op, dest=dest,
                              srcs=(pick_src(recent_fp, base_fp),
                                    pick_src(recent_fp, base_fp)))
            recent_fp.append(dest)
        else:
            roll = rng.below(1000)
            if roll < 30:
                op = OpClass.INT_MUL
            elif roll < 35:
                op = OpClass.INT_DIV
            else:
                op = OpClass.INT_ALU
            dest = next_int_dest()
            yield Instruction(pc=pc, op=op, dest=dest,
                              srcs=(pick_src(recent_int, base_int),
                                    pick_src(recent_int, base_int)))
            recent_int.append(dest)
        if len(recent_int) > 4 * params.dependency_window:
            del recent_int[: 2 * params.dependency_window]
        if len(recent_fp) > 4 * params.dependency_window:
            del recent_fp[: 2 * params.dependency_window]


def build_fuzz_program(seed: int,
                       params: Optional[FuzzParams] = None) -> Tuple[Program, FuzzParams]:
    """Build the random program for ``seed`` (drawing params when not given).

    Returns ``(program, params)``; the program replays identically on every
    call to :meth:`~repro.cpu.program.Program.instructions`.
    """
    if params is None:
        params = random_params(seed)
    program = Program(f"fuzz-{seed}",
                      lambda: _fuzz_stream(seed, params),
                      length_hint=params.length)
    return program, params


def repro_line(seed: int, params: FuzzParams) -> str:
    """One-line reproduction recipe for a fuzz failure."""
    return (f"repro: seed={seed} "
            f"params=FuzzParams(**{asdict(params)!r}) "
            f"via repro.cpu.fuzzer.run_differential(*build_fuzz_program"
            f"({seed}, params))")


# --------------------------------------------------------------------------- #
# differential harness
# --------------------------------------------------------------------------- #

#: SimulationResult fields compared between the two engines.  Ratios are the
#: same exact rational arithmetic on both sides, so equality is exact.
_RESULT_FIELDS = (
    "instructions", "cycles", "loads", "stores", "branches",
    "forwarded_loads", "op_counts", "load_miss_ratio", "store_miss_ratio",
    "branch_misprediction_ratio", "address_prediction_coverage",
    "address_prediction_accuracy",
)


@dataclass
class DifferentialOutcome:
    """Everything one differential fuzz run observed."""

    seed: int
    params: FuzzParams
    reference: SimulationResult
    vectorized: SimulationResult
    #: Batch-replay kernel names, keyed by engine label.
    replay_strategies: Dict[str, str] = field(default_factory=dict)
    #: Human-readable descriptions of every disagreement (empty = bit-exact).
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when both engines and the batch replay agreed everywhere."""
        return not self.mismatches

    def assert_ok(self) -> None:
        """Raise :class:`AssertionError` with a one-line repro on mismatch."""
        if not self.ok:
            detail = "; ".join(self.mismatches)
            raise AssertionError(
                f"engine divergence on fuzz program ({detail}); "
                + repro_line(self.seed, self.params))


def _run_one(program: Program, config: ProcessorConfig,
             max_instructions: Optional[int]):
    """Simulate ``program`` on ``config`` with a stream-recording dcache."""
    dcache = DataCacheModel(config.build_cache(), config.cache_timing(),
                            record_stream=True)
    processor = OutOfOrderProcessor(config, cache_model=dcache)
    result = processor.run(program, max_instructions=max_instructions)
    return processor, result


def run_differential(program: Program,
                     params: FuzzParams,
                     seed: int = 0,
                     max_instructions: Optional[int] = None,
                     check_replay: bool = True) -> DifferentialOutcome:
    """Run ``program`` under both index engines and diff everything.

    The comparison covers the committed architectural/timing state (counts,
    cycles, per-op histograms, predictor statistics), the full functional
    cache statistics, the data-cache timing counters, the final resident
    cache contents and the recorded access streams.  With ``check_replay``
    (the default) each engine's recorded stream is additionally replayed
    through the batch kernels and the hit/miss statistics compared again.
    """
    base = fuzz_config(params)
    ref_proc, ref = _run_one(program, replace(base, index_engine="reference"),
                             max_instructions)
    vec_proc, vec = _run_one(program, replace(base, index_engine="vectorized"),
                             max_instructions)

    outcome = DifferentialOutcome(seed=seed, params=params,
                                  reference=ref, vectorized=vec)
    note = outcome.mismatches.append

    for name in _RESULT_FIELDS:
        left, right = getattr(ref, name), getattr(vec, name)
        if left != right:
            note(f"result.{name}: reference={left!r} vectorized={right!r}")

    ref_stats = ref_proc.dcache.cache.stats
    vec_stats = vec_proc.dcache.cache.stats
    if ref_stats != vec_stats:
        note(f"cache stats: reference={ref_stats!r} vectorized={vec_stats!r}")

    for counter in ("load_accesses", "store_accesses", "merged_misses",
                    "mshr_stall_cycles"):
        left = getattr(ref_proc.dcache, counter)
        right = getattr(vec_proc.dcache, counter)
        if left != right:
            note(f"dcache.{counter}: reference={left} vectorized={right}")

    ref_resident = sorted(ref_proc.dcache.cache.resident_blocks())
    vec_resident = sorted(vec_proc.dcache.cache.resident_blocks())
    if ref_resident != vec_resident:
        note("resident cache contents differ between engines")

    ref_stream = ref_proc.dcache.recorded_stream()
    vec_stream = vec_proc.dcache.recorded_stream()
    if ref_stream != vec_stream:
        note("recorded dcache access streams differ between engines")

    if check_replay:
        # Local import: repro.cpu stays importable without NumPy installed.
        from ..engine.replay import replay_access_stream
        for label, proc, stream in (("reference", ref_proc, ref_stream),
                                    ("vectorized", vec_proc, vec_stream)):
            replay = replay_access_stream(stream[0], stream[1],
                                          proc.dcache.cache)
            outcome.replay_strategies[label] = replay.strategy
            if not replay.matches(proc.dcache.cache.stats):
                note(f"batch replay ({label}, kernel {replay.strategy}): "
                     f"batch={replay.stats!r} "
                     f"scalar={proc.dcache.cache.stats!r}")
    return outcome
