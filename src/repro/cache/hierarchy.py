"""Two-level cache hierarchy with Inclusion.

Section 3.2 of the paper explains why Inclusion is awkward with pseudo-random
indexing: with conventional indexing the L1 resident copy of any L2 line sits
at a predictable L1 index, so replacing an L2 line implicitly guarantees the
L1 copy is gone too; with I-Poly indexing there is no such correspondence, so
the hierarchy must *explicitly* back-invalidate L1 when L2 evicts a line that
L1 still holds.  Each such back-invalidation punches a "hole" in L1 — a line
that disappears even though the program may still be using it — and the extra
misses those holes cause are the price of Inclusion.

:class:`TwoLevelHierarchy` wires two :class:`~repro.cache.set_assoc.SetAssociativeCache`
instances together, enforces Inclusion, and counts holes so the experiment
drivers can compare the measured hole rate against the analytical model in
:mod:`repro.models.holes`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .set_assoc import AccessResult, SetAssociativeCache

__all__ = ["HierarchyAccessResult", "TwoLevelHierarchy"]


@dataclass
class HierarchyAccessResult:
    """Outcome of one access to a two-level hierarchy."""

    block_number: int
    l1_hit: bool
    l2_hit: bool
    hole_created: bool = False
    l1_result: Optional[AccessResult] = None
    l2_result: Optional[AccessResult] = None

    @property
    def memory_access(self) -> bool:
        """True when the request had to go to main memory."""
        return not self.l1_hit and not self.l2_hit


class TwoLevelHierarchy:
    """An inclusive L1/L2 pair with explicit back-invalidation.

    Parameters
    ----------
    l1, l2:
        The two cache levels.  They may use different block sizes as long as
        the L2 block size is a multiple of the L1 block size (the usual
        arrangement); Inclusion is enforced at L2-block granularity.
    enforce_inclusion:
        When False the hierarchy behaves as non-inclusive (no
        back-invalidation), which is useful as an ablation.
    """

    def __init__(self, l1: SetAssociativeCache, l2: SetAssociativeCache,
                 enforce_inclusion: bool = True) -> None:
        if l1.block_size > l2.block_size:
            raise ValueError(
                "L1 block size must not exceed the L2 block size "
                f"({l1.block_size} vs {l2.block_size})"
            )
        if l2.block_size % l1.block_size:
            raise ValueError(
                "L2 block size must be a multiple of the L1 block size "
                f"({l2.block_size} vs {l1.block_size})"
            )
        if l2.size_bytes < l1.size_bytes:
            raise ValueError("L2 must be at least as large as L1")
        self.l1 = l1
        self.l2 = l2
        self._ratio = l2.block_size // l1.block_size
        self._enforce_inclusion = enforce_inclusion

        self.holes_created = 0
        self.l2_misses_causing_holes = 0
        self.back_invalidations = 0

    @property
    def inclusion_enforced(self) -> bool:
        """Whether back-invalidation is active."""
        return self._enforce_inclusion

    def _l2_block_of_l1_block(self, l1_block: int) -> int:
        return l1_block // self._ratio

    def _l1_blocks_of_l2_block(self, l2_block: int):
        start = l2_block * self._ratio
        return range(start, start + self._ratio)

    def access(self, address: int, is_write: bool = False) -> HierarchyAccessResult:
        """Perform one access, propagating misses downwards and enforcing Inclusion."""
        l1_block = self.l1.block_number_of(address)
        l1_result = self.l1.access_block(l1_block, is_write=is_write)
        if l1_result.hit:
            # Write-through L1 still sends the write to L2; model that as an
            # L2 write access so its dirty/statistics state stays meaningful.
            l2_result = None
            if is_write:
                l2_result = self.l2.access(address, is_write=True)
            return HierarchyAccessResult(l1_block, True, True,
                                         l1_result=l1_result, l2_result=l2_result)

        l2_result = self.l2.access(address, is_write=is_write)
        hole = False
        if not l2_result.hit and l2_result.evicted_block is not None:
            hole = self._back_invalidate(l2_result.evicted_block,
                                         filling_l1_block=l1_block)
            if hole:
                self.l2_misses_causing_holes += 1
        return HierarchyAccessResult(l1_block, False, l2_result.hit,
                                     hole_created=hole,
                                     l1_result=l1_result, l2_result=l2_result)

    def _back_invalidate(self, evicted_l2_block: int,
                         filling_l1_block: Optional[int] = None) -> bool:
        """Invalidate any L1 copies of an evicted L2 block.

        Returns True when at least one *hole* was created — i.e. an L1 line
        other than the one currently being refilled was invalidated.  (If the
        invalidated line is the very line being replaced anyway, no hole
        appears; this is the coincidence the paper's equation (viii) accounts
        for.)
        """
        if not self._enforce_inclusion:
            return False
        hole = False
        for l1_block in self._l1_blocks_of_l2_block(evicted_l2_block):
            if self.l1.invalidate_block(l1_block):
                self.back_invalidations += 1
                if filling_l1_block is None or l1_block != filling_l1_block:
                    hole = True
                    self.holes_created += 1
                    self.l1.stats.holes_created += 1
        return hole

    # ------------------------------------------------------------------ #
    # derived metrics
    # ------------------------------------------------------------------ #

    @property
    def l2_miss_count(self) -> int:
        """Number of L2 misses observed so far."""
        return self.l2.stats.misses

    @property
    def hole_rate_per_l2_miss(self) -> float:
        """Fraction of L2 misses that created at least one L1 hole.

        This is the quantity the paper reports as "the percentage of L2
        misses that created a hole" (average < 0.1%, never > 1.2% with a 1 MB
        L2 behind an 8 KB L1).
        """
        misses = self.l2_miss_count
        return self.l2_misses_causing_holes / misses if misses else 0.0

    def check_inclusion(self) -> bool:
        """Verify that every valid L1 block is also present in L2."""
        if not self._enforce_inclusion:
            return True
        l2_resident = set(self.l2.resident_blocks())
        return all(self._l2_block_of_l1_block(b) in l2_resident
                   for b in self.l1.resident_blocks())

    def flush(self) -> None:
        """Empty both levels."""
        self.l1.flush()
        self.l2.flush()
