"""E-T2 / E-SD: regenerate Table 2 — IPC and load miss ratio, 18 programs x 6 configs.

Paper claims checked here (shape, not absolute values — the programs are
synthetic models):

* I-Poly indexing cuts the combined-average load miss ratio substantially
  (16.53% -> 9.68% in the paper);
* the combined-average IPC ordering is
  ``8K-conv <= 8K-ipoly-CP <= 8K-ipoly-noCP ~= 8K-ipoly-CP-pred``;
* address prediction with the XOR stage on the critical path recovers the
  performance of the XOR-free configuration;
* the cross-suite standard deviation of miss ratios falls sharply
  (18.49 -> 5.16 in the paper).
"""

import pytest

from repro.experiments.table2 import miss_ratio_std_dev, run_table2


@pytest.mark.benchmark(group="table2")
def test_table2_full_suite(benchmark, bench_instructions):
    result = benchmark.pedantic(
        lambda: run_table2(instructions=bench_instructions), rounds=1, iterations=1)

    print()
    print(result.render())
    stds = miss_ratio_std_dev(result)
    print(f"\nmiss-ratio std-dev: conventional={stds['8K-conv']:.2f} "
          f"ipoly={stds['8K-ipoly-noCP']:.2f}")

    ipc = result.ipc_table()
    miss = result.miss_ratio_table()
    combined = "Combined average"

    # Miss-ratio reduction from I-Poly indexing.
    assert miss.get(combined, "8K-ipoly-noCP") < miss.get(combined, "8K-conv") * 0.8
    # IPC ordering of the configurations.
    assert ipc.get(combined, "8K-ipoly-noCP") > ipc.get(combined, "8K-conv")
    assert ipc.get(combined, "8K-ipoly-CP") <= ipc.get(combined, "8K-ipoly-noCP") + 1e-9
    assert ipc.get(combined, "8K-ipoly-CP-pred") >= ipc.get(combined, "8K-ipoly-CP")
    # Prediction recovers (or exceeds) the no-critical-path configuration.
    assert ipc.get(combined, "8K-ipoly-CP-pred") >= ipc.get(combined, "8K-ipoly-noCP") - 0.02
    # Doubling the cache helps the conventional configuration.
    assert ipc.get(combined, "16K-conv") >= ipc.get(combined, "8K-conv")
    # Std-dev of miss ratios falls with I-Poly indexing (the E-SD claim).
    assert stds["8K-ipoly-noCP"] < stds["8K-conv"] * 0.6
