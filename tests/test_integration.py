"""Cross-module integration tests: whole pipelines wired end to end."""

import pytest

from repro.cache import (
    SetAssociativeCache,
    TwoLevelHierarchy,
    VirtualRealHierarchy,
    WritePolicy,
)
from repro.core import IPolyIndexing, derive_xor_matrix, make_index_function
from repro.cpu import (
    Instruction,
    OpClass,
    OutOfOrderProcessor,
    ProcessorConfig,
    Program,
)
from repro.memory import AddressTranslator, PageTable, TLB
from repro.models import HoleModel
from repro.trace import (
    build_trace,
    materialise,
    read_binary_trace,
    tiled_matrix_multiply,
    write_binary_trace,
)


class TestTraceToCachePipeline:
    def test_persisted_trace_replays_identically(self, tmp_path):
        """Generating, persisting, re-reading and replaying a workload trace
        gives exactly the same cache statistics as the in-memory trace."""
        trace = materialise(build_trace("tomcatv", length=5_000))
        path = tmp_path / "tomcatv.bin"
        write_binary_trace(path, trace)

        def run(accesses):
            cache = SetAssociativeCache(8 * 1024, 32, 2)
            for access in accesses:
                cache.access(access.address, is_write=access.is_write)
            return (cache.stats.loads, cache.stats.load_misses,
                    cache.stats.stores, cache.stats.store_misses)

        assert run(trace) == run(read_binary_trace(path))

    def test_kernel_trace_through_full_hierarchy(self):
        """A blocked-matmul trace through an I-Poly L1 / conventional L2 pair
        keeps Inclusion and produces sensible statistics."""
        l1 = SetAssociativeCache(
            8 * 1024, 32, 2,
            index_function=IPolyIndexing(128, ways=2, skewed=True, address_bits=19))
        l2 = SetAssociativeCache(64 * 1024, 32, 4,
                                 write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
        hierarchy = TwoLevelHierarchy(l1, l2)
        for access in tiled_matrix_multiply(n=24, tile=8):
            hierarchy.access(access.address, is_write=access.is_write)
        assert hierarchy.check_inclusion()
        assert l1.stats.accesses > 0
        assert l1.stats.miss_ratio < 0.2      # blocked kernel + I-Poly = few misses
        assert l2.stats.misses <= l1.stats.misses


class TestVirtualRealWithTranslationStack:
    def test_translator_backed_hierarchy(self):
        """The full stack: TLB + page table + virtual-real hierarchy + hole model."""
        page_table = PageTable(page_size=4096, allocation="scatter", seed=11)
        translator = AddressTranslator(page_table, TLB(entries=32))
        l1 = SetAssociativeCache(
            8 * 1024, 32, 2,
            index_function=make_index_function("a2-Hp-Sk", 128, ways=2,
                                               address_bits=19))
        l2 = SetAssociativeCache(128 * 1024, 32, 2,
                                 write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
        hierarchy = VirtualRealHierarchy(l1, l2, translate=translator.translate)

        for access in build_trace("wave5", length=15_000):
            hierarchy.access(access.address, is_write=access.is_write)

        model = HoleModel(8 * 1024, 128 * 1024, 32)
        assert hierarchy.check_inclusion()
        assert hierarchy.hole_rate_per_l2_miss <= model.hole_probability + 0.05
        assert translator._tlb.hit_ratio > 0.5


class TestTraceDrivenProcessor:
    def test_program_built_from_a_raw_trace(self):
        """A processor program can be synthesised directly from an address
        trace (every access becomes a load/store with simple dependences)."""
        accesses = materialise(build_trace("swim", length=3_000))

        def to_instructions():
            for i, access in enumerate(accesses):
                if access.is_write:
                    yield Instruction(pc=access.pc or 4 * i, op=OpClass.STORE,
                                      srcs=(1,), address=access.address)
                else:
                    yield Instruction(pc=access.pc or 4 * i, op=OpClass.LOAD,
                                      dest=4 + (i % 28), srcs=(1,),
                                      address=access.address)

        program = Program("swim-trace", to_instructions, length_hint=len(accesses))
        conventional = OutOfOrderProcessor(ProcessorConfig()).run(program)
        ipoly = OutOfOrderProcessor(
            ProcessorConfig(index_scheme="a2-Hp-Sk")).run(program)
        assert conventional.instructions == len(accesses)
        assert ipoly.load_miss_ratio < conventional.load_miss_ratio
        assert ipoly.ipc > conventional.ipc

    def test_processor_cache_matches_standalone_cache(self):
        """The processor's functional cache behaviour equals a standalone cache
        fed the same load stream (stores excluded: commit order differs)."""
        accesses = [a for a in materialise(build_trace("gcc", length=4_000))
                    if not a.is_write]
        instructions = [Instruction(pc=8 * i, op=OpClass.LOAD, dest=4 + (i % 28),
                                    address=a.address)
                        for i, a in enumerate(accesses)]
        cfg = ProcessorConfig()
        processor = OutOfOrderProcessor(cfg)
        result = processor.run(Program.from_list("gcc-loads", instructions))

        standalone = cfg.build_cache()
        for access in accesses:
            standalone.access(access.address)
        assert result.load_miss_ratio == pytest.approx(
            standalone.stats.load_miss_ratio, abs=1e-9)


class TestHardwareViewConsistency:
    def test_processor_index_function_has_bounded_fan_in(self):
        """The index function the Table 2 I-Poly machine actually uses is
        implementable with small XOR trees, as Section 3 claims."""
        cfg = ProcessorConfig(index_scheme="a2-Hp-Sk")
        cache = cfg.build_cache()
        for way in range(cfg.cache_ways):
            cost = derive_xor_matrix(cache.index_function, way=way).cost()
            # Way 0 uses the canonical trinomial (fan-in 5, the paper's
            # figure); the second skewing polynomial is denser but still a
            # single small XOR tree per bit.
            assert cost.max_fan_in <= 7
            assert cost.index_bits == 7
            assert cost.tree_depth_gates <= 3
