"""Out-of-order superscalar processor model (the paper's Section 4 machine).

The model is a trace-driven timing simulator: it walks the committed dynamic
instruction stream in program order and computes, for every instruction, the
cycles at which it is fetched, dispatched, issued, completed and committed,
subject to the machine's resource limits:

* 4-wide fetch, dispatch and commit;
* a 32-entry reorder buffer;
* two physical register files (integer and floating point) of 64 registers,
  allocated at dispatch and released at commit;
* the Table 1 functional units with their latencies and repeat rates;
* a 2K-entry bimodal branch predictor — a misprediction stalls fetch until
  the branch resolves;
* a lockup-free, 2-cycle-hit, write-through/no-write-allocate L1 data cache
  with 8 MSHRs and a 20-cycle miss penalty to an infinite L2 over a 64-bit
  bus (modelled by :class:`~repro.cpu.dcache.DataCacheModel`);
* store-buffer forwarding for loads that depend on buffered stores; memory
  dependences are otherwise speculated perfectly (ARB-style), matching the
  paper's machine;
* optionally, the 1K-entry tagless stride address predictor, which lets a
  confidently-and-correctly predicted load start its cache access in parallel
  with its address computation — removing both the XOR-in-critical-path
  penalty and one cycle of effective hit time.

Dependences between instructions are honoured through register ready times
(renaming removes all false dependences, so only true RAW dependences carry
timing).  The approach — a single in-order pass with resource state carried
in "next free" structures — reproduces the first-order behaviour of an
out-of-order core at a small fraction of the cost of an event-driven model,
which is what makes the Table 2 sweep (18 programs x 6 configurations)
practical in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from ..cache.set_assoc import SetAssociativeCache, WritePolicy
from ..core.index import make_index_function
from .address_predictor import StrideAddressPredictor
from .branch_predictor import BimodalBranchPredictor
from .dcache import DataCacheModel, DataCacheTiming
from .functional_units import FunctionalUnitPool
from .isa import Instruction, OpClass, is_fp_register
from .lsq import StoreForwardingBuffer
from .program import Program
from .resources import ThroughputLimiter, WindowResource

__all__ = ["ProcessorConfig", "SimulationResult", "OutOfOrderProcessor"]


@dataclass(frozen=True)
class ProcessorConfig:
    """Configuration of the modelled machine (defaults follow the paper)."""

    fetch_width: int = 4
    commit_width: int = 4
    rob_entries: int = 32
    int_physical_registers: int = 64
    fp_physical_registers: int = 64
    branch_predictor_entries: int = 2048
    decode_latency: int = 1
    misprediction_redirect_penalty: int = 1

    # L1 data cache geometry and placement scheme.
    cache_size_bytes: int = 8 * 1024
    cache_block_size: int = 32
    cache_ways: int = 2
    index_scheme: str = "a2"
    index_address_bits: int = 19
    #: "reference" evaluates the placement function with scalar GF(2)
    #: division; "vectorized" swaps in the engine's table-accelerated,
    #: bit-exact equivalent (same IPC and miss ratios, faster simulation).
    index_engine: str = "reference"

    # Cache timing.
    cache_hit_time: int = 2
    cache_miss_penalty: int = 20
    xor_in_critical_path: bool = False
    xor_penalty: int = 1
    cache_ports: int = 2
    mshr_entries: int = 8
    bus_cycles_per_line: int = 4

    # Memory address prediction.
    address_prediction: bool = False
    address_predictor_entries: int = 1024

    def __post_init__(self) -> None:
        if self.fetch_width < 1 or self.commit_width < 1:
            raise ValueError("pipeline widths must be positive")
        if self.rob_entries < 1:
            raise ValueError("rob_entries must be positive")
        if self.int_physical_registers < 32 or self.fp_physical_registers < 32:
            raise ValueError("physical register files must cover the architectural state")
        if self.decode_latency < 0 or self.misprediction_redirect_penalty < 0:
            raise ValueError("latencies must be non-negative")
        if self.index_engine not in ("reference", "vectorized"):
            raise ValueError(
                f"unknown index_engine {self.index_engine!r}; "
                "expected 'reference' or 'vectorized'"
            )
        # Cache geometry: surface impossible configurations at construction
        # instead of deep inside build_cache() mid-experiment (the same
        # uniform validation the cache classes themselves apply).
        if self.cache_block_size < 1 or self.cache_block_size & (self.cache_block_size - 1):
            raise ValueError("cache_block_size must be a positive power of two")
        if self.cache_ways < 1:
            raise ValueError("cache_ways must be at least 1")
        if self.cache_size_bytes < self.cache_block_size * self.cache_ways:
            raise ValueError("cache must hold at least one set")
        if self.cache_size_bytes % (self.cache_block_size * self.cache_ways):
            raise ValueError(
                "cache_size_bytes must be a multiple of cache_block_size * "
                f"cache_ways ({self.cache_block_size * self.cache_ways}), "
                f"got {self.cache_size_bytes}"
            )
        num_sets = self.cache_size_bytes // (self.cache_block_size * self.cache_ways)
        if num_sets & (num_sets - 1):
            raise ValueError(f"number of sets must be a power of two, got {num_sets}")
        # Predictor tables are direct-mapped on power-of-two masks; their
        # classes validate too, but only when the predictor is built —
        # with address_prediction=False a bad entry count would otherwise
        # lurk until someone flips prediction on.
        for label, entries in (("branch_predictor_entries",
                                self.branch_predictor_entries),
                               ("address_predictor_entries",
                                self.address_predictor_entries)):
            if entries < 1 or entries & (entries - 1):
                raise ValueError(f"{label} must be a positive power of two")
        # Cache timing: DataCacheTiming applies its own uniform validation;
        # constructing it here surfaces degenerate port/MSHR/latency values
        # at config construction time.
        self.cache_timing()

    def cache_timing(self) -> DataCacheTiming:
        """The :class:`DataCacheTiming` implied by this configuration."""
        return DataCacheTiming(
            hit_time=self.cache_hit_time,
            miss_penalty=self.cache_miss_penalty,
            xor_in_critical_path=self.xor_in_critical_path,
            xor_penalty=self.xor_penalty,
            ports=self.cache_ports,
            mshr_entries=self.mshr_entries,
            bus_cycles_per_line=self.bus_cycles_per_line,
        )

    def build_cache(self) -> SetAssociativeCache:
        """Construct the L1 data cache described by this configuration."""
        num_sets = self.cache_size_bytes // (self.cache_block_size * self.cache_ways)
        index_fn = make_index_function(self.index_scheme, num_sets=num_sets,
                                       ways=self.cache_ways,
                                       address_bits=self.index_address_bits)
        if self.index_engine == "vectorized":
            # Local import: the cpu layer stays importable without pulling
            # the batch engine in unless the fast index path is requested.
            from ..engine.tabulated import tabulate_index_function
            index_fn = tabulate_index_function(index_fn)
        return SetAssociativeCache(
            size_bytes=self.cache_size_bytes,
            block_size=self.cache_block_size,
            ways=self.cache_ways,
            index_function=index_fn,
            write_policy=WritePolicy.WRITE_THROUGH_NO_ALLOCATE,
        )


@dataclass
class SimulationResult:
    """Aggregate outcome of simulating one program on one configuration."""

    program: str
    config: ProcessorConfig
    instructions: int
    cycles: int
    load_miss_ratio: float
    store_miss_ratio: float
    branch_misprediction_ratio: float
    address_prediction_coverage: float
    address_prediction_accuracy: float
    loads: int
    stores: int
    branches: int
    forwarded_loads: int
    op_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def load_miss_ratio_percent(self) -> float:
        """Load miss ratio expressed in percent (as in the paper's tables)."""
        return 100.0 * self.load_miss_ratio


class OutOfOrderProcessor:
    """Timing model of the 4-way out-of-order core."""

    def __init__(self, config: Optional[ProcessorConfig] = None,
                 cache_model: Optional[DataCacheModel] = None) -> None:
        self.config = config or ProcessorConfig()
        if cache_model is None:
            cache_model = DataCacheModel(self.config.build_cache(),
                                         self.config.cache_timing())
        self.dcache = cache_model
        self.branch_predictor = BimodalBranchPredictor(
            self.config.branch_predictor_entries)
        self.address_predictor = (
            StrideAddressPredictor(self.config.address_predictor_entries)
            if self.config.address_prediction else None
        )
        self.fu_pool = FunctionalUnitPool()
        self.store_buffer = StoreForwardingBuffer()

        self._fetch = ThroughputLimiter(self.config.fetch_width, "fetch")
        self._commit = ThroughputLimiter(self.config.commit_width, "commit")
        self._rob = WindowResource(self.config.rob_entries, "rob")
        self._int_regs = WindowResource(self.config.int_physical_registers, "int-prf")
        self._fp_regs = WindowResource(self.config.fp_physical_registers, "fp-prf")
        # Cycle before which fetch may not proceed (raised by mispredictions).
        self._fetch_floor = 0

    # ------------------------------------------------------------------ #

    def run(self, program: Program,
            max_instructions: Optional[int] = None) -> SimulationResult:
        """Simulate ``program`` and return aggregate statistics.

        The simulation is fully deterministic: the model draws no randomness
        of its own (every stochastic choice lives in the program generator),
        so running the same program on a freshly built processor always
        produces identical results — the property the differential fuzz
        harness (:mod:`repro.cpu.fuzzer`) depends on and audits.
        """
        if max_instructions is not None and max_instructions < 0:
            raise ValueError("max_instructions must be non-negative")
        cfg = self.config
        reg_ready: Dict[int, int] = {}
        prev_commit = 0
        last_commit = 0

        instructions = 0
        loads = stores = branches = 0
        forwarded = 0
        op_counts: Dict[str, int] = {}

        for seq, inst in enumerate(program.instructions()):
            if max_instructions is not None and instructions >= max_instructions:
                break
            inst.seq = seq
            instructions += 1
            op_counts[inst.op] = op_counts.get(inst.op, 0) + 1

            fetch_cycle = self._fetch.record(self._fetch_floor)
            dispatch_request = fetch_cycle + cfg.decode_latency
            dispatch_cycle = max(dispatch_request,
                                 self._rob.earliest_acquire(dispatch_request))
            regfile = None
            if inst.dest is not None:
                regfile = self._fp_regs if is_fp_register(inst.dest) else self._int_regs
                dispatch_cycle = max(dispatch_cycle,
                                     regfile.earliest_acquire(dispatch_cycle))

            operands_ready = dispatch_cycle
            for src in inst.srcs:
                operands_ready = max(operands_ready, reg_ready.get(src, 0))

            complete, result_ready, was_forwarded = self._execute(
                inst, operands_ready)
            if was_forwarded:
                forwarded += 1

            commit_cycle = self._commit.record(max(complete + 1, prev_commit))
            prev_commit = commit_cycle
            last_commit = commit_cycle

            self._rob.acquire(dispatch_cycle, commit_cycle)
            if regfile is not None:
                regfile.acquire(dispatch_cycle, commit_cycle)
            if inst.dest is not None:
                reg_ready[inst.dest] = result_ready

            if inst.is_load:
                loads += 1
            elif inst.is_store:
                stores += 1
                # The store drains to the write-through cache after commit.
                self.dcache.store(inst.address, commit_cycle)
                self.store_buffer.record_store(seq, inst.address, complete,
                                               commit_cycle)
            elif inst.is_branch:
                branches += 1

        cache_stats = self.dcache.cache.stats
        return SimulationResult(
            program=program.name,
            config=cfg,
            instructions=instructions,
            cycles=last_commit,
            load_miss_ratio=cache_stats.load_miss_ratio,
            store_miss_ratio=(cache_stats.store_misses / cache_stats.stores
                              if cache_stats.stores else 0.0),
            branch_misprediction_ratio=self.branch_predictor.misprediction_ratio,
            address_prediction_coverage=(self.address_predictor.coverage
                                         if self.address_predictor else 0.0),
            address_prediction_accuracy=(self.address_predictor.accuracy
                                         if self.address_predictor else 0.0),
            loads=loads,
            stores=stores,
            branches=branches,
            forwarded_loads=forwarded,
            op_counts=op_counts,
        )

    # ------------------------------------------------------------------ #

    def _execute(self, inst: Instruction, operands_ready: int):
        """Compute (complete_cycle, result_ready_cycle, forwarded) for one instruction.

        Branch handling also updates the fetch redirect point via
        ``self._fetch_redirect``; the caller reads it back through the
        closure-free attribute set below.
        """
        if inst.is_load:
            return self._execute_load(inst, operands_ready)
        if inst.is_store:
            _, addr_done = self.fu_pool.issue(OpClass.STORE, operands_ready)
            return addr_done, addr_done, False
        if inst.is_branch:
            _, complete = self.fu_pool.issue(OpClass.BRANCH, operands_ready)
            predicted_correct = self.branch_predictor.update(inst.pc, inst.taken)
            if not predicted_correct:
                self._redirect_fetch(complete
                                     + self.config.misprediction_redirect_penalty)
            return complete, complete, False
        _, complete = self.fu_pool.issue(inst.op, operands_ready)
        return complete, complete, False

    def _execute_load(self, inst: Instruction, operands_ready: int):
        addr_start, addr_done = self.fu_pool.issue(OpClass.LOAD, operands_ready)

        predicted_ok = False
        if self.address_predictor is not None:
            prediction = self.address_predictor.predict(inst.pc)
            correct = self.address_predictor.update(inst.pc, inst.address)
            predicted_ok = prediction.usable and correct

        forwarded_ready = self.store_buffer.forward(inst.seq, inst.address, addr_done)
        if forwarded_ready is not None:
            return forwarded_ready, forwarded_ready, True

        if predicted_ok:
            # The speculative access was launched with the predicted line in
            # parallel with the address computation; the verification against
            # the real address happens when the add completes, so the data is
            # usable no earlier than that.
            timing = self.dcache.load(inst.address, addr_start,
                                      predicted_index_available=True)
            ready = max(timing.ready_cycle, addr_done)
        else:
            timing = self.dcache.load(inst.address, addr_done,
                                      predicted_index_available=False)
            ready = timing.ready_cycle
        return ready, ready, False

    # ------------------------------------------------------------------ #

    def _redirect_fetch(self, cycle: int) -> None:
        # Fetch may not proceed past a mispredicted branch until it resolves.
        self._fetch_floor = max(self._fetch_floor, cycle)
