#!/usr/bin/env python3
"""Two-level virtual-real hierarchy: Inclusion, holes, and the analytical model.

Section 3 of the paper argues that the clean way to deploy I-Poly indexing at
L1 is the two-level virtual-real organisation of Wang, Baer & Levy: a
virtually-indexed, virtually-tagged L1 (so the hash can use as many address
bits as it likes) over a physically-indexed L2 that enforces Inclusion.  The
cost is the occasional "hole": when L2 evicts a line that is still live in
L1, the L1 copy must be invalidated.

This example builds that hierarchy — an 8 KB skewed I-Poly L1 indexed by
virtual addresses over a physically-indexed conventional L2 — drives it with
a synthetic workload, and compares the measured hole rate per L2 miss with
the analytical prediction of equations (vii)-(ix).

``--engine vectorized`` runs the same experiment through the batch engine
(:class:`repro.engine.BatchVirtualRealHierarchy`): translation, both cache
levels and the Inclusion protocol all execute array-at-a-time, producing
identical counters.  ``--json`` emits the measurements as a machine-readable
object instead of the narrated report.

Run it with::

    python examples/virtual_real_hierarchy.py
    python examples/virtual_real_hierarchy.py --l2-kilobytes 1024 --accesses 100000
    python examples/virtual_real_hierarchy.py --engine vectorized --json
"""

import argparse
import json
import sys

from repro.cache import SetAssociativeCache, VirtualRealHierarchy, WritePolicy
from repro.core import IPolyIndexing
from repro.engine import ENGINES, batch_virtual_real_like, materialise_batch
from repro.memory import PageTable
from repro.models import HoleModel
from repro.trace import build_trace

PAGE_SIZE = 4096
L1_BYTES = 8 * 1024
BLOCK = 32


def build_hierarchy(l2_bytes, seed):
    page_table = PageTable(page_size=PAGE_SIZE, allocation="scatter", seed=seed)
    l1 = SetAssociativeCache(
        L1_BYTES, BLOCK, 2,
        index_function=IPolyIndexing(128, ways=2, skewed=True, address_bits=19))
    l2 = SetAssociativeCache(l2_bytes, BLOCK, 2,
                             write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
    hierarchy = VirtualRealHierarchy(l1, l2, translate=page_table.translate,
                                     page_size=PAGE_SIZE)
    return hierarchy, page_table


def run_experiment(l2_bytes, accesses, engine, seed):
    """Simulate the hierarchy on the chosen engine; returns a result dict."""
    hierarchy, page_table = build_hierarchy(l2_bytes, seed)
    model = HoleModel(l1_bytes=L1_BYTES, l2_bytes=l2_bytes, block_size=BLOCK)

    # A mixed workload: the streaming-heavy swim model exercises L2 capacity.
    trace = build_trace("swim", length=accesses, seed=seed)
    if engine == "vectorized":
        hierarchy = batch_virtual_real_like(hierarchy, page_table)
        hierarchy.run(materialise_batch(trace))
    else:
        for access in trace:
            hierarchy.access(access.address, is_write=access.is_write)

    return {
        "engine": engine,
        "workload": "swim",
        "seed": seed,
        "accesses": accesses,
        "l1_bytes": L1_BYTES,
        "l2_bytes": l2_bytes,
        "block_size": BLOCK,
        "page_size": PAGE_SIZE,
        "l1_load_miss_ratio": hierarchy.l1.stats.load_miss_ratio,
        "l2_misses": hierarchy.l2.stats.misses,
        "holes_created": hierarchy.holes_created,
        "alias_invalidations": hierarchy.alias_invalidations,
        "hole_rate_per_l2_miss": hierarchy.hole_rate_per_l2_miss,
        "model_hole_probability": model.hole_probability,
        "page_faults": page_table.page_faults,
        "inclusion_holds": hierarchy.check_inclusion(),
    }


def render(result):
    l2_kb = result["l2_bytes"] // 1024
    lines = [
        f"8 KB skewed I-Poly L1 (virtual index) over {l2_kb} KB conventional "
        f"L2 (physical index), {result['accesses']} accesses of the "
        f"'{result['workload']}' model [{result['engine']} engine]",
        "",
        f"L1 load miss ratio:        {result['l1_load_miss_ratio']:8.2%}",
        f"L2 misses:                 {result['l2_misses']:8d}",
        f"L1 holes created:          {result['holes_created']:8d}",
        f"alias invalidations:       {result['alias_invalidations']:8d}",
        f"page faults:               {result['page_faults']:8d}",
        f"hole rate per L2 miss:     {result['hole_rate_per_l2_miss']:8.4f}",
        f"analytical P_H (eq. ix):   {result['model_hole_probability']:8.4f}",
        f"inclusion invariant holds: {result['inclusion_holds']}",
        "",
        "The analytical model is an upper-bound-style estimate assuming",
        "direct-mapped levels and fully uncorrelated indices; the simulated",
        "hierarchy sits at or below it, supporting the paper's conclusion",
        "that holes have a negligible effect on L1 miss ratio.",
    ]
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--l2-kilobytes", type=int, default=256,
                        help="L2 capacity in KB (default 256)")
    parser.add_argument("--accesses", type=int, default=60_000,
                        help="trace length (default 60000)")
    parser.add_argument("--engine", choices=list(ENGINES), default="reference",
                        help="scalar reference protocol or the batch engine")
    parser.add_argument("--seed", type=int, default=2027,
                        help="seed for the trace model and page allocator")
    parser.add_argument("--json", action="store_true",
                        help="emit the measurements as machine-readable JSON")
    args = parser.parse_args(argv)

    result = run_experiment(args.l2_kilobytes * 1024, args.accesses,
                            args.engine, args.seed)
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        print(render(result))
    return 0


if __name__ == "__main__":
    sys.exit(main())
