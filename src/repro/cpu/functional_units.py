"""Functional units and their latencies (Table 1 of the paper).

The modelled machine has a fixed set of execution resources:

====================  =======  ===========  ===========
Functional unit       Count    Latency      Repeat rate
====================  =======  ===========  ===========
Simple integer        1        1            1
Complex integer       1        9 mul / 67 div   1 / 67
Effective address     2        1            1
Simple FP             1        4            1
FP multiplication     1        4            1
FP divide and SQRT    1        16 div / 35 sqrt  16 / 35
====================  =======  ===========  ===========

Each unit is modelled by its *next-free* cycle (the repeat rate determines
how soon a new operation may start) and the operation latency (when the
result becomes available to dependents).  Memory instructions additionally
use one of the two effective-address units before accessing the cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .isa import OpClass

__all__ = ["OperationTiming", "FunctionalUnit", "FunctionalUnitPool", "TABLE1_TIMINGS"]


@dataclass(frozen=True)
class OperationTiming:
    """Latency and repeat (initiation) interval of one operation class."""

    latency: int
    repeat: int

    def __post_init__(self) -> None:
        if self.latency < 1 or self.repeat < 1:
            raise ValueError("latency and repeat must be at least 1")


#: Operation timings from Table 1.
TABLE1_TIMINGS: Dict[str, OperationTiming] = {
    OpClass.INT_ALU: OperationTiming(latency=1, repeat=1),
    OpClass.INT_MUL: OperationTiming(latency=9, repeat=1),
    OpClass.INT_DIV: OperationTiming(latency=67, repeat=67),
    OpClass.FP_ADD: OperationTiming(latency=4, repeat=1),
    OpClass.FP_MUL: OperationTiming(latency=4, repeat=1),
    OpClass.FP_DIV: OperationTiming(latency=16, repeat=16),
    OpClass.FP_SQRT: OperationTiming(latency=35, repeat=35),
    # Effective-address computation for loads and stores.
    OpClass.LOAD: OperationTiming(latency=1, repeat=1),
    OpClass.STORE: OperationTiming(latency=1, repeat=1),
    # Branches resolve on the simple integer unit.
    OpClass.BRANCH: OperationTiming(latency=1, repeat=1),
}


class FunctionalUnit:
    """One execution resource shared by a set of operation classes."""

    def __init__(self, name: str, op_classes: Tuple[str, ...],
                 timings: Dict[str, OperationTiming]) -> None:
        if not op_classes:
            raise ValueError("a functional unit must serve at least one op class")
        for op in op_classes:
            if op not in timings:
                raise ValueError(f"no timing defined for op class {op!r}")
        self.name = name
        self._op_classes = op_classes
        self._timings = timings
        self._next_free = 0
        self.operations = 0
        self.busy_cycles = 0

    @property
    def op_classes(self) -> Tuple[str, ...]:
        """Operation classes this unit executes."""
        return self._op_classes

    def serves(self, op: str) -> bool:
        """True when this unit can execute ``op``."""
        return op in self._op_classes

    def next_start(self, now: int) -> int:
        """Earliest cycle a new operation could start."""
        return max(now, self._next_free)

    def issue(self, op: str, now: int) -> Tuple[int, int]:
        """Issue an operation; returns ``(start_cycle, completion_cycle)``."""
        if not self.serves(op):
            raise ValueError(f"unit {self.name} cannot execute {op}")
        timing = self._timings[op]
        start = self.next_start(now)
        self._next_free = start + timing.repeat
        self.operations += 1
        self.busy_cycles += timing.repeat
        return start, start + timing.latency

    def reset(self) -> None:
        """Clear occupancy and statistics."""
        self._next_free = 0
        self.operations = 0
        self.busy_cycles = 0


class FunctionalUnitPool:
    """The full complement of execution resources from Table 1."""

    def __init__(self, timings: Dict[str, OperationTiming] = None,
                 effective_address_units: int = 2) -> None:
        if effective_address_units < 1:
            raise ValueError("at least one effective-address unit is required")
        self._timings = dict(TABLE1_TIMINGS if timings is None else timings)
        self._units: List[FunctionalUnit] = [
            FunctionalUnit("simple-int", (OpClass.INT_ALU, OpClass.BRANCH),
                           self._timings),
            FunctionalUnit("complex-int", (OpClass.INT_MUL, OpClass.INT_DIV),
                           self._timings),
            FunctionalUnit("simple-fp", (OpClass.FP_ADD,), self._timings),
            FunctionalUnit("fp-mul", (OpClass.FP_MUL,), self._timings),
            FunctionalUnit("fp-div-sqrt", (OpClass.FP_DIV, OpClass.FP_SQRT),
                           self._timings),
        ]
        for i in range(effective_address_units):
            self._units.append(
                FunctionalUnit(f"eff-addr-{i}", (OpClass.LOAD, OpClass.STORE),
                               self._timings))

    @property
    def units(self) -> List[FunctionalUnit]:
        """All functional units."""
        return list(self._units)

    def timing(self, op: str) -> OperationTiming:
        """Latency/repeat of an operation class."""
        return self._timings[op]

    def earliest_unit(self, op: str, now: int) -> FunctionalUnit:
        """The serving unit that can start ``op`` soonest (ties by order)."""
        candidates = [u for u in self._units if u.serves(op)]
        if not candidates:
            raise ValueError(f"no functional unit serves {op!r}")
        return min(candidates, key=lambda u: u.next_start(now))

    def issue(self, op: str, now: int) -> Tuple[int, int]:
        """Issue ``op`` on the best unit; returns ``(start, completion)``."""
        return self.earliest_unit(op, now).issue(op, now)

    def reset(self) -> None:
        """Reset every unit."""
        for unit in self._units:
            unit.reset()
