"""Cache statistics and the 3C miss classification.

The paper reports *load miss ratios* and argues about *conflict* misses
specifically, so the statistics layer distinguishes loads from stores and can
attribute each miss to one of the classic three C's:

* **compulsory** — the block has never been referenced before;
* **capacity**   — the block was referenced before but would also miss in a
  fully-associative LRU cache of the same capacity;
* **conflict**   — the block would have hit in that fully-associative cache,
  so the miss is caused purely by the placement function.

The classifier runs a shadow fully-associative LRU model alongside the real
cache; this is the standard Hill & Smith methodology and is exactly the
quantity the I-Poly scheme sets out to eliminate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

__all__ = ["CacheStats", "MissKind", "MissClassifier"]


class MissKind:
    """Enumeration of miss classes (plain strings for easy reporting)."""

    COMPULSORY = "compulsory"
    CAPACITY = "capacity"
    CONFLICT = "conflict"

    ALL = (COMPULSORY, CAPACITY, CONFLICT)


@dataclass
class CacheStats:
    """Counters accumulated by a cache model.

    ``loads``/``stores`` count accesses, ``load_misses``/``store_misses``
    count misses, and ``miss_kinds`` breaks misses down per
    :class:`MissKind` when a classifier is attached to the cache.
    """

    loads: int = 0
    stores: int = 0
    load_misses: int = 0
    store_misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    invalidations: int = 0
    holes_created: int = 0
    miss_kinds: Dict[str, int] = field(
        default_factory=lambda: {kind: 0 for kind in MissKind.ALL}
    )

    @property
    def accesses(self) -> int:
        """Total number of accesses observed."""
        return self.loads + self.stores

    @property
    def misses(self) -> int:
        """Total number of misses (loads + stores)."""
        return self.load_misses + self.store_misses

    @property
    def hits(self) -> int:
        """Total number of hits."""
        return self.accesses - self.misses

    @property
    def miss_ratio(self) -> float:
        """Overall miss ratio; 0.0 when no accesses have been made."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def load_miss_ratio(self) -> float:
        """Load miss ratio — the metric the paper's tables report."""
        return self.load_misses / self.loads if self.loads else 0.0

    @property
    def conflict_miss_ratio(self) -> float:
        """Conflict misses as a fraction of all accesses."""
        if not self.accesses:
            return 0.0
        return self.miss_kinds[MissKind.CONFLICT] / self.accesses

    def record_access(self, is_write: bool, hit: bool,
                      miss_kind: Optional[str] = None) -> None:
        """Record one access and, if it missed, its classification."""
        if is_write:
            self.stores += 1
            if not hit:
                self.store_misses += 1
        else:
            self.loads += 1
            if not hit:
                self.load_misses += 1
        if not hit and miss_kind is not None:
            if miss_kind not in self.miss_kinds:
                raise ValueError(f"unknown miss kind {miss_kind!r}")
            self.miss_kinds[miss_kind] += 1

    def reset(self) -> None:
        """Zero all counters."""
        self.loads = 0
        self.stores = 0
        self.load_misses = 0
        self.store_misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.invalidations = 0
        self.holes_created = 0
        for kind in self.miss_kinds:
            self.miss_kinds[kind] = 0


class MissClassifier:
    """3C miss classifier based on a shadow fully-associative LRU cache.

    Parameters
    ----------
    capacity_blocks:
        Number of blocks the shadow cache holds — normally the same capacity
        as the cache under study so that "capacity" means "would also miss in
        the best possible placement of the same size".
    """

    def __init__(self, capacity_blocks: int) -> None:
        if capacity_blocks < 1:
            raise ValueError("capacity_blocks must be positive")
        self._capacity = capacity_blocks
        self._seen: Set[int] = set()
        # Insertion-ordered plain dict as the shadow LRU stack (oldest
        # first); also used directly by the batch engine's kernels.
        self._shadow: Dict[int, None] = {}

    @property
    def capacity_blocks(self) -> int:
        """Capacity of the shadow fully-associative cache, in blocks."""
        return self._capacity

    def classify(self, block_number: int, real_hit: bool) -> Optional[str]:
        """Observe one access and classify it.

        Must be called for *every* access (hits included) so the shadow LRU
        state stays in sync; returns the miss kind for misses and ``None``
        for hits.
        """
        first_touch = block_number not in self._seen
        self._seen.add(block_number)

        shadow = self._shadow
        shadow_hit = block_number in shadow
        if shadow_hit:
            del shadow[block_number]
            shadow[block_number] = None
        else:
            shadow[block_number] = None
            if len(shadow) > self._capacity:
                del shadow[next(iter(shadow))]

        if real_hit:
            return None
        if first_touch:
            return MissKind.COMPULSORY
        if not shadow_hit:
            return MissKind.CAPACITY
        return MissKind.CONFLICT

    def reset(self) -> None:
        """Forget all history."""
        self._seen.clear()
        self._shadow.clear()
