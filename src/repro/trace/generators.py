"""Synthetic address-trace generators.

These generators produce the reference patterns the paper's analysis is built
on:

* :func:`strided_vector` — the Figure 1 experiment: repeated sweeps over a
  fixed-length vector whose elements are separated by a configurable stride.
* :func:`multi_array_sweep` — simultaneous streaming through several arrays
  whose base addresses may collide under conventional indexing (the classic
  tomcatv/swim pattern).
* :func:`matrix_traversal` — row- or column-major walks of a 2-D array,
  where column-major walks of power-of-two-sized rows are the textbook
  pathological stride.
* :func:`tiled_matrix_multiply` — the blocked kernel the conclusions mention:
  tiling introduces conflicts that depend on array dimensions, which an
  I-Poly cache removes.
* :func:`pointer_chase` — a deterministic pseudo-random dependent-load chain,
  modelling the low-conflict pointer-heavy behaviour of the integer codes.
* :func:`random_accesses` — uniform random references over a footprint.

Every generator is deterministic: randomness comes from an explicit seed via
a SplitMix64 stream so experiments are exactly reproducible.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from .record import MemoryAccess

__all__ = [
    "strided_vector",
    "multi_array_sweep",
    "matrix_traversal",
    "tiled_matrix_multiply",
    "pointer_chase",
    "random_accesses",
    "interleave",
]


class _SplitMix64:
    """Small deterministic PRNG used by all generators (no `random` module)."""

    def __init__(self, seed: int) -> None:
        self._state = seed & 0xFFFFFFFFFFFFFFFF

    def next(self) -> int:
        self._state = (self._state + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        return z ^ (z >> 31)

    def below(self, bound: int) -> int:
        if bound <= 0:
            raise ValueError("bound must be positive")
        return self.next() % bound


def strided_vector(
    stride: int,
    elements: int = 64,
    element_size: int = 8,
    sweeps: int = 4,
    base: int = 0,
    is_write: bool = False,
    pc_base: int = 0x1000,
) -> Iterator[MemoryAccess]:
    """Repeatedly sweep a vector of ``elements`` entries separated by ``stride``.

    This reproduces the Figure 1 workload: 64 eight-byte elements separated
    by stride ``S`` (in units of elements), accessed repeatedly.  The first
    sweep incurs compulsory misses; subsequent sweeps reveal whether the
    placement function maps the stream onto distinct sets.
    """
    if stride < 1:
        raise ValueError("stride must be at least 1")
    if elements < 1 or sweeps < 1:
        raise ValueError("elements and sweeps must be positive")
    step = stride * element_size
    for _ in range(sweeps):
        for i in range(elements):
            yield MemoryAccess(address=base + i * step, is_write=is_write,
                               pc=pc_base, size=element_size)


def multi_array_sweep(
    num_arrays: int = 3,
    elements: int = 2048,
    element_size: int = 8,
    array_spacing: Optional[int] = None,
    sweeps: int = 2,
    stride: int = 1,
    base: int = 0,
    write_last: bool = True,
    pc_base: int = 0x2000,
) -> Iterator[MemoryAccess]:
    """Stream through several arrays in lock-step (``a[i] op b[i] -> c[i]``).

    When ``array_spacing`` is a multiple of the cache way-capacity the arrays'
    corresponding elements collide under conventional indexing on every
    iteration — the dominant source of conflict misses in tomcatv, swim and
    wave5.  The default spacing of 64 KB (a power of two) triggers exactly
    that behaviour for the paper's 8 KB and 16 KB caches.
    """
    if num_arrays < 1:
        raise ValueError("num_arrays must be positive")
    if array_spacing is None:
        array_spacing = 64 * 1024
    step = stride * element_size
    for _ in range(sweeps):
        for i in range(elements):
            for a in range(num_arrays):
                address = base + a * array_spacing + i * step
                is_write = write_last and a == num_arrays - 1
                yield MemoryAccess(address=address, is_write=is_write,
                                   pc=pc_base + 8 * a, size=element_size)


def matrix_traversal(
    rows: int,
    cols: int,
    element_size: int = 8,
    order: str = "column",
    passes: int = 1,
    base: int = 0,
    pc_base: int = 0x3000,
) -> Iterator[MemoryAccess]:
    """Walk a ``rows x cols`` row-major matrix in row- or column-major order.

    A column-major walk touches addresses separated by ``cols * element_size``
    — a large power-of-two stride whenever ``cols`` is a power of two, which
    is the canonical conventional-indexing disaster.
    """
    if order not in ("row", "column"):
        raise ValueError("order must be 'row' or 'column'")
    if rows < 1 or cols < 1 or passes < 1:
        raise ValueError("rows, cols and passes must be positive")
    row_bytes = cols * element_size
    for _ in range(passes):
        if order == "row":
            for r in range(rows):
                for c in range(cols):
                    yield MemoryAccess(base + r * row_bytes + c * element_size,
                                       pc=pc_base, size=element_size)
        else:
            for c in range(cols):
                for r in range(rows):
                    yield MemoryAccess(base + r * row_bytes + c * element_size,
                                       pc=pc_base, size=element_size)


def tiled_matrix_multiply(
    n: int = 64,
    tile: int = 16,
    element_size: int = 8,
    base_a: int = 0,
    base_b: Optional[int] = None,
    base_c: Optional[int] = None,
    pc_base: int = 0x4000,
) -> Iterator[MemoryAccess]:
    """Blocked ``C = A x B`` reference stream for square ``n x n`` matrices.

    Tiling is the standard locality optimisation, but as the paper's
    conclusions note it introduces conflicts that depend on the matrix
    dimensions; with power-of-two ``n`` the tiles of A, B and C collide under
    conventional placement.  The generator emits the loads of A and B and the
    load+store of C for every multiply-accumulate in a three-level blocked
    loop nest.
    """
    if n < 1 or tile < 1:
        raise ValueError("n and tile must be positive")
    if tile > n:
        tile = n
    matrix_bytes = n * n * element_size
    if base_b is None:
        base_b = base_a + matrix_bytes
    if base_c is None:
        base_c = base_b + matrix_bytes

    def element(base: int, row: int, col: int) -> int:
        return base + (row * n + col) * element_size

    for ii in range(0, n, tile):
        for jj in range(0, n, tile):
            for kk in range(0, n, tile):
                for i in range(ii, min(ii + tile, n)):
                    for j in range(jj, min(jj + tile, n)):
                        yield MemoryAccess(element(base_c, i, j), pc=pc_base,
                                           size=element_size)
                        for k in range(kk, min(kk + tile, n)):
                            yield MemoryAccess(element(base_a, i, k),
                                               pc=pc_base + 8, size=element_size)
                            yield MemoryAccess(element(base_b, k, j),
                                               pc=pc_base + 16, size=element_size)
                        yield MemoryAccess(element(base_c, i, j), is_write=True,
                                           pc=pc_base + 24, size=element_size)


def pointer_chase(
    nodes: int = 4096,
    node_size: int = 64,
    hops: int = 10000,
    base: int = 0,
    seed: int = 1,
    pc_base: int = 0x5000,
) -> Iterator[MemoryAccess]:
    """Follow a deterministic pseudo-random cycle through ``nodes`` records.

    The permutation is built from a seeded shuffle, so the stream is a single
    long dependent chain with essentially no spatial regularity — the
    behaviour that dominates pointer-heavy integer codes and that no indexing
    function can improve (misses are capacity/compulsory, not conflict).
    """
    if nodes < 2 or hops < 1:
        raise ValueError("nodes must be >= 2 and hops >= 1")
    rng = _SplitMix64(seed)
    order = list(range(nodes))
    for i in range(nodes - 1, 0, -1):
        j = rng.below(i + 1)
        order[i], order[j] = order[j], order[i]
    successor = [0] * nodes
    for i in range(nodes):
        successor[order[i]] = order[(i + 1) % nodes]
    current = order[0]
    for _ in range(hops):
        yield MemoryAccess(base + current * node_size, pc=pc_base, size=8)
        current = successor[current]


def random_accesses(
    count: int,
    footprint_bytes: int,
    element_size: int = 8,
    write_fraction: float = 0.3,
    base: int = 0,
    seed: int = 7,
    pc_base: int = 0x6000,
) -> Iterator[MemoryAccess]:
    """Uniform random references across a footprint, with a store fraction."""
    if count < 1 or footprint_bytes < element_size:
        raise ValueError("count must be positive and footprint >= element_size")
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError("write_fraction must be within [0, 1]")
    rng = _SplitMix64(seed)
    slots = footprint_bytes // element_size
    threshold = int(write_fraction * 1_000_000)
    for _ in range(count):
        slot = rng.below(slots)
        is_write = rng.below(1_000_000) < threshold
        yield MemoryAccess(base + slot * element_size, is_write=is_write,
                           pc=pc_base, size=element_size)


def interleave(traces: Sequence[Iterator[MemoryAccess]],
               chunk: int = 1) -> Iterator[MemoryAccess]:
    """Round-robin interleave several traces, ``chunk`` accesses at a time.

    Useful for modelling interleaved accesses to independent data structures
    (e.g. the virtual-alias experiment, or mixing a strided stream with a
    pointer chase).  Exhausted traces drop out; iteration ends when all are
    exhausted.
    """
    if chunk < 1:
        raise ValueError("chunk must be positive")
    active: List[Iterator[MemoryAccess]] = [iter(t) for t in traces]
    while active:
        still_active: List[Iterator[MemoryAccess]] = []
        for trace in active:
            emitted = 0
            exhausted = False
            while emitted < chunk:
                try:
                    yield next(trace)
                except StopIteration:
                    exhausted = True
                    break
                emitted += 1
            if not exhausted:
                still_active.append(trace)
        active = still_active
