"""Command-line entry point: run any of the paper's experiments from a shell.

Usage (after ``pip install -e .``)::

    python -m repro.experiments.cli figure1 --max-stride 1024 --stride-step 4
    python -m repro.experiments.cli figure1 --engine vectorized --workers 4
    python -m repro.experiments.cli table2 --instructions 12000
    python -m repro.experiments.cli table3 --instructions 12000
    python -m repro.experiments.cli miss-ratio --accesses 30000
    python -m repro.experiments.cli miss-ratio --engine vectorized
    python -m repro.experiments.cli miss-ratio --replacement plru
    python -m repro.experiments.cli replacement-study --engine vectorized
    python -m repro.experiments.cli holes --accesses 40000
    python -m repro.experiments.cli holes --engine vectorized --seed 7
    python -m repro.experiments.cli column-assoc --accesses 30000
    python -m repro.experiments.cli critical-path

Each sub-command prints the same table/histogram the corresponding benchmark
regenerates; ``--csv`` switches the tabular experiments to CSV output so the
results can be piped into other tools.  ``--engine {reference,vectorized}``
selects the scalar reference models or the bit-exact NumPy batch engine.
``figure1``, ``miss-ratio``, ``replacement-study``, ``table2`` and
``table3`` all accept ``--workers`` (fan the sweep across processes),
``--chunksize`` (tasks per worker dispatch) and the fault-tolerance knobs
``--timeout``/``--retries``/``--on-error``/``--resume`` (per-dispatch
deadlines, seeded-backoff retries, collect-instead-of-abort, and
checkpoint/resume through a sweep journal); the first three additionally
take ``--profile {auto,always,never}`` (route profilable conventional-LRU
rows through the one-pass multi-configuration profiler — bit-exact in every
mode).  ``--replacement {lru,fifo,random,plru}`` selects
the replacement policy on the trace-level cache experiments;
``replacement-study`` sweeps all four policies across conventional, skewed
and victim organisations at once.

``figure1``, ``miss-ratio`` and ``replacement-study`` also take ``--trace
FILE``: replay a recorded on-disk trace (packed v2 — optionally
gzip/bz2/xz/zstd-compressed — v1 binary/text, or Dinero ``.din``) instead
of the synthetic workloads, streamed in ``--trace-chunk``-access batches on
the vectorized engine so memory stays bounded for arbitrarily long traces.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from ..cache.replacement import REPLACEMENT_POLICIES
from ..engine import ENGINES, ON_ERROR_POLICIES, PROFILE_MODES
from .column_assoc_study import run_column_assoc_study
from .critical_path import run_critical_path_study
from .figure1 import run_figure1
from .holes_study import run_holes_study
from .miss_ratio_study import run_miss_ratio_study
from .replacement_study import run_replacement_study
from .table2 import miss_ratio_std_dev, run_table2
from .table3 import run_table3

__all__ = ["main", "build_parser"]


def _nonnegative_int(text: str) -> int:
    """Argparse type: an integer >= 0 (rejected in the parser, not deep in a
    driver — a negative ``--workers`` used to silently run serially)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_int(text: str) -> int:
    """Argparse type: an integer >= 1."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _positive_float(text: str) -> float:
    """Argparse type: a finite float > 0."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if not value > 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _unit_rate(text: str) -> float:
    """Argparse type: a float in (0, 1] (the SHARDS sampling rate)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if not 0.0 < value <= 1.0:
        raise argparse.ArgumentTypeError(f"must be in (0, 1], got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the experiments of 'The Design and Performance "
                    "of a Conflict-Avoiding Cache' (MICRO-30, 1997).",
    )
    sub = parser.add_subparsers(dest="experiment", required=True)

    def add_engine(parser_: argparse.ArgumentParser) -> None:
        parser_.add_argument("--engine", choices=list(ENGINES),
                             default="reference",
                             help="simulation engine: scalar reference models "
                                  "or the bit-exact NumPy batch engine")

    def add_replacement(parser_: argparse.ArgumentParser) -> None:
        parser_.add_argument("--replacement",
                             choices=list(REPLACEMENT_POLICIES),
                             default="lru",
                             help="replacement policy for every cache of the "
                                  "experiment (identical across engines, "
                                  "including the deterministic random policy)")

    def add_sweep_options(parser_: argparse.ArgumentParser,
                          unit: str = "tasks") -> None:
        parser_.add_argument("--workers", type=_nonnegative_int, default=None,
                             help="fan the sweep across this many processes")
        parser_.add_argument("--chunksize", type=_positive_int, default=None,
                             help=f"{unit} per worker dispatch (amortises "
                                  "process-pool overhead on tiny tasks)")
        parser_.add_argument("--timeout", type=_positive_float, default=None,
                             help="per-dispatch timeout in seconds (pool "
                                  "modes; a hung worker is killed and the "
                                  "task retried)")
        parser_.add_argument("--retries", type=_nonnegative_int, default=0,
                             help="failed attempts a task may retry "
                                  "(exponential backoff with seeded jitter)")
        parser_.add_argument("--on-error", dest="on_error",
                             choices=list(ON_ERROR_POLICIES), default="raise",
                             help="once a task exhausts its retries: abort "
                                  "the sweep, or collect a structured "
                                  "TaskFailure and finish the rest")
        parser_.add_argument("--resume", default=None, metavar="JOURNAL",
                             help="sweep-journal path: completed tasks are "
                                  "appended as they finish and pre-loaded "
                                  "on the next run, so a killed sweep "
                                  "restarts from its last completed task")

    def add_profile(parser_: argparse.ArgumentParser) -> None:
        parser_.add_argument("--profile", choices=list(PROFILE_MODES),
                             default="auto",
                             help="one-pass multi-configuration LRU/FIFO "
                                  "profiling on the vectorized engine: auto "
                                  "(profile when it wins), always, never — "
                                  "bit-exact — or sampled (approximate "
                                  "SHARDS-sampled LRU profiles)")
        parser_.add_argument("--sample-rate", dest="sample_rate",
                             type=_unit_rate, default=0.01,
                             help="profile=sampled: spatial sampling rate in "
                                  "(0, 1]; 1.0 degenerates to the exact "
                                  "profile")
        parser_.add_argument("--sample-size", dest="sample_size",
                             type=_positive_int, default=None,
                             help="profile=sampled: cap the expected sample "
                                  "to about this many accesses (fixed-size "
                                  "SHARDS; lowers the effective rate on "
                                  "long traces)")
        parser_.add_argument("--profile-seed", dest="profile_seed",
                             type=_nonnegative_int, default=0,
                             help="profile=sampled: seed of the spatial hash "
                                  "(same seed + rate => bit-identical "
                                  "sampled results)")

    def add_trace(parser_: argparse.ArgumentParser) -> None:
        parser_.add_argument("--trace", default=None, metavar="FILE",
                             help="replay this recorded trace instead of the "
                                  "synthetic workloads (packed v2, optionally "
                                  ".gz/.bz2/.xz/.zst-compressed, v1 "
                                  "binary/text, or Dinero .din)")
        parser_.add_argument("--trace-chunk", dest="trace_chunk",
                             type=_positive_int, default=1 << 20,
                             help="accesses per streamed batch on the "
                                  "vectorized engine (bounds memory; results "
                                  "are identical for any chunk size)")

    figure1 = sub.add_parser("figure1", help="Figure 1 stride sweep")
    figure1.add_argument("--max-stride", type=int, default=1024)
    figure1.add_argument("--stride-step", type=int, default=4)
    figure1.add_argument("--sweeps", type=int, default=8)
    add_sweep_options(figure1, unit="strides")
    add_engine(figure1)
    add_replacement(figure1)
    add_profile(figure1)
    add_trace(figure1)

    table2 = sub.add_parser("table2", help="Table 2 IPC / miss-ratio sweep")
    table2.add_argument("--instructions", type=int, default=12_000)
    table2.add_argument("--programs", nargs="*", default=None)
    table2.add_argument("--csv", action="store_true")
    add_sweep_options(table2, unit="programs")
    add_engine(table2)

    table3 = sub.add_parser("table3", help="Table 3 high-conflict breakdown")
    table3.add_argument("--instructions", type=int, default=12_000)
    add_sweep_options(table3, unit="programs")
    add_engine(table3)

    miss_ratio = sub.add_parser("miss-ratio", help="Section 2.1 organisation comparison")
    miss_ratio.add_argument("--accesses", type=int, default=30_000)
    miss_ratio.add_argument("--programs", nargs="*", default=None)
    miss_ratio.add_argument("--csv", action="store_true")
    add_sweep_options(miss_ratio, unit="programs")
    add_engine(miss_ratio)
    add_replacement(miss_ratio)
    add_profile(miss_ratio)
    add_trace(miss_ratio)

    replacement = sub.add_parser(
        "replacement-study",
        help="replacement policy x organisation sweep (LRU practicality)")
    replacement.add_argument("--accesses", type=int, default=20_000)
    replacement.add_argument("--programs", nargs="*", default=None)
    replacement.add_argument("--csv", action="store_true")
    add_sweep_options(replacement, unit="programs")
    add_engine(replacement)
    add_profile(replacement)
    add_trace(replacement)

    holes = sub.add_parser("holes", help="Section 3.3 hole model vs simulation")
    holes.add_argument("--accesses", type=int, default=40_000)
    holes.add_argument("--l2-kilobytes", nargs="*", type=int, default=[256, 1024])
    holes.add_argument("--seed", type=int, default=999,
                       help="seed shared by the trace models and the "
                            "scatter-allocating page table")
    add_engine(holes)

    column = sub.add_parser("column-assoc", help="Section 3.1 column-associative study")
    column.add_argument("--accesses", type=int, default=30_000)

    sub.add_parser("critical-path", help="Section 3/3.4 hardware cost and CLA timing")
    return parser


def _run_experiment(args: argparse.Namespace) -> str:
    def fault_options(args_: argparse.Namespace) -> dict:
        return {"timeout": args_.timeout, "retries": args_.retries,
                "on_error": args_.on_error, "resume": args_.resume}

    def profile_options(args_: argparse.Namespace) -> dict:
        return {"profile": args_.profile, "sample_rate": args_.sample_rate,
                "sample_size": args_.sample_size,
                "profile_seed": args_.profile_seed}

    if args.experiment == "figure1":
        result = run_figure1(max_stride=args.max_stride, sweeps=args.sweeps,
                             stride_step=args.stride_step,
                             engine=args.engine, workers=args.workers,
                             chunksize=args.chunksize,
                             replacement=args.replacement,
                             trace=args.trace,
                             trace_chunk=args.trace_chunk,
                             **profile_options(args),
                             **fault_options(args))
        return result.render()
    if args.experiment == "table2":
        result = run_table2(programs=args.programs or None,
                            instructions=args.instructions,
                            engine=args.engine,
                            workers=args.workers,
                            chunksize=args.chunksize, **fault_options(args))
        if args.csv:
            return (result.ipc_table().render_csv()
                    + "\n" + result.miss_ratio_table().render_csv())
        stds = miss_ratio_std_dev(result)
        return (result.render()
                + f"\n\nmiss-ratio std-dev: conventional={stds['8K-conv']:.2f} "
                  f"ipoly={stds['8K-ipoly-noCP']:.2f}")
    if args.experiment == "table3":
        return run_table3(instructions=args.instructions,
                          engine=args.engine,
                          workers=args.workers,
                          chunksize=args.chunksize,
                          **fault_options(args)).render()
    if args.experiment == "miss-ratio":
        result = run_miss_ratio_study(programs=args.programs or None,
                                      accesses=args.accesses,
                                      engine=args.engine,
                                      replacement=args.replacement,
                                      workers=args.workers,
                                      chunksize=args.chunksize,
                                      **profile_options(args),
                                      trace=args.trace,
                                      trace_chunk=args.trace_chunk,
                                      **fault_options(args))
        return result.table().render_csv() if args.csv else result.render()
    if args.experiment == "replacement-study":
        result = run_replacement_study(programs=args.programs or None,
                                       accesses=args.accesses,
                                       engine=args.engine,
                                       workers=args.workers,
                                       chunksize=args.chunksize,
                                       **profile_options(args),
                                       trace=args.trace,
                                       trace_chunk=args.trace_chunk,
                                       **fault_options(args))
        return result.table().render_csv() if args.csv else result.render()
    if args.experiment == "holes":
        result = run_holes_study(l2_sizes=[kb * 1024 for kb in args.l2_kilobytes],
                                 accesses=args.accesses, seed=args.seed,
                                 engine=args.engine)
        return result.render()
    if args.experiment == "column-assoc":
        return run_column_assoc_study(accesses=args.accesses).render()
    if args.experiment == "critical-path":
        return run_critical_path_study().render()
    raise ValueError(f"unknown experiment {args.experiment!r}")  # pragma: no cover


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments, run the experiment, print its report; returns exit code."""
    args = build_parser().parse_args(argv)
    print(_run_experiment(args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
