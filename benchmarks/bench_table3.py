"""E-T3: regenerate Table 3 — the high-conflict programs and the good/bad averages.

Paper claims checked (shape):

* the bad programs (tomcatv, swim, wave5) gain large IPC improvements from
  I-Poly indexing even with the XOR stage on the critical path (paper ~27%)
  and more with address prediction (paper ~33%);
* with prediction, 8 KB I-Poly beats the 16 KB conventional cache on the bad
  programs (paper: up to 16% better);
* the good programs lose only a few percent IPC with the XOR stage on the
  critical path, and essentially nothing once prediction is enabled.
"""

import pytest

from repro.experiments.table3 import run_table3
from repro.trace.workloads import HIGH_CONFLICT_PROGRAMS, LOW_CONFLICT_PROGRAMS


@pytest.mark.benchmark(group="table3")
def test_table3_bad_and_good_programs(benchmark, bench_instructions):
    # The bad programs plus a representative slice of the good ones keeps the
    # benchmark affordable; the full 18-program run happens in bench_table2.
    programs = HIGH_CONFLICT_PROGRAMS + LOW_CONFLICT_PROGRAMS[:6]
    from repro.experiments.table2 import run_table2

    result = benchmark.pedantic(
        lambda: run_table3(table2_result=run_table2(
            programs=programs, instructions=bench_instructions)),
        rounds=1, iterations=1)

    print()
    print(result.render())
    summary = result.improvement_summary()

    assert summary["bad_ipoly_cp_vs_8k_conv"] > 15.0
    assert summary["bad_ipoly_cp_pred_vs_8k_conv"] >= summary["bad_ipoly_cp_vs_8k_conv"]
    assert summary["bad_ipoly_cp_pred_vs_16k_conv"] > 0.0
    # Good programs: small cost with the XOR stage on the critical path,
    # essentially recovered by prediction.
    assert -6.0 < summary["good_ipoly_cp_vs_8k_conv"] <= 1.0
    assert summary["good_ipoly_cp_pred_vs_8k_conv"] > summary["good_ipoly_cp_vs_8k_conv"] - 1e-9
