"""Streaming trace layer: v2 format, compression, ``.din``, chunked parity.

Pins the two guarantees :mod:`repro.trace.stream` makes:

* **bit-exactness** — replaying a trace through
  :func:`~repro.trace.stream.iter_trace_chunks` (any chunk size, any
  format, mmap or buffered) produces the same statistics, policy state
  tables and profiler histograms as materialising the whole trace at once,
  for every batch kernel family and for the incremental profiler builders;
* **error precision** — every corruption case the one-shot readers locate
  (record index, byte offset, ``path:line``) is located identically when
  the same file streams through the chunked iterator, after every complete
  earlier chunk has been yielded.
"""

import dataclasses
import gzip
import json
import os
import struct
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.index import make_index_function
from repro.engine.batch import AddressBatch
from repro.engine.batch_cache import (
    BatchColumnAssociativeCache,
    BatchSetAssociativeCache,
    BatchVictimCache,
)
from repro.engine.multiconfig import (
    MultiConfigLRUProfile,
    MultiConfigProfileBuilder,
    StackDistanceBuilder,
    StackDistanceProfile,
)
from repro.trace.record import MemoryAccess
from repro.trace.stream import (
    DEFAULT_CHUNK_SIZE,
    TRACE_V2_HEADER_SIZE,
    TRACE_V2_MAGIC,
    TRACE_V2_RECORD_BYTES,
    TraceV2Writer,
    convert_trace,
    detect_trace_format,
    import_din_trace,
    iter_trace_chunks,
    read_din_trace,
    read_trace_records,
    read_trace_v2,
    trace_record_count,
    write_trace_v2,
)
from repro.trace.trace_io import (
    read_text_trace,
    write_binary_trace,
    write_text_trace,
)

CORPUS = Path(__file__).parent / "corpus"
GOLDEN = Path(__file__).parent / "golden"


# --------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------- #

def _columns(n, seed=0, writes=True):
    """Deterministic column arrays exercising wide addresses and pcs."""
    rng = np.random.default_rng(seed)
    addresses = rng.integers(0, 1 << 48, size=n, dtype=np.uint64)
    flags = (rng.random(n) < 0.3) if writes else np.zeros(n, dtype=bool)
    pcs = rng.integers(0, 1 << 40, size=n, dtype=np.uint64)
    sizes = rng.integers(1, 65, size=n, dtype=np.uint32)
    return addresses, flags, pcs, sizes


def _records(n, seed=0):
    addresses, flags, pcs, sizes = _columns(n, seed)
    return [MemoryAccess(address=int(a), is_write=bool(w), pc=int(p),
                         size=int(s))
            for a, w, p, s in zip(addresses, flags, pcs, sizes)]


def _drain(path, chunk_size, use_mmap=False):
    """Concatenate every chunk of ``iter_trace_chunks`` into two arrays."""
    addresses, writes = [], []
    for batch in iter_trace_chunks(path, chunk_size=chunk_size,
                                   use_mmap=use_mmap):
        addresses.append(batch.addresses)
        writes.append(batch.is_write)
    if not addresses:
        return np.empty(0, dtype=np.uint64), np.empty(0, dtype=bool)
    return np.concatenate(addresses), np.concatenate(writes)


def _cache_batch(n=3000, seed=7, cold_loads=256):
    """A locality-bearing batch whose first chunk is load-only and cold.

    Small address footprint so the caches see plenty of hits, with a
    load-only prefix so chunked replay starts on the run-collapse kernel
    and hands off to the dict kernel mid-stream.
    """
    rng = np.random.default_rng(seed)
    addresses = (rng.integers(0, 1 << 10, size=n, dtype=np.uint64)
                 * np.uint64(32))
    writes = rng.random(n) < 0.3
    writes[:cold_loads] = False
    return AddressBatch.from_arrays(addresses, writes)


def _plain(value):
    """Normalise cache state for comparison (NumPy arrays -> lists)."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {key: _plain(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    return value


_STATE_ATTRS = ("_clock", "_sets", "_way_tags", "_way_used", "_way_dirty",
                "_frames", "_dirty", "_victim", "_victim_dirty",
                "_victim_order")


def _state_tables(cache):
    """The policy/placement state tables a cache instance carries."""
    snapshot = {}
    for attr in _STATE_ATTRS:
        if hasattr(cache, attr):
            snapshot[attr] = _plain(getattr(cache, attr))
    policy = getattr(cache, "_vec_policy", None)
    if policy is not None:
        state = {}
        for attr, value in vars(policy).items():
            if isinstance(value, (int, float, bool, str, list, tuple, dict,
                                  np.ndarray)):
                state[attr] = _plain(value)
        snapshot["_vec_policy"] = state
    return snapshot


# --------------------------------------------------------------------- #
# format detection
# --------------------------------------------------------------------- #

class TestDetectFormat:
    def test_v2_and_v1_binary_by_magic(self, tmp_path):
        v2 = tmp_path / "renamed.txt"  # suffix lies; magic wins
        write_trace_v2(v2, [0x100, 0x200])
        v1 = tmp_path / "t.bin"
        write_binary_trace(v1, _records(3))
        assert detect_trace_format(v2).kind == "v2"
        assert detect_trace_format(v2).compression is None
        assert detect_trace_format(v1).kind == "v1-binary"

    def test_text_and_din_by_first_line(self, tmp_path):
        text = tmp_path / "t.trace"
        write_text_trace(text, _records(3))
        din = tmp_path / "t.din"
        din.write_text("2 80004000\n0 1000\n")
        assert detect_trace_format(text).kind == "text"
        assert detect_trace_format(din).kind == "din"

    def test_compression_detected_by_magic_not_suffix(self, tmp_path):
        plain = tmp_path / "t.ctr"
        write_trace_v2(plain, [0x40, 0x80], is_write=[True, False])
        renamed = tmp_path / "t.dat"  # no .gz suffix on a gzip file
        renamed.write_bytes(gzip.compress(plain.read_bytes()))
        fmt = detect_trace_format(renamed)
        assert fmt.kind == "v2"
        assert fmt.compression == "gzip"
        loaded = read_trace_v2(renamed)
        assert loaded.addresses.tolist() == [0x40, 0x80]
        assert loaded.is_write.tolist() == [True, False]

    def test_unrecognised_content_is_an_error(self, tmp_path):
        path = tmp_path / "noise.trc"
        path.write_bytes(b"GARBAGE-NOT-A-TRACE\n")
        with pytest.raises(ValueError, match="unrecognised trace format"):
            detect_trace_format(path)

    def test_short_magic_prefix_keeps_truncation_errors(self, tmp_path):
        # A prefix of the shared "CACTR" stem routes to the v1 parser and
        # keeps its established truncated-header message.
        path = tmp_path / "short.bin"
        path.write_bytes(b"CACT")
        with pytest.raises(ValueError, match="truncated header"):
            list(read_trace_records(path))
        v2ish = tmp_path / "short2.bin"
        v2ish.write_bytes(b"CACTR2\0")
        with pytest.raises(ValueError, match="truncated v2 header"):
            list(read_trace_records(v2ish))


# --------------------------------------------------------------------- #
# v2 round trips
# --------------------------------------------------------------------- #

class TestV2RoundTrip:
    @pytest.mark.parametrize("suffix", ["", ".gz", ".bz2", ".xz"])
    def test_columns_round_trip(self, tmp_path, suffix):
        addresses, flags, pcs, sizes = _columns(200, seed=1)
        path = tmp_path / f"t.ctr{suffix}"
        assert write_trace_v2(path, addresses, is_write=flags, pcs=pcs,
                              sizes=sizes) == 200
        loaded = read_trace_v2(path)
        assert np.array_equal(loaded.addresses, addresses)
        assert np.array_equal(loaded.is_write, flags)
        assert np.array_equal(loaded.pcs, pcs)
        assert np.array_equal(loaded.sizes, sizes)
        assert loaded.count == 200
        assert trace_record_count(path) == 200

    def test_mmap_and_buffered_reads_agree(self, tmp_path):
        addresses, flags, pcs, sizes = _columns(500, seed=2)
        path = tmp_path / "t.ctr"
        write_trace_v2(path, addresses, is_write=flags, pcs=pcs, sizes=sizes)
        mapped = read_trace_v2(path, use_mmap=True)
        buffered = read_trace_v2(path, use_mmap=False)
        for name in ("addresses", "pcs", "sizes", "is_write"):
            assert np.array_equal(getattr(mapped, name),
                                  getattr(buffered, name))

    def test_file_layout_is_the_documented_one(self, tmp_path):
        path = tmp_path / "t.ctr"
        write_trace_v2(path, [0x10, 0x20], is_write=[False, True],
                       pcs=[0x400, 0x404], sizes=[4, 8])
        raw = path.read_bytes()
        assert raw[:8] == TRACE_V2_MAGIC
        (count,) = struct.unpack_from("<Q", raw, 8)
        assert count == 2
        assert len(raw) == TRACE_V2_HEADER_SIZE + 2 * TRACE_V2_RECORD_BYTES
        assert struct.unpack_from("<2Q", raw, 16) == (0x10, 0x20)
        assert struct.unpack_from("<2Q", raw, 32) == (0x400, 0x404)
        assert struct.unpack_from("<2I", raw, 48) == (4, 8)
        assert raw[56:58] == b"\x00\x01"

    def test_default_pcs_and_sizes_match_memory_access(self, tmp_path):
        path = tmp_path / "t.ctr"
        write_trace_v2(path, [0x100])
        record = next(iter(read_trace_v2(path).records()))
        assert record == MemoryAccess(address=0x100)

    def test_records_reconstruct_exactly(self, tmp_path):
        records = _records(64, seed=3)
        path = tmp_path / "t.ctr"
        with TraceV2Writer(path) as writer:
            writer.append_records(iter(records), chunk_size=10)
        assert list(read_trace_v2(path).records()) == records
        assert list(read_trace_records(path)) == records

    def test_empty_trace_round_trips(self, tmp_path):
        path = tmp_path / "empty.ctr"
        assert write_trace_v2(path, []) == 0
        assert read_trace_v2(path).count == 0
        assert list(iter_trace_chunks(path, chunk_size=4)) == []


class TestTraceV2Writer:
    def test_chunked_append_is_byte_identical_to_one_shot(self, tmp_path):
        addresses, flags, pcs, sizes = _columns(300, seed=4)
        one_shot = tmp_path / "one.ctr"
        write_trace_v2(one_shot, addresses, is_write=flags, pcs=pcs,
                       sizes=sizes)
        chunked = tmp_path / "chunked.ctr"
        with TraceV2Writer(chunked) as writer:
            for start in range(0, 300, 77):
                stop = min(start + 77, 300)
                writer.append(addresses[start:stop],
                              is_write=flags[start:stop],
                              pcs=pcs[start:stop], sizes=sizes[start:stop])
            assert writer.count == 300
        assert chunked.read_bytes() == one_shot.read_bytes()

    def test_spools_are_removed_on_close_and_abort(self, tmp_path):
        path = tmp_path / "t.ctr"
        with TraceV2Writer(path) as writer:
            writer.append([0x10])
            assert list(tmp_path.glob("*.tmp"))
        assert not list(tmp_path.glob("*.tmp"))
        assert path.exists()
        doomed = tmp_path / "doomed.ctr"
        with pytest.raises(RuntimeError):
            with TraceV2Writer(doomed) as writer:
                writer.append([0x10])
                raise RuntimeError("boom")
        assert not doomed.exists()
        assert not list(tmp_path.glob("*.tmp"))

    def test_validation_uses_trace_global_record_indices(self, tmp_path):
        with TraceV2Writer(tmp_path / "t.ctr") as writer:
            writer.append([0x10, 0x20, 0x30])
            with pytest.raises(ValueError, match="record 4: negative "
                                                 "address"):
                writer.append(np.array([0x40, -1], dtype=np.int64))
            with pytest.raises(ValueError, match="record 3: size must be "
                                                 "positive, got 0"):
                writer.append([0x40], sizes=[0])
            writer.abort()

    def test_writer_rejects_what_readers_reject(self, tmp_path):
        path = tmp_path / "t.ctr"
        with pytest.raises(ValueError, match="write flag must be 0/1"):
            write_trace_v2(path, [0x10], is_write=[2])
        with pytest.raises(ValueError, match="must be integers"):
            write_trace_v2(path, np.array([1.5]))
        with pytest.raises(ValueError, match=r"exceeds"):
            write_trace_v2(path, [0x10], sizes=[1 << 33])
        with pytest.raises(ValueError, match="record 1.*outside"):
            write_trace_v2(path, np.array([1, 1 << 64], dtype=object))
        assert not path.exists()


class TestZstdGate:
    def test_zstd_is_gated_not_assumed(self, tmp_path):
        try:
            import zstandard  # noqa: F401
        except ImportError:
            zstandard = None
        # CI pins the expected state per matrix leg so both branches are
        # known to run somewhere: REPRO_REQUIRE_ZSTD=1 on a leg that
        # installs zstandard (real reader/writer round-trip), =0 on a leg
        # without it (install-hint error path).  Unset (the local default)
        # exercises whichever branch the environment offers.
        required = os.environ.get("REPRO_REQUIRE_ZSTD", "")
        if required == "1":
            assert zstandard is not None, (
                "REPRO_REQUIRE_ZSTD=1 but the zstandard module is absent: "
                "this CI leg must install it so the zstd path really runs")
        elif required == "0":
            assert zstandard is None, (
                "REPRO_REQUIRE_ZSTD=0 but the zstandard module is present: "
                "this CI leg must NOT install it so the install-hint "
                "ValueError path really runs")
        path = tmp_path / "t.ctr.zst"
        if zstandard is None:
            with pytest.raises(ValueError, match="zstandard"):
                write_trace_v2(path, [0x10])
            # A zstd-magic file must fail with the install hint, not crash.
            fake = tmp_path / "fake.ctr"
            fake.write_bytes(b"\x28\xb5\x2f\xfd" + b"\x00" * 16)
            with pytest.raises(ValueError, match="recompress with "
                                                 "gzip/bz2/xz"):
                detect_trace_format(fake)
        else:
            write_trace_v2(path, [0x10, 0x20], is_write=[True, False])
            fmt = detect_trace_format(path)
            assert (fmt.kind, fmt.compression) == ("v2", "zstd")
            assert read_trace_v2(path).addresses.tolist() == [0x10, 0x20]


# --------------------------------------------------------------------- #
# Dinero .din import
# --------------------------------------------------------------------- #

class TestDinTraces:
    def test_labels_map_to_access_kinds(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("0 1000\n1 2000\n2 80004000\n\n0 3000 extra junk\n")
        records = list(read_din_trace(path))
        assert records == [
            MemoryAccess(address=0x1000, is_write=False, pc=0, size=4),
            MemoryAccess(address=0x2000, is_write=True, pc=0, size=4),
            MemoryAccess(address=0x80004000, is_write=False, pc=0x80004000,
                         size=4),
            MemoryAccess(address=0x3000, is_write=False, pc=0, size=4),
        ]

    def test_import_converts_to_v2_exactly(self, tmp_path):
        din = tmp_path / "t.din"
        din.write_text("".join(f"{i % 3} {0x1000 + 4 * i:x}\n"
                               for i in range(50)))
        v2 = tmp_path / "t.ctr"
        assert import_din_trace(din, v2) == 50
        assert detect_trace_format(v2).kind == "v2"
        assert list(read_trace_v2(v2).records()) == list(read_din_trace(din))

    @pytest.mark.parametrize("line,error", [
        ("0\n", r"t\.din:1: malformed \.din record"),
        ("3 1000\n", r"t\.din:1: bad \.din access label '3'"),
        ("0 xyz\n", r"t\.din:1: non-hex address"),
        ("0 -10\n", r"t\.din:1: negative address"),
    ])
    def test_errors_carry_line_precision(self, tmp_path, line, error):
        path = tmp_path / "t.din"
        path.write_text(line)
        with pytest.raises(ValueError, match=error):
            list(read_din_trace(path))

    def test_error_on_a_later_line_names_that_line(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("0 1000\n1 2000\n9 3000\n")
        with pytest.raises(ValueError, match=r"t\.din:3: bad \.din access"):
            list(read_din_trace(path))


# --------------------------------------------------------------------- #
# conversion
# --------------------------------------------------------------------- #

class TestConvertTrace:
    @pytest.mark.parametrize("writer", [write_text_trace, write_binary_trace])
    def test_v1_to_v2_is_record_exact(self, tmp_path, writer):
        records = _records(80, seed=5)
        src = tmp_path / "src.trace"
        writer(src, records)
        dst = tmp_path / "dst.ctr"
        assert convert_trace(src, dst, chunk_size=17) == 80
        assert list(read_trace_v2(dst).records()) == records

    def test_v2_to_compressed_v2(self, tmp_path):
        records = _records(40, seed=6)
        src = tmp_path / "src.ctr"
        write_trace_v2(src, [r.address for r in records],
                       is_write=[r.is_write for r in records],
                       pcs=[r.pc for r in records],
                       sizes=[r.size for r in records])
        dst = tmp_path / "dst.ctr.gz"
        assert convert_trace(src, dst) == 40
        assert detect_trace_format(dst).compression == "gzip"
        assert list(read_trace_v2(dst).records()) == records


# --------------------------------------------------------------------- #
# v2 corruption — whole-file and mid-stream
# --------------------------------------------------------------------- #

class TestV2Corruption:
    def _trace(self, tmp_path, n=10, name="t.ctr"):
        addresses, flags, pcs, sizes = _columns(n, seed=8)
        path = tmp_path / name
        write_trace_v2(path, addresses, is_write=flags, pcs=pcs, sizes=sizes)
        return path

    @pytest.mark.parametrize("consume", [
        lambda path: read_trace_v2(path),
        lambda path: list(iter_trace_chunks(path, chunk_size=3)),
        lambda path: list(iter_trace_chunks(path, chunk_size=3,
                                            use_mmap=True)),
    ])
    def test_truncated_header(self, tmp_path, consume):
        path = tmp_path / "t.ctr"
        path.write_bytes(TRACE_V2_MAGIC + b"\x01\x02")
        with pytest.raises(ValueError, match=r"truncated v2 header \(10 of "
                                             r"16 bytes\)"):
            consume(path)

    def test_bad_magic_when_forced_through_the_v2_reader(self, tmp_path):
        path = tmp_path / "t.ctr"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 8)
        with pytest.raises(ValueError, match="not a repro v2 trace"):
            read_trace_v2(path)

    @pytest.mark.parametrize("use_mmap", [False, True])
    def test_truncated_column_data(self, tmp_path, use_mmap):
        path = self._trace(tmp_path, n=10)
        raw = path.read_bytes()
        path.write_bytes(raw[:-7])
        expected = TRACE_V2_HEADER_SIZE + 10 * TRACE_V2_RECORD_BYTES
        message = (rf"truncated v2 trace: expected {expected} bytes for "
                   rf"10 records, got {expected - 7}")
        with pytest.raises(ValueError, match=message):
            read_trace_v2(path, use_mmap=use_mmap)
        with pytest.raises(ValueError, match=message):
            list(iter_trace_chunks(path, chunk_size=4, use_mmap=use_mmap))

    def test_truncated_compressed_column_names_the_records(self, tmp_path):
        path = self._trace(tmp_path, n=10)
        packed = tmp_path / "t.ctr.gz"
        packed.write_bytes(gzip.compress(path.read_bytes()[:-7]))
        # No size to check up front: the failure surfaces at the short
        # read, naming the column and the record range it was serving (the
        # is_write cursor hits the cut on its very first chunk).
        with pytest.raises(ValueError, match=r"truncated v2 trace: is_write "
                                             r"column records 0\.\.4 "
                                             r"\(3 of 4 bytes\)"):
            list(iter_trace_chunks(packed, chunk_size=4))

    @pytest.mark.parametrize("use_mmap", [False, True])
    def test_trailing_data(self, tmp_path, use_mmap):
        path = self._trace(tmp_path, n=10)
        with path.open("ab") as handle:
            handle.write(b"\xff\xff\xff")
        with pytest.raises(ValueError, match=r"trailing data after 10 "
                                             r"records \(3 extra bytes\)"):
            list(iter_trace_chunks(path, chunk_size=4, use_mmap=use_mmap))

    def test_trailing_data_in_a_compressed_trace(self, tmp_path):
        path = self._trace(tmp_path, n=10)
        packed = tmp_path / "t.ctr.gz"
        packed.write_bytes(gzip.compress(path.read_bytes() + b"\xff"))
        with pytest.raises(ValueError, match="trailing data after 10 "
                                             "records"):
            list(iter_trace_chunks(packed, chunk_size=4))

    def _corrupt_byte(self, path, count, column_offset, index, value):
        raw = bytearray(path.read_bytes())
        raw[column_offset + index] = value
        path.write_bytes(bytes(raw))

    @pytest.mark.parametrize("use_mmap", [False, True])
    def test_corrupt_write_flag_carries_global_index(self, tmp_path,
                                                     use_mmap):
        path = self._trace(tmp_path, n=10)
        # Flag column starts at 16 + 20 * 10; corrupt record 7.
        self._corrupt_byte(path, 10, TRACE_V2_HEADER_SIZE + 20 * 10, 7, 0x7F)
        with pytest.raises(ValueError, match="record 7: corrupt write flag "
                                             r"0x7f \(expected 0 or 1\)"):
            read_trace_v2(path, use_mmap=use_mmap)
        # Chunked: records 0..2 and 3..5 stream out first, the error names
        # the trace-global record, not its index inside chunk 2.
        chunks = iter_trace_chunks(path, chunk_size=3, use_mmap=use_mmap)
        seen = 0
        with pytest.raises(ValueError, match="record 7: corrupt write "
                                             "flag"):
            for batch in chunks:
                seen += len(batch)
        assert seen == 6

    def test_zero_size_carries_global_index(self, tmp_path):
        path = self._trace(tmp_path, n=10)
        # Size column (u32) starts at 16 + 16 * 10; zero record 5's size.
        raw = bytearray(path.read_bytes())
        start = TRACE_V2_HEADER_SIZE + 16 * 10 + 4 * 5
        raw[start:start + 4] = b"\x00\x00\x00\x00"
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="record 5: size must be "
                                             "positive, got 0"):
            read_trace_v2(path)
        # The batch path only reads addresses + flags, so sizes validate
        # through the record reader instead (each chunk validates before
        # its records yield, so the error still names record 5).
        with pytest.raises(ValueError, match="record 5: size must be "
                                             "positive"):
            list(read_trace_records(path))


# --------------------------------------------------------------------- #
# satellite 5: v1/text corruption precision survives chunked iteration
# --------------------------------------------------------------------- #

class TestChunkedCorruptionParity:
    """Every corruption case of the one-shot readers, replayed through
    ``iter_trace_chunks`` with a tiny chunk size: the earlier complete
    chunks must stream out, then the error must carry its original
    record/byte-offset (binary) or ``path:line`` (text) precision."""

    def _stream(self, path, chunk_size=2):
        yielded = []
        chunks = iter_trace_chunks(path, chunk_size=chunk_size)
        for batch in chunks:
            yielded.extend(batch.addresses.tolist())
        return yielded

    @pytest.mark.parametrize("body,error", [
        ("R 0x10 0x400 4\nW 0xZZ 0x404 8\n", r"bad\.txt:2: non-hex"),
        ("# header\nR 0x10 0x400 four\n", r"bad\.txt:2: non-integer size"),
        ("R 0x10 0x400 0\n", r"bad\.txt:1: size must be"),
        ("R 0x10 0x400 -4\n", r"bad\.txt:1: size must be"),
        ("R -0x10 0x400 4\n", r"bad\.txt:1: negative"),
        ("R 0x10 0x0\n", r"bad\.txt:1: malformed record"),
    ])
    def test_text_errors_keep_line_precision(self, tmp_path, body, error):
        path = tmp_path / "bad.txt"
        path.write_text(body)
        with pytest.raises(ValueError, match=error):
            self._stream(path, chunk_size=1)

    def test_text_chunks_before_the_bad_line_are_yielded(self, tmp_path):
        path = tmp_path / "bad.txt"
        lines = [f"R {0x1000 + 8 * i:#x} 0x400 4" for i in range(5)]
        lines.append("W 0xZZ 0x404 8")
        path.write_text("\n".join(lines) + "\n")
        yielded = []
        with pytest.raises(ValueError, match=r"bad\.txt:6: non-hex"):
            for batch in iter_trace_chunks(path, chunk_size=2):
                yielded.extend(batch.addresses.tolist())
        # Two complete chunks (records 0..3) streamed before the error;
        # record 4 was trapped in the partial final chunk.
        assert yielded == [0x1000 + 8 * i for i in range(4)]

    def test_binary_truncated_header(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"CACT")
        with pytest.raises(ValueError, match="truncated header"):
            self._stream(path)

    def test_binary_truncated_record_keeps_byte_offset(self, tmp_path):
        path = tmp_path / "bad.bin"
        write_binary_trace(path, _records(4, seed=9))
        path.write_bytes(path.read_bytes()[:-5])
        yielded = []
        with pytest.raises(ValueError) as excinfo:
            for batch in iter_trace_chunks(path, chunk_size=2):
                yielded.extend(batch.addresses.tolist())
        assert "truncated record 3 at byte offset 80" in str(excinfo.value)
        assert len(yielded) == 2  # chunk 0 (records 0-1) arrived intact

    @pytest.mark.parametrize("record,error", [
        (struct.pack("<QQIB3x", 0x1000, 0x400, 0, 0),
         "size must be positive"),
        (struct.pack("<QQIB3x", 0x1000, 0x400, 4, 0x7F),
         "corrupt write flag 0x7f"),
    ])
    def test_binary_bad_record_values(self, tmp_path, record, error):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"CACTR1\0\0" + record)
        with pytest.raises(ValueError, match=error):
            self._stream(path)

    def test_binary_nonzero_padding(self, tmp_path):
        path = tmp_path / "bad.bin"
        record = bytearray(struct.pack("<QQIB3x", 0x1000, 0x400, 4, 1))
        record[-1] = 0xAB
        path.write_bytes(b"CACTR1\0\0" + bytes(record))
        with pytest.raises(ValueError, match="corrupt padding"):
            self._stream(path)

    def test_binary_error_localises_later_records(self, tmp_path):
        path = tmp_path / "bad.bin"
        good = struct.pack("<QQIB3x", 0x1000, 0x400, 4, 0)
        bad = struct.pack("<QQIB3x", 0x2000, 0x404, 0, 0)
        path.write_bytes(b"CACTR1\0\0" + good * 3 + bad)
        yielded = []
        with pytest.raises(ValueError, match="record 3 at byte offset 80"):
            for batch in iter_trace_chunks(path, chunk_size=1):
                yielded.extend(batch.addresses.tolist())
        assert yielded == [0x1000] * 3

    def test_chunk_size_must_be_positive(self, tmp_path):
        path = tmp_path / "t.ctr"
        write_trace_v2(path, [0x10])
        with pytest.raises(ValueError, match="chunk_size must be at "
                                             "least 1"):
            iter_trace_chunks(path, chunk_size=0)


# --------------------------------------------------------------------- #
# chunked replay is bit-exact for every kernel family
# --------------------------------------------------------------------- #

def _set_assoc(**kwargs):
    return BatchSetAssociativeCache(8192, 32, 2, **kwargs)


_CACHE_FACTORIES = [
    ("bitsel-lru", lambda: _set_assoc()),
    ("bitsel-fifo", lambda: _set_assoc(replacement="fifo")),
    ("bitsel-plru", lambda: _set_assoc(replacement="plru")),
    ("bitsel-random", lambda: _set_assoc(replacement="random")),
    ("skew-ipoly-lru", lambda: _set_assoc(
        index_function=make_index_function("a2-Hp-Sk", num_sets=128,
                                           ways=2))),
    ("skew-ipoly-plru", lambda: _set_assoc(
        index_function=make_index_function("a2-Hp-Sk", num_sets=128, ways=2),
        replacement="plru")),
    ("column-assoc", lambda: BatchColumnAssociativeCache(4096, 32)),
    ("victim", lambda: BatchVictimCache(4096, 32, ways=1, victim_entries=8)),
]


class TestChunkedReplayBitExact:
    @pytest.fixture(scope="class")
    def trace_file(self, tmp_path_factory):
        batch = _cache_batch()
        path = tmp_path_factory.mktemp("stream") / "replay.ctr"
        write_trace_v2(path, batch.addresses, is_write=batch.is_write)
        return path, batch

    @pytest.mark.parametrize("name,factory", _CACHE_FACTORIES,
                             ids=[name for name, _ in _CACHE_FACTORIES])
    @pytest.mark.parametrize("chunk_size", [256, 997])
    def test_stats_and_state_tables_match_one_shot(self, trace_file, name,
                                                   factory, chunk_size):
        path, batch = trace_file
        one_shot = factory()
        one_shot.run(batch)
        streamed = factory()
        total = streamed.run_chunks(iter_trace_chunks(path,
                                                      chunk_size=chunk_size))
        assert total == len(batch)
        assert streamed.stats == one_shot.stats
        assert _state_tables(streamed) == _state_tables(one_shot)
        # The carried state must also *behave* identically (covers RNG
        # state of the random policy, which the tables cannot show).
        probe = _cache_batch(n=400, seed=99, cold_loads=0)
        assert np.array_equal(streamed.run(probe), one_shot.run(probe))
        assert streamed.stats == one_shot.stats

    def test_mmap_and_buffered_replay_agree(self, trace_file):
        path, batch = trace_file
        mapped, buffered = _set_assoc(), _set_assoc()
        mapped.run_chunks(iter_trace_chunks(path, chunk_size=512,
                                            use_mmap=True))
        buffered.run_chunks(iter_trace_chunks(path, chunk_size=512))
        assert mapped.stats == buffered.stats
        assert _state_tables(mapped) == _state_tables(buffered)

    def test_kernel_handoff_mid_stream(self, trace_file):
        """A cold load-only first chunk runs the run-collapse kernel; the
        dict kernel takes over when writes appear — bit-exact either way."""
        path, batch = trace_file
        one_shot = _set_assoc()
        one_shot.run(batch)
        streamed = _set_assoc()
        streamed.run_chunks(iter_trace_chunks(path, chunk_size=256))
        assert streamed.stats == one_shot.stats

    def test_scalar_replay_from_chunks_matches_records(self, tmp_path):
        records = _records(200, seed=11)
        path = tmp_path / "t.ctr"
        with TraceV2Writer(path) as writer:
            writer.append_records(iter(records))
        streamed = list(read_trace_records(path))
        assert streamed == records


class TestIncrementalProfilerBitExact:
    LEVEL_CAPS = {1: 64, 32: 8, 128: 4}

    def _chunks(self, batch, chunk_size):
        for start in range(0, len(batch), chunk_size):
            yield AddressBatch.from_arrays(
                batch.addresses[start:start + chunk_size],
                batch.is_write[start:start + chunk_size])

    @pytest.mark.parametrize("write_policy", ["write-through-no-allocate",
                                              "write-back-allocate"])
    def test_multiconfig_builder_matches_one_shot(self, write_policy):
        batch = _cache_batch(n=4000, seed=13)
        one_shot = MultiConfigLRUProfile(batch, 32, self.LEVEL_CAPS,
                                         write_policy=write_policy)
        builder = MultiConfigProfileBuilder(32, self.LEVEL_CAPS,
                                            write_policy=write_policy)
        for chunk in self._chunks(batch, 613):
            builder.feed(chunk)
        incremental = builder.finish()
        assert incremental.store_mode == one_shot.store_mode
        assert incremental.levels == one_shot.levels
        for num_sets, cap in self.LEVEL_CAPS.items():
            for ways in range(1, cap + 1):
                assert (incremental.miss_counts(num_sets, ways)
                        == one_shot.miss_counts(num_sets, ways))

    def test_loads_only_mode_matches_and_guards(self):
        batch = _cache_batch(n=2000, seed=14, cold_loads=2000)
        one_shot = MultiConfigLRUProfile(batch, 32, {1: 16, 128: 2})
        builder = MultiConfigProfileBuilder(32, {1: 16, 128: 2},
                                            has_stores=False)
        for chunk in self._chunks(batch, 333):
            builder.feed(chunk)
        incremental = builder.finish()
        assert incremental.store_mode == one_shot.store_mode == "loads"
        assert (incremental.miss_counts(128, 2)
                == one_shot.miss_counts(128, 2))
        dirty = AddressBatch.from_arrays(np.array([64], dtype=np.uint64),
                                         np.array([True]))
        with pytest.raises(ValueError, match="has_stores=False"):
            builder.feed(dirty)

    @pytest.mark.parametrize("chunk_size", [1, 7, 1024])
    def test_stack_distance_builder_matches_one_shot(self, chunk_size):
        batch = _cache_batch(n=1500, seed=15)
        one_shot = StackDistanceProfile.from_batch(batch, 32)
        builder = StackDistanceBuilder()
        for chunk in self._chunks(batch, chunk_size):
            builder.feed_batch(chunk, 32)
        incremental = builder.finish()
        assert np.array_equal(incremental.distances, one_shot.distances)
        assert np.array_equal(incremental.histogram, one_shot.histogram)

    def test_builder_streams_from_disk(self, tmp_path):
        batch = _cache_batch(n=2500, seed=16)
        path = tmp_path / "t.ctr"
        write_trace_v2(path, batch.addresses, is_write=batch.is_write)
        one_shot = MultiConfigLRUProfile(batch, 32, {128: 2})
        builder = MultiConfigProfileBuilder(32, {128: 2})
        for chunk in iter_trace_chunks(path, chunk_size=499):
            builder.feed(chunk)
        assert (builder.finish().miss_counts(128, 2)
                == one_shot.miss_counts(128, 2))


# --------------------------------------------------------------------- #
# property tests
# --------------------------------------------------------------------- #

def _column_strategy(address_max):
    return st.integers(0, 80).flatmap(lambda n: st.tuples(
        st.lists(st.integers(0, address_max), min_size=n, max_size=n),
        st.lists(st.booleans(), min_size=n, max_size=n),
        st.lists(st.integers(0, (1 << 64) - 1), min_size=n, max_size=n),
        st.lists(st.integers(1, (1 << 32) - 1), min_size=n, max_size=n),
    ))


#: The format itself stores full u64 addresses ...
_column_sets = _column_strategy((1 << 64) - 1)
#: ... but the engine-facing chunk path builds ``AddressBatch``, which
#: caps addresses below 2**63.
_engine_column_sets = _column_strategy((1 << 63) - 1)


class TestStreamProperties:
    @given(columns=_column_sets)
    @settings(max_examples=40, deadline=None)
    def test_v2_round_trips_any_valid_columns(self, columns):
        addresses, flags, pcs, sizes = columns
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "t.ctr"
            write_trace_v2(path, np.array(addresses, dtype=object),
                           is_write=flags,
                           pcs=np.array(pcs, dtype=object),
                           sizes=np.array(sizes, dtype=object))
            loaded = read_trace_v2(path)
            assert loaded.addresses.tolist() == addresses
            assert loaded.is_write.tolist() == flags
            assert loaded.pcs.tolist() == pcs
            assert loaded.sizes.tolist() == sizes

    @given(columns=_engine_column_sets, chunk_size=st.integers(1, 97),
           use_mmap=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_chunk_concatenation_is_the_identity(self, columns, chunk_size,
                                                 use_mmap):
        addresses, flags, pcs, sizes = columns
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "t.ctr"
            write_trace_v2(path, np.array(addresses, dtype=object),
                           is_write=flags,
                           pcs=np.array(pcs, dtype=object),
                           sizes=np.array(sizes, dtype=object))
            streamed_addresses, streamed_writes = _drain(
                path, chunk_size, use_mmap=use_mmap)
            assert streamed_addresses.tolist() == addresses
            assert streamed_writes.tolist() == flags

    @given(chunk_size=st.integers(1, 64), seed=st.integers(0, 50))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_chunked_cache_replay_matches_one_shot(self, tmp_path,
                                                   chunk_size, seed):
        batch = _cache_batch(n=300, seed=seed, cold_loads=50)
        path = tmp_path / f"p{chunk_size}-{seed}.ctr"
        write_trace_v2(path, batch.addresses, is_write=batch.is_write)
        one_shot = _set_assoc()
        one_shot.run(batch)
        streamed = _set_assoc()
        streamed.run_chunks(iter_trace_chunks(path, chunk_size=chunk_size))
        assert streamed.stats == one_shot.stats


# --------------------------------------------------------------------- #
# satellite 4: deterministic fd release
# --------------------------------------------------------------------- #

class TestReaderLifecycle:
    def _text(self, tmp_path):
        path = tmp_path / "t.trace"
        write_text_trace(path, _records(10, seed=17))
        return path

    def test_exhaustion_closes_the_reader(self, tmp_path):
        reader = read_text_trace(self._text(tmp_path))
        list(reader)
        assert reader.closed

    def test_early_stop_close_is_deterministic(self, tmp_path):
        reader = read_trace_records(self._text(tmp_path))
        next(reader)
        assert not reader.closed
        reader.close()
        assert reader.closed
        assert list(reader) == []  # closed readers never reopen

    def test_with_block_closes_on_break(self, tmp_path):
        with read_text_trace(self._text(tmp_path)) as reader:
            next(reader)
        assert reader.closed

    def test_parse_error_closes_the_reader(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("R 0x10 0x400 4\nR 0xZZ 0x400 4\n")
        reader = read_text_trace(path)
        next(reader)
        with pytest.raises(ValueError):
            next(reader)
        assert reader.closed

    def test_din_reader_closes_on_error(self, tmp_path):
        path = tmp_path / "bad.din"
        path.write_text("0 1000\n9 2000\n")
        reader = read_din_trace(path)
        next(reader)
        with pytest.raises(ValueError):
            next(reader)
        assert reader.closed

    def test_abandoned_chunk_iterator_releases_the_fd(self, tmp_path):
        path = self._text(tmp_path)
        chunks = iter_trace_chunks(path, chunk_size=2)
        next(chunks)
        chunks.close()  # generator close must cascade to the reader


# --------------------------------------------------------------------- #
# streamed drivers and the committed .din fixture
# --------------------------------------------------------------------- #

class TestStreamedDrivers:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        batch = _cache_batch(n=2000, seed=18)
        path = tmp_path / "driver.ctr"
        write_trace_v2(path, batch.addresses, is_write=batch.is_write)
        return path

    def test_miss_ratio_study_engines_and_chunks_agree(self, trace_path):
        from repro.experiments.miss_ratio_study import run_miss_ratio_study
        vectorized = run_miss_ratio_study(engine="vectorized",
                                          trace=str(trace_path),
                                          trace_chunk=317)
        reference = run_miss_ratio_study(engine="reference",
                                         trace=str(trace_path))
        one_chunk = run_miss_ratio_study(engine="vectorized",
                                         trace=str(trace_path),
                                         trace_chunk=1 << 20)
        assert vectorized.miss_ratios == reference.miss_ratios
        assert vectorized.miss_ratios == one_chunk.miss_ratios
        assert list(vectorized.miss_ratios) == ["driver.ctr"]

    def test_replacement_study_streams(self, trace_path):
        from repro.experiments.replacement_study import run_replacement_study
        result = run_replacement_study(engine="vectorized",
                                       policies=["lru", "fifo"],
                                       trace=str(trace_path),
                                       trace_chunk=271)
        reference = run_replacement_study(engine="reference",
                                          policies=["lru", "fifo"],
                                          trace=str(trace_path))
        assert result.miss_ratios == reference.miss_ratios
        assert result.programs == ["driver.ctr"]

    def test_figure1_streams(self, trace_path):
        from repro.experiments.figure1 import run_figure1
        result = run_figure1(engine="vectorized", schemes=["a2", "a2-Hp-Sk"],
                             trace=str(trace_path), trace_chunk=433)
        reference = run_figure1(engine="reference",
                                schemes=["a2", "a2-Hp-Sk"],
                                trace=str(trace_path))
        assert result.miss_ratios == reference.miss_ratios


class TestDinGoldenFixture:
    """The committed ``sample.din`` fixture keeps the importer and the
    streamed study pinned to known-good numbers."""

    FIXTURE = CORPUS / "sample.din"
    PINNED = GOLDEN / "stream_din_study.json"

    def test_fixture_parses_to_the_pinned_count(self):
        records = list(read_din_trace(self.FIXTURE))
        golden = json.loads(self.PINNED.read_text())
        assert len(records) == golden["records"]
        assert sum(r.is_write for r in records) == golden["stores"]

    def test_streamed_study_matches_golden(self, tmp_path):
        from repro.experiments.miss_ratio_study import run_miss_ratio_study
        golden = json.loads(self.PINNED.read_text())
        v2 = tmp_path / "sample.ctr"
        assert import_din_trace(self.FIXTURE, v2) == golden["records"]
        for engine in ("vectorized", "reference"):
            result = run_miss_ratio_study(engine=engine, trace=str(v2),
                                          trace_chunk=97)
            ratios = result.miss_ratios["sample.ctr"]
            assert ratios == pytest.approx(golden["miss_ratios"], abs=1e-9)

    def test_din_streams_directly_without_conversion(self):
        direct = _set_assoc()
        direct.run_chunks(iter_trace_chunks(self.FIXTURE, chunk_size=37))
        records = list(read_din_trace(self.FIXTURE))
        one_shot = _set_assoc()
        one_shot.run(AddressBatch.from_arrays(
            np.array([r.address for r in records], dtype=np.uint64),
            np.array([r.is_write for r in records])))
        assert direct.stats == one_shot.stats


# --------------------------------------------------------------------- #
# nightly: a large on-disk trace sweeps under a fixed memory bound
# --------------------------------------------------------------------- #

_RSS_SCRIPT = """\
import json, resource, sys
from repro.engine.batch_cache import BatchSetAssociativeCache
from repro.trace.stream import iter_trace_chunks

cache = BatchSetAssociativeCache(8192, 32, 2)
total = cache.run_chunks(iter_trace_chunks(sys.argv[1],
                                           chunk_size=int(sys.argv[2])))
print(json.dumps({
    "accesses": total,
    "load_misses": cache.stats.load_misses,
    "store_misses": cache.stats.store_misses,
    "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
}))
"""


@pytest.mark.slow
class TestStreamingMemoryBound:
    """Stream a large generated v2 trace through a sweep in a subprocess
    and assert its peak RSS against a fixed bound.

    ``REPRO_STREAM_ACCESSES`` sizes the trace (the nightly CI job sets
    50_000_000 — a ~1 GiB file, so the 512 MiB default bound is only
    satisfiable by actually streaming); the default keeps an ordinary
    ``-m slow`` run quick.  ``REPRO_STREAM_METRICS_JSON`` names a file to
    write the measured row to (uploaded as a CI artifact).
    """

    def test_sweep_peak_rss_is_bounded(self, tmp_path):
        accesses = int(os.environ.get("REPRO_STREAM_ACCESSES", "2000000"))
        bound_kb = int(os.environ.get("REPRO_STREAM_RSS_BOUND_KB",
                                      str(512 * 1024)))
        chunk = 1 << 20
        path = tmp_path / "big.ctr"
        with TraceV2Writer(path) as writer:
            remaining, seed = accesses, 0
            while remaining:
                n = min(chunk, remaining)
                rng = np.random.default_rng(seed)
                addresses = (rng.integers(0, 1 << 16, size=n,
                                          dtype=np.uint64) * np.uint64(32))
                writer.append(addresses, is_write=rng.random(n) < 0.25)
                remaining -= n
                seed += 1
        assert path.stat().st_size == (TRACE_V2_HEADER_SIZE
                                       + TRACE_V2_RECORD_BYTES * accesses)

        env = dict(os.environ)
        src = Path(__file__).parent.parent / "src"
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + env.get("PYTHONPATH", "").split(os.pathsep))
        completed = subprocess.run(
            [sys.executable, "-c", _RSS_SCRIPT, str(path), str(chunk)],
            capture_output=True, text=True, env=env, check=True)
        row = json.loads(completed.stdout)
        assert row["accesses"] == accesses
        assert row["load_misses"] + row["store_misses"] > 0
        metrics = {**row, "trace_bytes": path.stat().st_size,
                   "chunk_size": chunk, "rss_bound_kb": bound_kb}
        out = os.environ.get("REPRO_STREAM_METRICS_JSON")
        if out:
            Path(out).write_text(json.dumps(metrics, indent=2) + "\n")
        assert row["ru_maxrss_kb"] <= bound_kb, (
            f"streaming sweep peaked at {row['ru_maxrss_kb']} KB RSS, "
            f"bound is {bound_kb} KB for a "
            f"{path.stat().st_size >> 20} MiB trace")
