"""Tests for the experiment command-line interface."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in ("figure1", "table2", "table3", "miss-ratio", "holes",
                        "column-assoc", "critical-path", "replacement-study"):
            args = parser.parse_args([command] if command in
                                     ("critical-path",) else [command])
            assert args.experiment == command

    def test_figure1_options(self):
        args = build_parser().parse_args(
            ["figure1", "--max-stride", "128", "--stride-step", "2",
             "--chunksize", "16", "--replacement", "plru"])
        assert args.max_stride == 128
        assert args.stride_step == 2
        assert args.chunksize == 16
        assert args.replacement == "plru"

    def test_replacement_choices_are_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["miss-ratio", "--replacement", "mru"])

    @pytest.mark.parametrize("command", ["figure1", "miss-ratio",
                                         "replacement-study"])
    def test_sweep_options_parity(self, command):
        """--workers/--chunksize/--profile exist on every sweeping command."""
        args = build_parser().parse_args(
            [command, "--workers", "3", "--chunksize", "2",
             "--profile", "always"])
        assert args.workers == 3
        assert args.chunksize == 2
        assert args.profile == "always"

    def test_profile_choices_are_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["miss-ratio", "--profile", "sometimes"])

    @pytest.mark.parametrize("command", ["figure1", "miss-ratio",
                                         "replacement-study", "table2",
                                         "table3"])
    def test_fault_tolerance_options_parity(self, command):
        """--timeout/--retries/--on-error/--resume exist on every sweeping
        command and default to off."""
        parser = build_parser()
        defaults = parser.parse_args([command])
        assert defaults.timeout is None
        assert defaults.retries == 0
        assert defaults.on_error == "raise"
        assert defaults.resume is None
        args = parser.parse_args(
            [command, "--timeout", "2.5", "--retries", "3",
             "--on-error", "collect", "--resume", "sweep.jsonl"])
        assert args.timeout == 2.5
        assert args.retries == 3
        assert args.on_error == "collect"
        assert args.resume == "sweep.jsonl"

    @pytest.mark.parametrize("argv", [
        ["figure1", "--workers", "-1"],
        ["miss-ratio", "--workers", "-3"],
        ["figure1", "--chunksize", "0"],
        ["table2", "--chunksize", "-2"],
        ["miss-ratio", "--workers", "two"],
        ["figure1", "--retries", "-1"],
        ["figure1", "--timeout", "0"],
        ["figure1", "--timeout", "-0.5"],
        ["table3", "--on-error", "explode"],
    ])
    def test_bad_sweep_values_rejected_at_parse_time(self, argv, capsys):
        """Invalid sweep/fault values die in argparse (clear usage error),
        never deep inside a driver."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)
        assert argv[1] in capsys.readouterr().err  # error names the flag

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    @pytest.mark.parametrize("command", ["figure1", "miss-ratio",
                                         "replacement-study"])
    def test_trace_options_parity(self, command):
        """--trace/--trace-chunk exist on every trace-replaying command
        and default to the synthetic suite."""
        parser = build_parser()
        defaults = parser.parse_args([command])
        assert defaults.trace is None
        assert defaults.trace_chunk == 1 << 20
        args = parser.parse_args(
            [command, "--trace", "recorded.ctr", "--trace-chunk", "4096"])
        assert args.trace == "recorded.ctr"
        assert args.trace_chunk == 4096

    @pytest.mark.parametrize("argv", [
        ["miss-ratio", "--trace-chunk", "0"],
        ["figure1", "--trace-chunk", "-5"],
        ["replacement-study", "--trace-chunk", "many"],
    ])
    def test_bad_trace_chunk_rejected_at_parse_time(self, argv, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)
        assert "--trace-chunk" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["figure1", "miss-ratio",
                                         "replacement-study"])
    def test_sampling_options_parity(self, command):
        """--sample-rate/--sample-size/--profile-seed exist on every
        profiling command and default to the documented knob values."""
        parser = build_parser()
        defaults = parser.parse_args([command])
        assert defaults.sample_rate == 0.01
        assert defaults.sample_size is None
        assert defaults.profile_seed == 0
        args = parser.parse_args(
            [command, "--profile", "sampled", "--sample-rate", "0.05",
             "--sample-size", "4096", "--profile-seed", "7"])
        assert args.profile == "sampled"
        assert args.sample_rate == 0.05
        assert args.sample_size == 4096
        assert args.profile_seed == 7

    @pytest.mark.parametrize("argv", [
        ["figure1", "--sample-rate", "0"],
        ["miss-ratio", "--sample-rate", "-0.1"],
        ["replacement-study", "--sample-rate", "1.5"],
        ["figure1", "--sample-rate", "lots"],
        ["miss-ratio", "--sample-size", "0"],
        ["replacement-study", "--sample-size", "-8"],
        ["figure1", "--profile-seed", "-1"],
        ["miss-ratio", "--profile-seed", "x"],
    ])
    def test_bad_sampling_values_rejected_at_parse_time(self, argv, capsys):
        """Invalid sampling knobs die in argparse (clear usage error),
        never deep inside a driver or the plan constructor."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)
        assert argv[1] in capsys.readouterr().err  # error names the flag

    def test_holes_options(self):
        args = build_parser().parse_args(
            ["holes", "--accesses", "5000", "--l2-kilobytes", "64", "256",
             "--engine", "vectorized", "--seed", "7"])
        assert args.accesses == 5000
        assert args.l2_kilobytes == [64, 256]
        assert args.engine == "vectorized"
        assert args.seed == 7

    def test_holes_engine_is_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["holes", "--engine", "turbo"])


class TestExecution:
    def test_critical_path_runs(self, capsys):
        assert main(["critical-path"]) == 0
        out = capsys.readouterr().out
        assert "XOR-tree" in out and "CLA timing" in out

    def test_figure1_runs_small(self, capsys):
        assert main(["figure1", "--max-stride", "64", "--stride-step", "4",
                     "--sweeps", "4"]) == 0
        assert "pathological" in capsys.readouterr().out

    def test_miss_ratio_csv_output(self, capsys):
        assert main(["miss-ratio", "--accesses", "4000",
                     "--programs", "gcc", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("program,")
        assert "gcc" in out

    def test_table2_single_program(self, capsys):
        assert main(["table2", "--instructions", "2000",
                     "--programs", "swim"]) == 0
        out = capsys.readouterr().out
        assert "swim" in out and "std-dev" in out

    def test_column_assoc_runs(self, capsys):
        assert main(["column-assoc", "--accesses", "4000"]) == 0
        assert "first-probe" in capsys.readouterr().out

    @pytest.fixture()
    def recorded_trace(self, tmp_path):
        import numpy as np

        from repro.trace.stream import write_trace_v2

        rng = np.random.default_rng(5)
        path = tmp_path / "recorded.ctr"
        write_trace_v2(
            path,
            rng.integers(0, 1 << 9, size=800, dtype=np.uint64) * np.uint64(32),
            is_write=rng.random(800) < 0.3)
        return path

    def test_miss_ratio_streams_a_recorded_trace(self, recorded_trace,
                                                 capsys):
        assert main(["miss-ratio", "--trace", str(recorded_trace),
                     "--engine", "vectorized", "--trace-chunk", "97"]) == 0
        out = capsys.readouterr().out
        assert "recorded.ctr" in out
        assert "conventional-2way" in out

    def test_replacement_study_streams_a_recorded_trace(self, recorded_trace,
                                                        capsys):
        assert main(["replacement-study", "--trace",
                     str(recorded_trace)]) == 0
        out = capsys.readouterr().out
        assert "replacement sensitivity" in out

    def test_figure1_streams_a_recorded_trace(self, recorded_trace, capsys):
        assert main(["figure1", "--trace", str(recorded_trace),
                     "--engine", "vectorized"]) == 0
        assert "a2-Hp-Sk" in capsys.readouterr().out

    def test_miss_ratio_with_replacement(self, capsys):
        assert main(["miss-ratio", "--accesses", "4000", "--programs", "gcc",
                     "--engine", "vectorized", "--replacement", "fifo"]) == 0
        assert "victim-direct+8" in capsys.readouterr().out

    def test_replacement_study_runs(self, capsys):
        assert main(["replacement-study", "--accesses", "3000",
                     "--programs", "gcc", "--engine", "vectorized"]) == 0
        out = capsys.readouterr().out
        assert "replacement sensitivity" in out
        assert "skewed-ipoly-2way" in out

    def test_replacement_study_csv(self, capsys):
        assert main(["replacement-study", "--accesses", "3000",
                     "--programs", "gcc", "--engine", "vectorized",
                     "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("organisation,")

    def test_miss_ratio_with_workers_and_profile(self, capsys):
        assert main(["miss-ratio", "--accesses", "4000", "--programs", "gcc",
                     "--engine", "vectorized", "--workers", "2",
                     "--chunksize", "1", "--profile", "always"]) == 0
        out = capsys.readouterr().out
        assert "conventional-2way" in out

    def test_replacement_study_with_workers(self, capsys):
        assert main(["replacement-study", "--accesses", "3000",
                     "--programs", "gcc", "--engine", "vectorized",
                     "--workers", "2", "--profile", "always"]) == 0
        assert "replacement sensitivity" in capsys.readouterr().out


    def test_holes_runs_on_both_engines(self, capsys):
        outputs = []
        for engine in ("reference", "vectorized"):
            assert main(["holes", "--accesses", "3000",
                         "--l2-kilobytes", "64", "--engine", engine]) == 0
            outputs.append(capsys.readouterr().out)
        assert "Holes per L2 miss" in outputs[0]
        # Same numbers from both engines: the table is byte-identical.
        assert outputs[0] == outputs[1]


class TestVirtualRealExample:
    """The examples/virtual_real_hierarchy.py CLI (argparse + JSON output)."""

    @pytest.fixture()
    def example(self):
        import importlib.util
        from pathlib import Path
        path = (Path(__file__).parent.parent / "examples"
                / "virtual_real_hierarchy.py")
        spec = importlib.util.spec_from_file_location("vr_example", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_json_output_and_engine_agreement(self, example, capsys):
        import json
        results = []
        for engine in ("reference", "vectorized"):
            assert example.main(["--accesses", "4000", "--engine", engine,
                                 "--json"]) == 0
            results.append(json.loads(capsys.readouterr().out))
        reference, vectorized = results
        assert reference["engine"] == "reference"
        assert vectorized["engine"] == "vectorized"
        for key in ("l1_load_miss_ratio", "l2_misses", "holes_created",
                    "hole_rate_per_l2_miss", "page_faults",
                    "alias_invalidations"):
            assert reference[key] == vectorized[key], key
        assert reference["inclusion_holds"] is True

    def test_human_readable_output(self, example, capsys):
        assert example.main(["--accesses", "2000", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "hole rate per L2 miss" in out
        assert "[reference engine]" in out

    def test_custom_l2_size(self, example, capsys):
        assert example.main(["--accesses", "2000", "--l2-kilobytes", "64",
                             "--json"]) == 0
        import json
        assert json.loads(capsys.readouterr().out)["l2_bytes"] == 64 * 1024
