"""Array-resident address batches — the engine's trace representation.

The reference simulators consume one :class:`~repro.trace.record.MemoryAccess`
object at a time; the batch engine instead works on a pair of parallel NumPy
arrays (addresses and a store mask), which the vectorized index functions and
the batch cache kernels can chew through without per-access object overhead.

Batches validate their input once, up front: negative addresses and addresses
at or above ``2**63`` raise :class:`ValueError` instead of being silently
wrapped by an unsigned cast — the classic NumPy foot-gun the differential
harness is designed to catch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Union

import numpy as np

from ..trace.batching import to_arrays
from ..trace.record import MemoryAccess

__all__ = ["AddressBatch", "materialise_batch"]

#: Largest representable address: tags live in signed 64-bit stores (with -1
#: as the invalid sentinel), so block numbers — and a fortiori addresses —
#: must stay below 2**63.
MAX_ADDRESS = (1 << 63) - 1


def _validated_addresses(addresses: Union[np.ndarray, Iterable[int]]) -> np.ndarray:
    array = np.asarray(addresses)
    if array.ndim != 1:
        raise ValueError(f"addresses must be one-dimensional, got shape {array.shape}")
    if array.size == 0:
        # An empty Python list infers float64; an empty batch is still valid.
        return np.empty(0, dtype=np.uint64)
    if array.dtype.kind == "f":
        raise ValueError("addresses must be integers, got a floating-point array")
    if array.dtype.kind == "O":
        # Object arrays arise from Python ints too large for int64; validate
        # them in Python before the (then safe) cast.
        for value in array:
            if not isinstance(value, (int, np.integer)):
                raise ValueError(f"addresses must be integers, got {type(value).__name__}")
            if value < 0:
                raise ValueError("addresses must be non-negative")
            if value > MAX_ADDRESS:
                raise ValueError(f"address {value:#x} out of range (>= 2**63)")
        return array.astype(np.uint64)
    if array.dtype.kind not in "iu":
        raise ValueError(f"addresses must be integers, got dtype {array.dtype}")
    if array.size:
        if array.dtype.kind == "i" and int(array.min()) < 0:
            raise ValueError("addresses must be non-negative")
        if int(array.max()) > MAX_ADDRESS:
            raise ValueError("addresses out of range (>= 2**63)")
    return array.astype(np.uint64, copy=False)


@dataclass(frozen=True)
class AddressBatch:
    """A trace materialised into parallel NumPy arrays.

    Attributes
    ----------
    addresses:
        Byte addresses, ``uint64``.
    is_write:
        Store mask, ``bool``; ``is_write[i]`` is True when access ``i`` is a
        store.
    """

    addresses: np.ndarray
    is_write: np.ndarray

    def __len__(self) -> int:
        return self.addresses.shape[0]

    @property
    def store_count(self) -> int:
        """Number of stores in the batch."""
        return int(self.is_write.sum())

    @property
    def has_stores(self) -> bool:
        """True when the batch contains at least one store."""
        return bool(self.is_write.any())

    @classmethod
    def from_arrays(cls, addresses: Union[np.ndarray, Iterable[int]],
                    is_write: Optional[Union[np.ndarray, Iterable[bool]]] = None,
                    ) -> "AddressBatch":
        """Build a batch from raw arrays, validating the address range.

        ``is_write`` defaults to all-loads.
        """
        array = _validated_addresses(addresses)
        if is_write is None:
            writes = np.zeros(array.shape[0], dtype=bool)
        else:
            writes = np.asarray(is_write, dtype=bool)
            if writes.shape != array.shape:
                raise ValueError(
                    f"is_write shape {writes.shape} does not match "
                    f"addresses shape {array.shape}"
                )
        return cls(addresses=array, is_write=writes)

    @classmethod
    def from_trace(cls, trace: Iterable[MemoryAccess]) -> "AddressBatch":
        """Materialise an iterable of :class:`MemoryAccess` records."""
        addresses, writes = to_arrays(trace)
        return cls.from_arrays(addresses, writes)

    def block_numbers(self, block_size: int) -> np.ndarray:
        """Addresses shifted down to block numbers (``int64``)."""
        if block_size < 1 or block_size & (block_size - 1):
            raise ValueError("block_size must be a positive power of two")
        offset_bits = np.uint64(block_size.bit_length() - 1)
        return (self.addresses >> offset_bits).astype(np.int64)

    def slice(self, start: int, stop: int) -> "AddressBatch":
        """A view batch over ``[start, stop)``."""
        return AddressBatch(addresses=self.addresses[start:stop],
                            is_write=self.is_write[start:stop])


def materialise_batch(trace: Iterable[MemoryAccess]) -> AddressBatch:
    """Materialise a lazy trace into an :class:`AddressBatch`.

    Convenience alias for :meth:`AddressBatch.from_trace`, mirroring
    :func:`repro.trace.record.materialise`.
    """
    return AddressBatch.from_trace(trace)
