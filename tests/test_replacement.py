"""Unit tests for cache blocks and replacement policies."""

import pytest

from repro.cache.block import CacheBlock
from repro.cache.replacement import (
    FIFOReplacement,
    LRUReplacement,
    RandomReplacement,
    TreePLRUReplacement,
    make_replacement_policy,
)


class TestCacheBlock:
    def test_starts_invalid(self):
        frame = CacheBlock()
        assert not frame.valid
        assert not frame.dirty

    def test_fill_and_touch(self):
        frame = CacheBlock()
        frame.fill(42, now=3)
        assert frame.valid
        assert frame.block_number == 42
        assert frame.inserted_at == 3
        frame.touch(now=9)
        assert frame.last_used_at == 9
        assert frame.inserted_at == 3

    def test_invalidate(self):
        frame = CacheBlock()
        frame.fill(7, now=1, dirty=True)
        frame.invalidate()
        assert not frame.valid
        assert not frame.dirty

    def test_touch_invalid_raises(self):
        with pytest.raises(ValueError):
            CacheBlock().touch(1)

    def test_fill_negative_block_rejected(self):
        with pytest.raises(ValueError):
            CacheBlock().fill(-1, now=0)


def _candidates(*specs):
    """Build (way, set_index, frame) candidates from (inserted, last_used) pairs."""
    result = []
    for way, (inserted, last_used) in enumerate(specs):
        frame = CacheBlock()
        frame.fill(way + 100, now=inserted)
        frame.last_used_at = last_used
        result.append((way, 0, frame))
    return result


class TestLRU:
    def test_evicts_least_recently_used(self):
        policy = LRUReplacement()
        candidates = _candidates((1, 10), (2, 5), (3, 20))
        assert policy.choose_victim(candidates) == (1, 0)

    def test_tie_broken_by_way(self):
        policy = LRUReplacement()
        candidates = _candidates((1, 5), (2, 5))
        assert policy.choose_victim(candidates) == (0, 0)


class TestFIFO:
    def test_evicts_oldest_insertion(self):
        policy = FIFOReplacement()
        candidates = _candidates((5, 100), (1, 200), (9, 1))
        assert policy.choose_victim(candidates) == (1, 0)


class TestRandom:
    def test_deterministic_for_fixed_seed(self):
        a = RandomReplacement(seed=99)
        b = RandomReplacement(seed=99)
        candidates = _candidates((1, 1), (2, 2), (3, 3), (4, 4))
        picks_a = [a.choose_victim(candidates) for _ in range(20)]
        picks_b = [b.choose_victim(candidates) for _ in range(20)]
        assert picks_a == picks_b

    def test_picks_are_valid_candidates(self):
        policy = RandomReplacement()
        candidates = _candidates((1, 1), (2, 2), (3, 3))
        for _ in range(50):
            way, set_index = policy.choose_victim(candidates)
            assert way in (0, 1, 2)
            assert set_index == 0

    def test_reset_restores_sequence(self):
        policy = RandomReplacement(seed=7)
        candidates = _candidates((1, 1), (2, 2), (3, 3), (4, 4))
        first = [policy.choose_victim(candidates) for _ in range(10)]
        policy.reset()
        second = [policy.choose_victim(candidates) for _ in range(10)]
        assert first == second

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            RandomReplacement(seed=0)


class TestTreePLRU:
    def test_falls_back_to_lru_for_skewed_candidates(self):
        policy = TreePLRUReplacement()
        frame_a, frame_b = CacheBlock(), CacheBlock()
        frame_a.fill(1, now=1)
        frame_b.fill(2, now=2)
        # Different set indices -> skewed cache shape.
        assert policy.choose_victim([(0, 3, frame_a), (1, 9, frame_b)]) == (0, 3)

    def test_victim_rotates_away_from_touched_way(self):
        policy = TreePLRUReplacement()
        frames = _candidates((1, 1), (2, 2), (3, 3), (4, 4))
        way, _ = policy.choose_victim(frames)
        # Touch the chosen way: the next victim must differ.
        policy.on_access(way, 0, frames[way][2], now=100)
        next_way, _ = policy.choose_victim(frames)
        assert next_way != way

    def test_reset_clears_state(self):
        policy = TreePLRUReplacement()
        frames = _candidates((1, 1), (2, 2))
        policy.choose_victim(frames)
        policy.reset()
        assert policy._bits == {}


class TestFactory:
    @pytest.mark.parametrize("name, cls", [
        ("lru", LRUReplacement),
        ("fifo", FIFOReplacement),
        ("random", RandomReplacement),
        ("plru", TreePLRUReplacement),
    ])
    def test_known_names(self, name, cls):
        assert isinstance(make_replacement_policy(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_replacement_policy("mru")
