"""Materialising traces into NumPy arrays for the batch engine.

The generators in :mod:`repro.trace.generators` yield
:class:`~repro.trace.record.MemoryAccess` objects lazily; the batch engine
wants plain address / store-mask arrays.  :func:`to_arrays` converts any
trace, and the ``*_arrays`` builders below synthesise the hottest workloads
directly as arrays — no per-access object is ever created, which matters when
a sweep needs millions of references per configuration.

Array builders are bit-exact with their generator counterparts (asserted in
``tests/test_engine_equivalence.py``).
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from .record import MemoryAccess

__all__ = ["to_arrays", "strided_vector_arrays"]


def to_arrays(trace: Iterable[MemoryAccess]) -> Tuple[np.ndarray, np.ndarray]:
    """Materialise a trace into ``(addresses, is_write)`` NumPy arrays.

    ``addresses`` is ``uint64``, ``is_write`` is ``bool``; both have one
    entry per access, in trace order.
    """
    addresses = []
    writes = []
    for access in trace:
        addresses.append(access.address)
        writes.append(access.is_write)
    if not addresses:
        return np.empty(0, dtype=np.uint64), np.empty(0, dtype=bool)
    return (np.array(addresses, dtype=np.uint64),
            np.array(writes, dtype=bool))


def strided_vector_arrays(
    stride: int,
    elements: int = 64,
    element_size: int = 8,
    sweeps: int = 4,
    base: int = 0,
    is_write: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Array-native :func:`~repro.trace.generators.strided_vector`.

    Returns the same address sequence as the generator (Figure 1's repeated
    strided sweeps) without constructing any :class:`MemoryAccess` objects.
    """
    if stride < 1:
        raise ValueError("stride must be at least 1")
    if elements < 1 or sweeps < 1:
        raise ValueError("elements and sweeps must be positive")
    step = stride * element_size
    one_sweep = np.uint64(base) + np.arange(elements, dtype=np.uint64) * np.uint64(step)
    addresses = np.tile(one_sweep, sweeps)
    writes = np.full(addresses.shape[0], bool(is_write), dtype=bool)
    return addresses, writes
