"""Sweep-wide memoisation: the trace cache and the derived-array memos.

Covers bit-exactness of the cached builders against their uncached
counterparts, identity stability (the property the engine-side memo keys
on), the LRU bounds, read-only protection of shared arrays, and the
end-to-end effect: repeated vectorized study runs hit the caches and still
produce identical results.
"""

import numpy as np
import pytest

from repro.core.index import (
    BitSelectIndexing,
    IndexFunction,
    IPolyIndexing,
    PrimeModuloIndexing,
    SingleSetIndexing,
    XorFoldIndexing,
    make_index_function,
)
from repro.engine import (
    AddressBatch,
    cached_block_numbers,
    cached_set_index_lists,
    cached_set_indices,
    memo_clear,
    memo_info,
    vectorize_index,
)
from repro.trace.batching import (
    cached_strided_arrays,
    cached_workload_arrays,
    set_trace_cache_limit,
    strided_vector_arrays,
    to_arrays,
    trace_cache_clear,
    trace_cache_info,
)
from repro.trace.workloads import build_trace


@pytest.fixture(autouse=True)
def fresh_caches():
    """Each test sees empty process-global caches (and leaves them empty)."""
    trace_cache_clear()
    memo_clear()
    yield
    trace_cache_clear()
    memo_clear()


class TestTraceCache:
    def test_workload_arrays_bit_exact_with_builder(self):
        addresses, writes = cached_workload_arrays("gcc", length=2000, seed=9)
        fresh_a, fresh_w = to_arrays(build_trace("gcc", length=2000, seed=9))
        assert addresses.tolist() == fresh_a.tolist()
        assert writes.tolist() == fresh_w.tolist()

    def test_strided_arrays_bit_exact_with_builder(self):
        addresses, writes = cached_strided_arrays(67, elements=32, sweeps=3)
        fresh_a, fresh_w = strided_vector_arrays(67, elements=32, sweeps=3)
        assert addresses.tolist() == fresh_a.tolist()
        assert writes.tolist() == fresh_w.tolist()

    def test_identity_stable_across_calls(self):
        first = cached_workload_arrays("gcc", length=1500, seed=3)
        second = cached_workload_arrays("gcc", length=1500, seed=3)
        assert first[0] is second[0]
        assert first[1] is second[1]
        info = trace_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_distinct_parameters_are_distinct_entries(self):
        a = cached_workload_arrays("gcc", length=1500, seed=3)
        b = cached_workload_arrays("gcc", length=1500, seed=4)
        c = cached_workload_arrays("li", length=1500, seed=3)
        assert a[0] is not b[0] and a[0] is not c[0]
        assert trace_cache_info()["entries"] == 3

    def test_cached_arrays_are_read_only(self):
        addresses, writes = cached_strided_arrays(17, elements=16, sweeps=2)
        with pytest.raises(ValueError):
            addresses[0] = 1
        with pytest.raises(ValueError):
            writes[0] = True

    def test_lru_bound_evicts_oldest(self):
        old = set_trace_cache_limit(2)
        try:
            cached_strided_arrays(1, elements=8, sweeps=1)
            cached_strided_arrays(2, elements=8, sweeps=1)
            first_again = cached_strided_arrays(1, elements=8, sweeps=1)  # refresh
            cached_strided_arrays(3, elements=8, sweeps=1)  # evicts stride 2
            assert trace_cache_info()["entries"] == 2
            assert cached_strided_arrays(1, elements=8, sweeps=1)[0] is first_again[0]
            before = trace_cache_info()["misses"]
            cached_strided_arrays(2, elements=8, sweeps=1)  # rebuilt
            assert trace_cache_info()["misses"] == before + 1
        finally:
            set_trace_cache_limit(old)

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            set_trace_cache_limit(0)

    def test_batch_wraps_cached_arrays_without_copy(self):
        addresses, writes = cached_workload_arrays("gcc", length=1200)
        batch = AddressBatch.from_arrays(addresses, writes)
        assert batch.addresses is addresses  # uint64 in, no copy


class TestDerivedArrayMemos:
    def test_block_numbers_identity_and_value(self):
        addresses, writes = cached_strided_arrays(5, elements=64, sweeps=2)
        batch = AddressBatch.from_arrays(addresses, writes)
        blocks = cached_block_numbers(batch, 32)
        assert blocks.tolist() == batch.block_numbers(32).tolist()
        assert cached_block_numbers(batch, 32) is blocks
        assert cached_block_numbers(batch, 64) is not blocks

    def test_set_indices_shared_across_equal_functions(self):
        """Two semantically identical index-function instances (what sweep
        tasks build independently) are served one shared array."""
        addresses, _ = cached_strided_arrays(7, elements=64, sweeps=2)
        batch = AddressBatch.from_arrays(addresses)
        blocks = cached_block_numbers(batch, 32)
        fn_a = make_index_function("a2-Hp", 128, ways=2, address_bits=19)
        fn_b = make_index_function("a2-Hp", 128, ways=2, address_bits=19)
        assert fn_a is not fn_b and fn_a.cache_key == fn_b.cache_key
        sets_a = cached_set_indices(vectorize_index(fn_a), blocks, 0)
        sets_b = cached_set_indices(vectorize_index(fn_b), blocks, 0)
        assert sets_a is sets_b
        assert sets_a.dtype == np.int64
        assert sets_a.tolist() == [fn_a.index(b) for b in blocks.tolist()]

    def test_set_indices_distinguish_functions_and_ways(self):
        addresses, _ = cached_strided_arrays(11, elements=64, sweeps=2)
        batch = AddressBatch.from_arrays(addresses)
        blocks = cached_block_numbers(batch, 32)
        skewed = vectorize_index(
            make_index_function("a2-Hp-Sk", 128, ways=2, address_bits=19))
        plain = vectorize_index(
            make_index_function("a2", 128, ways=2, address_bits=19))
        assert cached_set_indices(skewed, blocks, 0) is not \
            cached_set_indices(skewed, blocks, 1)
        assert cached_set_indices(skewed, blocks, 0) is not \
            cached_set_indices(plain, blocks, 0)

    def test_unkeyed_functions_bypass_the_memo(self):
        class Custom(IndexFunction):
            name = "custom"

            def index(self, block_number, way=0):
                return block_number & (self._num_sets - 1)

        fn = Custom(64)
        assert fn.cache_key is None

        class VecCustom:
            def __init__(self, scalar):
                self.scalar = scalar

            def way_indices(self, blocks, way):
                return blocks & 63

        addresses, _ = cached_strided_arrays(13, elements=32, sweeps=1)
        batch = AddressBatch.from_arrays(addresses)
        blocks = cached_block_numbers(batch, 32)
        vec = VecCustom(fn)
        first = cached_set_indices(vec, blocks, 0)
        second = cached_set_indices(vec, blocks, 0)
        assert first is not second  # computed fresh, never aliased
        assert first.tolist() == second.tolist()

    @staticmethod
    def _frozen_batch(values):
        array = np.asarray(values, dtype=np.uint64)
        array.flags.writeable = False
        return AddressBatch.from_arrays(array)

    def test_identity_anchor_rejects_recycled_keys(self):
        """An entry is only served while its input array is the *same
        object*; equal content in a different array misses."""
        batch_a = self._frozen_batch(np.arange(64))
        batch_b = self._frozen_batch(np.arange(64))
        blocks_a = cached_block_numbers(batch_a, 32)
        blocks_b = cached_block_numbers(batch_b, 32)
        assert blocks_a.tolist() == blocks_b.tolist()
        info = memo_info()["blocks"]
        assert info["misses"] >= 2

    def test_writable_addresses_bypass_the_memo(self):
        """Regression: a writable address array can be mutated in place,
        which the identity anchor cannot detect — so it must never be
        memoised.  Mutating the trace between runs yields fresh results."""
        addresses = np.arange(0, 64 * 32, 32, dtype=np.uint64)
        cache_args = (2048, 32, 2)
        from repro.engine import BatchSetAssociativeCache

        first = BatchSetAssociativeCache(*cache_args)
        first.run(AddressBatch.from_arrays(addresses))
        assert first.stats.load_misses == 64  # 64 distinct blocks, cold
        addresses[:] = 0  # in-place mutation of the "same" array object
        second = BatchSetAssociativeCache(*cache_args)
        second.run(AddressBatch.from_arrays(addresses))
        assert second.stats.load_misses == 1  # one block now — not stale
        assert memo_info()["blocks"]["entries"] == 0

    def test_memoised_arrays_are_read_only(self):
        batch = self._frozen_batch(np.arange(32))
        blocks = cached_block_numbers(batch, 32)
        with pytest.raises(ValueError):
            blocks[0] = 5

    def test_byte_bound_keeps_footprint_small(self):
        from repro.engine.memo import _BLOCKS

        big = self._frozen_batch(np.arange(200_000))
        cached_block_numbers(big, 32)
        assert memo_info()["blocks"]["nbytes"] <= _BLOCKS.byte_limit

    def test_every_builtin_index_function_declares_a_key(self):
        fns = [BitSelectIndexing(64), SingleSetIndexing(),
               PrimeModuloIndexing(64), XorFoldIndexing(64, skewed=True),
               XorFoldIndexing(64, skewed=False),
               IPolyIndexing(64, ways=2, skewed=True, address_bits=19)]
        keys = [fn.cache_key for fn in fns]
        assert all(key is not None for key in keys)
        assert len(set(keys)) == len(keys)

    def test_subclasses_do_not_inherit_concrete_keys(self):
        """A subclass that overrides index() must not be served the parent
        mapping's memoised arrays: inherited cache_key is None."""
        class Shifted(BitSelectIndexing):
            def index(self, block_number, way=0):
                return (block_number >> 1) & (self._num_sets - 1)

        assert Shifted(64).cache_key is None
        assert BitSelectIndexing(64).cache_key is not None

    def test_tabulated_ipoly_shares_the_parent_key(self):
        """TabulatedIPolyIndexing is a bit-exact drop-in, so it opts into
        the same keyspace as plain IPolyIndexing — deliberately."""
        from repro.engine import TabulatedIPolyIndexing

        plain = IPolyIndexing(64, ways=2, skewed=True, address_bits=19)
        fast = TabulatedIPolyIndexing(64, ways=2, skewed=True,
                                      address_bits=19)
        assert fast.cache_key == plain.cache_key is not None

        class SubTabulated(TabulatedIPolyIndexing):
            pass

        assert SubTabulated(64, ways=2, skewed=True,
                            address_bits=19).cache_key is None

    def test_trace_cache_byte_bound_and_oversize_bypass(self):
        """Entries stay under the byte budget, and a trace bigger than half
        of it is returned uncached instead of monopolising the cache."""
        import repro.trace.batching as batching

        old = batching._TRACE_CACHE.byte_limit
        batching._TRACE_CACHE.byte_limit = 64 * 1024
        try:
            # ~9 KB per strided entry: cached, and eviction keeps the sum
            # under the bound.
            for stride in range(1, 12):
                cached_strided_arrays(stride, elements=1024, sweeps=1)
            info = trace_cache_info()
            assert info["nbytes"] <= 64 * 1024
            assert info["entries"] < 11
            # An oversize trace bypasses the cache entirely.
            before = trace_cache_info()["entries"]
            a1 = cached_strided_arrays(99, elements=8192, sweeps=1)
            a2 = cached_strided_arrays(99, elements=8192, sweeps=1)
            assert a1[0] is not a2[0]
            assert trace_cache_info()["entries"] == before
        finally:
            batching._TRACE_CACHE.byte_limit = old

    def test_set_index_lists_identity_and_value(self):
        """The list memo serves one shared list per (function, way, trace),
        bit-equal to the array form."""
        addresses, _ = cached_strided_arrays(19, elements=64, sweeps=2)
        batch = AddressBatch.from_arrays(addresses)
        blocks = cached_block_numbers(batch, 32)
        vec = vectorize_index(
            make_index_function("a2-Hp-Sk", 128, ways=2, address_bits=19))
        first = cached_set_index_lists(vec, blocks, 0)
        assert first == cached_set_indices(vec, blocks, 0).tolist()
        assert cached_set_index_lists(vec, blocks, 0) is first
        assert cached_set_index_lists(vec, blocks, 1) is not first
        assert memo_info()["set_lists"]["hits"] == 1

    def test_large_geometries_bypass_the_list_memo(self):
        """Indices above CPython's interned small-int range are ~28-byte
        boxed objects the pointer-size byte estimate cannot see, so the
        list memo refuses geometries with num_sets > 257 rather than
        silently retaining several times its budget."""
        addresses, _ = cached_strided_arrays(31, elements=64, sweeps=2)
        batch = AddressBatch.from_arrays(addresses)
        blocks = cached_block_numbers(batch, 32)
        vec = vectorize_index(make_index_function("a2", 512, ways=1))
        first = cached_set_index_lists(vec, blocks, 0)
        second = cached_set_index_lists(vec, blocks, 0)
        assert first is not second and first == second
        assert memo_info()["set_lists"]["entries"] == 0

    def test_writable_blocks_bypass_the_list_memo(self):
        """Writable block arrays are never served a stale list."""
        blocks = np.arange(64, dtype=np.int64)
        vec = vectorize_index(make_index_function("a2", 16, ways=1))
        first = cached_set_index_lists(vec, blocks, 0)
        second = cached_set_index_lists(vec, blocks, 0)
        assert first is not second and first == second
        assert memo_info()["set_lists"]["entries"] == 0

    def test_skewed_kernel_hits_the_list_memo(self):
        """Regression for the kernels re-deriving per-way index lists per
        batch: the skewed batch kernels fetch their per-way streams through
        the list memo, so a second cache over the same trace hits it."""
        from repro.engine import BatchSetAssociativeCache

        addresses, writes = cached_strided_arrays(23, elements=128, sweeps=3)
        batch = AddressBatch.from_arrays(addresses, writes)

        def build():
            return BatchSetAssociativeCache(
                8192, 32, 2,
                index_function=make_index_function("a2-Hp-Sk", 128, ways=2,
                                                   address_bits=19),
                replacement="fifo")

        build().run(batch)
        info = memo_info()["set_lists"]
        assert info["misses"] == 2 and info["hits"] == 0  # one per way
        build().run(batch)
        info = memo_info()["set_lists"]
        assert info["misses"] == 2 and info["hits"] == 2  # served, not rebuilt

    def test_victim_kernel_hits_the_list_memo(self):
        """The decomposed victim kernel routes its index stream through the
        list memo too."""
        from repro.engine import BatchVictimCache

        addresses, writes = cached_strided_arrays(29, elements=128, sweeps=3)
        batch = AddressBatch.from_arrays(addresses, writes)

        def build():
            return BatchVictimCache(4096, 32, ways=1, victim_entries=8)

        build().run(batch)
        assert memo_info()["set_lists"]["misses"] == 1
        build().run(batch)
        assert memo_info()["set_lists"]["hits"] == 1

    def test_caches_survive_concurrent_thread_sweeps(self):
        """Thread-mode workers share the process-global caches; hammering
        them concurrently must neither raise nor corrupt the accounting."""
        from repro.engine import run_sweep
        from repro.engine.memo import _BLOCKS

        fn = make_index_function("a2-Hp", 64, ways=2, address_bits=19)

        def worker(stride):
            addresses, writes = cached_strided_arrays(
                stride % 5 + 1, elements=256, sweeps=2)
            batch = AddressBatch.from_arrays(addresses, writes)
            blocks = cached_block_numbers(batch, 32)
            sets = cached_set_indices(vectorize_index(fn), blocks, 0)
            return int(sets.sum())

        tasks = list(range(60))
        results = run_sweep(worker, tasks, workers=8, mode="thread",
                            chunksize=2)
        assert results == [worker(task) for task in tasks]
        assert _BLOCKS.nbytes >= 0
        assert memo_info()["blocks"]["nbytes"] <= _BLOCKS.byte_limit


class TestBoundedMemoStats:
    def test_stats_reports_every_counter(self):
        from repro.core.memo_util import BoundedMemo

        memo = BoundedMemo(limit=2, byte_limit=64, nbytes_of=len)
        memo.get(("a",), lambda: b"x" * 8)           # miss
        memo.get(("a",), lambda: b"x" * 8)           # hit
        memo.get(("big",), lambda: b"x" * 40)        # oversize bypass
        memo.get(("b",), lambda: b"y" * 8)           # miss
        memo.get(("c",), lambda: b"z" * 8)           # miss -> evicts ("a",)
        stats = memo.stats()
        assert stats == {"entries": 2, "hits": 1, "misses": 4,
                         "evictions": 1, "bypasses": 1,
                         "limit": 2, "byte_limit": 64, "nbytes": 16}
        assert memo.info() == stats  # the historical name stays an alias
        memo.clear()
        cleared = memo.stats()
        assert cleared["entries"] == cleared["nbytes"] == 0
        assert cleared["hits"] == cleared["misses"] == 0
        assert cleared["evictions"] == cleared["bypasses"] == 0

    def test_stats_consistent_under_thread_hammering(self):
        """Many threads hammering a tiny memo: the counters must add up and
        the bounds must hold at every snapshot."""
        import threading

        from repro.core.memo_util import BoundedMemo

        memo = BoundedMemo(limit=4, byte_limit=256, nbytes_of=len)
        gets_per_thread = 400
        num_threads = 8
        start = threading.Barrier(num_threads)
        errors = []

        def hammer(thread_index):
            try:
                start.wait()
                for step in range(gets_per_thread):
                    key = ((thread_index + step) % 10,)
                    oversized = key[0] == 9
                    payload = b"v" * (200 if oversized else 16)
                    value = memo.get(key, lambda p=payload: p)
                    assert value == payload
                    snapshot = memo.stats()
                    assert snapshot["entries"] <= snapshot["limit"]
                    assert snapshot["nbytes"] <= snapshot["byte_limit"]
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(index,))
                   for index in range(num_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        stats = memo.stats()
        assert stats["hits"] + stats["misses"] == gets_per_thread * num_threads
        assert stats["bypasses"] >= 1
        assert stats["evictions"] >= 1
        assert stats["entries"] == len(memo)
        assert stats["nbytes"] == memo.nbytes <= memo.byte_limit


class TestEndToEndMemoisation:
    def test_repeated_vectorized_study_hits_the_caches(self):
        from repro.experiments.replacement_study import run_replacement_study

        first = run_replacement_study(programs=["gcc"], accesses=2000,
                                      engine="vectorized")
        hits_before = trace_cache_info()["hits"]
        second = run_replacement_study(programs=["gcc"], accesses=2000,
                                       engine="vectorized")
        assert second.miss_ratios == first.miss_ratios
        assert trace_cache_info()["hits"] > hits_before
        assert memo_info()["sets"]["hits"] > 0

    def test_cached_and_uncached_study_agree(self):
        """The memoised vectorized path matches the reference engine."""
        from repro.experiments.miss_ratio_study import run_miss_ratio_study

        ref = run_miss_ratio_study(programs=["li"], accesses=2000,
                                   engine="reference")
        vec = run_miss_ratio_study(programs=["li"], accesses=2000,
                                   engine="vectorized")
        assert ref.miss_ratios == vec.miss_ratios
