"""Victim cache (Jouppi, ISCA 1990).

One of the established conflict-mitigation techniques the I-Poly study [10]
compares against: a small fully-associative buffer holds the most recently
evicted lines of a direct-mapped (or low-associativity) main cache.  A miss
in the main cache that hits in the victim buffer swaps the two lines and is
far cheaper than a full memory access.

The model reports main hits, victim hits and overall misses so the experiment
drivers can rank it against the I-Poly organisations at equal total capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..core.index import IndexFunction
from .fully_assoc import FullyAssociativeCache
from .replacement import (
    ReplacementPolicy,
    clone_replacement,
    replacement_policy_name,
)
from .set_assoc import AccessResult, SetAssociativeCache, WritePolicy
from .stats import CacheStats

__all__ = ["VictimCacheResult", "VictimCache"]


@dataclass
class VictimCacheResult:
    """Outcome of an access to a :class:`VictimCache`.

    ``main_hit`` and ``victim_hit`` are mutually exclusive; both false means
    the access missed everywhere and the block was fetched from below.
    """

    block_number: int
    main_hit: bool
    victim_hit: bool

    @property
    def hit(self) -> bool:
        """True when the access was satisfied by either structure."""
        return self.main_hit or self.victim_hit


class VictimCache:
    """A main cache backed by a small fully-associative victim buffer.

    Parameters
    ----------
    size_bytes, block_size, ways:
        Geometry of the main cache.
    victim_entries:
        Number of lines in the victim buffer (classically 4-16).
    index_function:
        Placement function of the main cache (defaults to conventional).
    replacement:
        Replacement policy name (``lru``, ``fifo``, ``random``, ``plru``) or
        a configured policy instance, applied to both structures; each gets
        its own fresh policy (the main cache over its sets, the victim
        buffer over its entries) carrying the same configuration.  ``None``
        means LRU.
    """

    def __init__(
        self,
        size_bytes: int,
        block_size: int,
        ways: int = 1,
        victim_entries: int = 8,
        index_function: Optional[IndexFunction] = None,
        replacement: Union[str, ReplacementPolicy, None] = None,
        name: str = "",
    ) -> None:
        if victim_entries < 1:
            raise ValueError("victim_entries must be positive")
        self._replacement_name = replacement_policy_name(replacement)
        self._main = SetAssociativeCache(
            size_bytes=size_bytes,
            block_size=block_size,
            ways=ways,
            index_function=index_function,
            replacement=clone_replacement(replacement),
            write_policy=WritePolicy.WRITE_BACK_ALLOCATE,
        )
        self._victim = FullyAssociativeCache(
            size_bytes=victim_entries * block_size,
            block_size=block_size,
            replacement=clone_replacement(replacement),
            write_policy=WritePolicy.WRITE_BACK_ALLOCATE,
        )
        self._name = name or f"victim-{size_bytes // 1024}KB+{victim_entries}"
        self.stats = CacheStats()
        self.main_hits = 0
        self.victim_hits = 0

    @property
    def name(self) -> str:
        """Label used in reports."""
        return self._name

    @property
    def block_size(self) -> int:
        """Line size in bytes."""
        return self._main.block_size

    @property
    def replacement_name(self) -> str:
        """Replacement policy applied to the main cache and the buffer."""
        return self._replacement_name

    def access(self, address: int, is_write: bool = False) -> VictimCacheResult:
        """Access the main cache, falling back to the victim buffer on a miss."""
        block = self._main.block_number_of(address)
        if self._main.contains_block(block):
            self._main.access_block(block, is_write=is_write)
            self.main_hits += 1
            self.stats.record_access(is_write, True)
            return VictimCacheResult(block, main_hit=True, victim_hit=False)

        victim_hit = self._victim.contains_block(block)
        self.stats.record_access(is_write, victim_hit)
        if victim_hit:
            self.victim_hits += 1
            # Swap: promote the block into the main cache; the line it
            # displaces moves into the victim buffer (replacing the promoted
            # entry's slot).
            self._victim.invalidate_block(block)
        result = self._main.access_block(block, is_write=is_write)
        self._stash_evicted(result)
        return VictimCacheResult(block, main_hit=False, victim_hit=victim_hit)

    def _stash_evicted(self, result: AccessResult) -> None:
        if result.evicted_block is not None:
            fill = self._victim.fill_block(result.evicted_block,
                                           dirty=result.writeback)
            if fill.evicted_block is not None:
                # Dirty victims falling out of the buffer would be written
                # back to the next level; count them.
                if fill.writeback:
                    self.stats.writebacks += 1

    @property
    def miss_ratio(self) -> float:
        """Overall miss ratio (misses in both structures)."""
        return self.stats.miss_ratio

    @property
    def victim_hit_ratio(self) -> float:
        """Fraction of all accesses satisfied by the victim buffer."""
        return self.victim_hits / self.stats.accesses if self.stats.accesses else 0.0

    def flush(self) -> None:
        """Empty both structures."""
        self._main.flush()
        self._victim.flush()
