"""E-HOLE: Section 3.3 — Inclusion holes, analytical model versus simulation.

Paper claims checked:

* equation (ix) gives P_H ~= 0.031 for an 8 KB L1 over a 256 KB L2 with
  32-byte lines;
* in whole-program simulation the fraction of L2 misses that actually create
  a hole is far smaller than the analytical upper estimate, and shrinks as
  the L2 grows (the paper reports an average below 0.1% and a worst case of
  1.2% with a 1 MB L2).
"""

import pytest

from repro.experiments.holes_study import run_holes_study
from repro.models.holes import HoleModel


@pytest.mark.benchmark(group="holes")
def test_hole_model_vs_simulation(benchmark, bench_accesses):
    l2_sizes = [64 * 1024, 256 * 1024]
    result = benchmark.pedantic(
        lambda: run_holes_study(l2_sizes=l2_sizes,
                                accesses=max(bench_accesses, 40_000)),
        rounds=1, iterations=1)

    print()
    print(result.render())

    # Analytical model reproduces the paper's 0.031 figure for 8K/256K.
    assert result.predicted_hole_probability[256 * 1024] == pytest.approx(0.031,
                                                                          abs=0.002)
    assert HoleModel(8 * 1024, 256 * 1024, 32).hole_probability == pytest.approx(
        result.predicted_hole_probability[256 * 1024])

    for size in l2_sizes:
        simulated = result.simulated_hole_rate[size]
        # The simulated hole rate is small and does not exceed the analytical
        # estimate by more than noise.
        assert 0.0 <= simulated <= result.predicted_hole_probability[size] + 0.02
        assert result.l2_misses[size] > 0
    # Bigger L2 -> no more holes than the smaller L2.
    assert (result.simulated_hole_rate[256 * 1024]
            <= result.simulated_hole_rate[64 * 1024] + 1e-9)
