"""Differential tests: the batch engine against the scalar reference models.

For every index-function family and every cache organisation the engine
supports, identical traces are run through the scalar one-access-at-a-time
model and through the vectorized batch engine, and the *entire* behaviour is
compared: the per-access hit/miss sequence, the final
:class:`~repro.cache.stats.CacheStats` (all counters, including evictions,
writebacks and the 3C classification), and the final set of resident blocks.

The small configurations run in tier-1; the deep sweeps (longer traces, more
geometry combinations) are marked ``slow`` and run with ``pytest -m slow``.
"""

import numpy as np
import pytest

from repro.cache.column_assoc import ColumnAssociativeCache
from repro.cache.fully_assoc import FullyAssociativeCache
from repro.cache.replacement import REPLACEMENT_POLICIES
from repro.cache.set_assoc import SetAssociativeCache, WritePolicy
from repro.cache.victim import VictimCache
from repro.core.index import SingleSetIndexing, make_index_function
from repro.engine import (
    AddressBatch,
    BatchColumnAssociativeCache,
    BatchSetAssociativeCache,
    BatchVictimCache,
    make_vec_replacement,
)
from repro.trace.batching import strided_vector_arrays, to_arrays
from repro.trace.generators import (
    multi_array_sweep,
    random_accesses,
    strided_vector,
    tiled_matrix_multiply,
)

#: The paper's four index families plus the prime-modulus baseline.
FAMILIES = ["a2", "a2-Hx-Sk", "a2-Hp", "a2-Hp-Sk", "a2-prime"]

#: Trace builders exercised by the differential suite (name -> factory).
TRACES = {
    "strided": lambda: strided_vector(17, elements=64, sweeps=6),
    "strided-pathological": lambda: strided_vector(2048, elements=64, sweeps=6),
    "multi-array": lambda: multi_array_sweep(num_arrays=4, elements=400, sweeps=2),
    "tiled-matmul": lambda: tiled_matrix_multiply(n=20, tile=8),
    "random": lambda: random_accesses(5000, 64 * 1024, write_fraction=0.3),
}


def stats_snapshot(stats):
    """All comparable counters of a CacheStats as a plain dict."""
    return {
        "loads": stats.loads,
        "stores": stats.stores,
        "load_misses": stats.load_misses,
        "store_misses": stats.store_misses,
        "evictions": stats.evictions,
        "writebacks": stats.writebacks,
        "invalidations": stats.invalidations,
        "miss_kinds": dict(stats.miss_kinds),
    }


def scalar_hit_sequence(cache, trace):
    return np.array([cache.access(a.address, a.is_write).hit for a in trace],
                    dtype=bool)


def batch_of(trace):
    return AddressBatch.from_arrays(*to_arrays(trace))


def build_pair(scheme, ways=2, size=8192, block=32,
               write_policy=WritePolicy.WRITE_THROUGH_NO_ALLOCATE,
               classify=False, replacement=None):
    """A (scalar, batch) cache pair with identical configuration."""
    num_sets = size // (block * ways)
    scalar = SetAssociativeCache(
        size, block, ways,
        index_function=make_index_function(scheme, num_sets, ways=ways,
                                           address_bits=19),
        replacement=replacement,
        write_policy=write_policy, classify_misses=classify)
    batch = BatchSetAssociativeCache(
        size, block, ways,
        index_function=make_index_function(scheme, num_sets, ways=ways,
                                           address_bits=19),
        replacement=replacement,
        write_policy=write_policy, classify_misses=classify)
    return scalar, batch


def assert_equivalent(scalar, batch_cache, trace):
    trace = list(trace)
    ref_hits = scalar_hit_sequence(scalar, trace)
    vec_hits = batch_cache.run(batch_of(trace))
    np.testing.assert_array_equal(ref_hits, vec_hits)
    assert stats_snapshot(scalar.stats) == stats_snapshot(batch_cache.stats)
    assert sorted(scalar.resident_blocks()) == sorted(batch_cache.resident_blocks())


@pytest.mark.parametrize("trace_name", sorted(TRACES))
@pytest.mark.parametrize("scheme", FAMILIES)
class TestSetAssociativeEquivalence:
    def test_write_through(self, scheme, trace_name):
        scalar, batch = build_pair(scheme)
        assert_equivalent(scalar, batch, TRACES[trace_name]())

    def test_write_back(self, scheme, trace_name):
        scalar, batch = build_pair(
            scheme, write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
        assert_equivalent(scalar, batch, TRACES[trace_name]())

    def test_with_3c_classifier(self, scheme, trace_name):
        scalar, batch = build_pair(scheme, classify=True)
        assert_equivalent(scalar, batch, TRACES[trace_name]())


@pytest.mark.parametrize("trace_name", sorted(TRACES))
def test_direct_mapped_equivalence(trace_name):
    scalar, batch = build_pair("a2", ways=1)
    assert_equivalent(scalar, batch, TRACES[trace_name]())


@pytest.mark.parametrize("trace_name", sorted(TRACES))
def test_four_way_skewed_equivalence(trace_name):
    scalar, batch = build_pair("a2-Hp-Sk", ways=4)
    assert_equivalent(scalar, batch, TRACES[trace_name]())


@pytest.mark.parametrize("trace_name", sorted(TRACES))
def test_fully_associative_equivalence(trace_name):
    scalar = FullyAssociativeCache(2048, 32)
    batch = BatchSetAssociativeCache(2048, 32, ways=2048 // 32,
                                     index_function=SingleSetIndexing())
    assert_equivalent(scalar, batch, TRACES[trace_name]())


@pytest.mark.parametrize("swap", [True, False])
@pytest.mark.parametrize("trace_name", sorted(TRACES))
def test_column_associative_equivalence(trace_name, swap):
    trace = list(TRACES[trace_name]())
    scalar = ColumnAssociativeCache(8192, 32, address_bits=19,
                                    swap_on_rehash_hit=swap,
                                    classify_misses=True)
    batch = BatchColumnAssociativeCache(8192, 32, address_bits=19,
                                        swap_on_rehash_hit=swap,
                                        classify_misses=True)
    ref_hits = scalar_hit_sequence(scalar, trace)
    vec_hits = batch.run(batch_of(trace))
    np.testing.assert_array_equal(ref_hits, vec_hits)
    assert stats_snapshot(scalar.stats) == stats_snapshot(batch.stats)
    assert scalar.first_probe_hits == batch.first_probe_hits
    assert scalar.second_probe_hits == batch.second_probe_hits
    assert scalar.total_probes == batch.total_probes
    assert scalar.first_probe_hit_ratio == batch.first_probe_hit_ratio
    assert scalar.average_probes == batch.average_probes


# --------------------------------------------------------------------- #
# replacement policy x organisation grid
# --------------------------------------------------------------------- #

#: Traces for the replacement grid: one store-free, one store-heavy.
POLICY_TRACES = ("multi-array", "random")


@pytest.mark.parametrize("trace_name", POLICY_TRACES)
@pytest.mark.parametrize("policy", REPLACEMENT_POLICIES)
class TestReplacementEquivalence:
    """Every replacement policy is bit-exact across engines, per organisation.

    Four policies x {conventional set-assoc, skewed I-Poly, column-assoc,
    victim} — including identical deterministic random-victim sequences from
    the shared counter-based generator.
    """

    def test_set_associative(self, policy, trace_name):
        scalar, batch = build_pair("a2", replacement=policy,
                                   write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
        assert_equivalent(scalar, batch, TRACES[trace_name]())

    def test_skewed(self, policy, trace_name):
        scalar, batch = build_pair("a2-Hp-Sk", ways=4, replacement=policy,
                                   write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
        assert_equivalent(scalar, batch, TRACES[trace_name]())

    def test_column_associative(self, policy, trace_name):
        # The organisation has no replacement freedom (direct-mapped per
        # probe location): every policy must reproduce the identical — and
        # cross-engine bit-exact — behaviour.
        trace = list(TRACES[trace_name]())
        scalar = ColumnAssociativeCache(8192, 32, address_bits=19,
                                        replacement=policy)
        batch = BatchColumnAssociativeCache(8192, 32, address_bits=19,
                                            replacement=policy)
        ref_hits = scalar_hit_sequence(scalar, trace)
        vec_hits = batch.run(batch_of(trace))
        np.testing.assert_array_equal(ref_hits, vec_hits)
        assert stats_snapshot(scalar.stats) == stats_snapshot(batch.stats)
        assert scalar.first_probe_hits == batch.first_probe_hits
        assert scalar.second_probe_hits == batch.second_probe_hits

    def test_victim(self, policy, trace_name):
        trace = list(TRACES[trace_name]())
        scalar = VictimCache(4096, 32, ways=1, victim_entries=8,
                             replacement=policy)
        batch = BatchVictimCache(4096, 32, ways=1, victim_entries=8,
                                 replacement=policy)
        ref_hits = scalar_hit_sequence(scalar, trace)
        vec_hits = batch.run(batch_of(trace))
        np.testing.assert_array_equal(ref_hits, vec_hits)
        assert stats_snapshot(scalar.stats) == stats_snapshot(batch.stats)
        assert scalar.main_hits == batch.main_hits
        assert scalar.victim_hits == batch.victim_hits
        assert scalar.miss_ratio == batch.miss_ratio
        assert scalar.victim_hit_ratio == batch.victim_hit_ratio


@pytest.mark.parametrize("policy", REPLACEMENT_POLICIES)
def test_victim_cache_with_skewed_main_and_stores(policy):
    """Victim kernel with a 2-way I-Poly-skewed main cache, store-heavy."""
    trace = list(random_accesses(4000, 24 * 1024, write_fraction=0.35,
                                 seed=17))
    index = lambda: make_index_function("a2-Hp-Sk", 64, ways=2,
                                        address_bits=19)
    scalar = VictimCache(4096, 32, ways=2, victim_entries=4,
                         index_function=index(), replacement=policy)
    batch = BatchVictimCache(4096, 32, ways=2, victim_entries=4,
                             index_function=index(), replacement=policy)
    ref_hits = scalar_hit_sequence(scalar, trace)
    vec_hits = batch.run(batch_of(trace))
    np.testing.assert_array_equal(ref_hits, vec_hits)
    assert stats_snapshot(scalar.stats) == stats_snapshot(batch.stats)
    assert scalar.main_hits == batch.main_hits
    assert scalar.victim_hits == batch.victim_hits


# --------------------------------------------------------------------- #
# set-decomposed kernels vs the retained generic kernel
# --------------------------------------------------------------------- #

#: The non-LRU policies served by the set-decomposed kernel layer.
DECOMPOSED_POLICIES = ("fifo", "random", "plru")

#: Non-skewed schemes (the decomposition precondition).
NON_SKEWED_SCHEMES = ("a2", "a2-Hp")


def run_via_generic_kernel(batch_cache, trace):
    """Replay a trace through the retained generic policy kernel directly,
    bypassing the set-decomposed dispatch — the differential reference."""
    batch = batch_of(trace)
    blocks = batch.block_numbers(batch_cache.block_size)
    return batch_cache._run_policy_kernel(blocks, batch.is_write)


def assert_policy_state_equal(left, right):
    """The NumPy policy state tables of two caches are byte-identical."""
    lp, rp = left._vec_policy, right._vec_policy
    assert type(lp) is type(rp)
    if hasattr(lp, "stamps"):
        np.testing.assert_array_equal(lp.stamps, rp.stamps)
    if hasattr(lp, "bits"):
        np.testing.assert_array_equal(lp.bits, rp.bits)
    if hasattr(lp, "counter"):
        assert lp.counter == rp.counter


@pytest.mark.parametrize("trace_name", POLICY_TRACES)
@pytest.mark.parametrize("scheme", NON_SKEWED_SCHEMES)
@pytest.mark.parametrize("policy", DECOMPOSED_POLICIES)
class TestSetDecomposedVsGenericKernel:
    """The set-decomposed kernels and the generic kernel are interchangeable:
    same hits, same stats, same resident blocks — and the same policy state
    tables afterwards, so either kernel can continue the other's cache."""

    def test_write_through(self, policy, scheme, trace_name):
        trace = list(TRACES[trace_name]())
        _, decomposed = build_pair(scheme, replacement=policy)
        _, generic = build_pair(scheme, replacement=policy)
        dec_hits = decomposed.run(batch_of(trace))
        gen_hits = run_via_generic_kernel(generic, trace)
        np.testing.assert_array_equal(dec_hits, gen_hits)
        assert stats_snapshot(decomposed.stats) == stats_snapshot(generic.stats)
        assert sorted(decomposed.resident_blocks()) == sorted(
            generic.resident_blocks())
        assert_policy_state_equal(decomposed, generic)

    def test_write_back(self, policy, scheme, trace_name):
        trace = list(TRACES[trace_name]())
        _, decomposed = build_pair(
            scheme, replacement=policy,
            write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
        _, generic = build_pair(
            scheme, replacement=policy,
            write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
        dec_hits = decomposed.run(batch_of(trace))
        gen_hits = run_via_generic_kernel(generic, trace)
        np.testing.assert_array_equal(dec_hits, gen_hits)
        assert stats_snapshot(decomposed.stats) == stats_snapshot(generic.stats)
        assert decomposed.stats.writebacks == generic.stats.writebacks
        assert sorted(decomposed.resident_blocks()) == sorted(
            generic.resident_blocks())
        assert_policy_state_equal(decomposed, generic)

    def test_kernel_handoff_mid_stream(self, policy, scheme, trace_name):
        """A batch run by the generic kernel, then one by the decomposed
        kernel, continues bit-exactly from the shared state tables."""
        scalar, batch = build_pair(
            scheme, replacement=policy,
            write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
        trace = list(TRACES[trace_name]())
        cut = len(trace) // 2
        first, second = trace[:cut], trace[cut:]
        ref_hits = scalar_hit_sequence(scalar, trace)
        vec_hits = np.concatenate([
            run_via_generic_kernel(batch, first),
            batch.run(batch_of(second)),      # decomposed continues
        ])
        np.testing.assert_array_equal(ref_hits, vec_hits)
        assert stats_snapshot(scalar.stats) == stats_snapshot(batch.stats)
        assert sorted(scalar.resident_blocks()) == sorted(
            batch.resident_blocks())


# --------------------------------------------------------------------- #
# skew-decomposed kernels vs the generic kernel vs the scalar engine
# --------------------------------------------------------------------- #

def build_three_way_skewed_pair(replacement,
                                write_policy=WritePolicy.WRITE_BACK_ALLOCATE):
    """A (scalar, batch) 3-way skewed I-Poly pair (generic-ways kernels)."""
    return build_pair("a2-Hp-Sk", ways=3, size=3 * 64 * 32,
                      replacement=replacement, write_policy=write_policy)


def build_victim_pair(ways, policy, scheme="a2", entries=4):
    """A (scalar, batch) victim-cache pair with identical configuration."""
    num_sets = 4096 // (32 * ways)
    index = lambda: make_index_function(scheme, num_sets, ways=ways,
                                        address_bits=19)
    scalar = VictimCache(4096, 32, ways=ways, victim_entries=entries,
                         index_function=index(), replacement=policy)
    batch = BatchVictimCache(4096, 32, ways=ways, victim_entries=entries,
                             index_function=index(), replacement=policy)
    return scalar, batch


def run_victim_via_generic_kernel(batch_cache, trace):
    """Replay a trace through the retained generic victim kernel directly,
    bypassing the decomposed dispatch — the differential reference."""
    batch = batch_of(trace)
    blocks = batch.block_numbers(batch_cache.block_size)
    return batch_cache._run_generic_kernel(blocks, batch.is_write)


def assert_victim_state_equal(left, right):
    """Two BatchVictimCaches carry identical durable state: tags, dirty
    bits, clocks and both structures' policy state tables."""
    assert left._way_tags == right._way_tags
    assert left._way_dirty == right._way_dirty
    assert left._victim_tags == right._victim_tags
    assert left._victim_dirty == right._victim_dirty
    assert left._main_clock == right._main_clock
    assert left._victim_clock == right._victim_clock
    for lp, rp in ((left._main_policy, right._main_policy),
                   (left._victim_policy, right._victim_policy)):
        assert type(lp) is type(rp)
        if hasattr(lp, "stamps"):
            np.testing.assert_array_equal(lp.stamps, rp.stamps)
        if hasattr(lp, "bits"):
            np.testing.assert_array_equal(lp.bits, rp.bits)
        if hasattr(lp, "counter"):
            assert lp.counter == rp.counter


def assert_victim_matches_scalar(scalar, batch_cache):
    assert stats_snapshot(scalar.stats) == stats_snapshot(batch_cache.stats)
    assert scalar.main_hits == batch_cache.main_hits
    assert scalar.victim_hits == batch_cache.victim_hits


@pytest.mark.parametrize("trace_name", POLICY_TRACES)
@pytest.mark.parametrize("policy", DECOMPOSED_POLICIES)
class TestSkewDecomposedVsGenericKernel:
    """The skew-decomposed kernels, the retained generic kernel and the
    scalar engine agree on skewed placement: same hits, same stats, same
    resident blocks — and the same policy state tables afterwards, so any
    kernel can continue any other's cache."""

    def test_two_way_skewed(self, policy, trace_name):
        trace = list(TRACES[trace_name]())
        scalar, decomposed = build_pair(
            "a2-Hp-Sk", replacement=policy,
            write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
        _, generic = build_pair(
            "a2-Hp-Sk", replacement=policy,
            write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
        ref_hits = scalar_hit_sequence(scalar, trace)
        dec_hits = decomposed.run(batch_of(trace))
        gen_hits = run_via_generic_kernel(generic, trace)
        np.testing.assert_array_equal(ref_hits, dec_hits)
        np.testing.assert_array_equal(dec_hits, gen_hits)
        assert stats_snapshot(scalar.stats) == stats_snapshot(decomposed.stats)
        assert stats_snapshot(decomposed.stats) == stats_snapshot(generic.stats)
        assert sorted(decomposed.resident_blocks()) == sorted(
            generic.resident_blocks())
        assert_policy_state_equal(decomposed, generic)

    def test_three_way_skewed(self, policy, trace_name):
        trace = list(TRACES[trace_name]())
        scalar, decomposed = build_three_way_skewed_pair(policy)
        _, generic = build_three_way_skewed_pair(policy)
        ref_hits = scalar_hit_sequence(scalar, trace)
        dec_hits = decomposed.run(batch_of(trace))
        gen_hits = run_via_generic_kernel(generic, trace)
        np.testing.assert_array_equal(ref_hits, dec_hits)
        np.testing.assert_array_equal(dec_hits, gen_hits)
        assert stats_snapshot(scalar.stats) == stats_snapshot(decomposed.stats)
        assert stats_snapshot(decomposed.stats) == stats_snapshot(generic.stats)
        assert_policy_state_equal(decomposed, generic)

    def test_skewed_kernel_handoff_mid_stream(self, policy, trace_name):
        """First batch through the generic kernel, second through the
        skew-decomposed kernel: the shared state tables round-trip and the
        combined run stays bit-exact with one scalar pass (and leaves the
        same tables as an all-generic cache)."""
        scalar, handoff = build_pair(
            "a2-Hp-Sk", replacement=policy,
            write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
        _, generic = build_pair(
            "a2-Hp-Sk", replacement=policy,
            write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
        trace = list(TRACES[trace_name]())
        cut = len(trace) // 2
        first, second = trace[:cut], trace[cut:]
        ref_hits = scalar_hit_sequence(scalar, trace)
        vec_hits = np.concatenate([
            run_via_generic_kernel(handoff, first),
            handoff.run(batch_of(second)),    # skew-decomposed continues
        ])
        run_via_generic_kernel(generic, first)
        run_via_generic_kernel(generic, second)
        np.testing.assert_array_equal(ref_hits, vec_hits)
        assert stats_snapshot(scalar.stats) == stats_snapshot(handoff.stats)
        assert sorted(scalar.resident_blocks()) == sorted(
            handoff.resident_blocks())
        assert_policy_state_equal(handoff, generic)


@pytest.mark.parametrize("trace_name", POLICY_TRACES)
@pytest.mark.parametrize("ways", [1, 2])
@pytest.mark.parametrize("policy", REPLACEMENT_POLICIES)
class TestVictimDecomposedVsGenericKernel:
    """The decomposed victim kernels, the retained generic victim kernel
    and the scalar model agree for 1- and 2-way main caches, all four
    policies — including the full durable state both engines leave behind."""

    def test_three_paths_agree(self, policy, ways, trace_name):
        trace = list(TRACES[trace_name]())
        scalar, decomposed = build_victim_pair(ways, policy)
        _, generic = build_victim_pair(ways, policy)
        ref_hits = scalar_hit_sequence(scalar, trace)
        dec_hits = decomposed.run(batch_of(trace))
        gen_hits = run_victim_via_generic_kernel(generic, trace)
        np.testing.assert_array_equal(ref_hits, dec_hits)
        np.testing.assert_array_equal(dec_hits, gen_hits)
        assert_victim_matches_scalar(scalar, decomposed)
        assert stats_snapshot(decomposed.stats) == stats_snapshot(generic.stats)
        assert_victim_state_equal(decomposed, generic)

    def test_skewed_main(self, policy, ways, trace_name):
        """Same three-path agreement with skewed I-Poly main-cache
        placement (ways=1 degenerates to a single rehash, still exact)."""
        trace = list(TRACES[trace_name]())
        scalar, decomposed = build_victim_pair(ways, policy,
                                               scheme="a2-Hp-Sk")
        _, generic = build_victim_pair(ways, policy, scheme="a2-Hp-Sk")
        ref_hits = scalar_hit_sequence(scalar, trace)
        dec_hits = decomposed.run(batch_of(trace))
        gen_hits = run_victim_via_generic_kernel(generic, trace)
        np.testing.assert_array_equal(ref_hits, dec_hits)
        np.testing.assert_array_equal(dec_hits, gen_hits)
        assert_victim_matches_scalar(scalar, decomposed)
        assert_victim_state_equal(decomposed, generic)

    def test_victim_kernel_handoff_mid_stream(self, policy, ways, trace_name):
        """Generic victim kernel first, decomposed kernel second: state
        round-trips bit-exactly against one scalar pass and an all-generic
        cache."""
        scalar, handoff = build_victim_pair(ways, policy)
        _, generic = build_victim_pair(ways, policy)
        trace = list(TRACES[trace_name]())
        cut = len(trace) // 2
        first, second = trace[:cut], trace[cut:]
        ref_hits = scalar_hit_sequence(scalar, trace)
        vec_hits = np.concatenate([
            run_victim_via_generic_kernel(handoff, first),
            handoff.run(batch_of(second)),    # decomposed continues
        ])
        run_victim_via_generic_kernel(generic, first)
        run_victim_via_generic_kernel(generic, second)
        np.testing.assert_array_equal(ref_hits, vec_hits)
        assert_victim_matches_scalar(scalar, handoff)
        assert_victim_state_equal(handoff, generic)


def test_lru_skewed_two_way_vs_generic_ways_kernel():
    """The dedicated 2-way skewed LRU kernel and the generic-ways skewed
    LRU kernel are interchangeable on the same cache type."""
    trace = list(random_accesses(5000, 64 * 1024, write_fraction=0.3,
                                 seed=41))
    scalar, two_way = build_pair("a2-Hp-Sk",
                                 write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
    _, generic_ways = build_pair("a2-Hp-Sk",
                                 write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
    batch = batch_of(trace)
    ref_hits = scalar_hit_sequence(scalar, trace)
    two_hits = two_way.run(batch)
    gen_hits = generic_ways._run_skewed_kernel_generic(
        batch.block_numbers(generic_ways.block_size), batch.is_write)
    np.testing.assert_array_equal(ref_hits, two_hits)
    np.testing.assert_array_equal(two_hits, gen_hits)
    assert stats_snapshot(two_way.stats) == stats_snapshot(generic_ways.stats)
    assert two_way._way_tags == generic_ways._way_tags
    assert two_way._way_used == generic_ways._way_used


# --------------------------------------------------------------------- #
# dispatcher introspection: every (kernel, policy, organisation) path
# --------------------------------------------------------------------- #

def test_dispatch_strategy_covers_every_kernel_path():
    """`dispatch_strategy` names the kernel `run` executes, for every
    (organisation, policy, batch) combination the dispatcher distinguishes —
    and the strategy-for-strategy behaviour matches the scalar engine."""
    loads = list(strided_vector(17, elements=64, sweeps=2))
    mixed = list(random_accesses(2000, 32 * 1024, write_fraction=0.3))

    expectations = []
    for policy in ("fifo", "random", "plru"):
        expectations.append(
            (build_pair("a2", replacement=policy), mixed,
             f"set-decomposed-{policy}"))
        expectations.append(
            (build_pair("a2-Hp-Sk", replacement=policy), mixed,
             f"skew-decomposed-{policy}"))
        expectations.append(
            (build_pair("a2", replacement=policy, classify=True), mixed,
             "generic-policy-kernel"))
        expectations.append(
            (build_pair("a2-Hp-Sk", ways=4, replacement=policy), mixed,
             f"skew-decomposed-{policy}"))
    expectations.append((build_pair("a2"), loads, "lru-run-collapse"))
    expectations.append((build_pair("a2"), mixed, "lru-dict"))
    expectations.append((build_pair("a2-Hp-Sk"), mixed, "lru-skewed-2way"))
    expectations.append(
        (build_pair("a2-Hp-Sk", ways=4), mixed, "lru-skewed-generic"))

    for (scalar, batch_cache), trace, expected in expectations:
        batch = batch_of(trace)
        assert batch_cache.dispatch_strategy(batch) == expected
        assert_equivalent(scalar, batch_cache, trace)

    for ways, policy, expected in [
        (1, "lru", "victim-decomposed-lru"),
        (1, "fifo", "victim-decomposed-fifo"),
        (2, "random", "victim-decomposed-random"),
        (2, "plru", "victim-decomposed-plru"),
        (4, "lru", "victim-generic-kernel"),
    ]:
        scalar, batch_cache = build_victim_pair(ways, policy)
        batch = batch_of(mixed)
        assert batch_cache.dispatch_strategy(batch) == expected
        ref_hits = scalar_hit_sequence(scalar, mixed)
        vec_hits = batch_cache.run(batch)
        np.testing.assert_array_equal(ref_hits, vec_hits)
        assert_victim_matches_scalar(scalar, batch_cache)


def test_lru_run_collapse_is_batch_dependent():
    """The run-collapse fast path is only chosen for cold load-only
    batches; the same cache reports the dict kernel once warmed."""
    _, batch_cache = build_pair("a2")
    loads = batch_of(list(strided_vector(17, elements=64, sweeps=2)))
    assert batch_cache.dispatch_strategy(loads) == "lru-run-collapse"
    batch_cache.run(loads)
    assert batch_cache.dispatch_strategy(loads) == "lru-dict"


@pytest.mark.parametrize("policy", DECOMPOSED_POLICIES)
def test_decomposed_dispatch_conditions(policy, monkeypatch):
    """Non-skewed, classifier-free, non-LRU caches route through the
    set-decomposed layer; skewed and classifying caches keep the generic
    kernel."""
    from repro.engine import batch_cache as batch_cache_module

    calls = []
    real = batch_cache_module.run_decomposed_policy

    def counting(cache, blocks, sets, is_write):
        calls.append(cache.index_function.name)
        return real(cache, blocks, sets, is_write)

    monkeypatch.setattr(batch_cache_module, "run_decomposed_policy", counting)
    trace = list(TRACES["random"]())

    _, plain = build_pair("a2", replacement=policy)
    plain.run(batch_of(trace))
    assert calls == ["a2"]

    _, skewed = build_pair("a2-Hp-Sk", replacement=policy)
    skewed.run(batch_of(trace))
    assert calls == ["a2"]  # skewed stayed on the generic kernel

    _, classifying = build_pair("a2", replacement=policy, classify=True)
    classifying.run(batch_of(trace))
    assert calls == ["a2"]  # classifier forces global-order generic kernel


@pytest.mark.parametrize("trace_name", POLICY_TRACES)
@pytest.mark.parametrize("policy", DECOMPOSED_POLICIES)
def test_classifying_policy_cache_matches_scalar(policy, trace_name):
    """3C classification + non-LRU policy (the generic-kernel fallback path)
    stays bit-exact with the scalar model, miss kinds included."""
    scalar, batch = build_pair("a2", replacement=policy, classify=True,
                               write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
    assert_equivalent(scalar, batch, TRACES[trace_name]())


@pytest.mark.parametrize("policy", DECOMPOSED_POLICIES)
def test_fully_associative_policy_equivalence(policy):
    """Single-set decomposition at high associativity (64 ways): the dense
    generic-ways kernels against the scalar fully-associative model."""
    trace = list(random_accesses(4000, 16 * 1024, write_fraction=0.3,
                                 seed=23))
    scalar = FullyAssociativeCache(2048, 32, replacement=policy)
    batch = BatchSetAssociativeCache(2048, 32, ways=2048 // 32,
                                     index_function=SingleSetIndexing(),
                                     replacement=policy)
    assert_equivalent(scalar, batch, trace)


@pytest.mark.parametrize("scheme", NON_SKEWED_SCHEMES)
@pytest.mark.parametrize("policy", DECOMPOSED_POLICIES)
def test_decomposed_four_way_equivalence(policy, scheme):
    """The generic-ways decomposed kernels (dict residents, FIFO heap,
    PLRU tree walk) against the scalar model at 4 ways, store-heavy."""
    trace = list(random_accesses(5000, 64 * 1024, write_fraction=0.3,
                                 seed=31))
    scalar, batch = build_pair(scheme, ways=4, replacement=policy,
                               write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
    assert_equivalent(scalar, batch, trace)


@pytest.mark.parametrize("policy", DECOMPOSED_POLICIES)
def test_decomposed_warm_continuity_non_skewed(policy):
    """Split-batch decomposed runs on a conventional cache stay bit-exact
    with one scalar pass (state round-trips through the NumPy tables)."""
    scalar, batch = build_pair("a2", replacement=policy,
                               write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
    first = list(random_accesses(1500, 32 * 1024, write_fraction=0.3, seed=7))
    second = list(random_accesses(1500, 32 * 1024, write_fraction=0.3, seed=8))
    ref_hits = scalar_hit_sequence(scalar, first + second)
    vec_hits = np.concatenate([batch.run(batch_of(first)),
                               batch.run(batch_of(second))])
    np.testing.assert_array_equal(ref_hits, vec_hits)
    assert stats_snapshot(scalar.stats) == stats_snapshot(batch.stats)
    assert sorted(scalar.resident_blocks()) == sorted(batch.resident_blocks())


@pytest.mark.parametrize("policy", REPLACEMENT_POLICIES)
def test_warm_continuity_with_policies(policy):
    """Split-batch runs of the policy kernel stay bit-exact with one scalar
    pass, proving the NumPy state tables round-trip between batches."""
    scalar, batch = build_pair("a2-Hp-Sk", replacement=policy,
                               write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
    first = list(random_accesses(1500, 32 * 1024, write_fraction=0.3, seed=5))
    second = list(random_accesses(1500, 32 * 1024, write_fraction=0.3, seed=6))
    ref_hits = scalar_hit_sequence(scalar, first + second)
    vec_hits = np.concatenate([batch.run(batch_of(first)),
                               batch.run(batch_of(second))])
    np.testing.assert_array_equal(ref_hits, vec_hits)
    assert stats_snapshot(scalar.stats) == stats_snapshot(batch.stats)
    assert sorted(scalar.resident_blocks()) == sorted(batch.resident_blocks())


def test_vec_replacement_state_tables_are_numpy_resident():
    """Between runs the policy state lives in inspectable NumPy arrays."""
    scalar, batch = build_pair("a2", replacement="plru")
    batch.run(batch_of(list(TRACES["random"]())))
    policy = batch._vec_policy
    assert policy.bits.shape == (batch.num_sets, 1)   # 2-way tree: 1 bit/set
    assert policy.stamps.shape == (batch.ways, batch.num_sets)
    assert policy.bits.any()


def test_vec_random_consumes_shared_draw_sequence():
    """The vectorized random policy consumes splitmix64(seed + n) draws."""
    vec = make_vec_replacement("random", ways=4, num_sets=8)
    vec.kernel_begin()
    picks = [vec.victim([0, 0, 0, 0]) for _ in range(10)]
    vec.kernel_end()
    from repro.cache.replacement import splitmix64
    assert picks == [splitmix64(vec.seed + n) % 4 for n in range(10)]
    assert vec.counter == 10


def test_batch_cache_honours_random_policy_instance_seed():
    """A configured RandomReplacement instance must mean the same victim
    sequence on both engines — the seed travels into the vec state tables."""
    from repro.cache.replacement import RandomReplacement

    trace = list(random_accesses(4000, 64 * 1024, write_fraction=0.3, seed=9))
    scalar = SetAssociativeCache(2048, 32, 2,
                                 replacement=RandomReplacement(seed=42))
    batch = BatchSetAssociativeCache(2048, 32, 2,
                                     replacement=RandomReplacement(seed=42))
    assert_equivalent(scalar, batch, trace)

    scalar = VictimCache(1024, 32, ways=1, victim_entries=4,
                         replacement=RandomReplacement(seed=42))
    batch = BatchVictimCache(1024, 32, ways=1, victim_entries=4,
                             replacement=RandomReplacement(seed=42))
    ref_hits = scalar_hit_sequence(scalar, trace)
    vec_hits = batch.run(batch_of(trace))
    np.testing.assert_array_equal(ref_hits, vec_hits)
    assert stats_snapshot(scalar.stats) == stats_snapshot(batch.stats)


@pytest.mark.parametrize("ways", [3, 5])
def test_plru_equivalence_with_non_power_of_two_ways(ways):
    """Ragged PLRU trees (non-power-of-two associativity) stay bit-exact
    across engines and can evict every way."""
    trace = list(random_accesses(6000, 64 * 1024, write_fraction=0.3,
                                 seed=ways))
    size = 128 * 32 * ways
    scalar = SetAssociativeCache(size, 32, ways, replacement="plru")
    batch = BatchSetAssociativeCache(size, 32, ways, replacement="plru")
    assert_equivalent(scalar, batch, trace)


def test_batch_cache_rejects_unknown_replacement():
    with pytest.raises(ValueError):
        BatchSetAssociativeCache(8192, 32, 2, replacement="mru")
    with pytest.raises(ValueError):
        BatchVictimCache(4096, 32, replacement="mru")
    with pytest.raises(ValueError):
        BatchColumnAssociativeCache(8192, 32, replacement="mru")


def test_warm_cache_continuity():
    """A vectorized cold run followed by a warm run stays bit-exact.

    The first (load-only) batch takes the fully vectorized path, which must
    reconstruct the LRU state it leaves behind; the second (store-carrying)
    batch continues in the tight kernel from that state.
    """
    scalar, batch = build_pair("a2")
    first = list(strided_vector(512, elements=64, sweeps=3))
    second = list(random_accesses(3000, 32 * 1024, write_fraction=0.4))
    ref_hits = scalar_hit_sequence(scalar, first + second)
    vec_hits = np.concatenate([batch.run(batch_of(first)),
                               batch.run(batch_of(second))])
    np.testing.assert_array_equal(ref_hits, vec_hits)
    assert stats_snapshot(scalar.stats) == stats_snapshot(batch.stats)
    assert sorted(scalar.resident_blocks()) == sorted(batch.resident_blocks())


def test_strided_vector_arrays_match_generator():
    for stride in (1, 17, 128, 2048):
        addresses, writes = strided_vector_arrays(stride, elements=64, sweeps=3)
        expected = [a.address for a in strided_vector(stride, elements=64, sweeps=3)]
        assert addresses.tolist() == expected
        assert not writes.any()


def test_engine_rejects_negative_addresses():
    with pytest.raises(ValueError):
        AddressBatch.from_arrays(np.array([0, -1], dtype=np.int64))


def test_engine_rejects_out_of_range_addresses():
    with pytest.raises(ValueError):
        AddressBatch.from_arrays(np.array([1 << 63], dtype=np.uint64))
    with pytest.raises(ValueError):
        AddressBatch.from_arrays([0, 1 << 70])


def test_engine_rejects_unsupported_replacement_via_scalar_parity():
    """Both engines reject the same malformed geometries the same way."""
    with pytest.raises(ValueError):
        BatchSetAssociativeCache(8192, 48, 2)  # non-power-of-two block
    with pytest.raises(ValueError):
        BatchSetAssociativeCache(8192 + 32, 32, 2)  # not a multiple of set size
    with pytest.raises(ValueError):
        BatchSetAssociativeCache(8192, 32, 2, write_policy="bogus")


# --------------------------------------------------------------------- #
# deep sweeps — `pytest -m slow`
# --------------------------------------------------------------------- #

@pytest.mark.slow
@pytest.mark.parametrize("scheme", FAMILIES)
@pytest.mark.parametrize("ways", [1, 2, 4])
@pytest.mark.parametrize("write_policy", list(WritePolicy.ALL))
def test_deep_equivalence_grid(scheme, ways, write_policy):
    scalar, batch = build_pair(scheme, ways=ways, write_policy=write_policy,
                               classify=True)
    trace = list(random_accesses(40_000, 256 * 1024, write_fraction=0.25,
                                 seed=sum(map(ord, scheme)) + ways))
    assert_equivalent(scalar, batch, trace)


@pytest.mark.slow
@pytest.mark.parametrize("policy", REPLACEMENT_POLICIES)
@pytest.mark.parametrize("scheme", ["a2", "a2-Hp-Sk"])
@pytest.mark.parametrize("ways", [2, 4])
def test_deep_replacement_grid(policy, scheme, ways):
    scalar, batch = build_pair(scheme, ways=ways, replacement=policy,
                               write_policy=WritePolicy.WRITE_BACK_ALLOCATE,
                               classify=True)
    trace = list(random_accesses(40_000, 256 * 1024, write_fraction=0.25,
                                 seed=sum(map(ord, policy)) + ways))
    assert_equivalent(scalar, batch, trace)


@pytest.mark.slow
@pytest.mark.parametrize("policy", REPLACEMENT_POLICIES)
def test_deep_victim_equivalence(policy):
    trace = list(random_accesses(40_000, 128 * 1024, write_fraction=0.25,
                                 seed=sum(map(ord, policy))))
    scalar = VictimCache(8192, 32, ways=1, victim_entries=8,
                         replacement=policy)
    batch = BatchVictimCache(8192, 32, ways=1, victim_entries=8,
                             replacement=policy)
    ref_hits = scalar_hit_sequence(scalar, trace)
    vec_hits = batch.run(batch_of(trace))
    np.testing.assert_array_equal(ref_hits, vec_hits)
    assert stats_snapshot(scalar.stats) == stats_snapshot(batch.stats)
    assert scalar.main_hits == batch.main_hits
    assert scalar.victim_hits == batch.victim_hits


@pytest.mark.slow
@pytest.mark.parametrize("scheme", ["a2", "a2-Hx-Sk", "a2-Hp", "a2-Hp-Sk"])
def test_deep_strided_sweep(scheme):
    """Every stride in a dense range agrees between the engines."""
    for stride in range(1, 257, 5):
        scalar, batch = build_pair(scheme)
        trace = list(strided_vector(stride, elements=64, sweeps=8))
        ref_hits = scalar_hit_sequence(scalar, trace)
        vec_hits = batch.run(batch_of(trace))
        assert np.array_equal(ref_hits, vec_hits), stride
        assert stats_snapshot(scalar.stats) == stats_snapshot(batch.stats), stride


# --------------------------------------------------------------------- #
# one-pass multi-configuration profiler: three-path equality
# --------------------------------------------------------------------- #

from repro.engine import MultiConfigLRUProfile, ProfileCounts  # noqa: E402

#: The (num_sets, ways) grid the profile-equality tests price out of one
#: pass per set count — fully-associative (one set) included.
PROFILE_GRID = [(num_sets, ways) for num_sets in (1, 16, 64, 128)
                for ways in (1, 2, 3, 4, 8)]


def counts_snapshot(stats):
    """The profile-comparable subset of a CacheStats."""
    return ProfileCounts.from_stats(stats)


@pytest.mark.parametrize("trace_name", sorted(TRACES))
@pytest.mark.parametrize("write_policy", [
    WritePolicy.WRITE_THROUGH_NO_ALLOCATE,
    WritePolicy.WRITE_BACK_ALLOCATE,
])
class TestProfileThreePathEquality:
    """Profile == batch kernel == scalar model, for every grid point.

    One :class:`MultiConfigLRUProfile` pass per set count must price every
    conventional-LRU configuration of the grid with exactly the counters
    the per-config batch kernels and the scalar models produce — under
    both write policies (the traces include stores, so this pins the
    priority-stack store handling as well as the uniform update).
    """

    def test_profile_matches_both_engines(self, trace_name, write_policy):
        trace = list(TRACES[trace_name]())
        batch = batch_of(trace)
        level_caps = {}
        for num_sets, ways in PROFILE_GRID:
            level_caps[num_sets] = max(level_caps.get(num_sets, 0), ways)
        profile = MultiConfigLRUProfile(batch, 32, level_caps,
                                        write_policy=write_policy)
        for num_sets, ways in PROFILE_GRID:
            expected = profile.miss_counts(num_sets, ways)

            kernel = BatchSetAssociativeCache(
                num_sets * ways * 32, 32, ways, write_policy=write_policy)
            kernel.run(batch)
            assert counts_snapshot(kernel.stats) == expected, (
                trace_name, write_policy, num_sets, ways)

            scalar = SetAssociativeCache(
                num_sets * ways * 32, 32, ways, write_policy=write_policy)
            for access in trace:
                scalar.access(access.address, is_write=access.is_write)
            assert counts_snapshot(scalar.stats) == expected, (
                trace_name, write_policy, num_sets, ways)
            # The study-facing ratios are the same IEEE doubles, not merely
            # close: identical integer counters divide identically.
            assert expected.miss_ratio == scalar.stats.miss_ratio
            assert expected.load_miss_ratio == scalar.stats.load_miss_ratio
