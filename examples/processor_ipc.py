#!/usr/bin/env python3
"""Processor-level study: how cache indexing moves IPC on an out-of-order core.

This is a miniature of the paper's Table 2/3 experiment: the synthetic
models of the three high-conflict Spec95 programs (tomcatv, swim, wave5) and
one well-behaved program (gcc) are run on the 4-way out-of-order core of
Section 4 under four machine configurations:

* 8 KB conventional cache;
* 16 KB conventional cache (doubling the cache);
* 8 KB skewed I-Poly cache with the XOR stage on the critical path;
* the same plus the stride-based memory address predictor.

Run it with::

    python examples/processor_ipc.py [instructions_per_program]

Expect the high-conflict programs to gain 25-50% IPC from I-Poly indexing —
more than they gain from doubling the cache — while gcc barely moves, and
the address predictor to recover the cycle lost to the XOR stage.
"""

import sys

from repro.cpu import OutOfOrderProcessor, ProcessorConfig, build_program

CONFIGURATIONS = {
    "8K conventional": dict(),
    "16K conventional": dict(cache_size_bytes=16 * 1024),
    "8K I-Poly (XOR in path)": dict(index_scheme="a2-Hp-Sk",
                                    xor_in_critical_path=True),
    "8K I-Poly + addr. pred.": dict(index_scheme="a2-Hp-Sk",
                                    xor_in_critical_path=True,
                                    address_prediction=True),
}

PROGRAMS = ["tomcatv", "swim", "wave5", "gcc"]


def main(argv):
    instructions = int(argv[1]) if len(argv) > 1 else 15_000

    print(f"Simulating {instructions} committed instructions per program "
          "(paper: 100M)\n")
    header = f"{'program':<10}" + "".join(f"{label:>26}" for label in CONFIGURATIONS)
    print(header)
    print("-" * len(header))

    baseline_ipc = {}
    for program_name in PROGRAMS:
        cells = []
        for label, overrides in CONFIGURATIONS.items():
            processor = OutOfOrderProcessor(ProcessorConfig(**overrides))
            result = processor.run(build_program(program_name, length=instructions))
            if label == "8K conventional":
                baseline_ipc[program_name] = result.ipc
            gain = 100 * (result.ipc / baseline_ipc[program_name] - 1)
            cells.append(f"{result.ipc:6.2f} ipc {result.load_miss_ratio_percent:5.1f}%m "
                         f"{gain:+5.1f}%")
        print(f"{program_name:<10}" + "".join(f"{c:>26}" for c in cells))

    print("\nColumns show IPC, load miss ratio, and IPC change versus the 8K")
    print("conventional cache.  The high-conflict programs benefit from I-Poly")
    print("indexing far more than from doubling the cache; the address")
    print("predictor hides the XOR stage's extra cycle.")


if __name__ == "__main__":
    main(sys.argv)
