"""Tests for the experiment drivers (scaled-down versions of each table/figure)."""

import pytest

from repro.engine import chunk_tasks, run_sweep
from repro.experiments.column_assoc_study import run_column_assoc_study
from repro.experiments.config import (
    PAPER_L1_8KB,
    PAPER_L1_16KB,
    TABLE2_CONFIGS,
    CacheGeometry,
    build_cache,
    table2_processor_configs,
)
from repro.experiments.critical_path import run_critical_path_study
from repro.experiments.figure1 import run_figure1, stride_miss_ratio
from repro.experiments.holes_study import run_holes_study
from repro.experiments.miss_ratio_study import run_miss_ratio_study
from repro.experiments.replacement_study import run_replacement_study
from repro.experiments.table2 import miss_ratio_std_dev, run_table2
from repro.experiments.table3 import run_table3


class TestConfig:
    def test_paper_geometries(self):
        assert PAPER_L1_8KB.num_sets == 128
        assert PAPER_L1_16KB.num_sets == 256
        assert PAPER_L1_8KB.label == "8KB-2way"

    def test_build_cache_scheme(self):
        cache = build_cache(PAPER_L1_8KB, "a2-Hp-Sk")
        assert cache.index_function.name == "a2-Hp-Sk"
        assert cache.size_bytes == 8 * 1024

    def test_table2_has_six_configurations(self):
        assert len(TABLE2_CONFIGS) == 6
        configs = table2_processor_configs()
        assert configs["16K-conv"].cache_size_bytes == 16 * 1024
        assert configs["8K-ipoly-CP"].xor_in_critical_path
        assert configs["8K-ipoly-CP-pred"].address_prediction


class TestFigure1:
    def test_power_of_two_strides(self):
        """Conventional indexing thrashes on 2^k strides; I-Poly does not."""
        for stride in (64, 128, 256):
            assert stride_miss_ratio("a2", stride) > 0.9
            assert stride_miss_ratio("a2-Hp-Sk", stride) < 0.3

    def test_unit_stride_is_cheap_everywhere(self):
        for scheme in ("a2", "a2-Hx-Sk", "a2-Hp", "a2-Hp-Sk"):
            assert stride_miss_ratio(scheme, 1) < 0.1

    def test_small_sweep_shape(self):
        result = run_figure1(max_stride=257, sweeps=8)
        summary = result.summary()
        assert summary["a2"] > 0.0
        assert summary["a2-Hp-Sk"] == 0.0
        assert summary["a2"] > summary["a2-Hp-Sk"]
        # Histograms account for every stride tested.
        assert all(h.total == result.strides for h in result.histograms.values())

    def test_render(self):
        result = run_figure1(max_stride=65, sweeps=4)
        text = result.render()
        assert "a2-Hp-Sk" in text and "pathological" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            run_figure1(max_stride=1)
        with pytest.raises(ValueError):
            stride_miss_ratio("a2", 0)
        with pytest.raises(ValueError):
            run_figure1(max_stride=16, chunksize=0)


class TestFigure1Profile:
    def test_profile_modes_are_bit_exact(self):
        """Routing the a2 rows through the one-pass profiler (or refusing
        to) must not change a single ratio."""
        base = run_figure1(max_stride=33, stride_step=4, sweeps=4,
                           engine="vectorized")
        for profile in ("always", "never"):
            other = run_figure1(max_stride=33, stride_step=4, sweeps=4,
                                engine="vectorized", profile=profile)
            assert other.miss_ratios == base.miss_ratios

    def test_profile_mode_is_validated(self):
        with pytest.raises(ValueError):
            run_figure1(max_stride=16, profile="sometimes")
        with pytest.raises(ValueError):
            stride_miss_ratio("a2", 3, engine="vectorized",
                              profile="sometimes")


class TestSweepChunking:
    def test_chunk_tasks_groups_and_preserves_order(self):
        tasks = list(range(10))
        chunks = chunk_tasks(tasks, 4)
        assert chunks == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
        assert [t for chunk in chunks for t in chunk] == tasks

    def test_chunk_tasks_validation(self):
        with pytest.raises(ValueError):
            chunk_tasks([1, 2], 0)

    def test_run_sweep_chunksize_passthrough(self):
        # Serial path ignores chunksize; result order always preserved.
        assert run_sweep(lambda x: x * x, [1, 2, 3], chunksize=2) == [1, 4, 9]
        with pytest.raises(ValueError):
            run_sweep(lambda x: x, [1], workers=2, chunksize=0)

    @pytest.mark.parametrize("chunksize", [1, 3, 100, None])
    def test_run_sweep_thread_mode_honours_chunksize(self, chunksize):
        """Regression: thread mode used to silently drop ``chunksize``
        (``ThreadPoolExecutor.map`` ignores it); tasks are now dispatched as
        explicit chunks — every task runs exactly once, order preserved."""
        import threading

        seen = []
        lock = threading.Lock()

        def worker(task):
            with lock:
                seen.append(task)
            return task * 10

        tasks = list(range(11))
        results = run_sweep(worker, tasks, workers=2, mode="thread",
                            chunksize=chunksize)
        assert results == [task * 10 for task in tasks]
        assert sorted(seen) == tasks

    def test_figure1_chunked_dispatch_matches_serial(self):
        """Per-scheme chunked task batching must not change any ratio."""
        serial = run_figure1(max_stride=41, stride_step=4, sweeps=4)
        chunked = run_figure1(max_stride=41, stride_step=4, sweeps=4,
                              workers=2, chunksize=3)
        assert chunked.miss_ratios == serial.miss_ratios
        assert chunked.summary() == serial.summary()


class TestSweepInitializer:
    def test_serial_path_runs_initializer_once(self):
        calls = []
        results = run_sweep(lambda x: x + 1, [1, 2, 3],
                            initializer=lambda tag: calls.append(tag),
                            initargs=("warm",))
        assert results == [2, 3, 4]
        assert calls == ["warm"]

    def test_thread_pool_runs_initializer_per_worker(self):
        import threading

        seen = set()
        lock = threading.Lock()

        def init():
            with lock:
                seen.add(threading.get_ident())

        results = run_sweep(lambda x: x * 2, list(range(8)), workers=2,
                            mode="thread", initializer=init)
        assert results == [x * 2 for x in range(8)]
        assert 1 <= len(seen) <= 2

    def test_serial_fallback_when_no_pool_can_spawn(self, monkeypatch):
        """Regression: the degrade-to-serial path must still run the
        initializer in-process (exactly once) and produce every result.
        Both pool flavours are blocked so the process -> thread -> serial
        chain lands on serial."""
        import concurrent.futures

        class BrokenExecutor:
            def __init__(self, *args, **kwargs):
                raise OSError("no pool spawning in this sandbox")

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor",
                            BrokenExecutor)
        monkeypatch.setattr(concurrent.futures, "ThreadPoolExecutor",
                            BrokenExecutor)
        calls = []
        results = run_sweep(lambda x: x * x, [2, 3], workers=4,
                            mode="process",
                            initializer=lambda: calls.append("init"))
        assert results == [4, 9]
        assert calls == ["init"]

    def test_serial_fallback_without_initializer(self, monkeypatch):
        import concurrent.futures

        class BrokenExecutor:
            def __init__(self, *args, **kwargs):
                raise OSError("no pool spawning in this sandbox")

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor",
                            BrokenExecutor)
        monkeypatch.setattr(concurrent.futures, "ThreadPoolExecutor",
                            BrokenExecutor)
        assert run_sweep(lambda x: -x, [1, 2], workers=3) == [-1, -2]

    def test_process_spawn_failure_degrades_to_thread_first(self, monkeypatch):
        """Process-pool spawn failure should try threads before giving up
        on parallelism entirely."""
        import concurrent.futures
        import threading

        class BrokenExecutor:
            def __init__(self, *args, **kwargs):
                raise OSError("no process spawning in this sandbox")

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor",
                            BrokenExecutor)
        main_thread_tasks = []

        def worker(task):
            if threading.current_thread() is threading.main_thread():
                main_thread_tasks.append(task)
            return task + 10

        results = run_sweep(worker, [1, 2, 3, 4], workers=2, mode="process")
        assert results == [11, 12, 13, 14]
        assert main_thread_tasks == []  # ran on the thread pool, not serially


class TestDriverFaultWiring:
    """The fault-tolerance knobs as wired through the experiment drivers."""

    def test_figure1_collect_failure_yields_nan_strides(self, monkeypatch):
        """A collected chunk failure lands in ``result.failures``, its
        strides read ``nan``, and the histograms skip them instead of
        choking on an out-of-range value."""
        import math

        import repro.experiments.figure1 as figure1_module
        from repro.engine.sweep import TaskFailure
        from repro.engine.sweep import run_sweep as real_run_sweep

        def sabotaged_run_sweep(worker, tasks, **kwargs):
            results = real_run_sweep(worker, tasks, **kwargs)
            results[-1] = TaskFailure(task=repr(tasks[-1]),
                                      error_type="ChaosError",
                                      message="injected", attempts=3,
                                      mode="process")
            return results

        monkeypatch.setattr(figure1_module, "run_sweep", sabotaged_run_sweep)
        result = run_figure1(max_stride=33, sweeps=4, chunksize=4,
                             on_error="collect")
        assert len(result.failures) == 1
        assert result.failures[0].error_type == "ChaosError"
        last_scheme = list(result.miss_ratios)[-1]
        assert any(math.isnan(r) for r in result.miss_ratios[last_scheme])
        # The failed strides are absent from the histogram, not mis-binned.
        assert result.histograms[last_scheme].total < result.strides
        assert "pathological" in result.render()

    def test_miss_ratio_study_resume_skips_completed_programs(
            self, tmp_path, monkeypatch):
        """A resumed study must serve journalled programs without
        re-simulating them."""
        import repro.experiments.miss_ratio_study as study_module

        journal = tmp_path / "study.jsonl"
        programs = ["compress", "tomcatv"]
        first = run_miss_ratio_study(programs=programs, accesses=2_000,
                                     resume=str(journal))
        def poisoned(task):
            raise AssertionError(f"journalled program re-executed: {task!r}")

        monkeypatch.setattr(study_module, "_study_program_task", poisoned)
        resumed = run_miss_ratio_study(programs=programs, accesses=2_000,
                                       resume=str(journal))
        assert resumed.miss_ratios == first.miss_ratios
        assert not resumed.failures

    def test_replacement_study_collects_failures(self, monkeypatch):
        import repro.experiments.replacement_study as repl_module
        from repro.engine.sweep import TaskFailure
        from repro.engine.sweep import run_sweep as real_run_sweep

        def sabotaged_run_sweep(worker, tasks, **kwargs):
            results = real_run_sweep(worker, tasks, **kwargs)
            results[0] = TaskFailure(task=repr(tasks[0]),
                                     error_type="TimeoutError",
                                     message="injected", attempts=1,
                                     mode="process")
            return results

        monkeypatch.setattr(repl_module, "run_sweep", sabotaged_run_sweep)
        result = run_replacement_study(programs=["compress", "tomcatv"],
                                       accesses=2_000, on_error="collect")
        assert len(result.failures) == 1
        # Averages still render from the surviving program.
        assert result.render()


class TestMissRatioStudy:
    def test_ordering_matches_section_2_1(self):
        result = run_miss_ratio_study(
            programs=["swim", "tomcatv", "gcc", "fpppp"], accesses=15_000)
        averages = result.averages()
        assert averages["conventional-2way"] > averages["ipoly-skewed-2way"]
        assert abs(averages["ipoly-skewed-2way"]
                   - averages["fully-associative"]) < 6.0
        text = result.render()
        assert "Average" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            run_miss_ratio_study(accesses=10)

    def test_vectorized_victim_runs_native_kernel(self):
        """The vectorized study must build BatchVictimCache — no scalar
        replay fallback — and still agree with the reference engine."""
        from repro.engine import BatchVictimCache
        from repro.experiments.miss_ratio_study import (
            default_batch_organisations,
        )
        victim = default_batch_organisations()["victim-direct+8"]()
        assert isinstance(victim, BatchVictimCache)
        ref = run_miss_ratio_study(programs=["gcc"], accesses=4_000,
                                   engine="reference")
        vec = run_miss_ratio_study(programs=["gcc"], accesses=4_000,
                                   engine="vectorized")
        assert ref.miss_ratios == vec.miss_ratios

    def test_replacement_parameter_changes_results_consistently(self):
        ref = run_miss_ratio_study(programs=["swim"], accesses=4_000,
                                   engine="reference", replacement="fifo")
        vec = run_miss_ratio_study(programs=["swim"], accesses=4_000,
                                   engine="vectorized", replacement="fifo")
        assert ref.miss_ratios == vec.miss_ratios

    def test_workers_and_chunksize_change_nothing(self):
        serial = run_miss_ratio_study(programs=["gcc", "swim"], accesses=4_000,
                                      engine="vectorized")
        fanned = run_miss_ratio_study(programs=["gcc", "swim"], accesses=4_000,
                                      engine="vectorized", workers=2,
                                      chunksize=1)
        assert fanned.miss_ratios == serial.miss_ratios

    def test_profile_modes_are_bit_exact(self):
        base = run_miss_ratio_study(programs=["gcc"], accesses=4_000,
                                    engine="vectorized")
        for profile in ("always", "never"):
            other = run_miss_ratio_study(programs=["gcc"], accesses=4_000,
                                         engine="vectorized", profile=profile)
            assert other.miss_ratios == base.miss_ratios
        with pytest.raises(ValueError):
            run_miss_ratio_study(programs=["gcc"], accesses=4_000,
                                 profile="sometimes")


class TestReplacementStudy:
    def test_engines_agree_exactly(self):
        ref = run_replacement_study(programs=["gcc", "swim"], accesses=3_000,
                                    engine="reference")
        vec = run_replacement_study(programs=["gcc", "swim"], accesses=3_000,
                                    engine="vectorized")
        assert ref.miss_ratios == vec.miss_ratios

    def test_structure_and_summary(self):
        result = run_replacement_study(programs=["gcc"], accesses=3_000,
                                       engine="vectorized")
        assert result.policies == ["lru", "fifo", "random", "plru"]
        assert set(result.organisations) == {
            "conventional-2way", "skewed-ipoly-2way", "victim-direct+8"}
        for organisation in result.organisations:
            assert result.policy_spread(organisation) >= 0.0
            assert result.lru_penalty(organisation, "lru") == 0.0
        text = result.render()
        assert "replacement sensitivity" in text and "plru" in text

    def test_two_way_plru_equals_lru(self):
        """Tree-PLRU over two ways *is* LRU — a structural sanity check the
        sweep should reproduce on the set-associative organisations."""
        result = run_replacement_study(programs=["gcc"], accesses=3_000,
                                       policies=["lru", "plru"],
                                       engine="vectorized")
        for organisation in ("conventional-2way", "skewed-ipoly-2way"):
            row = result.miss_ratios[organisation]
            assert row["plru"] == row["lru"]

    def test_validation(self):
        with pytest.raises(ValueError):
            run_replacement_study(accesses=10)
        with pytest.raises(ValueError):
            run_replacement_study(policies=["mru"], accesses=3_000)
        with pytest.raises(ValueError):
            run_replacement_study(accesses=3_000, profile="sometimes")

    def test_workers_and_profile_change_nothing(self):
        serial = run_replacement_study(programs=["gcc", "swim"],
                                       accesses=3_000, engine="vectorized")
        fanned = run_replacement_study(programs=["gcc", "swim"],
                                       accesses=3_000, engine="vectorized",
                                       workers=2, chunksize=1)
        assert fanned.miss_ratios == serial.miss_ratios
        profiled = run_replacement_study(programs=["gcc", "swim"],
                                         accesses=3_000, engine="vectorized",
                                         profile="always")
        assert profiled.miss_ratios == serial.miss_ratios


class TestHolesStudy:
    def test_model_and_simulation_are_both_small(self):
        result = run_holes_study(l2_sizes=[64 * 1024],
                                 programs=["swim", "gcc"], accesses=20_000)
        size = 64 * 1024
        assert result.predicted_hole_probability[size] == pytest.approx(
            (2 ** 8 - 1) / 2 ** 11)
        assert 0.0 <= result.simulated_hole_rate[size] <= \
            result.predicted_hole_probability[size] + 0.05
        assert result.l2_misses[size] > 0
        assert "model P_H" in result.render()

    def test_larger_l2_never_increases_hole_rate(self):
        result = run_holes_study(l2_sizes=[64 * 1024, 256 * 1024],
                                 programs=["swim"], accesses=20_000)
        assert (result.simulated_hole_rate[256 * 1024]
                <= result.simulated_hole_rate[64 * 1024] + 1e-9)


class TestColumnAssocStudy:
    def test_first_probe_hits_dominate(self):
        """Section 3.1: around 90% of hits are found on the first probe."""
        result = run_column_assoc_study(programs=["gcc", "swim", "li"],
                                        accesses=20_000)
        assert result.mean_first_probe_hit_ratio() > 0.8
        assert all(p >= 1.0 for p in result.average_probes.values())
        assert "first-probe" in result.render()


class TestCriticalPathStudy:
    def test_paper_hardware_claims(self):
        result = run_critical_path_study(index_bit_widths=(7,),
                                         address_bits=19,
                                         hash_bit_widths=(19,))
        assert result.max_fan_in() <= 5
        assert result.cla_delays[19]["low_bits_delay"] == 9
        assert result.cla_delays[19]["full_add_delay"] == 11
        assert "XOR-tree" in result.render()


@pytest.fixture(scope="module")
def small_table2():
    """One scaled-down Table 2 run shared by the slower experiment tests."""
    return run_table2(programs=["swim", "tomcatv", "wave5", "gcc", "fpppp"],
                      instructions=6_000)


class TestTable2:
    def test_structure(self, small_table2):
        assert small_table2.programs == ["swim", "tomcatv", "wave5", "gcc", "fpppp"]
        assert set(small_table2.configurations) == set(TABLE2_CONFIGS)
        text = small_table2.render()
        assert "Combined average" in text and "swim" in text

    def test_ipoly_beats_conventional_for_bad_programs(self, small_table2):
        for program in ("swim", "tomcatv", "wave5"):
            assert (small_table2.ipc(program, "8K-ipoly-noCP")
                    > small_table2.ipc(program, "8K-conv"))
            assert (small_table2.miss_ratio_percent(program, "8K-ipoly-noCP")
                    < small_table2.miss_ratio_percent(program, "8K-conv") / 2)

    def test_xor_in_critical_path_costs_a_little(self, small_table2):
        for program in small_table2.programs:
            assert (small_table2.ipc(program, "8K-ipoly-CP")
                    <= small_table2.ipc(program, "8K-ipoly-noCP") + 1e-9)

    def test_prediction_recovers_the_critical_path_penalty(self, small_table2):
        for program in small_table2.programs:
            assert (small_table2.ipc(program, "8K-ipoly-CP-pred")
                    >= small_table2.ipc(program, "8K-ipoly-CP") - 1e-9)

    def test_std_dev_reduction(self, small_table2):
        stds = miss_ratio_std_dev(small_table2)
        assert stds["8K-ipoly-noCP"] < stds["8K-conv"]

    def test_validation(self):
        with pytest.raises(ValueError):
            run_table2(instructions=10)

    def test_workers_and_chunksize_change_nothing(self, small_table2):
        fanned = run_table2(programs=["swim", "tomcatv", "wave5", "gcc", "fpppp"],
                            instructions=6_000, workers=2, chunksize=2)
        for program in small_table2.programs:
            for config in small_table2.configurations:
                assert (fanned.results[program][config]
                        == small_table2.results[program][config])


class TestTable3:
    def test_improvement_summary_shape(self, small_table2):
        table3 = run_table3(table2_result=small_table2)
        assert table3.bad_programs == ["swim", "tomcatv", "wave5"]
        summary = table3.improvement_summary()
        # Bad programs gain substantially from I-Poly even with the XOR stage
        # on the critical path; good programs lose only a little.
        assert summary["bad_ipoly_cp_vs_8k_conv"] > 10.0
        assert summary["bad_ipoly_cp_pred_vs_8k_conv"] >= summary["bad_ipoly_cp_vs_8k_conv"]
        assert summary["bad_ipoly_cp_pred_vs_16k_conv"] > 0.0
        assert summary["good_ipoly_cp_vs_8k_conv"] > -10.0
        assert "Average-bad" in table3.render()

    def test_workers_forwarded_to_table2(self):
        serial = run_table3(instructions=1_500)
        fanned = run_table3(instructions=1_500, workers=2)
        assert fanned.table2.results == serial.table2.results
