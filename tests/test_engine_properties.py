"""Hypothesis property tests for the vectorized engine.

Random address batches, random power-of-two geometries and random polynomial
choices: the vectorized index functions must agree element-wise with the
scalar :mod:`repro.core.index` implementations, the tabulated I-Poly lookup
must agree with :func:`repro.core.gf2.gf2_mod`, and the batch cache must
agree with the scalar cache on arbitrary random traces.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cache.set_assoc import SetAssociativeCache, WritePolicy
from repro.core.gf2 import gf2_mod, irreducible_polynomials
from repro.core.index import (
    BitSelectIndexing,
    IPolyIndexing,
    PrimeModuloIndexing,
    XorFoldIndexing,
    make_index_function,
)
from repro.engine import (
    AddressBatch,
    BatchSetAssociativeCache,
    TabulatedIPolyIndexing,
    vectorize_index,
)

#: Block numbers cover the full 40-bit range the experiments ever touch.
blocks_arrays = st.lists(st.integers(min_value=0, max_value=(1 << 40) - 1),
                         min_size=1, max_size=200)
index_bits = st.integers(min_value=1, max_value=12)
ways_strategy = st.integers(min_value=1, max_value=4)


def _scalar_indices(fn, blocks, way):
    return [fn.index(b, way) for b in blocks]


@settings(max_examples=60, deadline=None)
@given(blocks=blocks_arrays, m=index_bits, way=st.integers(0, 3))
def test_bit_select_elementwise(blocks, m, way):
    fn = BitSelectIndexing(1 << m)
    vec = vectorize_index(fn)
    result = vec.way_indices(np.array(blocks, dtype=np.uint64), way)
    assert result.tolist() == _scalar_indices(fn, blocks, way)


@settings(max_examples=60, deadline=None)
@given(blocks=blocks_arrays, m=index_bits, way=st.integers(0, 5),
       skewed=st.booleans())
def test_xor_fold_elementwise(blocks, m, way, skewed):
    fn = XorFoldIndexing(1 << m, skewed=skewed)
    vec = vectorize_index(fn)
    result = vec.way_indices(np.array(blocks, dtype=np.uint64), way)
    assert result.tolist() == _scalar_indices(fn, blocks, way)


@settings(max_examples=60, deadline=None)
@given(blocks=blocks_arrays, m=st.integers(2, 10))
def test_prime_modulo_elementwise(blocks, m):
    fn = PrimeModuloIndexing(1 << m)
    vec = vectorize_index(fn)
    result = vec.way_indices(np.array(blocks, dtype=np.uint64), 0)
    assert result.tolist() == _scalar_indices(fn, blocks, 0)


@st.composite
def ipoly_configs(draw):
    """A random I-Poly geometry with a random valid polynomial choice."""
    m = draw(st.integers(min_value=2, max_value=10))
    ways = draw(st.integers(min_value=1, max_value=3))
    skewed = draw(st.booleans())
    address_bits = draw(st.integers(min_value=m, max_value=24))
    candidates = list(irreducible_polynomials(m))
    if skewed and len(candidates) >= ways:
        polys = draw(st.permutations(candidates).map(lambda p: list(p)[:ways]))
    else:
        polys = [draw(st.sampled_from(candidates))]
        skewed = False
    return m, ways, skewed, address_bits, polys


@settings(max_examples=60, deadline=None)
@given(blocks=blocks_arrays, config=ipoly_configs(), way=st.integers(0, 2))
def test_ipoly_elementwise(blocks, config, way):
    m, ways, skewed, address_bits, polys = config
    fn = IPolyIndexing(1 << m, ways=ways, skewed=skewed,
                       address_bits=address_bits, polynomials=polys)
    vec = vectorize_index(fn)
    result = vec.way_indices(np.array(blocks, dtype=np.uint64), way)
    assert result.tolist() == _scalar_indices(fn, blocks, way)


@settings(max_examples=60, deadline=None)
@given(blocks=blocks_arrays, config=ipoly_configs(), way=st.integers(0, 2))
def test_tabulated_ipoly_matches_gf2_mod(blocks, config, way):
    m, ways, skewed, address_bits, polys = config
    fast = TabulatedIPolyIndexing(1 << m, ways=ways, skewed=skewed,
                                  address_bits=address_bits, polynomials=polys)
    mask = (1 << address_bits) - 1
    for block in blocks:
        expected = gf2_mod(block & mask, fast.polynomial_for_way(way))
        assert fast.index(block, way) == expected


@settings(max_examples=40, deadline=None)
@given(
    addresses=st.lists(st.integers(0, (1 << 20) - 1), min_size=1, max_size=300),
    writes=st.data(),
    m=st.integers(2, 6),
    ways=ways_strategy,
    scheme=st.sampled_from(["a2", "a2-Hx-Sk", "a2-Hp", "a2-Hp-Sk"]),
    write_back=st.booleans(),
    replacement=st.sampled_from(["lru", "fifo", "random", "plru"]),
)
def test_batch_cache_matches_scalar_on_random_traces(
        addresses, writes, m, ways, scheme, write_back, replacement):
    num_sets = 1 << m
    block = 16
    size = num_sets * block * ways
    is_write = writes.draw(st.lists(st.booleans(),
                                    min_size=len(addresses),
                                    max_size=len(addresses)))
    policy = (WritePolicy.WRITE_BACK_ALLOCATE if write_back
              else WritePolicy.WRITE_THROUGH_NO_ALLOCATE)
    try:
        make_index_function(scheme, num_sets, ways=ways, address_bits=19)
    except ValueError:
        # Tiny degrees do not have enough distinct irreducible polynomials
        # for the requested skew — not a valid cache configuration.
        assume(False)
    scalar = SetAssociativeCache(
        size, block, ways,
        index_function=make_index_function(scheme, num_sets, ways=ways,
                                           address_bits=19),
        replacement=replacement,
        write_policy=policy)
    batch = BatchSetAssociativeCache(
        size, block, ways,
        index_function=make_index_function(scheme, num_sets, ways=ways,
                                           address_bits=19),
        replacement=replacement,
        write_policy=policy)
    ref_hits = [scalar.access(a, w).hit for a, w in zip(addresses, is_write)]
    vec_hits = batch.run(AddressBatch.from_arrays(
        np.array(addresses, dtype=np.uint64), np.array(is_write, dtype=bool)))
    assert vec_hits.tolist() == ref_hits
    assert scalar.stats.loads == batch.stats.loads
    assert scalar.stats.stores == batch.stats.stores
    assert scalar.stats.load_misses == batch.stats.load_misses
    assert scalar.stats.store_misses == batch.stats.store_misses
    assert scalar.stats.evictions == batch.stats.evictions
    assert scalar.stats.writebacks == batch.stats.writebacks
    assert sorted(scalar.resident_blocks()) == sorted(batch.resident_blocks())


@settings(max_examples=40, deadline=None)
@given(
    addresses=st.lists(st.integers(0, (1 << 20) - 1), min_size=1, max_size=300),
    writes=st.data(),
    m=st.integers(2, 6),
    ways=st.integers(1, 4),
    scheme=st.sampled_from(["a2", "a2-Hx", "a2-Hp"]),
    write_back=st.booleans(),
    replacement=st.sampled_from(["fifo", "random", "plru"]),
)
def test_set_decomposed_matches_generic_kernel_on_random_traces(
        addresses, writes, m, ways, scheme, write_back, replacement):
    """The set-decomposed kernels and the retained generic kernel agree on
    arbitrary random traces — hits, stats, residency AND the policy state
    tables they leave behind."""
    num_sets = 1 << m
    block = 16
    size = num_sets * block * ways
    is_write = writes.draw(st.lists(st.booleans(),
                                    min_size=len(addresses),
                                    max_size=len(addresses)))
    policy = (WritePolicy.WRITE_BACK_ALLOCATE if write_back
              else WritePolicy.WRITE_THROUGH_NO_ALLOCATE)

    def build():
        return BatchSetAssociativeCache(
            size, block, ways,
            index_function=make_index_function(scheme, num_sets, ways=ways,
                                               address_bits=19),
            replacement=replacement,
            write_policy=policy)

    batch = AddressBatch.from_arrays(
        np.array(addresses, dtype=np.uint64), np.array(is_write, dtype=bool))
    decomposed = build()
    generic = build()
    dec_hits = decomposed.run(batch)
    gen_hits = generic._run_policy_kernel(
        batch.block_numbers(block), batch.is_write)
    assert dec_hits.tolist() == gen_hits.tolist()
    for field in ("loads", "stores", "load_misses", "store_misses",
                  "evictions", "writebacks"):
        assert getattr(decomposed.stats, field) == getattr(generic.stats, field)
    assert sorted(decomposed.resident_blocks()) == sorted(
        generic.resident_blocks())
    dp, gp = decomposed._vec_policy, generic._vec_policy
    if hasattr(dp, "stamps"):
        assert dp.stamps.tolist() == gp.stamps.tolist()
    if hasattr(dp, "bits"):
        assert dp.bits.tolist() == gp.bits.tolist()
    if hasattr(dp, "counter"):
        assert dp.counter == gp.counter


@st.composite
def skewed_ipoly_configs(draw):
    """A random *skewed* I-Poly geometry with random polynomial choices."""
    m = draw(st.integers(min_value=3, max_value=8))
    ways = draw(st.integers(min_value=2, max_value=3))
    candidates = list(irreducible_polynomials(m))
    assume(len(candidates) >= ways)
    polys = draw(st.permutations(candidates).map(lambda p: list(p)[:ways]))
    address_bits = draw(st.integers(min_value=m, max_value=20))
    return m, ways, address_bits, polys


@settings(max_examples=30, deadline=None)
@given(
    addresses=st.lists(st.integers(0, (1 << 20) - 1), min_size=2, max_size=300),
    writes=st.data(),
    config=skewed_ipoly_configs(),
    write_back=st.booleans(),
    replacement=st.sampled_from(["fifo", "random", "plru"]),
)
def test_skew_decomposed_three_path_agreement_on_random_polynomials(
        addresses, writes, config, write_back, replacement):
    """Random mixed load/store batches over random GF(2) polynomial index
    functions agree bit-exactly across all three paths — the scalar engine,
    the skew-decomposed kernels and the retained generic kernel — with the
    policy state tables compared after every batch."""
    m, ways, address_bits, polys = config
    num_sets = 1 << m
    block = 16
    size = num_sets * block * ways
    is_write = writes.draw(st.lists(st.booleans(),
                                    min_size=len(addresses),
                                    max_size=len(addresses)))
    policy = (WritePolicy.WRITE_BACK_ALLOCATE if write_back
              else WritePolicy.WRITE_THROUGH_NO_ALLOCATE)

    def index_fn():
        return IPolyIndexing(num_sets, ways=ways, skewed=True,
                             address_bits=address_bits, polynomials=polys)

    def build_batch_cache():
        return BatchSetAssociativeCache(
            size, block, ways, index_function=index_fn(),
            replacement=replacement, write_policy=policy)

    scalar = SetAssociativeCache(size, block, ways, index_function=index_fn(),
                                 replacement=replacement, write_policy=policy)
    decomposed = build_batch_cache()
    generic = build_batch_cache()
    assert decomposed.dispatch_strategy(
        AddressBatch.from_arrays([0])) == f"skew-decomposed-{replacement}"

    cut = len(addresses) // 2
    for lo, hi in ((0, cut), (cut, len(addresses))):
        if lo == hi:
            continue
        chunk_addresses = addresses[lo:hi]
        chunk_writes = is_write[lo:hi]
        batch = AddressBatch.from_arrays(
            np.array(chunk_addresses, dtype=np.uint64),
            np.array(chunk_writes, dtype=bool))
        ref_hits = [scalar.access(a, w).hit
                    for a, w in zip(chunk_addresses, chunk_writes)]
        dec_hits = decomposed.run(batch)
        gen_hits = generic._run_policy_kernel(
            batch.block_numbers(block), batch.is_write)
        assert dec_hits.tolist() == ref_hits
        assert gen_hits.tolist() == ref_hits
        # Policy state tables after every batch, not just at the end.
        dp, gp = decomposed._vec_policy, generic._vec_policy
        if hasattr(dp, "stamps"):
            assert dp.stamps.tolist() == gp.stamps.tolist()
        if hasattr(dp, "bits"):
            assert dp.bits.tolist() == gp.bits.tolist()
        if hasattr(dp, "counter"):
            assert dp.counter == gp.counter
    for field in ("loads", "stores", "load_misses", "store_misses",
                  "evictions", "writebacks"):
        assert getattr(decomposed.stats, field) == getattr(scalar.stats, field)
        assert getattr(generic.stats, field) == getattr(scalar.stats, field)
    assert sorted(scalar.resident_blocks()) == sorted(
        decomposed.resident_blocks())
    assert sorted(scalar.resident_blocks()) == sorted(
        generic.resident_blocks())


@settings(max_examples=25, deadline=None)
@given(
    addresses=st.lists(st.integers(0, (1 << 16) - 1), min_size=2, max_size=250),
    writes=st.data(),
    entries=st.integers(1, 6),
    ways=st.integers(1, 2),
    config=skewed_ipoly_configs(),
    replacement=st.sampled_from(["lru", "fifo", "random", "plru"]),
)
def test_victim_decomposed_three_path_agreement_on_random_polynomials(
        addresses, writes, entries, ways, config, replacement):
    """The decomposed victim kernels agree with the generic victim kernel
    and the scalar model over random skewed GF(2) placements, state tables
    compared after every batch."""
    from repro.cache.victim import VictimCache
    from repro.engine import BatchVictimCache

    m, fn_ways, address_bits, polys = config
    num_sets = 1 << m
    block = 16
    size = num_sets * block * ways
    is_write = writes.draw(st.lists(st.booleans(),
                                    min_size=len(addresses),
                                    max_size=len(addresses)))

    def index_fn():
        return IPolyIndexing(num_sets, ways=max(fn_ways, ways), skewed=True,
                             address_bits=address_bits, polynomials=polys)

    scalar = VictimCache(size, block, ways=ways, victim_entries=entries,
                         index_function=index_fn(), replacement=replacement)
    decomposed = BatchVictimCache(size, block, ways=ways,
                                  victim_entries=entries,
                                  index_function=index_fn(),
                                  replacement=replacement)
    generic = BatchVictimCache(size, block, ways=ways,
                               victim_entries=entries,
                               index_function=index_fn(),
                               replacement=replacement)

    cut = len(addresses) // 2
    for lo, hi in ((0, cut), (cut, len(addresses))):
        if lo == hi:
            continue
        chunk_addresses = addresses[lo:hi]
        chunk_writes = is_write[lo:hi]
        batch = AddressBatch.from_arrays(
            np.array(chunk_addresses, dtype=np.uint64),
            np.array(chunk_writes, dtype=bool))
        ref_hits = [scalar.access(a, w).hit
                    for a, w in zip(chunk_addresses, chunk_writes)]
        dec_hits = decomposed.run(batch)
        gen_hits = generic._run_generic_kernel(
            batch.block_numbers(block), batch.is_write)
        assert dec_hits.tolist() == ref_hits
        assert gen_hits.tolist() == ref_hits
        assert decomposed._way_tags == generic._way_tags
        assert decomposed._victim_tags == generic._victim_tags
        for dp, gp in ((decomposed._main_policy, generic._main_policy),
                       (decomposed._victim_policy, generic._victim_policy)):
            if hasattr(dp, "stamps"):
                assert dp.stamps.tolist() == gp.stamps.tolist()
            if hasattr(dp, "bits"):
                assert dp.bits.tolist() == gp.bits.tolist()
            if hasattr(dp, "counter"):
                assert dp.counter == gp.counter
    assert scalar.main_hits == decomposed.main_hits == generic.main_hits
    assert scalar.victim_hits == decomposed.victim_hits == generic.victim_hits
    assert scalar.stats.writebacks == decomposed.stats.writebacks
    assert scalar.stats.load_misses == decomposed.stats.load_misses
    assert scalar.stats.store_misses == decomposed.stats.store_misses


@settings(max_examples=25, deadline=None)
@given(
    addresses=st.lists(st.integers(0, (1 << 16) - 1), min_size=1, max_size=250),
    writes=st.data(),
    entries=st.integers(1, 8),
    ways=st.integers(1, 2),
    replacement=st.sampled_from(["lru", "fifo", "random", "plru"]),
)
def test_batch_victim_cache_matches_scalar_on_random_traces(
        addresses, writes, entries, ways, replacement):
    from repro.cache.victim import VictimCache
    from repro.engine import BatchVictimCache

    is_write = writes.draw(st.lists(st.booleans(),
                                    min_size=len(addresses),
                                    max_size=len(addresses)))
    scalar = VictimCache(1024, 16, ways=ways, victim_entries=entries,
                         replacement=replacement)
    batch = BatchVictimCache(1024, 16, ways=ways, victim_entries=entries,
                             replacement=replacement)
    ref_hits = [scalar.access(a, w).hit for a, w in zip(addresses, is_write)]
    vec_hits = batch.run(AddressBatch.from_arrays(
        np.array(addresses, dtype=np.uint64), np.array(is_write, dtype=bool)))
    assert vec_hits.tolist() == ref_hits
    assert scalar.main_hits == batch.main_hits
    assert scalar.victim_hits == batch.victim_hits
    assert scalar.stats.loads == batch.stats.loads
    assert scalar.stats.stores == batch.stats.stores
    assert scalar.stats.load_misses == batch.stats.load_misses
    assert scalar.stats.store_misses == batch.stats.store_misses
    assert scalar.stats.writebacks == batch.stats.writebacks


@settings(max_examples=60, deadline=None)
@given(blocks=st.lists(st.integers(-(1 << 70), (1 << 70)), min_size=1,
                       max_size=50))
def test_batch_validation_never_wraps(blocks):
    """Negative or oversized inputs either raise or round-trip exactly."""
    in_range = all(0 <= b < (1 << 63) for b in blocks)
    if in_range:
        batch = AddressBatch.from_arrays(blocks)
        assert batch.addresses.tolist() == blocks
    else:
        with pytest.raises(ValueError):
            AddressBatch.from_arrays(blocks)


@settings(max_examples=40, deadline=None)
@given(
    addresses=st.lists(st.integers(0, 4095), min_size=1, max_size=300),
    writes=st.data(),
    set_bits=st.integers(0, 5),
    ways=st.integers(1, 6),
    write_back=st.booleans(),
)
def test_multiconfig_profile_matches_both_engines_on_random_geometries(
        addresses, writes, set_bits, ways, write_back):
    """One-pass profile == batch kernel == scalar, on random LRU geometries.

    Random traces (stores included), random power-of-two set counts and
    random associativities: the profiler's readout must reproduce the exact
    counters of both engines, under both write policies — including the
    fully-associative degenerate case (``set_bits == 0``).
    """
    from repro.engine import MultiConfigLRUProfile, ProfileCounts

    is_write = writes.draw(st.lists(st.booleans(), min_size=len(addresses),
                                    max_size=len(addresses)))
    block_size = 16
    num_sets = 1 << set_bits
    write_policy = (WritePolicy.WRITE_BACK_ALLOCATE if write_back
                    else WritePolicy.WRITE_THROUGH_NO_ALLOCATE)
    batch = AddressBatch.from_arrays(np.array(addresses, dtype=np.uint64),
                                     np.array(is_write, dtype=bool))
    profile = MultiConfigLRUProfile(batch, block_size, {num_sets: ways},
                                    write_policy=write_policy)
    expected = profile.miss_counts(num_sets, ways)

    kernel = BatchSetAssociativeCache(num_sets * ways * block_size,
                                      block_size, ways,
                                      write_policy=write_policy)
    kernel.run(batch)
    assert ProfileCounts.from_stats(kernel.stats) == expected

    scalar = SetAssociativeCache(num_sets * ways * block_size, block_size,
                                 ways, write_policy=write_policy)
    for address, w in zip(addresses, is_write):
        scalar.access(address, is_write=w)
    assert ProfileCounts.from_stats(scalar.stats) == expected


@settings(max_examples=40, deadline=None)
@given(
    addresses=st.lists(st.integers(0, 4095), min_size=1, max_size=300),
    writes=st.data(),
    set_bits=st.integers(0, 5),
    ways=st.integers(1, 6),
    write_back=st.booleans(),
)
def test_fifo_profile_matches_both_engines_on_random_geometries(
        addresses, writes, set_bits, ways, write_back):
    """Single-pass FIFO profile == batch kernel == scalar, on random FIFO
    geometries.

    FIFO's miss-driven event replay (hit transparency) must reproduce the
    per-access kernels exactly — including Belady-anomaly traces, both
    write policies, and the fully-associative degenerate case."""
    from repro.engine import MultiConfigFIFOProfile, ProfileCounts

    is_write = writes.draw(st.lists(st.booleans(), min_size=len(addresses),
                                    max_size=len(addresses)))
    block_size = 16
    num_sets = 1 << set_bits
    write_policy = (WritePolicy.WRITE_BACK_ALLOCATE if write_back
                    else WritePolicy.WRITE_THROUGH_NO_ALLOCATE)
    batch = AddressBatch.from_arrays(np.array(addresses, dtype=np.uint64),
                                     np.array(is_write, dtype=bool))
    profile = MultiConfigFIFOProfile(batch, block_size, {num_sets: ways},
                                     write_policy=write_policy)
    expected = profile.miss_counts(num_sets, ways)

    kernel = BatchSetAssociativeCache(num_sets * ways * block_size,
                                      block_size, ways,
                                      write_policy=write_policy,
                                      replacement="fifo")
    kernel.run(batch)
    assert ProfileCounts.from_stats(kernel.stats) == expected

    scalar = SetAssociativeCache(num_sets * ways * block_size, block_size,
                                 ways, write_policy=write_policy,
                                 replacement="fifo")
    for address, w in zip(addresses, is_write):
        scalar.access(address, is_write=w)
    assert ProfileCounts.from_stats(scalar.stats) == expected


@settings(max_examples=25, deadline=None)
@given(
    addresses=st.lists(st.integers(0, (1 << 16) - 1), min_size=1,
                       max_size=400),
    writes=st.data(),
    l1_m=st.integers(3, 4),
    l2_m=st.integers(4, 6),
    write_back=st.booleans(),
    epoch_hint=st.sampled_from([None, 7, 32]),
)
def test_batch_hierarchy_matches_scalar_on_random_traces(
        addresses, writes, l1_m, l2_m, write_back, epoch_hint):
    """Random traces and geometries through the miss-stream composition:
    per-level counters, hole accounting, residency and the per-access hit
    sequences must match the scalar two-level protocol exactly — including
    runs where tiny pinned epochs force stop/rewind after stop/rewind."""
    from repro.cache.hierarchy import TwoLevelHierarchy
    from repro.engine import batch_hierarchy_like

    block = 16
    is_write = writes.draw(st.lists(st.booleans(), min_size=len(addresses),
                                    max_size=len(addresses)))
    l1_policy = (WritePolicy.WRITE_BACK_ALLOCATE if write_back
                 else WritePolicy.WRITE_THROUGH_NO_ALLOCATE)
    l1 = SetAssociativeCache(
        (1 << l1_m) * block * 2, block, 2,
        index_function=IPolyIndexing(1 << l1_m, ways=2, skewed=True,
                                     address_bits=16),
        write_policy=l1_policy)
    l2 = SetAssociativeCache((1 << l2_m) * block * 2, block, 2,
                             write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
    assume(l2.size_bytes >= l1.size_bytes)
    scalar = TwoLevelHierarchy(l1, l2)
    batch = batch_hierarchy_like(scalar, epoch_hint=epoch_hint)

    ref_l1, ref_l2 = [], []
    for address, w in zip(addresses, is_write):
        outcome = scalar.access(address, is_write=w)
        ref_l1.append(outcome.l1_hit)
        ref_l2.append(outcome.l2_hit)
    result = batch.run(AddressBatch.from_arrays(
        np.array(addresses, dtype=np.uint64), np.array(is_write, dtype=bool)))

    assert result.l1_hits.tolist() == ref_l1
    assert result.l2_hits.tolist() == ref_l2
    for level_s, level_b in ((scalar.l1, batch.l1), (scalar.l2, batch.l2)):
        assert level_s.stats.loads == level_b.stats.loads
        assert level_s.stats.stores == level_b.stats.stores
        assert level_s.stats.load_misses == level_b.stats.load_misses
        assert level_s.stats.store_misses == level_b.stats.store_misses
        assert level_s.stats.evictions == level_b.stats.evictions
        assert level_s.stats.writebacks == level_b.stats.writebacks
        assert level_s.stats.invalidations == level_b.stats.invalidations
        assert sorted(level_s.resident_blocks()) == sorted(
            level_b.resident_blocks())
    assert scalar.holes_created == batch.holes_created
    assert scalar.back_invalidations == batch.back_invalidations
    assert scalar.l2_misses_causing_holes == batch.l2_misses_causing_holes
    assert batch.check_inclusion()


@settings(max_examples=25, deadline=None)
@given(
    addresses=st.lists(st.integers(0, (1 << 16) - 1), min_size=1,
                       max_size=400),
    writes=st.data(),
    seed=st.integers(0, 2**10),
    tlb_entries=st.sampled_from([None, 2, 8]),
    epoch_hint=st.sampled_from([None, 16]),
)
def test_batch_virtual_real_matches_scalar_on_random_traces(
        addresses, writes, seed, tlb_entries, epoch_hint):
    """Random virtual traces through batched translation + the virtual-real
    composition: cache counters, hole/alias accounting, page faults and TLB
    counters must match the per-access scalar protocol exactly."""
    from repro.cache.virtual_real import VirtualRealHierarchy
    from repro.engine import batch_virtual_real_like
    from repro.memory.paging import TLB, PageTable
    from repro.memory.translation import AddressTranslator

    block = 16
    page_size = 1024
    is_write = writes.draw(st.lists(st.booleans(), min_size=len(addresses),
                                    max_size=len(addresses)))

    def build_level(num_sets, l2=False):
        policy = (WritePolicy.WRITE_BACK_ALLOCATE if l2
                  else WritePolicy.WRITE_THROUGH_NO_ALLOCATE)
        index = None if l2 else IPolyIndexing(num_sets, ways=2, skewed=True,
                                              address_bits=16)
        return SetAssociativeCache(num_sets * block * 2, block, 2,
                                   index_function=index, write_policy=policy)

    table = PageTable(page_size=page_size, allocation="scatter", seed=seed)
    tlb = (TLB(entries=tlb_entries, page_size=page_size)
           if tlb_entries else None)
    translate = (AddressTranslator(table, tlb).translate if tlb
                 else table.translate)
    scalar = VirtualRealHierarchy(build_level(8), build_level(32, l2=True),
                                  translate=translate, page_size=page_size)
    twin_table = PageTable(page_size=page_size, allocation="scatter",
                           seed=seed)
    twin_tlb = (TLB(entries=tlb_entries, page_size=page_size)
                if tlb_entries else None)
    batch = batch_virtual_real_like(scalar, twin_table, tlb=twin_tlb,
                                    epoch_hint=epoch_hint)

    ref_l1, ref_l2 = [], []
    for address, w in zip(addresses, is_write):
        outcome = scalar.access(address, is_write=w)
        ref_l1.append(outcome.l1_hit)
        ref_l2.append(outcome.l2_hit)
    result = batch.run(AddressBatch.from_arrays(
        np.array(addresses, dtype=np.uint64), np.array(is_write, dtype=bool)))

    assert result.l1_hits.tolist() == ref_l1
    assert result.l2_hits.tolist() == ref_l2
    for level_s, level_b in ((scalar.l1, batch.l1), (scalar.l2, batch.l2)):
        assert level_s.stats.loads == level_b.stats.loads
        assert level_s.stats.stores == level_b.stats.stores
        assert level_s.stats.load_misses == level_b.stats.load_misses
        assert level_s.stats.store_misses == level_b.stats.store_misses
        assert level_s.stats.evictions == level_b.stats.evictions
        assert level_s.stats.writebacks == level_b.stats.writebacks
        assert sorted(level_s.resident_blocks()) == sorted(
            level_b.resident_blocks())
    assert scalar.holes_created == batch.holes_created
    assert scalar.alias_invalidations == batch.alias_invalidations
    assert scalar._phys_of_virt == batch._phys_of_virt
    assert table.page_faults == twin_table.page_faults
    if tlb is not None:
        assert (tlb.hits, tlb.misses) == (twin_tlb.hits, twin_tlb.misses)
        assert list(tlb._table.items()) == list(twin_tlb._table.items())
    assert batch.check_inclusion()
