"""Sweep journals: append-only checkpoints so killed sweeps can resume.

A multi-hour sweep that dies at task 3900 of 4096 — OOM-killed worker,
pre-empted sandbox, plain Ctrl-C — should not have to redo the first 3899
tasks.  :class:`SweepJournal` is the persistence layer behind
``run_sweep(journal=..., resume=...)``: an append-only JSONL file holding
one record per *completed* task, keyed by ``(position, task_digest)`` so a
resumed run only trusts a record when the task at that position of the new
task list is byte-identical to the one that produced the result.

The format is deliberately dumb — one JSON object per line, written with an
append-per-record discipline — because dumb survives crashes: a process
killed mid-write leaves at most one truncated final line, which
:meth:`SweepJournal.load` silently ignores (every *complete* record is still
usable).  Corruption anywhere else is an error, reported with
``path:line`` precision.

Results that are plain JSON data (numbers, strings, lists, string-keyed
dicts) are stored as JSON for greppability; anything else (e.g. the CPU
simulator's ``SimulationResult``) is pickled and base64-wrapped in the same
record envelope, so arbitrary picklable sweep results round-trip bit-exact.

This file is also the seed of the ROADMAP's content-addressed result store:
``task_digest`` is the content key a future sweep service would share
between clients.
"""

from __future__ import annotations

import base64
import hashlib
import json
import pickle
from pathlib import Path
from typing import Any, Dict, Tuple, Union

__all__ = ["SweepJournal", "task_digest"]

#: First line of every journal file.
_HEADER = {"format": "repro-sweep-journal", "version": 1}


def task_digest(task: Any) -> str:
    """Stable content digest of one sweep task.

    Tasks in this codebase are tuples of primitives (and small frozen
    dataclasses), for which :mod:`pickle` output is deterministic across
    runs of the same code version; unpicklable tasks fall back to their
    ``repr``.  The digest is what makes resume safe: a journal record is
    only replayed onto a task with the same digest at the same position.
    """
    try:
        payload = pickle.dumps(task, protocol=4)
    except Exception:
        payload = repr(task).encode("utf-8", "replace")
    return hashlib.sha256(payload).hexdigest()


def _jsonable(value: Any) -> bool:
    """True when ``value`` round-trips exactly through JSON."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return True
    if isinstance(value, list):
        return all(_jsonable(item) for item in value)
    if isinstance(value, dict):
        return all(isinstance(key, str) and _jsonable(item)
                   for key, item in value.items())
    return False


class SweepJournal:
    """Append-only JSONL journal of completed sweep tasks."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def ensure_header(self) -> None:
        """Create the journal file (with its header line) if absent/empty."""
        if self.path.exists() and self.path.stat().st_size > 0:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps(_HEADER, separators=(",", ":")) + "\n")

    def append(self, index: int, digest: str, result: Any) -> None:
        """Record one completed task; flushed per record for crash safety."""
        record: Dict[str, Any] = {"index": index, "digest": digest}
        if _jsonable(result):
            record["result"] = result
        else:
            record["pickle"] = base64.b64encode(
                pickle.dumps(result, protocol=4)).decode("ascii")
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")
            handle.flush()

    def load(self) -> Dict[Tuple[int, str], Any]:
        """All complete records as ``{(index, digest): result}``.

        A missing file is an empty journal.  An undecodable *final* line is
        the signature of a crash mid-append and is skipped; a bad line (or a
        bad header) anywhere else raises with ``path:line`` precision.
        """
        if not self.path.exists():
            return {}
        with self.path.open("r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        entries: Dict[Tuple[int, str], Any] = {}
        for line_number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if line_number == 1:
                    # The truncation escape below must never swallow the
                    # header: a journal whose only line is garbage is not a
                    # crashed append, it is not a journal at all.
                    raise ValueError(
                        f"{self.path}:1: not a repro sweep journal") from None
                if line_number == len(lines):
                    break  # truncated final append — the rest is intact
                raise ValueError(
                    f"{self.path}:{line_number}: corrupt journal record")
            if line_number == 1:
                if (not isinstance(record, dict)
                        or record.get("format") != _HEADER["format"]):
                    raise ValueError(
                        f"{self.path}:1: not a repro sweep journal")
                if record.get("version") != _HEADER["version"]:
                    raise ValueError(
                        f"{self.path}:1: unsupported journal version "
                        f"{record.get('version')!r}")
                continue
            try:
                index = record["index"]
                digest = record["digest"]
                if not isinstance(index, int) or isinstance(index, bool):
                    # A mis-typed key would silently never match any task
                    # position on resume, so the record's work would be
                    # redone without any hint the journal was bad.
                    raise ValueError(
                        f"index must be an integer, got {index!r}")
                if not isinstance(digest, str):
                    raise ValueError(
                        f"digest must be a string, got {digest!r}")
                if "pickle" in record:
                    value = pickle.loads(base64.b64decode(record["pickle"]))
                else:
                    value = record["result"]
            except (KeyError, TypeError, ValueError, pickle.PickleError) as exc:
                raise ValueError(
                    f"{self.path}:{line_number}: corrupt journal record "
                    f"({exc})") from None
            entries[(index, digest)] = value
        return entries

    def __len__(self) -> int:
        """Number of complete task records currently in the journal."""
        return len(self.load())
