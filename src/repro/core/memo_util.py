"""A thread-safe bounded memo shared by the engine's caching layers.

Both the process-global trace cache (:mod:`repro.trace.batching`) and the
derived-array memos (:mod:`repro.engine.memo`) need the same machinery: an
LRU table bounded by entry count *and* retained bytes (oversized caches
pin dead arrays and degrade kernel locality), hit/miss accounting, an
oversize bypass so one huge value cannot monopolise the budget, and a lock
(thread-mode sweeps share one process's caches across workers).  This
module holds that machinery once, parameterised over the value type.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Optional, Tuple

__all__ = ["BoundedMemo"]

#: Default sentinel: entries without an identity anchor.
_NO_ANCHOR = object()


class BoundedMemo:
    """Thread-safe LRU memo bounded by entry count and retained bytes.

    Parameters
    ----------
    limit:
        Maximum number of entries; least-recently-used evicted first.
    byte_limit:
        Maximum bytes retained across all entry values, as measured by
        ``nbytes_of``.  A value bigger than half this budget is returned
        *uncached* — at that size rebuilding is cheaper than letting one
        value monopolise (and repeatedly flush) the cache.
    nbytes_of:
        Measures one value's retained bytes; defaults to its ``nbytes``
        attribute (a NumPy array).  Identity anchors are not counted —
        they are usually shared between entries.

    :meth:`get` optionally takes an identity ``anchor``: the entry is only
    served while the stored anchor *is* the passed object, which lets
    callers key on ``id()`` of an input array without ever serving an
    entry for a recycled id.  The anchor reference also keeps the input
    alive, guaranteeing the id cannot be recycled while the entry exists.
    """

    def __init__(self, limit: int, byte_limit: int,
                 nbytes_of: Optional[Callable[[Any], int]] = None) -> None:
        if limit < 1:
            raise ValueError("limit must be positive")
        if byte_limit < 1:
            raise ValueError("byte_limit must be positive")
        self.limit = limit
        self.byte_limit = byte_limit
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bypasses = 0
        self._nbytes_of = nbytes_of or (lambda value: value.nbytes)
        self._bytes = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, Tuple[Any, Any]]" = OrderedDict()

    def get(self, key: tuple, build: Callable[[], Any],
            anchor: Any = _NO_ANCHOR) -> Any:
        """The cached value for ``key``, building (and caching) on a miss.

        ``build`` runs outside the lock — it must be deterministic, so two
        racing threads at worst duplicate work (the last insert wins).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] is anchor:
                self.hits += 1
                self._entries.move_to_end(key)
                return entry[1]
            self.misses += 1
        value = build()
        if self._nbytes_of(value) > self.byte_limit // 2:
            with self._lock:
                self.bypasses += 1
            return value
        with self._lock:
            stale = self._entries.pop(key, None)
            if stale is not None:
                self._bytes -= self._nbytes_of(stale[1])
            self._entries[key] = (anchor, value)
            self._bytes += self._nbytes_of(value)
            self._evict_over_bounds()
        return value

    def _evict_over_bounds(self) -> None:
        while (len(self._entries) > self.limit
               or self._bytes > self.byte_limit):
            _, (_, dropped) = self._entries.popitem(last=False)
            self._bytes -= self._nbytes_of(dropped)
            self.evictions += 1

    def set_limit(self, limit: int) -> int:
        """Change the entry bound (evicting immediately); returns the old."""
        if limit < 1:
            raise ValueError("limit must be positive")
        with self._lock:
            old = self.limit
            self.limit = limit
            self._evict_over_bounds()
        return old

    def clear(self) -> None:
        """Drop every entry and zero every counter."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.bypasses = 0

    @property
    def nbytes(self) -> int:
        """Bytes retained by the entry values (anchors not counted)."""
        return self._bytes

    def stats(self) -> dict:
        """One consistent snapshot of the memo's accounting.

        Taken under the lock, so the counters and occupancy are mutually
        consistent even while pool-rebuild or thread-mode sweeps hammer the
        memo concurrently: hits, misses, evictions, oversize bypasses, live
        entry count, retained bytes, and both bounds.
        """
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "bypasses": self.bypasses,
                "limit": self.limit,
                "byte_limit": self.byte_limit,
                "nbytes": self._bytes,
            }

    def info(self) -> dict:
        """Alias of :meth:`stats` (the historical name)."""
        return self.stats()

    def __len__(self) -> int:
        return len(self._entries)
