"""Vectorized virtual->real translation: batch page-table walks and TLB runs.

The scalar translation front-end (:mod:`repro.memory.paging` /
:mod:`repro.memory.translation`) answers one virtual address at a time.  The
batch engine needs the same answers for a whole :class:`AddressBatch` before
its index pipeline runs, so this module provides array counterparts that
drive the *same* scalar objects and stay bit-exact with per-access use:

* :func:`batch_page_frames` resolves the frame of every access in one pass.
  Unmapped pages are faulted through :meth:`PageTable.frame_of` in
  first-touch trace order — the exact order a per-access loop would fault
  them — so the resulting mapping, the allocator state and the
  ``page_faults`` counter are identical to the scalar walk sequence (the
  scatter allocator rejection-samples against the set of frames in use *at
  allocation time*, which only the first-touch order reproduces).
* :func:`run_tlb_kernel` replays a batch of translations against a scalar
  :class:`~repro.memory.paging.TLB` with runs of equal pages collapsed:
  within a run of accesses to one page, every access after the first is a
  guaranteed hit that only re-touches the MRU entry, so one real
  lookup/insert plus a counter bump reproduces the per-access ``hits`` /
  ``misses`` counters and the exact LRU order of ``TLB._table``.
* :class:`BatchTranslator` mirrors
  :class:`~repro.memory.translation.AddressTranslator` — physical
  addresses, per-access TLB-hit mask and latency array — for whole batches.

The batch paths assume the TLB's contents were produced by the same page
table (always true unless internals are hand-doctored): a TLB hit then
yields the same frame the page table would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from ..memory.paging import TLB, PageTable
from .batch import AddressBatch

__all__ = [
    "batch_page_frames",
    "batch_translate",
    "run_tlb_kernel",
    "BatchTranslationResult",
    "BatchTranslator",
]


def _address_array(addresses: Union[AddressBatch, np.ndarray]) -> np.ndarray:
    if isinstance(addresses, AddressBatch):
        addresses = addresses.addresses
    return np.asarray(addresses).astype(np.int64)


def batch_page_frames(page_table: PageTable,
                      addresses: Union[AddressBatch, np.ndarray],
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Resolve ``(vpns, frames)`` (int64 arrays) for every access.

    Pages not yet mapped are demand-allocated through the scalar
    :meth:`PageTable.frame_of` in first-touch trace order, so page-table
    state and ``page_faults`` end up identical to translating each address
    in sequence.
    """
    addr = _address_array(addresses)
    page = int(page_table.page_size)
    vpns = addr // page
    if vpns.size == 0:
        return vpns, vpns.copy()
    uniq, first_idx = np.unique(vpns, return_index=True)
    mapping = page_table._mapping
    for i in np.argsort(first_idx, kind="stable"):
        page_table.frame_of(int(uniq[i]))
    frame_lut = np.fromiter((mapping[int(v)] for v in uniq),
                            dtype=np.int64, count=len(uniq))
    frames = frame_lut[np.searchsorted(uniq, vpns)]
    return vpns, frames


def batch_translate(page_table: PageTable,
                    addresses: Union[AddressBatch, np.ndarray]) -> np.ndarray:
    """Physical address of every access (int64), faulting in trace order.

    Array counterpart of calling :meth:`PageTable.translate` per access.
    """
    addr = _address_array(addresses)
    page = int(page_table.page_size)
    vpns, frames = batch_page_frames(page_table, addr)
    return frames * page + (addr - vpns * page)


def run_tlb_kernel(tlb: TLB, vpns: np.ndarray,
                   frames: np.ndarray) -> np.ndarray:
    """Replay a page-number stream against a scalar TLB; returns the hit mask.

    ``frames[i]`` must be the page-table frame of ``vpns[i]`` (see
    :func:`batch_page_frames`); it is what a miss inserts, exactly as the
    scalar :meth:`AddressTranslator.lookup` does after its walk.  Counters
    (``hits``/``misses``) and the recency order of ``TLB._table`` match the
    per-access sequence bit-exactly.
    """
    n = len(vpns)
    hit = np.ones(n, dtype=bool)
    if n == 0:
        return hit
    starts = np.flatnonzero(np.r_[True, vpns[1:] != vpns[:-1]])
    ends = np.r_[starts[1:], n]
    table = tlb._table
    entries = tlb.entries
    hits = tlb.hits
    misses = tlb.misses
    for vpn, frame, s, e in zip(vpns[starts].tolist(), frames[starts].tolist(),
                                starts.tolist(), ends.tolist()):
        if vpn in table:
            table.move_to_end(vpn)
            hits += 1
        else:
            misses += 1
            hit[s] = False
            table[vpn] = frame
            if len(table) > entries:
                table.popitem(last=False)
        # The rest of the run re-touches the (already MRU) entry: pure hits.
        hits += e - s - 1
    tlb.hits = hits
    tlb.misses = misses
    return hit


@dataclass(frozen=True)
class BatchTranslationResult:
    """Whole-batch counterpart of :class:`~repro.memory.translation.TranslationResult`."""

    physical: np.ndarray  #: physical address per access (int64)
    tlb_hit: np.ndarray   #: per-access TLB hit mask (all False without a TLB)
    latency: np.ndarray   #: per-access translation latency in cycles (int64)


class BatchTranslator:
    """Batch mirror of :class:`~repro.memory.translation.AddressTranslator`.

    Same construction rules and the same observable effects: after
    :meth:`lookup_batch`, the page table (mapping + ``page_faults``) and the
    TLB (contents, order, ``hits``/``misses``) are in the exact state a
    scalar translator fed one access at a time would leave them in.
    """

    def __init__(self, page_table: PageTable, tlb: Optional[TLB] = None,
                 tlb_latency: int = 1, walk_latency: int = 20) -> None:
        if tlb is not None and tlb._page_size != page_table.page_size:
            raise ValueError("TLB and page table must agree on page size")
        if tlb_latency < 0 or walk_latency < 0:
            raise ValueError("latencies must be non-negative")
        self._page_table = page_table
        self._tlb = tlb
        self._tlb_latency = tlb_latency
        self._walk_latency = walk_latency

    @property
    def page_size(self) -> int:
        """Page size in bytes."""
        return self._page_table.page_size

    def lookup_batch(self, addresses: Union[AddressBatch, np.ndarray],
                     ) -> BatchTranslationResult:
        """Translate a whole batch, updating page-table and TLB state."""
        addr = _address_array(addresses)
        page = int(self._page_table.page_size)
        vpns, frames = batch_page_frames(self._page_table, addr)
        physical = frames * page + (addr - vpns * page)
        if self._tlb is None:
            tlb_hit = np.zeros(len(addr), dtype=bool)
        else:
            tlb_hit = run_tlb_kernel(self._tlb, vpns, frames)
        latency = np.where(tlb_hit, self._tlb_latency,
                           self._tlb_latency + self._walk_latency
                           ).astype(np.int64)
        return BatchTranslationResult(physical=physical, tlb_hit=tlb_hit,
                                      latency=latency)

    def translate_batch(self, addresses: Union[AddressBatch, np.ndarray],
                        ) -> np.ndarray:
        """Physical addresses only (state updates identical to :meth:`lookup_batch`)."""
        return self.lookup_batch(addresses).physical
