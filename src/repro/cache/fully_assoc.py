"""Fully-associative cache.

A fully-associative cache is the limiting case of associativity: any block
may live in any frame, so conflict misses are impossible by construction.
The paper's Section 2.1 uses it as the yard-stick the I-Poly cache is
measured against (8 KB fully-associative ~ 6.80% miss ratio on Spec95 versus
7.14% for the I-Poly cache of the same size).

The implementation reuses :class:`~repro.cache.set_assoc.SetAssociativeCache`
with a single set whose associativity equals the number of blocks, which
keeps the statistics and write-policy behaviour identical across organisations.
"""

from __future__ import annotations

from typing import Union

from ..core.index import SingleSetIndexing
from .replacement import ReplacementPolicy
from .set_assoc import SetAssociativeCache, WritePolicy

__all__ = ["FullyAssociativeCache"]


class FullyAssociativeCache(SetAssociativeCache):
    """A fully-associative cache of ``size_bytes / block_size`` frames."""

    def __init__(
        self,
        size_bytes: int,
        block_size: int,
        replacement: Union[str, ReplacementPolicy, None] = None,
        write_policy: str = WritePolicy.WRITE_THROUGH_NO_ALLOCATE,
        classify_misses: bool = False,
        name: str = "",
    ) -> None:
        if block_size < 1 or size_bytes % block_size:
            raise ValueError("size_bytes must be a multiple of block_size")
        ways = size_bytes // block_size
        super().__init__(
            size_bytes=size_bytes,
            block_size=block_size,
            ways=ways,
            index_function=SingleSetIndexing(),
            replacement=replacement,
            write_policy=write_policy,
            classify_misses=classify_misses,
            name=name or f"{size_bytes // 1024}KB-full",
        )
