"""Shared experiment configuration: the cache and processor set-ups of Section 4.

Every experiment driver builds its configurations from the constants here so
the whole harness agrees on the paper's parameters: 8 KB / 16 KB two-way
set-associative L1 caches with 32-byte lines, 2-cycle hits, 20-cycle miss
penalty, 8 MSHRs, a 64-bit L1/L2 bus, and the six Table 2 machine
configurations (16 KB and 8 KB conventional with and without address
prediction, and 8 KB I-Poly with the XOR stage out of / in the critical path,
the latter with and without address prediction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..cache.set_assoc import SetAssociativeCache, WritePolicy
from ..core.index import IndexFunction, make_index_function
from ..cpu.processor import ProcessorConfig

__all__ = [
    "CacheGeometry",
    "PAPER_L1_8KB",
    "PAPER_L1_16KB",
    "INDEX_SCHEMES",
    "TABLE2_CONFIGS",
    "build_cache",
    "table2_processor_configs",
]


@dataclass(frozen=True)
class CacheGeometry:
    """Size / organisation of one cache level used by the experiments."""

    size_bytes: int
    block_size: int = 32
    ways: int = 2

    @property
    def num_sets(self) -> int:
        """Number of sets implied by the geometry."""
        return self.size_bytes // (self.block_size * self.ways)

    @property
    def label(self) -> str:
        """Short human-readable label (e.g. ``8KB-2way``)."""
        return f"{self.size_bytes // 1024}KB-{self.ways}way"


#: The two L1 geometries of Section 4.
PAPER_L1_8KB = CacheGeometry(size_bytes=8 * 1024)
PAPER_L1_16KB = CacheGeometry(size_bytes=16 * 1024)

#: The indexing schemes compared in Figure 1, using the paper's labels.
INDEX_SCHEMES: List[str] = ["a2", "a2-Hx-Sk", "a2-Hp", "a2-Hp-Sk"]

#: Number of address bits the I-Poly hash consumes in the paper's experiments.
PAPER_HASH_BITS = 19


def build_cache(geometry: CacheGeometry, scheme: str = "a2",
                address_bits: int = PAPER_HASH_BITS,
                classify_misses: bool = False,
                write_policy: str = WritePolicy.WRITE_THROUGH_NO_ALLOCATE,
                replacement: Optional[str] = None,
                index_function: Optional[IndexFunction] = None) -> SetAssociativeCache:
    """Build a cache with the given geometry, placement scheme and replacement policy."""
    if index_function is None:
        index_function = make_index_function(scheme, num_sets=geometry.num_sets,
                                             ways=geometry.ways,
                                             address_bits=address_bits)
    return SetAssociativeCache(
        size_bytes=geometry.size_bytes,
        block_size=geometry.block_size,
        ways=geometry.ways,
        index_function=index_function,
        replacement=replacement,
        write_policy=write_policy,
        classify_misses=classify_misses,
        name=f"{geometry.label}-{index_function.name}",
    )


#: Column labels of Table 2 (and Table 3), in the paper's order, mapped to the
#: processor configuration that produces them.
TABLE2_CONFIGS: Dict[str, dict] = {
    "16K-conv": dict(cache_size_bytes=16 * 1024, index_scheme="a2"),
    "8K-conv": dict(cache_size_bytes=8 * 1024, index_scheme="a2"),
    "8K-conv-pred": dict(cache_size_bytes=8 * 1024, index_scheme="a2",
                         address_prediction=True),
    "8K-ipoly-noCP": dict(cache_size_bytes=8 * 1024, index_scheme="a2-Hp-Sk"),
    "8K-ipoly-CP": dict(cache_size_bytes=8 * 1024, index_scheme="a2-Hp-Sk",
                        xor_in_critical_path=True),
    "8K-ipoly-CP-pred": dict(cache_size_bytes=8 * 1024, index_scheme="a2-Hp-Sk",
                             xor_in_critical_path=True, address_prediction=True),
}


def table2_processor_configs() -> Dict[str, ProcessorConfig]:
    """Instantiate a :class:`ProcessorConfig` per Table 2 column."""
    return {label: ProcessorConfig(**overrides)
            for label, overrides in TABLE2_CONFIGS.items()}
