"""SHARDS-style sampled reuse-distance profiling (approximate, ~1% cost).

The exact profilers in :mod:`repro.engine.multiconfig` make a dense
conventional-LRU sweep cost one trace pass — but still a *full* pass: every
access pays Fenwick/stack work.  For production-scale "price every
configuration" sweeps the classic answer is **spatially hashed sampling**
(SHARDS — Waldspurger, Park, Garthwaite & Ahmad, FAST'15): hash each block
number with a fixed seed and keep only blocks whose hash falls under a
threshold ``T``, i.e. sample *blocks* at rate ``R = T / 2^64``, not
accesses.  Because all accesses to a sampled block are kept together, reuse
behaviour survives the filter; distances measured on the sampled substream
are unbiased estimates of ``R`` times the true distance, so rescaling by
``1/R`` (and weighting counts by ``1/R``) recovers the full miss-ratio
curve from ~``R·N`` accesses of work.  Two sampling modes:

* **fixed-rate** — ``R`` chosen up front; memory grows with the sampled
  footprint;
* **fixed-size** — the threshold adapts downward so at most ``S_max``
  distinct blocks are ever tracked (SHARDS' ``S_max`` mode): when the
  sample set overflows, the largest-hash block sets the new threshold and
  every block at or above it is evicted from the sample.  Each access is
  recorded with the weight ``1/R`` *in effect when it was measured*;
  earlier records are not revisited.

Two sampled profiles mirror their exact twins' query APIs:

* :class:`SampledStackDistanceProfile` (twin of
  :class:`~repro.engine.multiconfig.StackDistanceProfile`): the classic
  SHARDS estimator — sampled reuse distances, rescaled at measurement time,
  weighted readout of the fully-associative LRU miss-ratio curve.  Both
  sampling modes.

* :class:`SampledMultiConfigLRUProfile` (twin of
  :class:`~repro.engine.multiconfig.MultiConfigLRUProfile`): set-associative
  grids.  Naive distance rescaling is badly biased at small associativity
  (a 2-way set at ``R = 0.01`` would have to resolve scaled distances of
  0.02 ways), so this profile uses **miniature simulation** (Waldspurger et
  al., ATC'17 "Cache Modeling and Optimization using Miniature
  Simulations"): per set-count level it picks the largest power-of-two
  exponent ``k`` with ``2^-k >= rate`` (capped at ``log2(num_sets)``),
  keeps blocks whose hash has ``k`` leading zero bits (rate ``2^-k``), and
  runs the *exact* capped per-set stack kernel over a mini cache with
  ``num_sets >> k`` sets at the same associativities — same store-mode
  semantics (``loads``/``uniform``/``wtna``), unbiased set occupancy, and
  the all-associativity readout intact.  Sampled hit ratios are scaled to
  the *exact* access totals (the filter observes every access, so totals
  are not estimates).  Levels where ``k == 0`` (single-set organisations,
  or rates at/above 1) degrade to the exact kernel — bit-identical to the
  exact twin.

Determinism: the hash is a splitmix64-style finalizer over
``block XOR mix(seed)`` (same constants as
:func:`repro.engine.replacement_vec.splitmix64_array`), so a profile is a
pure function of (trace, block size, rate, seed) — identical across runs,
chunkings and platforms.  Both profiles have carried-state Builder forms
(:class:`SampledStackDistanceBuilder`,
:class:`SampledMultiConfigProfileBuilder`) whose chunked feeding is
bit-identical to the one-shot constructors by construction.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..cache.set_assoc import WritePolicy
from .batch import AddressBatch
from .memo import cached_block_numbers
from .multiconfig import (
    ProfileCounts,
    _checked_level_caps,
    _LevelProfile,
    _LevelState,
    _round_cap,
    _store_mode,
)

__all__ = [
    "hash_blocks",
    "check_sample_rate",
    "sample_threshold",
    "level_rate_exponent",
    "SpatialSampler",
    "AdaptiveSpatialSampler",
    "SampledStackDistanceProfile",
    "SampledStackDistanceBuilder",
    "SampledMultiConfigLRUProfile",
    "SampledMultiConfigProfileBuilder",
]

#: splitmix64 constants, shared with :mod:`repro.engine.replacement_vec`.
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_MASK64 = (1 << 64) - 1
_TWO64 = 1 << 64


def _mix64_scalar(value: int) -> int:
    """splitmix64 finalizer of one 64-bit integer (pure Python)."""
    x = (value + _GOLDEN) & _MASK64
    x = ((x ^ (x >> 30)) * _MIX1) & _MASK64
    x = ((x ^ (x >> 27)) * _MIX2) & _MASK64
    return x ^ (x >> 31)


def hash_blocks(blocks: np.ndarray, seed: int = 0) -> np.ndarray:
    """Spatial sampling hash: uint64 splitmix64 finalizer per block number.

    A pure function of ``(block, seed)`` — every access to a block hashes
    identically, which is exactly what makes hash-threshold sampling
    *spatial* (whole blocks are kept or dropped, never individual
    accesses).  Vectorized with the same constants and overflow semantics
    as :func:`repro.engine.replacement_vec.splitmix64_array`.
    """
    if seed < 0:
        raise ValueError("seed must be non-negative")
    x = np.asarray(blocks).astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        x ^= np.uint64(_mix64_scalar(seed))
        x += np.uint64(_GOLDEN)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(_MIX1)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(_MIX2)
        x ^= x >> np.uint64(31)
    return x


def check_sample_rate(rate: float) -> float:
    """Validate a sampling rate, returning it as a float in (0, 1]."""
    rate = float(rate)
    if not 0.0 < rate <= 1.0:
        raise ValueError(f"sample rate must be in (0, 1], got {rate}")
    return rate


def sample_threshold(rate: float) -> int:
    """The 64-bit hash threshold realising ``rate``: sample iff hash < T."""
    rate = check_sample_rate(rate)
    return min(_TWO64, max(1, int(round(rate * _TWO64))))


#: Smallest mini cache a level may be scaled down to.  A mini cache with
#: very few sets hosts too few sampled blocks for its hit ratio to be a
#: stable estimate (a one-set mini is a ~R-rate sample of a single LRU
#: stack); floors of ~16 sets keep miniature-simulation variance in line
#: with the fully-associative SHARDS estimator.
MIN_MINI_SETS = 16


def level_rate_exponent(num_sets: int, rate: float,
                        min_sets: int = MIN_MINI_SETS) -> int:
    """Mini-simulation exponent of one set-count level at a nominal rate.

    The largest ``k`` with ``2^-k >= rate``, capped so the mini cache
    keeps at least ``min_sets`` sets (never more than ``num_sets``): the
    level samples blocks at rate ``2^-k`` and scales its set count down by
    the same factor, preserving associativity.  Small-set levels are thus
    profiled at a higher rate than requested — variance control takes
    precedence over speed exactly where the level is cheap anyway.
    ``k == 0`` means the level is profiled exactly.
    """
    rate = check_sample_rate(rate)
    k = 0
    log2_sets = num_sets.bit_length() - 1
    log2_floor = max(1, min_sets).bit_length() - 1
    max_k = max(0, log2_sets - log2_floor)
    while k < max_k and 2.0 ** -(k + 1) >= rate:
        k += 1
    return k


class SpatialSampler:
    """Fixed-rate spatial hash filter: keep block ``b`` iff ``hash(b) < T``.

    Stateless and vectorized; the same (rate, seed) pair selects the same
    blocks in any chunking of the trace.
    """

    def __init__(self, rate: float, seed: int = 0) -> None:
        self._rate = check_sample_rate(rate)
        self._seed = int(seed)
        if self._seed < 0:
            raise ValueError("seed must be non-negative")
        self._threshold = sample_threshold(self._rate)

    @property
    def rate(self) -> float:
        """Nominal sampling rate ``R = T / 2^64``."""
        return self._rate

    @property
    def seed(self) -> int:
        """Hash seed."""
        return self._seed

    @property
    def threshold(self) -> int:
        """64-bit hash threshold ``T``."""
        return self._threshold

    def mask(self, blocks: np.ndarray) -> np.ndarray:
        """Boolean keep-mask over a block-number array."""
        hashes = hash_blocks(blocks, self._seed)
        if self._threshold >= _TWO64:
            return np.ones(hashes.shape, dtype=bool)
        return hashes < np.uint64(self._threshold)


class AdaptiveSpatialSampler:
    """Fixed-size (``S_max``) spatial filter with a self-lowering threshold.

    Tracks the distinct blocks currently sampled; when a new block would
    grow the set beyond ``max_blocks``, the threshold drops to the largest
    hash in the set and every block at or above it is evicted (SHARDS'
    fixed-size mode).  The threshold only ever decreases, so an evicted
    block can never re-enter.  ``on_evict`` (set by the owning builder) is
    called with each evicted block.
    """

    def __init__(self, max_blocks: int, seed: int = 0,
                 initial_rate: float = 1.0) -> None:
        if int(max_blocks) < 1:
            raise ValueError(f"max_blocks must be >= 1, got {max_blocks}")
        self._max_blocks = int(max_blocks)
        self._seed = int(seed)
        if self._seed < 0:
            raise ValueError("seed must be non-negative")
        self._threshold = sample_threshold(initial_rate)
        self._active: Dict[int, int] = {}  # block -> hash
        self._heap: List[Tuple[int, int]] = []  # (-hash, block)
        self.on_evict = None

    @property
    def seed(self) -> int:
        """Hash seed."""
        return self._seed

    @property
    def max_blocks(self) -> int:
        """Bound on distinct sampled blocks (``S_max``)."""
        return self._max_blocks

    @property
    def threshold(self) -> int:
        """Current 64-bit hash threshold (monotonically non-increasing)."""
        return self._threshold

    @property
    def rate(self) -> float:
        """Current sampling rate ``T / 2^64``."""
        return self._threshold / _TWO64

    @property
    def active_blocks(self) -> int:
        """Distinct blocks currently tracked."""
        return len(self._active)

    def admit(self, block: int, block_hash: int) -> bool:
        """Test one access against the *current* threshold; True if sampled.

        The caller pre-filters each chunk against the threshold *at chunk
        entry*; because the threshold can drop mid-chunk, this re-checks.
        Call :meth:`shrink` after recording the access: the triggering
        access is itself measured at the pre-drop rate (each record carries
        the rate in effect when it was measured), and the eviction callback
        then sees fully-recorded state — even when the new block is its own
        victim.
        """
        if block_hash >= self._threshold:
            return False
        if block not in self._active:
            self._active[block] = block_hash
            heappush(self._heap, (-block_hash, block))
        return True

    def shrink(self) -> None:
        """Enforce ``S_max``: lower the threshold to the largest tracked
        hash and evict every block at or above it (ties included)."""
        while len(self._active) > self._max_blocks:
            top_hash, _ = self._heap[0]
            self._threshold = -top_hash
            while self._heap and -self._heap[0][0] >= self._threshold:
                _, victim = heappop(self._heap)
                del self._active[victim]
                if self.on_evict is not None:
                    self.on_evict(victim)


# --------------------------------------------------------------------- #
# sampled fully-associative profile (classic SHARDS)
# --------------------------------------------------------------------- #

class SampledStackDistanceProfile:
    """Sampled twin of :class:`~repro.engine.multiconfig.StackDistanceProfile`.

    Holds per-sampled-access reuse distances *already rescaled* to
    full-trace units (``round(d / R)`` at the measurement-time rate; ``-1``
    marks a first touch) with per-access weights ``1/R``, plus the exact
    total access count of the unsampled stream.  The readout mirrors the
    exact twin: ``hit_count``/``miss_count``/``miss_ratio``/
    ``miss_ratio_curve`` price a fully-associative LRU cache of any
    capacity — as integer-backed estimates (hit counts are the weighted
    sampled hit fraction scaled to the exact total, rounded), so
    ``miss_ratio == miss_count / accesses`` holds exactly like the twin's.
    """

    def __init__(self, distances: np.ndarray, weights: np.ndarray,
                 accesses: int, rate: float, seed: int = 0) -> None:
        distances = np.asarray(distances, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        if distances.ndim != 1 or distances.shape != weights.shape:
            raise ValueError("distances and weights must be matching 1-D arrays")
        if accesses < distances.shape[0]:
            raise ValueError("total accesses cannot be fewer than sampled")
        self._distances = distances
        self._weights = weights
        self._accesses = int(accesses)
        self._rate = check_sample_rate(rate)
        self._seed = int(seed)
        self._total_weight = float(weights.sum()) if weights.size else 0.0
        reused = distances >= 0
        order = np.argsort(distances[reused], kind="stable")
        self._sorted_distances = distances[reused][order]
        cum = np.cumsum(weights[reused][order], dtype=np.float64)
        self._cumulative_weight = np.concatenate(([0.0], cum))

    # -- construction -------------------------------------------------- #

    @classmethod
    def from_blocks(cls, blocks: np.ndarray, rate: float = 0.01,
                    seed: int = 0, max_blocks: Optional[int] = None,
                    ) -> "SampledStackDistanceProfile":
        """Profile a block-number array at ``rate`` (optionally ``S_max``-bounded)."""
        builder = SampledStackDistanceBuilder(rate=rate, seed=seed,
                                              max_blocks=max_blocks)
        builder.feed(blocks)
        return builder.finish()

    @classmethod
    def from_batch(cls, batch: AddressBatch, block_size: int,
                   rate: float = 0.01, seed: int = 0,
                   max_blocks: Optional[int] = None,
                   ) -> "SampledStackDistanceProfile":
        """Profile a batch at the given line size."""
        return cls.from_blocks(cached_block_numbers(batch, block_size),
                               rate=rate, seed=seed, max_blocks=max_blocks)

    # -- readout ------------------------------------------------------- #

    @property
    def accesses(self) -> int:
        """Exact number of accesses in the *unsampled* stream."""
        return self._accesses

    @property
    def sampled_accesses(self) -> int:
        """Accesses that survived the spatial filter."""
        return int(self._distances.shape[0])

    @property
    def rate(self) -> float:
        """Nominal sampling rate the profile was requested at."""
        return self._rate

    @property
    def seed(self) -> int:
        """Hash seed."""
        return self._seed

    @property
    def distances(self) -> np.ndarray:
        """Sampled reuse distances, rescaled to full-trace units."""
        return self._distances

    @property
    def weights(self) -> np.ndarray:
        """Per-sampled-access weights (``1/R`` at measurement time)."""
        return self._weights

    def _hit_fraction(self, capacity_blocks: int) -> float:
        if capacity_blocks < 1:
            raise ValueError("capacity_blocks must be positive")
        if self._total_weight <= 0.0:
            return 0.0
        index = np.searchsorted(self._sorted_distances, capacity_blocks,
                                side="left")
        return float(self._cumulative_weight[index]) / self._total_weight

    def hit_count(self, capacity_blocks: int) -> int:
        """Estimated hits of a fully-associative LRU cache of that capacity."""
        return int(round(self._accesses * self._hit_fraction(capacity_blocks)))

    def miss_count(self, capacity_blocks: int) -> int:
        """Estimated misses at one capacity."""
        return self._accesses - self.hit_count(capacity_blocks)

    def miss_ratio(self, capacity_blocks: int) -> float:
        """Estimated miss ratio at one capacity; 0.0 for an empty profile."""
        if not self._accesses:
            return 0.0
        return self.miss_count(capacity_blocks) / self._accesses

    def miss_ratio_curve(self, capacities: Sequence[int]) -> np.ndarray:
        """Estimated miss ratio at each capacity (blocks)."""
        return np.array([self.miss_ratio(c) for c in capacities])


class SampledStackDistanceBuilder:
    """Incremental :class:`SampledStackDistanceProfile` over a chunked stream.

    Fixed-rate (``rate``) or fixed-size (``max_blocks``; the rate then only
    sets the *initial* threshold, default 1.0).  Each chunk is hash-filtered
    vectorized against the entry threshold, then the surviving accesses run
    the carried Fenwick/last-position machinery of the exact
    :class:`~repro.engine.multiconfig.StackDistanceBuilder`, restricted to
    sampled positions — with the one extra move SHARDS needs: a block
    evicted from the sample drops its live marker, so later distances only
    count blocks still under the threshold.  Distances are rescaled and
    weighted at measurement time, making chunked feeding bit-identical to
    the one-shot constructors for any chunking.
    """

    def __init__(self, rate: Optional[float] = None, seed: int = 0,
                 max_blocks: Optional[int] = None) -> None:
        if rate is None and max_blocks is None:
            raise ValueError("need a sampling rate, a max_blocks bound, or both")
        self._nominal_rate = check_sample_rate(
            rate if rate is not None else 1.0)
        self._seed = int(seed)
        if self._seed < 0:
            raise ValueError("seed must be non-negative")
        if max_blocks is not None:
            self._sampler = AdaptiveSpatialSampler(
                max_blocks, seed=seed, initial_rate=self._nominal_rate)
            self._sampler.on_evict = self._evict
        else:
            self._sampler = None
            self._threshold = sample_threshold(self._nominal_rate)
        self._accesses = 0          # full-stream accesses seen
        self._count = 0             # sampled accesses (Fenwick positions)
        self._distances: List[int] = []
        self._weights: List[float] = []
        self._last_pos: Dict[int, int] = {}
        self._cap = 1024
        self._tree = [0] * (self._cap + 1)

    # -- Fenwick over sampled positions -------------------------------- #

    def _grow(self, need: int) -> None:
        cap = self._cap
        while cap < need:
            cap <<= 1
        self._cap = cap
        tree = [0] * (cap + 1)
        for position in self._last_pos.values():
            pos = position + 1
            while pos <= cap:
                tree[pos] += 1
                pos += pos & -pos
        self._tree = tree

    def _prefix(self, pos: int) -> int:
        tree = self._tree
        total = 0
        while pos:
            total += tree[pos]
            pos -= pos & -pos
        return total

    def _update(self, pos: int, delta: int) -> None:
        tree = self._tree
        cap = self._cap
        while pos <= cap:
            tree[pos] += delta
            pos += pos & -pos

    def _evict(self, block: int) -> None:
        """Sample eviction: drop the block's live marker and tracking."""
        position = self._last_pos.pop(block, None)
        if position is not None:
            self._update(position + 1, -1)

    # -- feeding ------------------------------------------------------- #

    @property
    def accesses(self) -> int:
        """Full-stream accesses consumed so far."""
        return self._accesses

    @property
    def sampled_accesses(self) -> int:
        """Sampled accesses recorded so far."""
        return self._count

    @property
    def rate(self) -> float:
        """Current sampling rate (fixed, or the adaptive threshold's)."""
        if self._sampler is not None:
            return self._sampler.rate
        return self._threshold / _TWO64

    @property
    def seed(self) -> int:
        """Hash seed."""
        return self._seed

    def feed(self, blocks: np.ndarray) -> None:
        """Consume one chunk of block numbers (trace order)."""
        blocks = np.asarray(blocks, dtype=np.int64)
        self._accesses += int(blocks.shape[0])
        if not blocks.shape[0]:
            return
        hashes = hash_blocks(blocks, self._seed)
        threshold = (self._sampler.threshold if self._sampler is not None
                     else self._threshold)
        if threshold >= _TWO64:
            kept = np.arange(blocks.shape[0])
        else:
            kept = np.flatnonzero(hashes < np.uint64(threshold))
        if not kept.size:
            return
        kept_blocks = blocks[kept].tolist()
        kept_hashes = hashes[kept].tolist()
        if self._count + len(kept_blocks) > self._cap:
            self._grow(self._count + len(kept_blocks))
        sampler = self._sampler
        last_pos = self._last_pos
        distances = self._distances
        weights = self._weights
        i = self._count
        for b, h in zip(kept_blocks, kept_hashes):
            if sampler is not None:
                rate = sampler.threshold / _TWO64
                if not sampler.admit(b, h):
                    continue
            else:
                rate = self._nominal_rate
            p = last_pos.get(b, -1)
            if p < 0:
                distances.append(-1)
            else:
                raw = self._prefix(i) - self._prefix(p + 1)
                distances.append(int(round(raw / rate)))
                self._update(p + 1, -1)
            weights.append(1.0 / rate)
            self._update(i + 1, 1)
            last_pos[b] = i
            i += 1
            if sampler is not None:
                sampler.shrink()
        self._count = i

    def feed_batch(self, batch: AddressBatch, block_size: int) -> None:
        """Consume one :class:`AddressBatch` at the given line size."""
        self.feed(cached_block_numbers(batch, block_size))

    def finish(self) -> SampledStackDistanceProfile:
        """The profile of everything fed so far (builder stays usable)."""
        return SampledStackDistanceProfile(
            np.array(self._distances, dtype=np.int64),
            np.array(self._weights, dtype=np.float64),
            self._accesses, rate=self._nominal_rate, seed=self._seed)


# --------------------------------------------------------------------- #
# sampled all-associativity profile (miniature simulation)
# --------------------------------------------------------------------- #

def _effective_rate(rate: float, sample_size: Optional[int],
                    accesses: int) -> float:
    """Lower ``rate`` so the expected sampled volume fits ``sample_size``.

    The plan-facing meaning of ``--sample-size`` for in-memory batches:
    with the stream length known, an ``S_max`` bound on sampled *accesses*
    is just a rate cap (``size / accesses``), which keeps the mini caches'
    set scale fixed — the property miniature simulation needs.
    """
    rate = check_sample_rate(rate)
    if sample_size is None:
        return rate
    if int(sample_size) < 1:
        raise ValueError(f"sample_size must be >= 1, got {sample_size}")
    if accesses <= 0:
        return rate
    return max(min(rate, float(sample_size) / float(accesses)),
               1.0 / _TWO64)


class SampledMultiConfigLRUProfile:
    """Sampled twin of :class:`~repro.engine.multiconfig.MultiConfigLRUProfile`.

    Per set-count level, a miniature cache with ``num_sets >> k`` sets (at
    rate ``2^-k``, see :func:`level_rate_exponent`) runs the exact capped
    stack kernel over the hash-filtered substream, under the same store
    mode as the exact twin; :meth:`miss_counts` scales the mini cache's
    hit ratios to the exact load/store totals of the full stream.  Levels
    with ``k == 0`` are exact.  ``sample_size`` (optional) caps the
    expected sampled volume by lowering the rate (see
    :func:`_effective_rate`).
    """

    def __init__(self, batch: AddressBatch, block_size: int,
                 level_caps: Mapping[int, int],
                 write_policy: str = WritePolicy.WRITE_THROUGH_NO_ALLOCATE,
                 rate: float = 0.01, seed: int = 0,
                 sample_size: Optional[int] = None) -> None:
        builder = SampledMultiConfigProfileBuilder(
            block_size, level_caps, write_policy=write_policy,
            has_stores=batch.has_stores,
            rate=_effective_rate(rate, sample_size, len(batch)), seed=seed)
        builder.feed(batch)
        frozen = builder.finish()
        self._init_from_parts(*frozen._parts())

    def _init_from_parts(self, block_size: int, mode: str, rate: float,
                         seed: int, loads: int, stores: int,
                         levels: Mapping[int, _LevelProfile],
                         level_rates: Mapping[int, float],
                         level_totals: Mapping[int, Tuple[int, int]]) -> None:
        self._block_size = block_size
        self._mode = mode
        self._rate = rate
        self._seed = seed
        self._loads = loads
        self._stores = stores
        self._levels = dict(levels)
        self._level_rates = dict(level_rates)
        self._level_totals = dict(level_totals)

    @classmethod
    def _from_parts(cls, *parts) -> "SampledMultiConfigLRUProfile":
        """Wrap prebuilt level state (the builder's finish path)."""
        self = cls.__new__(cls)
        self._init_from_parts(*parts)
        return self

    def _parts(self) -> tuple:
        return (self._block_size, self._mode, self._rate, self._seed,
                self._loads, self._stores, self._levels, self._level_rates,
                self._level_totals)

    @property
    def block_size(self) -> int:
        """Line size (bytes) the profile was taken at."""
        return self._block_size

    @property
    def store_mode(self) -> str:
        """Stack-update semantics used (``loads``, ``uniform`` or ``wtna``)."""
        return self._mode

    @property
    def rate(self) -> float:
        """Effective nominal sampling rate."""
        return self._rate

    @property
    def seed(self) -> int:
        """Hash seed."""
        return self._seed

    @property
    def accesses(self) -> int:
        """Exact accesses in the unsampled stream."""
        return self._loads + self._stores

    @property
    def levels(self) -> List[int]:
        """Profiled set counts."""
        return sorted(self._levels)

    def level_rate(self, num_sets: int) -> float:
        """The power-of-two rate one level was sampled at (1.0 = exact)."""
        if num_sets not in self._level_rates:
            raise KeyError(f"set count {num_sets} was not profiled "
                           f"(levels: {self.levels})")
        return self._level_rates[num_sets]

    def sampled_accesses(self, num_sets: int) -> int:
        """Accesses that reached one level's mini cache."""
        loads, stores = self._level_totals[num_sets]
        return loads + stores

    def miss_counts(self, num_sets: int, ways: int) -> ProfileCounts:
        """Estimated counters of the ``(num_sets, ways)`` LRU configuration.

        Bit-exact when the level's rate is 1.0; otherwise the mini cache's
        load/store hit ratios scaled to the exact full-stream totals and
        rounded to integers (so the derived ratios stay consistent with
        the counts, as in the exact twin).
        """
        level = self._levels.get(num_sets)
        if level is None:
            raise KeyError(f"set count {num_sets} was not profiled "
                           f"(levels: {self.levels})")
        if ways > level.cap:
            raise ValueError(
                f"ways {ways} exceeds the profiled depth cap {level.cap} "
                f"at {num_sets} sets")
        load_hits = sum(level.hist_load[:ways])
        store_hits = sum(level.hist_store[:ways])
        if self._level_rates[num_sets] >= 1.0:
            return ProfileCounts(loads=level.loads, stores=level.stores,
                                 load_misses=level.loads - load_hits,
                                 store_misses=level.stores - store_hits)
        est_load_hits = (int(round(self._loads * load_hits / level.loads))
                         if level.loads else 0)
        est_store_hits = (int(round(self._stores * store_hits / level.stores))
                          if level.stores else 0)
        return ProfileCounts(loads=self._loads, stores=self._stores,
                             load_misses=self._loads - est_load_hits,
                             store_misses=self._stores - est_store_hits)


class SampledMultiConfigProfileBuilder:
    """Incremental :class:`SampledMultiConfigLRUProfile` over a chunked trace.

    Mirrors :class:`~repro.engine.multiconfig.MultiConfigProfileBuilder`:
    one carried mini :class:`_LevelState` per set count (scaled by that
    level's power-of-two rate), fed the hash-filtered substream chunk by
    chunk.  The rate is fixed at construction (a stream's length is
    unknown, so the ``sample_size`` rate cap is a one-shot-only
    convenience), making chunked and one-shot profiles bit-identical.

    As with the exact builder, the store mode must be declared up front;
    feeding a chunk that contradicts it raises immediately rather than
    letting the profile silently drift.
    """

    def __init__(self, block_size: int, level_caps: Mapping[int, int],
                 write_policy: str = WritePolicy.WRITE_THROUGH_NO_ALLOCATE,
                 has_stores: bool = True, rate: float = 0.01,
                 seed: int = 0) -> None:
        if write_policy not in WritePolicy.ALL:
            raise ValueError(f"unknown write policy {write_policy!r}")
        self._block_size = block_size
        self._mode = _store_mode(has_stores, write_policy)
        self._rate = check_sample_rate(rate)
        self._seed = int(seed)
        if self._seed < 0:
            raise ValueError("seed must be non-negative")
        self._loads = 0
        self._stores = 0
        self._states: Dict[int, _LevelState] = {}
        self._level_k: Dict[int, int] = {}
        self._level_loads: Dict[int, int] = {}
        self._level_stores: Dict[int, int] = {}
        for num_sets, max_ways in _checked_level_caps(level_caps).items():
            k = level_rate_exponent(num_sets, self._rate)
            self._level_k[num_sets] = k
            self._states[num_sets] = _LevelState(
                num_sets >> k, _round_cap(max_ways), self._mode)
            self._level_loads[num_sets] = 0
            self._level_stores[num_sets] = 0

    @property
    def store_mode(self) -> str:
        """Stack-update semantics used (``loads``, ``uniform`` or ``wtna``)."""
        return self._mode

    @property
    def rate(self) -> float:
        """Nominal sampling rate (per-level rates are its power-of-two caps)."""
        return self._rate

    @property
    def seed(self) -> int:
        """Hash seed."""
        return self._seed

    @property
    def accesses(self) -> int:
        """Full-stream accesses consumed so far."""
        return self._loads + self._stores

    def feed(self, batch: AddressBatch) -> int:
        """Consume one chunk; returns its length."""
        if self._mode == "loads" and batch.has_stores:
            raise ValueError(
                "store mode changed mid-stream: this builder was created "
                "with has_stores=False but the chunk fed after "
                f"{self.accesses} accesses contains stores; create the "
                "builder with has_stores=True (the write policy's store "
                "semantics then apply to every chunk)")
        blocks = cached_block_numbers(batch, self._block_size)
        n = int(blocks.shape[0])
        if not n:
            return 0
        stores = int(batch.store_count)
        self._loads += n - stores
        self._stores += stores
        hashes = hash_blocks(blocks, self._seed)
        writes = batch.is_write if self._mode != "loads" else None
        # Levels sharing one exponent share one filtered substream.
        filtered: Dict[int, Tuple[list, Optional[list], int]] = {}
        for num_sets, state in self._states.items():
            k = self._level_k[num_sets]
            if k not in filtered:
                if k == 0:
                    kept_blocks = blocks.tolist()
                    kept_writes = (writes.tolist() if writes is not None
                                   else None)
                    kept_stores = stores
                else:
                    keep = (hashes >> np.uint64(64 - k)) == 0
                    kept_blocks = blocks[keep].tolist()
                    if writes is not None:
                        kept_writes_arr = writes[keep]
                        kept_writes = kept_writes_arr.tolist()
                        kept_stores = int(np.count_nonzero(kept_writes_arr))
                    else:
                        kept_writes = None
                        kept_stores = 0
                filtered[k] = (kept_blocks, kept_writes, kept_stores)
            kept_blocks, kept_writes, kept_stores = filtered[k]
            if kept_blocks:
                state.feed(kept_blocks, kept_writes)
            self._level_loads[num_sets] += len(kept_blocks) - kept_stores
            self._level_stores[num_sets] += kept_stores
        return n

    def finish(self) -> "SampledMultiConfigLRUProfile":
        """Freeze into a profile (builder stays usable for more chunks)."""
        return SampledMultiConfigLRUProfile._from_parts(
            self._block_size, self._mode, self._rate, self._seed,
            self._loads, self._stores,
            {num_sets: state.profile()
             for num_sets, state in self._states.items()},
            {num_sets: 2.0 ** -k for num_sets, k in self._level_k.items()},
            {num_sets: (self._level_loads[num_sets],
                        self._level_stores[num_sets])
             for num_sets in self._states})
