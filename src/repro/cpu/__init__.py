"""Out-of-order superscalar processor model used for the IPC experiments."""

from .address_predictor import AddressPrediction, StrideAddressPredictor
from .branch_predictor import BimodalBranchPredictor
from .dcache import DataCacheModel, DataCacheTiming, LoadTiming
from .functional_units import (
    TABLE1_TIMINGS,
    FunctionalUnit,
    FunctionalUnitPool,
    OperationTiming,
)
from .fuzzer import (
    ADDRESS_PATTERNS,
    CONFIG_VARIANTS,
    DifferentialOutcome,
    FuzzParams,
    build_fuzz_program,
    fuzz_config,
    random_params,
    repro_line,
    run_differential,
)
from .isa import FP_REGS, INT_REGS, Instruction, OpClass, is_fp_register
from .lsq import BufferedStore, StoreForwardingBuffer
from .processor import OutOfOrderProcessor, ProcessorConfig, SimulationResult
from .program import Program
from .resources import ThroughputLimiter, WindowResource
from .workloads import INSTRUCTION_MIXES, InstructionMix, build_program, program_names

__all__ = [
    "Instruction",
    "OpClass",
    "INT_REGS",
    "FP_REGS",
    "is_fp_register",
    "Program",
    "BimodalBranchPredictor",
    "StrideAddressPredictor",
    "AddressPrediction",
    "FunctionalUnit",
    "FunctionalUnitPool",
    "OperationTiming",
    "TABLE1_TIMINGS",
    "DataCacheModel",
    "DataCacheTiming",
    "LoadTiming",
    "StoreForwardingBuffer",
    "BufferedStore",
    "WindowResource",
    "ThroughputLimiter",
    "OutOfOrderProcessor",
    "ProcessorConfig",
    "SimulationResult",
    "InstructionMix",
    "INSTRUCTION_MIXES",
    "build_program",
    "program_names",
    "ADDRESS_PATTERNS",
    "CONFIG_VARIANTS",
    "FuzzParams",
    "DifferentialOutcome",
    "random_params",
    "build_fuzz_program",
    "fuzz_config",
    "run_differential",
    "repro_line",
]
