"""Parallel sweep runner: fan experiment configurations across workers.

The paper's figures are sweeps — hundreds of (scheme, stride) or
(program, organisation) pairs, each an independent simulation.  This module
provides a small, picklable-friendly fan-out helper on top of
:mod:`concurrent.futures` so any experiment driver can parallelise its sweep
without committing to an executor type.

Workers receive one task object each and must be module-level callables when
``mode="process"`` (the default executor requires picklable work items);
``mode="serial"`` runs in-line, which is also the automatic fallback whenever
a single worker is requested or the pool cannot be spawned (restricted
sandboxes).  Task order is always preserved in the result list.
"""

from __future__ import annotations

import concurrent.futures
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, TypeVar

__all__ = ["run_sweep"]

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")

#: Executor modes accepted by :func:`run_sweep`.
_MODES = ("process", "thread", "serial")


def _noop() -> None:
    """Picklable probe task used to detect unusable worker pools."""


def run_sweep(worker: Callable[[TaskT], ResultT],
              tasks: Sequence[TaskT],
              workers: Optional[int] = None,
              mode: str = "process") -> List[ResultT]:
    """Apply ``worker`` to every task, optionally across a worker pool.

    Parameters
    ----------
    worker:
        Callable applied to each task.  Must be a module-level function (and
        the tasks picklable) for ``mode="process"``.
    tasks:
        Work items; results come back in the same order.
    workers:
        Pool size.  ``None``, ``0`` or ``1`` runs serially in-process.
    mode:
        ``"process"`` (default), ``"thread"``, or ``"serial"``.  Threads only
        help when the worker releases the GIL (NumPy-heavy batches); process
        pools parallelise pure-Python simulation too.
    """
    if mode not in _MODES:
        raise ValueError(f"unknown sweep mode {mode!r}; expected one of {_MODES}")
    tasks = list(tasks)
    if not tasks:
        return []
    if mode == "serial" or workers is None or workers <= 1:
        return [worker(task) for task in tasks]

    executor_cls = (concurrent.futures.ProcessPoolExecutor if mode == "process"
                    else concurrent.futures.ThreadPoolExecutor)
    chunksize = max(1, len(tasks) // (workers * 4))
    # Probe the pool with a no-op before committing the sweep to it, so
    # sandboxes without process-spawn rights degrade to serial execution —
    # without a blanket except around the real map that would otherwise
    # swallow a *worker* error and silently redo the whole sweep serially.
    pool = None
    try:
        pool = executor_cls(max_workers=workers)
        pool.submit(_noop).result()
    except (OSError, BrokenProcessPool):
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        return [worker(task) for task in tasks]
    with pool:
        if mode == "process":
            return list(pool.map(worker, tasks, chunksize=chunksize))
        return list(pool.map(worker, tasks))
