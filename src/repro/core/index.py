"""Cache index (placement) functions.

A placement function decides which cache *set* a block of memory may live in.
The paper compares four families:

``a2``
    Conventional bit-selection: the index is the low ``m`` bits of the block
    number (address divided by block size).  Simple, but any two addresses
    whose block numbers differ by a multiple of the number of sets collide —
    the root cause of repetitive conflict misses.

``a2-Hx-Sk``
    The skewed-associative XOR functions of Seznec (ISCA 1993): each way uses
    a different XOR-fold of two ``m``-bit address fields.

``a2-Hp`` / ``a2-Hp-Sk``
    The I-Poly scheme evaluated by the paper: the index is the remainder of
    the block number (restricted to ``v`` low bits) divided by an irreducible
    polynomial over GF(2).  ``-Sk`` uses a distinct polynomial per way.

In addition this module implements the prime-modulus function of Lawrie &
Vora (a classic interleaved-memory scheme, useful as a further baseline) and
a trivial single-set function for fully-associative caches.

All functions map a *block number* — the memory address with the block-offset
bits already stripped — to a set index, optionally per way.  Keeping the
functions pure and stateless lets the same object drive both the trace-level
cache models and the processor-level simulator.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

from .gf2 import degree, gf2_mod
from .polynomials import (
    default_polynomial,
    skewing_polynomials,
    validate_polynomial,
)

__all__ = [
    "IndexFunction",
    "BitSelectIndexing",
    "XorFoldIndexing",
    "IPolyIndexing",
    "PrimeModuloIndexing",
    "SingleSetIndexing",
    "make_index_function",
]


def _check_power_of_two(value: int, what: str) -> int:
    if value < 1 or value & (value - 1):
        raise ValueError(f"{what} must be a positive power of two, got {value}")
    return value


def _check_block_and_way(block_number: int, way: int) -> None:
    """Shared argument validation for every placement function.

    All families must reject negative block numbers *and* negative ways the
    same way; the differential harness surfaced that bit-selection, prime and
    single-set indexing silently accepted negative ways (they ignore the
    argument) while the XOR and I-Poly families raised — an inconsistency
    that let malformed skewed-cache configurations slip through on some
    placement schemes only.
    """
    if block_number < 0:
        raise ValueError("block_number must be non-negative")
    if way < 0:
        raise ValueError("way must be non-negative")


class IndexFunction(abc.ABC):
    """Abstract placement function mapping block numbers to set indices.

    Concrete subclasses must be deterministic and stateless: the same block
    number and way always map to the same set.  ``num_sets`` is the number of
    sets the target cache has; indices returned by :meth:`index` are always in
    ``range(num_sets)``.
    """

    #: short identifier used in reports (matches the paper's labels).
    name: str = "abstract"

    def __init__(self, num_sets: int) -> None:
        self._num_sets = _check_power_of_two(num_sets, "num_sets")
        self._index_bits = self._num_sets.bit_length() - 1

    @property
    def num_sets(self) -> int:
        """Number of cache sets this function indexes into."""
        return self._num_sets

    @property
    def index_bits(self) -> int:
        """Number of bits in the produced index (``log2(num_sets)``)."""
        return self._index_bits

    @property
    def is_skewed(self) -> bool:
        """True if different ways may use different placement functions."""
        return False

    @property
    def address_bits_used(self) -> int:
        """How many low-order block-number bits influence the index."""
        return self._index_bits

    @property
    def cache_key(self):
        """Hashable description of the mapping, or ``None`` if unknown.

        Two index functions with equal ``cache_key`` compute identical
        ``index(block, way)`` for every input — which is what lets sweeps
        memoise per-scheme set-index arrays across tasks that each build
        their own (semantically identical) function instance.  The default
        is ``None``, meaning "not memoisable", and every concrete key below
        is guarded by an exact ``type(self)`` check: a subclass that
        overrides ``index`` (or adds mapping-affecting parameters) must
        declare its *own* key before it participates, so an unknown
        function can never be served another one's arrays.
        """
        return None

    @abc.abstractmethod
    def index(self, block_number: int, way: int = 0) -> int:
        """Return the set index for ``block_number`` in ``way``."""

    def indices(self, block_number: int, ways: int) -> List[int]:
        """Return the set index for each of ``ways`` ways (used by skewed caches)."""
        return [self.index(block_number, way) for way in range(ways)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(num_sets={self._num_sets})"


class BitSelectIndexing(IndexFunction):
    """Conventional modulo-power-of-two indexing (the paper's ``a2``).

    The index is simply the low ``m`` bits of the block number.  This is the
    baseline that all conflict-avoiding schemes are measured against.
    """

    name = "a2"

    @property
    def cache_key(self):
        if type(self) is not BitSelectIndexing:
            return None
        return ("bit-select", self._num_sets)

    def index(self, block_number: int, way: int = 0) -> int:
        _check_block_and_way(block_number, way)
        return block_number & (self._num_sets - 1)


class XorFoldIndexing(IndexFunction):
    """Skewed-associative XOR indexing (the paper's ``a2-Hx-Sk``).

    Following Seznec's skewed-associative cache, the block number is split
    into two ``m``-bit fields ``A1`` (bits ``0..m-1``) and ``A2`` (bits
    ``m..2m-1``).  Way ``k`` uses ``A1 XOR rotate(A2, k)`` so that each way
    sees a different permutation; with ``skewed=False`` every way uses the
    plain fold ``A1 XOR A2``.
    """

    def __init__(self, num_sets: int, skewed: bool = True) -> None:
        super().__init__(num_sets)
        self._skewed = bool(skewed)
        self.name = "a2-Hx-Sk" if skewed else "a2-Hx"

    @property
    def is_skewed(self) -> bool:
        return self._skewed

    @property
    def address_bits_used(self) -> int:
        return 2 * self._index_bits

    @property
    def cache_key(self):
        if type(self) is not XorFoldIndexing:
            return None
        return ("xor-fold", self._num_sets, self._skewed)

    def _rotate(self, field: int, amount: int) -> int:
        m = self._index_bits
        amount %= m
        if amount == 0:
            return field
        mask = self._num_sets - 1
        return ((field << amount) | (field >> (m - amount))) & mask

    def index(self, block_number: int, way: int = 0) -> int:
        _check_block_and_way(block_number, way)
        mask = self._num_sets - 1
        low = block_number & mask
        high = (block_number >> self._index_bits) & mask
        if self._skewed:
            high = self._rotate(high, way)
        return low ^ high


class IPolyIndexing(IndexFunction):
    """Irreducible-polynomial (I-Poly) indexing — the paper's contribution.

    The block number, truncated to ``address_bits`` low-order bits, is
    interpreted as a polynomial over GF(2) and reduced modulo an irreducible
    polynomial of degree ``m`` (``m = log2(num_sets)``).  The remainder is the
    set index.  When ``skewed`` is true each way uses a distinct irreducible
    polynomial, giving the ``a2-Hp-Sk`` configuration; otherwise all ways
    share one polynomial (``a2-Hp``).

    Parameters
    ----------
    num_sets:
        Number of cache sets (power of two).
    ways:
        Number of ways the owning cache has; determines how many skewing
        polynomials are needed.
    skewed:
        Use a distinct polynomial per way.
    address_bits:
        Number of low-order block-number bits fed to the hash (the paper's
        ``v``).  Defaults to 19 minus the block-offset width used in the
        paper's experiments; callers normally pass an explicit value.
    polynomials:
        Explicit polynomial per way (overrides the default table).  Each must
        have degree exactly ``log2(num_sets)``.
    """

    def __init__(
        self,
        num_sets: int,
        ways: int = 1,
        skewed: bool = False,
        address_bits: Optional[int] = None,
        polynomials: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(num_sets)
        if ways < 1:
            raise ValueError("ways must be at least 1")
        self._ways = ways
        self._skewed = bool(skewed)
        if address_bits is None:
            # The paper's experiments feed 19 address bits to the XOR tree;
            # by default expose a generous window above the index width.
            address_bits = max(self._index_bits * 2, 14)
        if address_bits < self._index_bits:
            raise ValueError(
                f"address_bits ({address_bits}) must be at least the index "
                f"width ({self._index_bits})"
            )
        self._address_bits = address_bits
        self._address_mask = (1 << address_bits) - 1

        if polynomials is not None:
            polys = list(polynomials)
            if skewed and len(polys) < ways:
                raise ValueError(
                    f"skewed indexing over {ways} ways needs {ways} polynomials, "
                    f"got {len(polys)}"
                )
            for poly in polys:
                validate_polynomial(poly, self._index_bits)
        elif skewed:
            polys = skewing_polynomials(self._index_bits, ways)
        else:
            polys = [default_polynomial(self._index_bits)]
        self._polynomials = polys
        self.name = "a2-Hp-Sk" if self._skewed else "a2-Hp"

    @property
    def is_skewed(self) -> bool:
        return self._skewed

    @property
    def address_bits_used(self) -> int:
        return self._address_bits

    @property
    def polynomials(self) -> List[int]:
        """The polynomial used by each way (length 1 when not skewed)."""
        return list(self._polynomials)

    @property
    def cache_key(self):
        if type(self) is not IPolyIndexing:
            return None
        return ("ipoly", self._num_sets, self._skewed, self._address_bits,
                tuple(self._polynomials))

    def polynomial_for_way(self, way: int) -> int:
        """Return the modulus polynomial used by ``way``."""
        if way < 0:
            raise ValueError("way must be non-negative")
        if self._skewed:
            return self._polynomials[way % len(self._polynomials)]
        return self._polynomials[0]

    def index(self, block_number: int, way: int = 0) -> int:
        _check_block_and_way(block_number, way)
        poly = self.polynomial_for_way(way)
        return gf2_mod(block_number & self._address_mask, poly)


class PrimeModuloIndexing(IndexFunction):
    """Prime-modulus indexing (Lawrie & Vora's prime memory system).

    The index is the block number modulo the largest prime not exceeding the
    number of sets.  Sets with index >= that prime are never used, so a small
    fraction of capacity is wasted — the classic trade-off of the scheme.
    Included as an additional conflict-avoiding baseline.
    """

    name = "a2-prime"

    def __init__(self, num_sets: int) -> None:
        super().__init__(num_sets)
        self._prime = _largest_prime_at_most(num_sets)

    @property
    def prime(self) -> int:
        """The prime modulus actually used."""
        return self._prime

    @property
    def usable_sets(self) -> int:
        """Number of sets that can ever be selected."""
        return self._prime

    @property
    def cache_key(self):
        if type(self) is not PrimeModuloIndexing:
            return None
        return ("prime-modulo", self._num_sets)

    def index(self, block_number: int, way: int = 0) -> int:
        _check_block_and_way(block_number, way)
        return block_number % self._prime


class SingleSetIndexing(IndexFunction):
    """Trivial function mapping every block to set 0 (fully-associative caches)."""

    name = "full"

    def __init__(self) -> None:
        super().__init__(1)

    @property
    def cache_key(self):
        if type(self) is not SingleSetIndexing:
            return None
        return ("single-set",)

    def index(self, block_number: int, way: int = 0) -> int:
        _check_block_and_way(block_number, way)
        return 0


def make_index_function(
    scheme: str,
    num_sets: int,
    ways: int = 1,
    address_bits: Optional[int] = None,
) -> IndexFunction:
    """Build an index function from the paper's scheme label.

    Recognised labels (case-insensitive): ``a2``, ``a2-Hx``, ``a2-Hx-Sk``,
    ``a2-Hp``, ``a2-Hp-Sk``, ``a2-prime``, ``full``.

    >>> make_index_function("a2-Hp-Sk", num_sets=128, ways=2).name
    'a2-Hp-Sk'
    """
    label = scheme.strip().lower()
    if label == "a2":
        return BitSelectIndexing(num_sets)
    if label == "a2-hx":
        return XorFoldIndexing(num_sets, skewed=False)
    if label == "a2-hx-sk":
        return XorFoldIndexing(num_sets, skewed=True)
    if label == "a2-hp":
        return IPolyIndexing(num_sets, ways=ways, skewed=False, address_bits=address_bits)
    if label == "a2-hp-sk":
        return IPolyIndexing(num_sets, ways=ways, skewed=True, address_bits=address_bits)
    if label == "a2-prime":
        return PrimeModuloIndexing(num_sets)
    if label == "full":
        return SingleSetIndexing()
    raise ValueError(f"unknown indexing scheme {scheme!r}")


def _largest_prime_at_most(n: int) -> int:
    if n < 2:
        raise ValueError("no prime exists at or below 1")
    for candidate in range(n, 1, -1):
        if _is_prime(candidate):
            return candidate
    raise AssertionError("unreachable")  # pragma: no cover


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    divisor = 3
    while divisor * divisor <= n:
        if n % divisor == 0:
            return False
        divisor += 2
    return True
