"""Experiment drivers — one per table/figure of the paper (see DESIGN.md).

============  ==========================================  =======================
Experiment    Paper artefact                              Driver
============  ==========================================  =======================
E-F1          Figure 1 (stride miss-ratio distribution)   :mod:`.figure1`
E-T2 / E-SD   Table 2 (IPC & miss ratio) + std-dev claim  :mod:`.table2`
E-T3          Table 3 (high-conflict programs)            :mod:`.table3`
E-MR          Section 2.1 miss-ratio comparison           :mod:`.miss_ratio_study`
E-HOLE        Section 3.3 hole model vs simulation        :mod:`.holes_study`
E-CA          Section 3.1 column-associative option       :mod:`.column_assoc_study`
E-CP          Section 3 / 3.4 hardware cost & CLA timing  :mod:`.critical_path`
E-RP          replacement x organisation ablation         :mod:`.replacement_study`
============  ==========================================  =======================
"""

from .column_assoc_study import ColumnAssocStudyResult, run_column_assoc_study
from .config import (
    INDEX_SCHEMES,
    PAPER_HASH_BITS,
    PAPER_L1_8KB,
    PAPER_L1_16KB,
    TABLE2_CONFIGS,
    CacheGeometry,
    build_cache,
    table2_processor_configs,
)
from .critical_path import CriticalPathResult, run_critical_path_study
from .figure1 import Figure1Result, run_figure1, stride_miss_ratio
from .holes_study import HoleStudyResult, run_holes_study
from .miss_ratio_study import (
    MissRatioStudyResult,
    default_batch_organisations,
    default_organisations,
    run_miss_ratio_study,
)
from .replacement_study import ReplacementStudyResult, run_replacement_study
from .table2 import Table2Result, miss_ratio_std_dev, run_table2
from .table3 import Table3Result, run_table3

__all__ = [
    "CacheGeometry",
    "PAPER_L1_8KB",
    "PAPER_L1_16KB",
    "PAPER_HASH_BITS",
    "INDEX_SCHEMES",
    "TABLE2_CONFIGS",
    "build_cache",
    "table2_processor_configs",
    "Figure1Result",
    "run_figure1",
    "stride_miss_ratio",
    "Table2Result",
    "run_table2",
    "miss_ratio_std_dev",
    "Table3Result",
    "run_table3",
    "MissRatioStudyResult",
    "default_organisations",
    "default_batch_organisations",
    "run_miss_ratio_study",
    "ReplacementStudyResult",
    "run_replacement_study",
    "HoleStudyResult",
    "run_holes_study",
    "ColumnAssocStudyResult",
    "run_column_assoc_study",
    "CriticalPathResult",
    "run_critical_path_study",
]
