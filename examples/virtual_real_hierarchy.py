#!/usr/bin/env python3
"""Two-level virtual-real hierarchy: Inclusion, holes, and the analytical model.

Section 3 of the paper argues that the clean way to deploy I-Poly indexing at
L1 is the two-level virtual-real organisation of Wang, Baer & Levy: a
virtually-indexed, virtually-tagged L1 (so the hash can use as many address
bits as it likes) over a physically-indexed L2 that enforces Inclusion.  The
cost is the occasional "hole": when L2 evicts a line that is still live in
L1, the L1 copy must be invalidated.

This example builds that hierarchy — an 8 KB skewed I-Poly L1 indexed by
virtual addresses over a physically-indexed conventional L2 — drives it with
a synthetic workload, and compares the measured hole rate per L2 miss with
the analytical prediction of equations (vii)-(ix).

Run it with::

    python examples/virtual_real_hierarchy.py [l2_kilobytes] [accesses]
"""

import sys

from repro.cache import SetAssociativeCache, VirtualRealHierarchy, WritePolicy
from repro.core import IPolyIndexing
from repro.memory import PageTable
from repro.models import HoleModel
from repro.trace import build_trace


def build_hierarchy(l2_bytes):
    page_table = PageTable(page_size=4096, allocation="scatter", seed=2027)
    l1 = SetAssociativeCache(
        8 * 1024, 32, 2,
        index_function=IPolyIndexing(128, ways=2, skewed=True, address_bits=19))
    l2 = SetAssociativeCache(l2_bytes, 32, 2,
                             write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
    return VirtualRealHierarchy(l1, l2, translate=page_table.translate)


def main(argv):
    l2_kb = int(argv[1]) if len(argv) > 1 else 256
    accesses = int(argv[2]) if len(argv) > 2 else 60_000
    l2_bytes = l2_kb * 1024

    hierarchy = build_hierarchy(l2_bytes)
    model = HoleModel(l1_bytes=8 * 1024, l2_bytes=l2_bytes, block_size=32)

    # A mixed workload: the streaming-heavy swim model exercises L2 capacity.
    for access in build_trace("swim", length=accesses):
        hierarchy.access(access.address, is_write=access.is_write)

    print(f"8 KB skewed I-Poly L1 (virtual index) over {l2_kb} KB conventional "
          f"L2 (physical index), {accesses} accesses of the 'swim' model\n")
    print(f"L1 load miss ratio:        {hierarchy.l1.stats.load_miss_ratio:8.2%}")
    print(f"L2 misses:                 {hierarchy.l2.stats.misses:8d}")
    print(f"L1 holes created:          {hierarchy.holes_created:8d}")
    print(f"alias invalidations:       {hierarchy.alias_invalidations:8d}")
    print(f"hole rate per L2 miss:     {hierarchy.hole_rate_per_l2_miss:8.4f}")
    print(f"analytical P_H (eq. ix):   {model.hole_probability:8.4f}")
    print(f"inclusion invariant holds: {hierarchy.check_inclusion()}")
    print("\nThe analytical model is an upper-bound-style estimate assuming")
    print("direct-mapped levels and fully uncorrelated indices; the simulated")
    print("hierarchy sits at or below it, supporting the paper's conclusion")
    print("that holes have a negligible effect on L1 miss ratio.")


if __name__ == "__main__":
    main(sys.argv)
