"""Analysis utilities: aggregation metrics, histograms and report formatting."""

from .histograms import MissRatioHistogram, compare_histograms
from .metrics import (
    arithmetic_mean,
    geometric_mean,
    percent_change,
    speedup,
    std_deviation,
    summarise_ipc,
    summarise_miss_ratios,
)
from .reporting import TableBuilder, format_csv, format_table

__all__ = [
    "MissRatioHistogram",
    "compare_histograms",
    "arithmetic_mean",
    "geometric_mean",
    "std_deviation",
    "percent_change",
    "speedup",
    "summarise_miss_ratios",
    "summarise_ipc",
    "TableBuilder",
    "format_csv",
    "format_table",
]
