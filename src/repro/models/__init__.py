"""Analytical models accompanying the simulators (holes, adder timing)."""

from .cla_timing import ClaTimingModel, paper_example
from .holes import (
    HoleModel,
    displacement_probability,
    expected_l1_missratio_increase,
    hole_probability,
    index_bits_for,
    resident_probability,
)

__all__ = [
    "HoleModel",
    "index_bits_for",
    "resident_probability",
    "displacement_probability",
    "hole_probability",
    "expected_l1_missratio_increase",
    "ClaTimingModel",
    "paper_example",
]
