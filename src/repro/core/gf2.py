"""Polynomial arithmetic over GF(2).

The I-Poly indexing scheme of Topham, Gonzalez & Gonzalez (MICRO-30, 1997)
interprets a memory address as a polynomial over the two-element field GF(2)
and computes the cache index as the remainder of dividing that polynomial by
a fixed (preferably irreducible) polynomial ``P(x)``.

Polynomials over GF(2) have a compact representation as Python integers:
bit ``i`` of the integer is the coefficient of ``x**i``.  Addition and
subtraction are both XOR, and multiplication/division follow carry-less
(binary) arithmetic.  All functions in this module use that encoding.

The module provides:

* carry-less multiplication (:func:`gf2_mul`),
* polynomial division and remainder (:func:`gf2_divmod`, :func:`gf2_mod`),
* greatest common divisor (:func:`gf2_gcd`),
* modular exponentiation (:func:`gf2_pow_mod`),
* irreducibility and primitivity tests (:func:`is_irreducible`,
  :func:`is_primitive`), and
* enumeration helpers used to build polynomial tables
  (:func:`irreducible_polynomials`).

These are exact, deterministic routines; nothing here depends on the cache
model and the module is usable on its own as a small GF(2) toolkit.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

__all__ = [
    "degree",
    "gf2_add",
    "gf2_mul",
    "gf2_divmod",
    "gf2_mod",
    "gf2_gcd",
    "gf2_pow_mod",
    "gf2_mul_mod",
    "is_irreducible",
    "is_primitive",
    "irreducible_polynomials",
    "primitive_polynomials",
    "poly_to_string",
    "string_to_poly",
]


def degree(poly: int) -> int:
    """Return the degree of ``poly``.

    The zero polynomial is given degree ``-1`` by convention, which makes
    ``degree(a) < degree(b)`` a correct "a is reducible no further" test in
    the division loop.

    >>> degree(0b1011)
    3
    >>> degree(1)
    0
    >>> degree(0)
    -1
    """
    if poly < 0:
        raise ValueError(f"polynomials must be non-negative integers, got {poly}")
    return poly.bit_length() - 1


def gf2_add(a: int, b: int) -> int:
    """Add two polynomials over GF(2) (coefficient-wise XOR).

    >>> gf2_add(0b101, 0b011)
    6
    """
    _check_non_negative(a, b)
    return a ^ b


def gf2_mul(a: int, b: int) -> int:
    """Carry-less multiplication of two GF(2) polynomials.

    >>> gf2_mul(0b11, 0b11)   # (x + 1)^2 == x^2 + 1
    5
    """
    _check_non_negative(a, b)
    result = 0
    shift = 0
    while b:
        if b & 1:
            result ^= a << shift
        b >>= 1
        shift += 1
    return result


def gf2_divmod(a: int, b: int) -> Tuple[int, int]:
    """Divide ``a`` by ``b`` over GF(2); return ``(quotient, remainder)``.

    Raises :class:`ZeroDivisionError` if ``b`` is the zero polynomial.

    >>> gf2_divmod(0b10011, 0b1011)   # x^4 + x + 1 by x^3 + x + 1
    (2, 5)
    """
    _check_non_negative(a, b)
    if b == 0:
        raise ZeroDivisionError("division by the zero polynomial")
    deg_b = degree(b)
    quotient = 0
    remainder = a
    while degree(remainder) >= deg_b:
        shift = degree(remainder) - deg_b
        quotient ^= 1 << shift
        remainder ^= b << shift
    return quotient, remainder


def gf2_mod(a: int, b: int) -> int:
    """Return ``a mod b`` over GF(2).

    This is the core operation of I-Poly indexing: the cache index of an
    address ``a`` is ``gf2_mod(a, P)`` for the chosen polynomial ``P``.

    >>> gf2_mod(0b10011, 0b1011)
    5
    """
    return gf2_divmod(a, b)[1]


def gf2_gcd(a: int, b: int) -> int:
    """Greatest common divisor of two GF(2) polynomials (Euclid's algorithm).

    >>> gf2_gcd(0b110, 0b100)   # gcd(x^2 + x, x^2) == x
    2
    """
    _check_non_negative(a, b)
    while b:
        a, b = b, gf2_mod(a, b)
    return a


def gf2_mul_mod(a: int, b: int, modulus: int) -> int:
    """Return ``(a * b) mod modulus`` over GF(2)."""
    return gf2_mod(gf2_mul(a, b), modulus)


def gf2_pow_mod(base: int, exponent: int, modulus: int) -> int:
    """Return ``base ** exponent mod modulus`` over GF(2) (square-and-multiply).

    >>> gf2_pow_mod(0b10, 3, 0b1011)   # x^3 mod (x^3 + x + 1) == x + 1
    3
    """
    _check_non_negative(base)
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    if modulus == 0:
        raise ZeroDivisionError("modulus must be non-zero")
    result = 1
    base = gf2_mod(base, modulus)
    while exponent:
        if exponent & 1:
            result = gf2_mul_mod(result, base, modulus)
        base = gf2_mul_mod(base, base, modulus)
        exponent >>= 1
    return result


def is_irreducible(poly: int) -> bool:
    """Test whether ``poly`` is irreducible over GF(2).

    Uses the standard Rabin test: a polynomial ``f`` of degree ``n`` is
    irreducible iff ``x^(2^n) == x (mod f)`` and, for every prime divisor
    ``q`` of ``n``, ``gcd(x^(2^(n/q)) - x, f) == 1``.

    Degree-0 polynomials (constants) are not irreducible.

    >>> is_irreducible(0b1011)    # x^3 + x + 1
    True
    >>> is_irreducible(0b1001)    # x^3 + 1 == (x + 1)(x^2 + x + 1)
    False
    """
    n = degree(poly)
    if n <= 0:
        return False
    if n == 1:
        return True
    x = 0b10
    # x^(2^n) mod poly must equal x.
    power = x
    for _ in range(n):
        power = gf2_mul_mod(power, power, poly)
    if power != gf2_mod(x, poly):
        return False
    for q in _prime_factors(n):
        power = x
        for _ in range(n // q):
            power = gf2_mul_mod(power, power, poly)
        if gf2_gcd(gf2_add(power, x), poly) != 1:
            return False
    return True


def is_primitive(poly: int) -> bool:
    """Test whether ``poly`` is a primitive polynomial over GF(2).

    A primitive polynomial of degree ``n`` is irreducible and has ``x`` as a
    generator of the multiplicative group of GF(2^n), i.e. the order of ``x``
    modulo ``poly`` is exactly ``2^n - 1``.

    >>> is_primitive(0b1011)
    True
    >>> is_primitive(0b10111)      # x^4+x^2+x+1 is not even irreducible
    False
    """
    n = degree(poly)
    if n <= 0 or not is_irreducible(poly):
        return False
    group_order = (1 << n) - 1
    if gf2_pow_mod(0b10, group_order, poly) != 1:
        return False
    for q in _prime_factors(group_order):
        if gf2_pow_mod(0b10, group_order // q, poly) == 1:
            return False
    return True


def irreducible_polynomials(deg: int) -> Iterator[int]:
    """Yield all irreducible polynomials of degree ``deg`` in increasing order.

    >>> list(irreducible_polynomials(2))
    [7]
    >>> len(list(irreducible_polynomials(4)))
    3
    """
    if deg < 1:
        raise ValueError("degree must be at least 1")
    start = 1 << deg
    stop = 1 << (deg + 1)
    for candidate in range(start, stop):
        # Every irreducible polynomial other than x itself has a non-zero
        # constant term; skipping the rest halves the search.
        if deg > 1 and not candidate & 1:
            continue
        if is_irreducible(candidate):
            yield candidate


def primitive_polynomials(deg: int) -> Iterator[int]:
    """Yield all primitive polynomials of degree ``deg`` in increasing order."""
    for candidate in irreducible_polynomials(deg):
        if is_primitive(candidate):
            yield candidate


def poly_to_string(poly: int) -> str:
    """Render a polynomial as a human-readable string.

    >>> poly_to_string(0b1011)
    'x^3 + x + 1'
    >>> poly_to_string(0)
    '0'
    """
    _check_non_negative(poly)
    if poly == 0:
        return "0"
    terms: List[str] = []
    for i in range(degree(poly), -1, -1):
        if poly >> i & 1:
            if i == 0:
                terms.append("1")
            elif i == 1:
                terms.append("x")
            else:
                terms.append(f"x^{i}")
    return " + ".join(terms)


def string_to_poly(text: str) -> int:
    """Parse a polynomial string produced by :func:`poly_to_string`.

    >>> string_to_poly('x^3 + x + 1')
    11
    >>> string_to_poly('0')
    0
    """
    text = text.strip()
    if text == "0":
        return 0
    poly = 0
    for raw_term in text.split("+"):
        term = raw_term.strip()
        if not term:
            raise ValueError(f"malformed polynomial string: {text!r}")
        if term == "1":
            exponent = 0
        elif term == "x":
            exponent = 1
        elif term.startswith("x^"):
            exponent = int(term[2:])
            if exponent < 0:
                raise ValueError(f"negative exponent in {text!r}")
        else:
            raise ValueError(f"unrecognised term {term!r} in {text!r}")
        if poly >> exponent & 1:
            raise ValueError(f"duplicate term {term!r} in {text!r}")
        poly |= 1 << exponent
    return poly


def _prime_factors(n: int) -> List[int]:
    """Return the distinct prime factors of ``n`` in increasing order."""
    factors: List[int] = []
    divisor = 2
    while divisor * divisor <= n:
        if n % divisor == 0:
            factors.append(divisor)
            while n % divisor == 0:
                n //= divisor
        divisor += 1
    if n > 1:
        factors.append(n)
    return factors


def _check_non_negative(*values: int) -> None:
    for value in values:
        if value < 0:
            raise ValueError(f"polynomials must be non-negative integers, got {value}")
