"""Experiment E-CP: critical-path analysis of the I-Poly XOR stage.

Section 3 makes two hardware claims that can be checked analytically:

* the XOR trees are small — "the implementation of such a function for a
  cache with an 8-bit index would require just eight XOR gates" and "the
  number of inputs is never higher than 5" for the polynomials used in the
  experiments;
* the 19 low-order address bits the hash consumes are available (in a binary
  carry-lookahead adder for 64-bit addresses) after about 9 block delays,
  versus about 11 for the complete addition, so the XOR stage can hide in the
  slack unless the design already overlaps cache access with the add.

This driver derives the XOR matrices of the experiment's index functions,
reports their fan-in / gate-count / tree-depth costs, and evaluates the CLA
timing model for a configurable range of hash widths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..analysis.reporting import TableBuilder
from ..core.index import IPolyIndexing
from ..core.xor_matrix import HardwareCost, choose_low_fanin_polynomial, derive_xor_matrix
from ..models.cla_timing import ClaTimingModel

__all__ = ["CriticalPathResult", "run_critical_path_study"]


@dataclass
class CriticalPathResult:
    """Hardware-cost and timing figures for a set of index-function widths."""

    address_bits: int
    costs: Dict[str, HardwareCost] = field(default_factory=dict)
    cla_delays: Dict[int, Dict[str, int]] = field(default_factory=dict)

    def max_fan_in(self) -> int:
        """Largest XOR fan-in over all evaluated index functions."""
        return max(cost.max_fan_in for cost in self.costs.values())

    def cost_table(self) -> TableBuilder:
        """XOR-tree cost per index configuration."""
        columns = ["index bits", "max fan-in", "mean fan-in", "2-input gates",
                   "tree depth"]
        table = TableBuilder(columns, row_label="configuration")
        for label, cost in self.costs.items():
            table.add_row(label, {
                "index bits": cost.index_bits,
                "max fan-in": cost.max_fan_in,
                "mean fan-in": cost.mean_fan_in,
                "2-input gates": cost.two_input_gates,
                "tree depth": cost.tree_depth_gates,
            })
        return table

    def timing_table(self) -> TableBuilder:
        """CLA availability of the hash input bits versus the full addition."""
        columns = ["low-bits delay", "full-add delay", "slack", "xor hidden"]
        table = TableBuilder(columns, row_label="hash bits")
        for bits, row in self.cla_delays.items():
            table.add_row(str(bits), {
                "low-bits delay": row["low_bits_delay"],
                "full-add delay": row["full_add_delay"],
                "slack": row["slack"],
                "xor hidden": "yes" if row["slack"] >= 1 else "no",
            })
        return table

    def render(self) -> str:
        """Render both tables."""
        return (self.cost_table().render(title="XOR-tree implementation cost")
                + "\n\n"
                + self.timing_table().render(title="CLA timing (block delays)"))


def run_critical_path_study(
        index_bit_widths: Sequence[int] = (7, 8),
        address_bits: int = 19,
        hash_bit_widths: Sequence[int] = (13, 19),
        cla_address_bits: int = 64) -> CriticalPathResult:
    """Evaluate XOR-tree costs and CLA slack for the paper's configurations.

    For each index width the polynomial is chosen with
    :func:`~repro.core.xor_matrix.choose_low_fanin_polynomial`, modelling a
    designer who picks the cheapest irreducible polynomial — which is how the
    paper's "never higher than 5" figure arises.
    """
    result = CriticalPathResult(address_bits=address_bits)
    for bits in index_bit_widths:
        poly = choose_low_fanin_polynomial(bits, address_bits)
        func = IPolyIndexing(1 << bits, address_bits=address_bits,
                             polynomials=[poly])
        cost = derive_xor_matrix(func).cost()
        result.costs[f"{bits}-bit index / {address_bits} address bits"] = cost

    model = ClaTimingModel(address_bits=cla_address_bits, block_bits=2)
    for bits in hash_bit_widths:
        result.cla_delays[bits] = {
            "low_bits_delay": model.delay_for_bits(bits),
            "full_add_delay": model.full_add_delay,
            "slack": model.slack_for_bits(bits),
        }
    return result
