"""Sweep-wide memoisation of derived address arrays.

A sweep runs many tasks over the same few traces: the replacement study
drives every (organisation, policy) pair with one program trace, the
miss-ratio study drives seven organisations with it, and Figure 1 revisits
each stride once per scheme.  Each task re-derives the same two arrays from
scratch — the block numbers of the batch and the per-way set indices of the
cache's placement function.  Both are pure functions of long-lived inputs,
so this module keeps small, size-bounded, process-global memo tables for
them (each worker process of a fan-out sweep holds its own; thread-mode
workers share their process's tables, which is why
:class:`~repro.core.memo_util.BoundedMemo` is lock-guarded).

Keys combine the *semantic* identity of the computation (block size, the
index function's :attr:`~repro.core.index.IndexFunction.cache_key`, the way)
with the *object* identity of the input array.  Two safety rules keep
identity-keying sound:

* the entry stores a strong reference to its input and is only served
  while that reference still ``is`` the argument, so a recycled ``id()``
  can never alias two different traces;
* only **immutable** input arrays participate at all — a writable array
  can be mutated in place between runs, which no identity check can see,
  so writable inputs are recomputed fresh every call (exactly the
  un-memoised behaviour).

The trace cache in :mod:`repro.trace.batching` hands out read-only arrays
with stable identity, which is what makes its traces memoisable here.
Results are marked read-only before they are shared.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..core.memo_util import BoundedMemo

__all__ = [
    "cached_block_numbers",
    "cached_set_indices",
    "cached_set_index_lists",
    "memo_info",
    "memo_clear",
]

#: Block-number arrays per (addresses identity, block size).
_BLOCKS = BoundedMemo(32, 32 * 1024 * 1024)
#: Set-index arrays per (index-function key, way, blocks identity).
_SETS = BoundedMemo(64, 32 * 1024 * 1024)
#: Plain-list views of set-index arrays, same keyspace as :data:`_SETS`.
#: The byte estimate counts the list structure (one pointer per element),
#: which is only honest while every element is a CPython-interned small int
#: — so :func:`cached_set_index_lists` bypasses this table for geometries
#: whose indices can exceed the interned range (see _INTERNED_INDEX_LIMIT).
_SET_LISTS = BoundedMemo(64, 32 * 1024 * 1024,
                         nbytes_of=lambda value: 56 + 8 * len(value))

#: Largest ``num_sets`` whose indices (0..num_sets-1) are all CPython
#: interned small ints (the cache covers -5..256).  Above this, each list
#: element is a ~28-byte boxed int the pointer-size estimate cannot see,
#: and the list memo would silently retain several times its byte budget —
#: so bigger geometries recompute ``tolist()`` per batch instead.
_INTERNED_INDEX_LIMIT = 257


def cached_block_numbers(batch, block_size: int) -> np.ndarray:
    """``batch.block_numbers(block_size)``, memoised on the address array.

    Only *immutable* address arrays participate (the trace cache hands
    those out): a writable array can be mutated in place between runs, and
    the identity anchor cannot see that — serving the stale derivation
    would silently simulate the old trace.  Writable inputs are computed
    fresh on every call, exactly like the un-memoised engine did.
    """
    addresses = batch.addresses
    if addresses.flags.writeable:
        return batch.block_numbers(block_size)

    def build() -> np.ndarray:
        blocks = batch.block_numbers(block_size)
        blocks.flags.writeable = False
        return blocks

    return _BLOCKS.get((id(addresses), block_size), build, anchor=addresses)


def cached_set_indices(vec_index, blocks: np.ndarray, way: int) -> np.ndarray:
    """One way's set indices for ``blocks`` as a shared int64 array.

    Memoised per (index-function ``cache_key``, way, blocks identity) when
    ``blocks`` is immutable; writable block arrays — and functions that do
    not declare a :attr:`cache_key` — are computed fresh every time (never
    cached, never aliased).
    """
    fn_key = vec_index.scalar.cache_key
    if fn_key is None or blocks.flags.writeable:
        return vec_index.way_indices(blocks, way).astype(np.int64)

    def build() -> np.ndarray:
        sets = vec_index.way_indices(blocks, way).astype(np.int64)
        sets.flags.writeable = False
        return sets

    return _SETS.get((fn_key, way, id(blocks)), build, anchor=blocks)


def cached_set_index_lists(vec_index, blocks: np.ndarray, way: int) -> list:
    """One way's set indices for ``blocks`` as a shared plain Python list.

    The per-way tight kernels (skewed set-associative, victim, generic
    replacement) iterate plain lists, not arrays — and a sweep re-runs the
    same ``ndarray.tolist()`` conversion for every task that shares a trace.
    This memoises the list form alongside the array form, with the same
    safety rules as :func:`cached_set_indices` (keyed on the function's
    ``cache_key`` + blocks identity, immutable inputs only).

    The returned list is shared between callers and **must not be
    mutated**; the kernels only ever read their index streams.
    """
    fn_key = vec_index.scalar.cache_key
    if (fn_key is None or blocks.flags.writeable
            or vec_index.scalar.num_sets > _INTERNED_INDEX_LIMIT):
        return cached_set_indices(vec_index, blocks, way).tolist()
    return _SET_LISTS.get(
        (fn_key, way, id(blocks)),
        lambda: cached_set_indices(vec_index, blocks, way).tolist(),
        anchor=blocks)


def memo_info() -> Dict[str, Dict[str, int]]:
    """Hit/miss/size counters of the memo tables (for tests and reports)."""
    return {"blocks": _BLOCKS.info(), "sets": _SETS.info(),
            "set_lists": _SET_LISTS.info()}


def memo_clear() -> None:
    """Drop every memoised array and list (all tables) and zero the counters."""
    _BLOCKS.clear()
    _SETS.clear()
    _SET_LISTS.clear()
