"""E-ENG: scalar-reference versus vectorized-engine throughput.

Drives the same 1M-access strided trace through the scalar
:class:`~repro.cache.set_assoc.SetAssociativeCache` and through the batch
engine for each of the paper's four index-function families, reporting
accesses/second for both paths.  Besides tracking the speedup, each
benchmark asserts *bit-exact* :class:`~repro.cache.stats.CacheStats`
agreement, so the performance claim can never drift away from correctness.

Every row is bounded — no organisation is merely "tracked" any more:

* the LRU batch paths must stay >= 10x over scalar on every index family;
* the set-decomposed replacement kernels (FIFO, random, PLRU) must stay
  >= 10x over scalar on the conventional organisation;
* the skew-decomposed kernels (FIFO, random, PLRU on skewed I-Poly
  placement) and the decomposed victim kernels (all four policies) must
  also stay >= 10x over scalar;
* the multi-level compositions — the inclusive two-level hierarchy and the
  virtual-real hierarchy with a TLB-fronted page table — must stay >= 10x
  over the per-access scalar protocols (bit-exact per-level CacheStats,
  hole/back-invalidation counters, page faults and TLB hits/misses).

The trace is built
through the process-global trace cache, so the vectorized timings include
the sweep-wide reuse of materialised addresses and per-scheme index arrays
that a real sweep worker enjoys (the scalar path replays per access and
cannot benefit).

Runs under pytest-benchmark::

    pytest benchmarks/bench_engine.py --benchmark-only

or standalone, printing a comparison table and appending a run record to the
machine-readable ``BENCH_engine.json`` trajectory artifact (one entry per
invocation, newest last) so performance can be tracked across PRs without
overwriting history::

    PYTHONPATH=src python benchmarks/bench_engine.py
    PYTHONPATH=src python benchmarks/bench_engine.py --smoke

``--smoke`` runs a short trace through every kernel-dispatch path —
including the one-pass multi-configuration profiler of the sweep section —
with bit-exactness still asserted but the speedup bounds skipped, so CI can
catch dispatch regressions on every push without flaky wall-clock
assertions; smoke runs append to the trajectory artifact tagged
``"smoke": true`` (the CI smoke job uploads the file as a workflow
artifact).  Each row records the kernel that served it, straight from
``dispatch_strategy(batch)``, and each run carries a ``sweep`` section
comparing the profiler against the per-config vectorized path on a
16-configuration conventional-LRU capacity/associativity grid (bounded at
>= 5x for full-length runs).  A ``profiler`` section extends the sweep
story to the approximate and FIFO paths: SHARDS-sampled profiling must
beat exact profiling >= 20x on a dense 80-configuration LRU grid with
per-seed miss-ratio error within ``SAMPLED_ERROR_BOUND``, and the
single-pass FIFO profile must beat per-config FIFO kernels >= 5x,
bit-exact on every cell.  ``REPRO_BENCH_ENGINE_ACCESSES`` overrides the
trace length (default 1M); ``REPRO_BENCH_ENGINE_JSON`` overrides the
artifact path (empty disables it).
"""

import argparse
import json
import os
import platform
import tempfile
import time

import numpy as np
import pytest

from repro.cache.hierarchy import TwoLevelHierarchy
from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.victim import VictimCache
from repro.cache.virtual_real import VirtualRealHierarchy
from repro.core.index import make_index_function
from repro.engine import (
    AddressBatch,
    BatchSetAssociativeCache,
    BatchVictimCache,
    batch_hierarchy_like,
    batch_virtual_real_like,
    profile_cache_clear,
    run_lru_grid,
)
from repro.experiments.config import (
    PAPER_HASH_BITS,
    PAPER_L1_8KB,
    CacheGeometry,
    build_cache,
)
from repro.memory.paging import TLB, PageTable
from repro.memory.translation import AddressTranslator
from repro.trace.batching import cached_strided_arrays
from repro.trace.record import MemoryAccess
from repro.trace.stream import iter_trace_chunks, write_trace_v2
from repro.trace.trace_io import write_binary_trace

#: The four families of Figure 1 / Table 2.
SCHEMES = ["a2", "a2-Hx-Sk", "a2-Hp", "a2-Hp-Sk"]

#: Strided workload shape: 512 elements spaced 67 elements apart sweeps a
#: footprint comparable to the 8 KB cache, so every family sees a mix of
#: hits, conflict misses and evictions rather than a degenerate all-hit loop.
ELEMENTS = 512
STRIDE = 67

#: Minimum vectorized-over-scalar throughput ratio for the LRU fast paths.
REQUIRED_SPEEDUP = 10.0

#: Minimum ratio for the set-decomposed replacement kernels on the
#: conventional organisation, the skew-decomposed kernels on skewed
#: placement, and the decomposed victim kernels (same bar as LRU — the
#: point of these layers).
REQUIRED_SPEEDUP_POLICY = 10.0

#: Minimum one-pass-profiler-over-per-config ratio on the conventional-LRU
#: capacity/associativity sweep below.  Both sides are the *vectorized*
#: engine — this bounds the sweep-level win of the multi-configuration
#: profiler on top of the already-bounded per-config kernels.
REQUIRED_SPEEDUP_SWEEP = 5.0

#: The conventional-LRU capacity/associativity grid of the sweep section:
#: two set counts x eight associativities = 16 configurations (2 KB-32 KB at
#: 32-byte lines), priced by two one-pass level profiles.
SWEEP_GRID = [(num_sets, ways) for num_sets in (64, 128)
              for ways in range(1, 9)]

#: Minimum sampled-over-exact profiling ratio on the dense LRU grid below
#: at the production rate R = 0.01 (measured ~50-60x; 20x is the tentpole's
#: asserted floor with generous headroom).
REQUIRED_SPEEDUP_SAMPLED = 20.0

#: Maximum |sampled - exact| miss-ratio error tolerated on any cell of the
#: dense grid, for every benchmarked seed.  Measured envelope on the
#: spread-mass trace is ~0.03 at R = 0.01; hot-set traces (a handful of
#: blocks carrying most of the access mass) can exceed any fixed bound and
#: are not what sampled profiling is for — see the README section.
SAMPLED_ERROR_BOUND = 0.05

#: Hash seeds the sampled section measures (the error bound must hold for
#: each one, not just a lucky draw).
SAMPLED_SEEDS = (0, 1, 2)

#: Nominal spatial sampling rate of the sampled section.
SAMPLED_RATE = 0.01

#: The dense conventional-LRU grid of the sampled section: five set counts
#: x sixteen associativities = 80 configurations (16 KB-4 MB at 32-byte
#: lines), priced out of five exact or five miniature level passes.
SAMPLED_GRID = [(num_sets, ways) for num_sets in (512, 1024, 2048, 4096, 8192)
                for ways in range(1, 17)]

#: Minimum FIFO-profile-over-per-config-kernels ratio on the FIFO grid
#: below.  The event replay's cost scales with the *miss* count, so the
#: win is trace-dependent: locality-rich traces (m88ksim: ~2-4% miss
#: ratios) measure ~13x, miss-heavy ones (gcc: ~10-20%) only ~2x.  The
#: bench uses the locality-rich workload and asserts the tentpole's 5x.
REQUIRED_SPEEDUP_FIFO_GRID = 5.0

#: The bit-selection FIFO grid: four set counts x four associativities
#: = 16 configurations, priced by one occurrence-list pass + 16 miss-driven
#: event replays.
FIFO_GRID = [(num_sets, ways) for num_sets in (256, 512, 1024, 2048)
             for ways in (1, 2, 4, 8)]

#: Workload of the FIFO grid section (see REQUIRED_SPEEDUP_FIFO_GRID).
FIFO_GRID_PROGRAM = "m88ksim"

#: Below this trace length the constant batch-setup overhead dominates and
#: wall-clock ratios are noise, so the speedup assertions are skipped (the
#: bit-exactness assertions always run).
MIN_ACCESSES_FOR_SPEEDUP_CHECK = 200_000

#: Trace length of ``--smoke`` runs: big enough to leave the trivial-batch
#: regime, small enough to finish in seconds on a shared runner.
SMOKE_ACCESSES = 60_000

#: Trajectory length bound of the JSON artifact (newest runs kept).
MAX_TRAJECTORY_RUNS = 50


def _env_int(name, default):
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


BENCH_ENGINE_ACCESSES = _env_int("REPRO_BENCH_ENGINE_ACCESSES", 1_000_000)

#: Path of the machine-readable artifact ``main()`` appends to (empty disables).
BENCH_ENGINE_JSON = os.environ.get("REPRO_BENCH_ENGINE_JSON",
                                   "BENCH_engine.json")

#: Non-LRU replacement policies benchmarked per organisation kind.
POLICY_ROWS = ["fifo", "random", "plru"]

#: Multi-level rows: a 16 KB skewed I-Poly L1 over a 1 MB conventional
#: write-back L2 — the Section 3 deployment shape.  At this L1 capacity the
#: strided trace misses ~38% of the time, so the miss stream between the
#: levels is busy without being degenerate.
HIERARCHY_L1 = CacheGeometry(16 * 1024, block_size=32, ways=2)
HIERARCHY_L2_BYTES = 1 << 20

#: Translation front-end of the virtual-real row.  The scalar protocol
#: translates every access through the TLB, the batch engine through the
#: run-collapsing TLB kernel; counters must agree exactly either way.
VR_PAGE_SIZE = 4096
VR_TLB_ENTRIES = 64
VR_SEED = 999


def _make_hierarchy_caches():
    l1 = build_cache(HIERARCHY_L1, "a2-Hp-Sk", address_bits=PAPER_HASH_BITS)
    l2 = build_cache(CacheGeometry(HIERARCHY_L2_BYTES,
                                   block_size=HIERARCHY_L1.block_size,
                                   ways=2),
                     "a2", write_policy="write-back-allocate")
    return l1, l2


def _make_vr_pair():
    """Scalar virtual-real hierarchy + its batch twin, identically seeded."""
    page_table = PageTable(page_size=VR_PAGE_SIZE, allocation="scatter",
                           seed=VR_SEED)
    tlb = TLB(entries=VR_TLB_ENTRIES, page_size=VR_PAGE_SIZE)
    translate = AddressTranslator(page_table, tlb).translate
    scalar = VirtualRealHierarchy(*_make_hierarchy_caches(),
                                  translate=translate,
                                  page_size=VR_PAGE_SIZE)
    twin_table = PageTable(page_size=VR_PAGE_SIZE, allocation="scatter",
                           seed=VR_SEED)
    twin_tlb = TLB(entries=VR_TLB_ENTRIES, page_size=VR_PAGE_SIZE)
    batch = batch_virtual_real_like(scalar, twin_table, tlb=twin_tlb)
    return scalar, page_table, tlb, batch, twin_table, twin_tlb


def _build_trace(accesses):
    sweeps = max(1, accesses // ELEMENTS)
    addresses, writes = cached_strided_arrays(STRIDE, elements=ELEMENTS,
                                              sweeps=sweeps)
    return AddressBatch.from_arrays(addresses, writes)


def _make_caches(scheme, replacement=None):
    geometry = PAPER_L1_8KB

    def index_fn():
        return make_index_function(scheme, num_sets=geometry.num_sets,
                                   ways=geometry.ways,
                                   address_bits=PAPER_HASH_BITS)

    scalar = SetAssociativeCache(geometry.size_bytes, geometry.block_size,
                                 geometry.ways, index_function=index_fn(),
                                 replacement=replacement)
    batch = BatchSetAssociativeCache(geometry.size_bytes, geometry.block_size,
                                     geometry.ways, index_function=index_fn(),
                                     replacement=replacement)
    return scalar, batch


def _stats_tuple(stats):
    return (stats.loads, stats.stores, stats.load_misses, stats.store_misses,
            stats.evictions, stats.writebacks, tuple(sorted(stats.miss_kinds.items())))


def _run_scalar(scalar, batch_trace):
    access = scalar.access
    for address in batch_trace.addresses.tolist():
        access(address, False)


def compare_engines(scheme, accesses=BENCH_ENGINE_ACCESSES, replacement=None):
    """Time both engines on the same trace; returns a result dict."""
    trace = _build_trace(accesses)
    scalar, batch = _make_caches(scheme, replacement=replacement)
    # The dispatcher's verdict for this (configuration, batch), recorded
    # before the run (dispatch depends on cold state and the store mask) so
    # the trajectory shows which kernel produced each row.
    kernel = batch.dispatch_strategy(trace)

    start = time.perf_counter()
    _run_scalar(scalar, trace)
    scalar_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batch.run(trace)
    vector_seconds = time.perf_counter() - start

    assert _stats_tuple(scalar.stats) == _stats_tuple(batch.stats), (
        f"CacheStats diverged between engines for {scheme}")
    n = len(trace)
    return {
        "scheme": scheme,
        "replacement": replacement or "lru",
        "kernel": kernel,
        "accesses": n,
        "scalar_aps": n / scalar_seconds,
        "vector_aps": n / vector_seconds,
        "speedup": scalar_seconds / vector_seconds,
        "miss_ratio": scalar.stats.miss_ratio,
    }


def compare_victim_kernel(accesses=BENCH_ENGINE_ACCESSES, replacement=None):
    """Time the scalar victim cache against the BatchVictimCache kernel."""
    trace = _build_trace(accesses)
    geometry = PAPER_L1_8KB
    scalar = VictimCache(geometry.size_bytes, geometry.block_size,
                         ways=1, victim_entries=8, replacement=replacement)
    batch = BatchVictimCache(geometry.size_bytes, geometry.block_size,
                             ways=1, victim_entries=8,
                             replacement=replacement)
    kernel = batch.dispatch_strategy(trace)

    start = time.perf_counter()
    access = scalar.access
    for address in trace.addresses.tolist():
        access(address, False)
    scalar_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batch.run(trace)
    vector_seconds = time.perf_counter() - start

    assert scalar.stats.load_misses == batch.stats.load_misses, (
        "victim-cache kernels diverged")
    assert scalar.victim_hits == batch.victim_hits
    assert scalar.main_hits == batch.main_hits
    n = len(trace)
    return {
        "scheme": "victim-direct+8",
        "replacement": replacement or "lru",
        "kernel": kernel,
        "accesses": n,
        "scalar_aps": n / scalar_seconds,
        "vector_aps": n / vector_seconds,
        "speedup": scalar_seconds / vector_seconds,
        "miss_ratio": scalar.stats.miss_ratio,
    }


def compare_hierarchy_engines(accesses=BENCH_ENGINE_ACCESSES):
    """Time the inclusive two-level hierarchy on both engines."""
    trace = _build_trace(accesses)
    scalar = TwoLevelHierarchy(*_make_hierarchy_caches())
    batch = batch_hierarchy_like(scalar)
    kernel = batch.dispatch_strategy(trace)

    start = time.perf_counter()
    access = scalar.access
    for address in trace.addresses.tolist():
        access(address, False)
    scalar_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batch.run(trace)
    vector_seconds = time.perf_counter() - start

    assert _stats_tuple(scalar.l1.stats) == _stats_tuple(batch.l1.stats), (
        "L1 CacheStats diverged between hierarchy engines")
    assert _stats_tuple(scalar.l2.stats) == _stats_tuple(batch.l2.stats), (
        "L2 CacheStats diverged between hierarchy engines")
    assert (scalar.holes_created, scalar.l2_misses_causing_holes,
            scalar.back_invalidations) == (
            batch.holes_created, batch.l2_misses_causing_holes,
            batch.back_invalidations), (
        "hole accounting diverged between hierarchy engines")
    n = len(trace)
    return {
        "scheme": "hierarchy-16K/1M",
        "replacement": "lru",
        "kernel": kernel,
        "accesses": n,
        "scalar_aps": n / scalar_seconds,
        "vector_aps": n / vector_seconds,
        "speedup": scalar_seconds / vector_seconds,
        "miss_ratio": scalar.l1.stats.miss_ratio,
    }


def compare_virtual_real_engines(accesses=BENCH_ENGINE_ACCESSES):
    """Time the virtual-real hierarchy (TLB-fronted) on both engines."""
    trace = _build_trace(accesses)
    scalar, table, tlb, batch, twin_table, twin_tlb = _make_vr_pair()
    kernel = batch.dispatch_strategy(trace)

    start = time.perf_counter()
    access = scalar.access
    for address in trace.addresses.tolist():
        access(address, False)
    scalar_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batch.run(trace)
    vector_seconds = time.perf_counter() - start

    assert _stats_tuple(scalar.l1.stats) == _stats_tuple(batch.l1.stats), (
        "L1 CacheStats diverged between virtual-real engines")
    assert _stats_tuple(scalar.l2.stats) == _stats_tuple(batch.l2.stats), (
        "L2 CacheStats diverged between virtual-real engines")
    assert (scalar.holes_created, scalar.l2_misses_causing_holes,
            scalar.alias_invalidations) == (
            batch.holes_created, batch.l2_misses_causing_holes,
            batch.alias_invalidations), (
        "hole accounting diverged between virtual-real engines")
    assert table.page_faults == twin_table.page_faults, (
        "page-fault counts diverged between virtual-real engines")
    assert (tlb.hits, tlb.misses) == (twin_tlb.hits, twin_tlb.misses), (
        "TLB counters diverged between virtual-real engines")
    n = len(trace)
    return {
        "scheme": "virtual-real-16K/1M",
        "replacement": "lru",
        "kernel": kernel,
        "accesses": n,
        "scalar_aps": n / scalar_seconds,
        "vector_aps": n / vector_seconds,
        "speedup": scalar_seconds / vector_seconds,
        "miss_ratio": scalar.l1.stats.miss_ratio,
    }


def compare_lru_grid_sweep(accesses=BENCH_ENGINE_ACCESSES, check_scalar=True):
    """Time the 16-configuration LRU grid: one-pass profiler vs per-config.

    Both timings drive the *vectorized* engine over the same trace through
    :func:`repro.engine.run_lru_grid` — ``profile="never"`` runs each
    configuration's own batch kernel, ``profile="always"`` prices the whole
    grid out of one capped stack pass per set count.  Every configuration's
    counts must agree exactly between the two paths (and, when
    ``check_scalar`` is set, with a scalar-model replay), so the sweep-level
    speedup claim can never drift away from correctness.

    The scalar cross-check replays the trace once per grid configuration
    outside the timed regions; at the default 1M accesses that dominates
    this function's wall clock.  It stays on by default because the sweep
    section's contract is exact equality against *both* the per-config
    kernels and the scalar models — pass ``check_scalar=False`` for a
    timing-only run.
    """
    trace = _build_trace(accesses)
    block_size = PAPER_L1_8KB.block_size

    start = time.perf_counter()
    per_config = run_lru_grid(trace, block_size, SWEEP_GRID, profile="never")
    per_config_seconds = time.perf_counter() - start

    profile_cache_clear()  # time a cold profile, not a memo hit
    start = time.perf_counter()
    profiled = run_lru_grid(trace, block_size, SWEEP_GRID, profile="always")
    profile_seconds = time.perf_counter() - start

    configs = []
    for num_sets, ways in SWEEP_GRID:
        counts = profiled[(num_sets, ways)]
        assert counts == per_config[(num_sets, ways)], (
            f"profiler diverged from per-config kernels at "
            f"{num_sets} sets x {ways} ways")
        if check_scalar:
            scalar = SetAssociativeCache(num_sets * ways * block_size,
                                         block_size, ways)
            _run_scalar(scalar, trace)
            scalar_counts = (scalar.stats.loads, scalar.stats.stores,
                             scalar.stats.load_misses,
                             scalar.stats.store_misses)
            assert scalar_counts == (counts.loads, counts.stores,
                                     counts.load_misses,
                                     counts.store_misses), (
                f"profiler diverged from the scalar model at "
                f"{num_sets} sets x {ways} ways")
            assert counts.miss_ratio == scalar.stats.miss_ratio
        configs.append({"num_sets": num_sets, "ways": ways,
                        "size_bytes": num_sets * ways * block_size,
                        "miss_ratio": counts.miss_ratio})
    return {
        "kernel": "multiconfig-profile",
        "configs": len(SWEEP_GRID),
        "accesses": len(trace),
        "per_config_seconds": per_config_seconds,
        "profile_seconds": profile_seconds,
        "speedup": per_config_seconds / profile_seconds,
        "scalar_checked": bool(check_scalar),
        "rows": configs,
    }


def _spread_trace(accesses, seed=99, store_fraction=0.3):
    """A spread-mass trace for the sampled section: hot / warm / cold
    regions plus a streaming component, with no single block carrying a
    macroscopic fraction of the access mass.  Spatial sampling is a
    per-block coin flip, so this is the trace class its error bound is
    stated for (the strided bench trace concentrates mass on 512 blocks
    and would measure sampler luck, not profiling accuracy)."""
    rng = np.random.default_rng(seed)
    comp = rng.choice(4, size=accesses, p=[0.35, 0.30, 0.20, 0.15])
    blocks = np.empty(accesses, dtype=np.int64)
    blocks[comp == 0] = rng.integers(0, 4096, size=(comp == 0).sum())
    blocks[comp == 1] = 4096 + rng.integers(0, 32768, size=(comp == 1).sum())
    blocks[comp == 2] = 40000 + rng.integers(0, 1 << 18,
                                             size=(comp == 2).sum())
    stream = comp == 3
    blocks[stream] = (1 << 19) + np.arange(stream.sum())
    addresses = blocks.astype(np.uint64) << np.uint64(5)
    writes = rng.random(accesses) < store_fraction
    return AddressBatch.from_arrays(addresses, writes)


def compare_sampled_profiler(accesses=BENCH_ENGINE_ACCESSES):
    """Time SHARDS-sampled against exact profiling on the dense LRU grid.

    Both sides price all ``len(SAMPLED_GRID)`` configurations through
    :func:`repro.engine.run_lru_grid` over the same spread-mass trace —
    ``profile="always"`` runs the exact one-pass-per-level profiler,
    ``profile="sampled"`` the miniature-simulation profiles at
    ``SAMPLED_RATE``.  Each seed in ``SAMPLED_SEEDS`` is timed separately
    and its worst-cell miss-ratio error recorded; the caller asserts the
    speedup and error bounds on full-length runs.
    """
    trace = _spread_trace(accesses)
    block_size = 32

    profile_cache_clear()  # time a cold exact profile, not a memo hit
    start = time.perf_counter()
    exact = run_lru_grid(trace, block_size, SAMPLED_GRID, profile="always")
    exact_seconds = time.perf_counter() - start

    seeds = []
    for seed in SAMPLED_SEEDS:
        start = time.perf_counter()
        sampled = run_lru_grid(trace, block_size, SAMPLED_GRID,
                               profile="sampled", sample_rate=SAMPLED_RATE,
                               profile_seed=seed)
        seconds = time.perf_counter() - start
        max_error = max(abs(sampled[key].miss_ratio - exact[key].miss_ratio)
                        for key in SAMPLED_GRID)
        seeds.append({"seed": seed, "seconds": seconds,
                      "speedup": exact_seconds / seconds,
                      "max_miss_ratio_error": max_error})
    return {
        "kernel": "shards-sampled-profile",
        "configs": len(SAMPLED_GRID),
        "accesses": len(trace),
        "rate": SAMPLED_RATE,
        "exact_seconds": exact_seconds,
        "seeds": seeds,
    }


def compare_fifo_grid(accesses=BENCH_ENGINE_ACCESSES, check_scalar=False):
    """Time the single-pass FIFO profile against per-config FIFO kernels.

    Both sides drive :func:`repro.engine.run_lru_grid` with
    ``replacement="fifo"`` over the same workload trace —
    ``profile="never"`` runs each configuration's set-decomposed FIFO
    kernel, ``profile="always"`` prices the whole grid out of one
    occurrence-list pass plus a miss-driven event replay per cell.  Every
    cell must agree exactly (FIFO profiling is exact, not sampled), with an
    optional scalar-model cross-check outside the timed regions.
    """
    from repro.trace.batching import cached_workload_arrays

    addresses, writes = cached_workload_arrays(FIFO_GRID_PROGRAM,
                                               length=accesses)
    trace = AddressBatch.from_arrays(addresses, writes)
    block_size = 32

    start = time.perf_counter()
    per_config = run_lru_grid(trace, block_size, FIFO_GRID, profile="never",
                              replacement="fifo")
    per_config_seconds = time.perf_counter() - start

    start = time.perf_counter()
    profiled = run_lru_grid(trace, block_size, FIFO_GRID, profile="always",
                            replacement="fifo")
    profile_seconds = time.perf_counter() - start

    for num_sets, ways in FIFO_GRID:
        counts = profiled[(num_sets, ways)]
        assert counts == per_config[(num_sets, ways)], (
            f"FIFO profile diverged from per-config kernels at "
            f"{num_sets} sets x {ways} ways")
        if check_scalar:
            scalar = SetAssociativeCache(num_sets * ways * block_size,
                                         block_size, ways,
                                         replacement="fifo")
            for address, is_write in zip(trace.addresses.tolist(),
                                         trace.is_write.tolist()):
                scalar.access(address, is_write=is_write)
            assert (scalar.stats.loads, scalar.stats.stores,
                    scalar.stats.load_misses, scalar.stats.store_misses) == (
                counts.loads, counts.stores,
                counts.load_misses, counts.store_misses), (
                f"FIFO profile diverged from the scalar model at "
                f"{num_sets} sets x {ways} ways")
    return {
        "kernel": "multiconfig-fifo-profile",
        "configs": len(FIFO_GRID),
        "accesses": len(trace),
        "program": FIFO_GRID_PROGRAM,
        "per_config_seconds": per_config_seconds,
        "profile_seconds": profile_seconds,
        "speedup": per_config_seconds / profile_seconds,
        "scalar_checked": bool(check_scalar),
    }


#: Minimum v2-chunked-over-v1-record throughput ratio of the trace-I/O
#: section.  Reading packed columns straight into arrays versus parsing one
#: 32-byte struct per access is a couple of orders of magnitude apart in
#: practice, so 5x is a conservative regression tripwire, not a tight bound.
REQUIRED_SPEEDUP_TRACE_IO = 5.0

#: Accesses per streamed batch in the trace-I/O section.
TRACE_IO_CHUNK = 1 << 18


def compare_trace_io(accesses=BENCH_ENGINE_ACCESSES):
    """Time on-disk trace ingestion: v2 mmap / v2 buffered / v1 records.

    Writes the benchmark trace to a temporary directory in both formats,
    then times three full chunked passes into :class:`AddressBatch` form:
    the packed v2 columns via ``np.memmap``, the same file through buffered
    reads (the bounded-RSS path the nightly streaming job uses), and the
    v1 per-record binary format.  Every pass must reproduce the written
    arrays exactly before its throughput is reported.
    """
    trace = _build_trace(accesses)
    addresses, writes = trace.addresses, trace.is_write
    rows = []
    with tempfile.TemporaryDirectory(prefix="bench-trace-io-") as tmp:
        v2_path = os.path.join(tmp, "trace.ctr2")
        v1_path = os.path.join(tmp, "trace.bin")
        write_trace_v2(v2_path, addresses, writes)
        write_binary_trace(v1_path, (
            MemoryAccess(address=a, is_write=w)
            for a, w in zip(addresses.tolist(), writes.tolist())))

        for label, path, use_mmap in (("v2-mmap", v2_path, True),
                                      ("v2-read", v2_path, False),
                                      ("v1-records", v1_path, False)):
            start = time.perf_counter()
            got_a, got_w, count = [], [], 0
            for batch in iter_trace_chunks(path, chunk_size=TRACE_IO_CHUNK,
                                           use_mmap=use_mmap):
                got_a.append(batch.addresses)
                got_w.append(batch.is_write)
                count += len(batch)
            seconds = time.perf_counter() - start
            assert count == len(trace), f"{label}: short read"
            assert np.array_equal(np.concatenate(got_a), addresses), (
                f"{label}: addresses diverged from the written trace")
            assert np.array_equal(np.concatenate(got_w), writes), (
                f"{label}: store mask diverged from the written trace")
            rows.append({"format": label, "accesses": count,
                         "seconds": seconds, "aps": count / seconds,
                         "bytes": os.path.getsize(path)})
    v1_aps = rows[-1]["aps"]
    for row in rows:
        row["speedup_vs_v1"] = row["aps"] / v1_aps
    return {"chunk_size": TRACE_IO_CHUNK, "rows": rows}


@pytest.mark.benchmark(group="engine-trace-io")
def test_trace_io_throughput(benchmark):
    """Chunked v2 streaming beats per-record v1 parsing >= 5x, bit-exact."""
    result = benchmark.pedantic(
        lambda: compare_trace_io(BENCH_ENGINE_ACCESSES),
        rounds=1, iterations=1)
    by_format = {row["format"]: row for row in result["rows"]}
    print("\ntrace-io: " + ", ".join(
        f"{row['format']} {row['aps']:,.0f} acc/s" for row in result["rows"]))
    if BENCH_ENGINE_ACCESSES >= MIN_ACCESSES_FOR_SPEEDUP_CHECK:
        for label in ("v2-mmap", "v2-read"):
            assert by_format[label]["speedup_vs_v1"] >= REQUIRED_SPEEDUP_TRACE_IO, (
                f"{label}: only {by_format[label]['speedup_vs_v1']:.1f}x over "
                f"v1 records (required {REQUIRED_SPEEDUP_TRACE_IO}x)")


@pytest.mark.benchmark(group="engine-sweep")
def test_lru_grid_profiler_throughput(benchmark):
    """The one-pass profiler beats the per-config vectorized sweep >= 5x."""
    trace = _build_trace(BENCH_ENGINE_ACCESSES)
    block_size = PAPER_L1_8KB.block_size

    start = time.perf_counter()
    per_config = run_lru_grid(trace, block_size, SWEEP_GRID, profile="never")
    per_config_seconds = time.perf_counter() - start

    def _profiled_run():
        profile_cache_clear()
        return run_lru_grid(trace, block_size, SWEEP_GRID, profile="always")

    profiled = benchmark.pedantic(_profiled_run, rounds=3, iterations=1)
    profile_seconds = benchmark.stats.stats.min

    assert profiled == per_config, "profiler diverged from per-config kernels"
    speedup = per_config_seconds / profile_seconds
    print(f"\nlru-grid x{len(SWEEP_GRID)}: per-config {per_config_seconds:.2f}s, "
          f"one-pass profile {profile_seconds:.2f}s ({speedup:.1f}x)")
    if len(trace) >= MIN_ACCESSES_FOR_SPEEDUP_CHECK:
        assert speedup >= REQUIRED_SPEEDUP_SWEEP, (
            f"lru-grid sweep: profiler only {speedup:.1f}x over per-config "
            f"(required {REQUIRED_SPEEDUP_SWEEP}x)")


@pytest.mark.benchmark(group="engine-sweep")
def test_sampled_profiler_throughput(benchmark):
    """SHARDS-sampled profiling beats exact >= 20x on the dense LRU grid,
    with every seed's worst-cell miss-ratio error within the bound."""
    result = benchmark.pedantic(
        lambda: compare_sampled_profiler(BENCH_ENGINE_ACCESSES),
        rounds=1, iterations=1)
    print(f"\nsampled-grid x{result['configs']}: exact "
          f"{result['exact_seconds']:.2f}s; " + ", ".join(
              f"seed {s['seed']} {s['seconds']:.2f}s ({s['speedup']:.0f}x, "
              f"max err {s['max_miss_ratio_error']:.3f})"
              for s in result["seeds"]))
    if BENCH_ENGINE_ACCESSES >= MIN_ACCESSES_FOR_SPEEDUP_CHECK:
        for entry in result["seeds"]:
            assert entry["speedup"] >= REQUIRED_SPEEDUP_SAMPLED, (
                f"seed {entry['seed']}: sampled only {entry['speedup']:.1f}x "
                f"over exact (required {REQUIRED_SPEEDUP_SAMPLED}x)")
            assert entry["max_miss_ratio_error"] <= SAMPLED_ERROR_BOUND, (
                f"seed {entry['seed']}: max miss-ratio error "
                f"{entry['max_miss_ratio_error']:.4f} exceeds "
                f"{SAMPLED_ERROR_BOUND}")


@pytest.mark.benchmark(group="engine-sweep")
def test_fifo_grid_profiler_throughput(benchmark):
    """The single-pass FIFO profile beats per-config FIFO kernels >= 5x,
    bit-exact on every grid cell."""
    result = benchmark.pedantic(
        lambda: compare_fifo_grid(BENCH_ENGINE_ACCESSES),
        rounds=1, iterations=1)
    print(f"\nfifo-grid x{result['configs']} ({result['program']}): "
          f"per-config {result['per_config_seconds']:.2f}s, profile "
          f"{result['profile_seconds']:.2f}s ({result['speedup']:.1f}x)")
    if BENCH_ENGINE_ACCESSES >= MIN_ACCESSES_FOR_SPEEDUP_CHECK:
        assert result["speedup"] >= REQUIRED_SPEEDUP_FIFO_GRID, (
            f"fifo-grid: profile only {result['speedup']:.1f}x over "
            f"per-config (required {REQUIRED_SPEEDUP_FIFO_GRID}x)")


def _load_trajectory(path):
    """Previously recorded runs, upgrading the legacy single-run schema."""
    if not path or not os.path.exists(path):
        return []
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return []
    if isinstance(data, dict) and isinstance(data.get("runs"), list):
        return data["runs"]
    if isinstance(data, dict) and "rows" in data:
        # Legacy schema: one flat run per file.  Keep it as the first
        # trajectory entry instead of silently discarding the baseline.
        return [{key: data[key] for key in
                 ("python", "machine", "workload", "rows",
                  "required_speedup_lru", "required_speedup_policy")
                 if key in data}]
    return []


def _write_artifact(rows, accesses, path=BENCH_ENGINE_JSON, sweep=None,
                    smoke=False, trace_io=None, profiler=None):
    """Append this run to the machine-readable trajectory artifact."""
    if not path:
        return None
    runs = _load_trajectory(path)
    runs.append({
        "unix_time": int(time.time()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "smoke": bool(smoke),
        "workload": {"elements": ELEMENTS, "stride": STRIDE,
                     "accesses": accesses, "cache": PAPER_L1_8KB.label},
        "required_speedup_lru": REQUIRED_SPEEDUP,
        "required_speedup_policy": REQUIRED_SPEEDUP_POLICY,
        "required_speedup_sweep": REQUIRED_SPEEDUP_SWEEP,
        "required_speedup_trace_io": REQUIRED_SPEEDUP_TRACE_IO,
        "required_speedup_sampled": REQUIRED_SPEEDUP_SAMPLED,
        "required_speedup_fifo_grid": REQUIRED_SPEEDUP_FIFO_GRID,
        "sampled_error_bound": SAMPLED_ERROR_BOUND,
        "rows": rows,
        "sweep": sweep,
        "trace_io": trace_io,
        "profiler": profiler,
    })
    artifact = {
        "benchmark": "bench_engine",
        "runs": runs[-MAX_TRAJECTORY_RUNS:],
    }
    with open(path, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


@pytest.mark.benchmark(group="engine")
@pytest.mark.parametrize("scheme", SCHEMES)
def test_engine_throughput(benchmark, scheme):
    trace = _build_trace(BENCH_ENGINE_ACCESSES)
    scalar, batch = _make_caches(scheme)

    start = time.perf_counter()
    _run_scalar(scalar, trace)
    scalar_seconds = time.perf_counter() - start

    def _vector_run():
        _, fresh = _make_caches(scheme)
        fresh.run(trace)
        return fresh

    fresh = benchmark.pedantic(_vector_run, rounds=3, iterations=1)
    vector_seconds = benchmark.stats.stats.min

    assert _stats_tuple(scalar.stats) == _stats_tuple(fresh.stats), (
        f"CacheStats diverged between engines for {scheme}")
    speedup = scalar_seconds / vector_seconds
    print(f"\n{scheme}: scalar {len(trace) / scalar_seconds:,.0f} acc/s, "
          f"vectorized {len(trace) / vector_seconds:,.0f} acc/s "
          f"({speedup:.1f}x)")
    if len(trace) >= MIN_ACCESSES_FOR_SPEEDUP_CHECK:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"{scheme}: vectorized engine only {speedup:.1f}x over scalar "
            f"(required {REQUIRED_SPEEDUP}x)")


@pytest.mark.benchmark(group="engine-policy")
@pytest.mark.parametrize("policy", POLICY_ROWS)
def test_policy_kernel_throughput(benchmark, policy):
    """Set-decomposed kernels hold the same bar as the LRU fast paths."""
    trace = _build_trace(BENCH_ENGINE_ACCESSES)
    scalar, batch = _make_caches("a2", replacement=policy)

    start = time.perf_counter()
    _run_scalar(scalar, trace)
    scalar_seconds = time.perf_counter() - start

    def _vector_run():
        _, fresh = _make_caches("a2", replacement=policy)
        fresh.run(trace)
        return fresh

    fresh = benchmark.pedantic(_vector_run, rounds=3, iterations=1)
    vector_seconds = benchmark.stats.stats.min

    assert _stats_tuple(scalar.stats) == _stats_tuple(fresh.stats), (
        f"CacheStats diverged between engines for a2/{policy}")
    speedup = scalar_seconds / vector_seconds
    print(f"\na2/{policy}: scalar {len(trace) / scalar_seconds:,.0f} acc/s, "
          f"vectorized {len(trace) / vector_seconds:,.0f} acc/s "
          f"({speedup:.1f}x)")
    if len(trace) >= MIN_ACCESSES_FOR_SPEEDUP_CHECK:
        assert speedup >= REQUIRED_SPEEDUP_POLICY, (
            f"a2/{policy}: set-decomposed kernel only {speedup:.1f}x over "
            f"scalar (required {REQUIRED_SPEEDUP_POLICY}x)")


@pytest.mark.benchmark(group="engine-skew-policy")
@pytest.mark.parametrize("policy", POLICY_ROWS)
def test_skew_policy_kernel_throughput(benchmark, policy):
    """Skew-decomposed kernels hold the same bar on skewed placement."""
    trace = _build_trace(BENCH_ENGINE_ACCESSES)
    scalar, batch = _make_caches("a2-Hp-Sk", replacement=policy)

    start = time.perf_counter()
    _run_scalar(scalar, trace)
    scalar_seconds = time.perf_counter() - start

    def _vector_run():
        _, fresh = _make_caches("a2-Hp-Sk", replacement=policy)
        fresh.run(trace)
        return fresh

    fresh = benchmark.pedantic(_vector_run, rounds=3, iterations=1)
    vector_seconds = benchmark.stats.stats.min

    assert _stats_tuple(scalar.stats) == _stats_tuple(fresh.stats), (
        f"CacheStats diverged between engines for a2-Hp-Sk/{policy}")
    speedup = scalar_seconds / vector_seconds
    print(f"\na2-Hp-Sk/{policy}: scalar {len(trace) / scalar_seconds:,.0f} "
          f"acc/s, vectorized {len(trace) / vector_seconds:,.0f} acc/s "
          f"({speedup:.1f}x)")
    if len(trace) >= MIN_ACCESSES_FOR_SPEEDUP_CHECK:
        assert speedup >= REQUIRED_SPEEDUP_POLICY, (
            f"a2-Hp-Sk/{policy}: skew-decomposed kernel only {speedup:.1f}x "
            f"over scalar (required {REQUIRED_SPEEDUP_POLICY}x)")


@pytest.mark.benchmark(group="engine-victim")
@pytest.mark.parametrize("policy", [None] + POLICY_ROWS,
                         ids=["lru"] + POLICY_ROWS)
def test_victim_kernel_throughput(benchmark, policy):
    """Decomposed victim kernels hold the same bar for every policy."""
    trace = _build_trace(BENCH_ENGINE_ACCESSES)
    geometry = PAPER_L1_8KB
    scalar = VictimCache(geometry.size_bytes, geometry.block_size,
                         ways=1, victim_entries=8, replacement=policy)

    start = time.perf_counter()
    access = scalar.access
    for address in trace.addresses.tolist():
        access(address, False)
    scalar_seconds = time.perf_counter() - start

    def _vector_run():
        fresh = BatchVictimCache(geometry.size_bytes, geometry.block_size,
                                 ways=1, victim_entries=8,
                                 replacement=policy)
        fresh.run(trace)
        return fresh

    fresh = benchmark.pedantic(_vector_run, rounds=3, iterations=1)
    vector_seconds = benchmark.stats.stats.min

    assert scalar.stats.load_misses == fresh.stats.load_misses
    assert scalar.victim_hits == fresh.victim_hits
    assert scalar.main_hits == fresh.main_hits
    speedup = scalar_seconds / vector_seconds
    label = policy or "lru"
    print(f"\nvictim/{label}: scalar {len(trace) / scalar_seconds:,.0f} "
          f"acc/s, vectorized {len(trace) / vector_seconds:,.0f} acc/s "
          f"({speedup:.1f}x)")
    if len(trace) >= MIN_ACCESSES_FOR_SPEEDUP_CHECK:
        assert speedup >= REQUIRED_SPEEDUP_POLICY, (
            f"victim/{label}: decomposed victim kernel only {speedup:.1f}x "
            f"over scalar (required {REQUIRED_SPEEDUP_POLICY}x)")


@pytest.mark.benchmark(group="engine-hierarchy")
def test_hierarchy_engine_throughput(benchmark):
    """The batch two-level hierarchy holds the LRU bar over the scalar one."""
    trace = _build_trace(BENCH_ENGINE_ACCESSES)
    scalar = TwoLevelHierarchy(*_make_hierarchy_caches())

    start = time.perf_counter()
    access = scalar.access
    for address in trace.addresses.tolist():
        access(address, False)
    scalar_seconds = time.perf_counter() - start

    def _vector_run():
        fresh = batch_hierarchy_like(
            TwoLevelHierarchy(*_make_hierarchy_caches()))
        fresh.run(trace)
        return fresh

    fresh = benchmark.pedantic(_vector_run, rounds=3, iterations=1)
    vector_seconds = benchmark.stats.stats.min

    assert _stats_tuple(scalar.l1.stats) == _stats_tuple(fresh.l1.stats)
    assert _stats_tuple(scalar.l2.stats) == _stats_tuple(fresh.l2.stats)
    assert scalar.holes_created == fresh.holes_created
    assert scalar.back_invalidations == fresh.back_invalidations
    speedup = scalar_seconds / vector_seconds
    print(f"\nhierarchy: scalar {len(trace) / scalar_seconds:,.0f} acc/s, "
          f"vectorized {len(trace) / vector_seconds:,.0f} acc/s "
          f"({speedup:.1f}x, {fresh.epochs} epochs, {fresh.rewinds} rewinds)")
    if len(trace) >= MIN_ACCESSES_FOR_SPEEDUP_CHECK:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"hierarchy: batch engine only {speedup:.1f}x over scalar "
            f"(required {REQUIRED_SPEEDUP}x)")


@pytest.mark.benchmark(group="engine-virtual-real")
def test_virtual_real_engine_throughput(benchmark):
    """The batch virtual-real hierarchy (TLB included) holds the same bar."""
    trace = _build_trace(BENCH_ENGINE_ACCESSES)
    scalar, table, tlb, _batch, _tt, _ttlb = _make_vr_pair()

    start = time.perf_counter()
    access = scalar.access
    for address in trace.addresses.tolist():
        access(address, False)
    scalar_seconds = time.perf_counter() - start

    state = {}

    def _vector_run():
        _s, _t, _l, fresh, fresh_table, fresh_tlb = _make_vr_pair()
        fresh.run(trace)
        state["table"], state["tlb"] = fresh_table, fresh_tlb
        return fresh

    fresh = benchmark.pedantic(_vector_run, rounds=3, iterations=1)
    vector_seconds = benchmark.stats.stats.min

    assert _stats_tuple(scalar.l1.stats) == _stats_tuple(fresh.l1.stats)
    assert _stats_tuple(scalar.l2.stats) == _stats_tuple(fresh.l2.stats)
    assert scalar.holes_created == fresh.holes_created
    assert scalar.alias_invalidations == fresh.alias_invalidations
    assert table.page_faults == state["table"].page_faults
    assert (tlb.hits, tlb.misses) == (state["tlb"].hits, state["tlb"].misses)
    speedup = scalar_seconds / vector_seconds
    print(f"\nvirtual-real: scalar {len(trace) / scalar_seconds:,.0f} acc/s, "
          f"vectorized {len(trace) / vector_seconds:,.0f} acc/s "
          f"({speedup:.1f}x, {fresh.epochs} epochs, {fresh.rewinds} rewinds)")
    if len(trace) >= MIN_ACCESSES_FOR_SPEEDUP_CHECK:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"virtual-real: batch engine only {speedup:.1f}x over scalar "
            f"(required {REQUIRED_SPEEDUP}x)")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="short trace through every kernel-dispatch path "
                             "(sweep profiler included); bit-exactness "
                             "asserted, speedup bounds skipped, the appended "
                             "JSON run tagged smoke")
    args = parser.parse_args(argv)
    accesses = SMOKE_ACCESSES if args.smoke else BENCH_ENGINE_ACCESSES

    print(f"strided trace: {ELEMENTS} elements, stride {STRIDE}, "
          f"{accesses:,} accesses, {PAPER_L1_8KB.label} cache"
          + (" [smoke]" if args.smoke else "") + "\n")
    header = (f"{'scheme':16s} {'repl':6s} {'kernel':24s} "
              f"{'scalar acc/s':>14s} {'vector acc/s':>14s} "
              f"{'speedup':>8s} {'miss%':>7s}")
    print(header)
    print("-" * len(header))

    def show(row):
        print(f"{row['scheme']:16s} {row['replacement']:6s} "
              f"{row['kernel']:24s} {row['scalar_aps']:14,.0f} "
              f"{row['vector_aps']:14,.0f} {row['speedup']:7.1f}x "
              f"{100 * row['miss_ratio']:6.2f}%")

    check_bounds = accesses >= MIN_ACCESSES_FOR_SPEEDUP_CHECK
    rows = []
    for scheme in SCHEMES:
        row = compare_engines(scheme, accesses=accesses)
        rows.append(row)
        show(row)
        if check_bounds:
            assert row["speedup"] >= REQUIRED_SPEEDUP, (
                f"{row['scheme']}: only {row['speedup']:.1f}x")
    # Set-decomposed kernels on the conventional organisation: bounded.
    for policy in POLICY_ROWS:
        row = compare_engines("a2", accesses=accesses, replacement=policy)
        rows.append(row)
        show(row)
        if check_bounds:
            assert row["speedup"] >= REQUIRED_SPEEDUP_POLICY, (
                f"a2/{policy}: only {row['speedup']:.1f}x")
    # Skew-decomposed kernels on the skewed organisation: bounded.
    for policy in POLICY_ROWS:
        row = compare_engines("a2-Hp-Sk", accesses=accesses,
                              replacement=policy)
        rows.append(row)
        show(row)
        if check_bounds:
            assert row["speedup"] >= REQUIRED_SPEEDUP_POLICY, (
                f"a2-Hp-Sk/{policy}: only {row['speedup']:.1f}x")
    # Decomposed victim kernels, every policy: bounded.
    for policy in [None] + POLICY_ROWS:
        row = compare_victim_kernel(accesses=accesses, replacement=policy)
        rows.append(row)
        show(row)
        if check_bounds:
            assert row["speedup"] >= REQUIRED_SPEEDUP_POLICY, (
                f"victim/{row['replacement']}: only {row['speedup']:.1f}x")
    # Multi-level compositions: inclusive hierarchy and virtual-real + TLB.
    for compare, label in ((compare_hierarchy_engines, "hierarchy"),
                           (compare_virtual_real_engines, "virtual-real")):
        row = compare(accesses=accesses)
        rows.append(row)
        show(row)
        if check_bounds:
            assert row["speedup"] >= REQUIRED_SPEEDUP, (
                f"{label}: only {row['speedup']:.1f}x")
    if check_bounds:
        print(f"\nevery row (LRU fast paths, set-decomposed, skew-decomposed, "
              f"victim and multi-level kernels) >= {REQUIRED_SPEEDUP:.0f}x "
              f"with bit-exact CacheStats")
    else:
        print("\nbit-exact CacheStats on every kernel path "
              "(speedup bounds skipped below "
              f"{MIN_ACCESSES_FOR_SPEEDUP_CHECK:,} accesses)")

    # Sweep-level section: the one-pass multi-configuration profiler against
    # the per-config vectorized path on a 16-configuration LRU grid.
    sweep = compare_lru_grid_sweep(accesses=accesses)
    print(f"\nlru-grid sweep ({sweep['configs']} conventional-LRU configs, "
          f"{sweep['accesses']:,} accesses): per-config "
          f"{sweep['per_config_seconds']:.2f}s, one-pass profile "
          f"{sweep['profile_seconds']:.2f}s ({sweep['speedup']:.1f}x), "
          f"bit-exact vs per-config kernels and scalar models")
    if check_bounds:
        assert sweep["speedup"] >= REQUIRED_SPEEDUP_SWEEP, (
            f"lru-grid sweep: profiler only {sweep['speedup']:.1f}x over "
            f"per-config (required {REQUIRED_SPEEDUP_SWEEP}x)")

    # Profiler section: SHARDS-sampled vs exact on the dense LRU grid, and
    # the single-pass FIFO profile vs per-config FIFO kernels.
    sampled = compare_sampled_profiler(accesses=accesses)
    print(f"\nsampled-grid ({sampled['configs']} conventional-LRU configs, "
          f"{sampled['accesses']:,} accesses, R={sampled['rate']}): exact "
          f"{sampled['exact_seconds']:.2f}s")
    for entry in sampled["seeds"]:
        print(f"  seed {entry['seed']}: {entry['seconds']:.2f}s "
              f"({entry['speedup']:.0f}x, max miss-ratio error "
              f"{entry['max_miss_ratio_error']:.3f})")
        if check_bounds:
            assert entry["speedup"] >= REQUIRED_SPEEDUP_SAMPLED, (
                f"seed {entry['seed']}: sampled only {entry['speedup']:.1f}x "
                f"over exact (required {REQUIRED_SPEEDUP_SAMPLED}x)")
            assert entry["max_miss_ratio_error"] <= SAMPLED_ERROR_BOUND, (
                f"seed {entry['seed']}: max miss-ratio error "
                f"{entry['max_miss_ratio_error']:.4f} exceeds "
                f"{SAMPLED_ERROR_BOUND}")
    fifo_grid = compare_fifo_grid(accesses=accesses,
                                  check_scalar=args.smoke)
    print(f"fifo-grid ({fifo_grid['configs']} FIFO configs, "
          f"{fifo_grid['accesses']:,} accesses of {fifo_grid['program']}): "
          f"per-config {fifo_grid['per_config_seconds']:.2f}s, one-pass "
          f"profile {fifo_grid['profile_seconds']:.2f}s "
          f"({fifo_grid['speedup']:.1f}x), bit-exact on every cell")
    if check_bounds:
        assert fifo_grid["speedup"] >= REQUIRED_SPEEDUP_FIFO_GRID, (
            f"fifo-grid: profile only {fifo_grid['speedup']:.1f}x over "
            f"per-config (required {REQUIRED_SPEEDUP_FIFO_GRID}x)")
    profiler = {"sampled": sampled, "fifo_grid": fifo_grid}

    # Trace-I/O section: on-disk ingestion throughput per format/read mode.
    trace_io = compare_trace_io(accesses=accesses)
    print(f"\ntrace-io ({trace_io['rows'][0]['accesses']:,} accesses, "
          f"chunks of {trace_io['chunk_size']:,}):")
    for row in trace_io["rows"]:
        print(f"  {row['format']:10s} {row['aps']:14,.0f} acc/s "
              f"({row['bytes'] / 1e6:6.1f} MB on disk, "
              f"{row['speedup_vs_v1']:5.1f}x vs v1 records)")
    if check_bounds:
        for row in trace_io["rows"]:
            if row["format"].startswith("v2"):
                assert row["speedup_vs_v1"] >= REQUIRED_SPEEDUP_TRACE_IO, (
                    f"{row['format']}: only {row['speedup_vs_v1']:.1f}x over "
                    f"v1 records (required {REQUIRED_SPEEDUP_TRACE_IO}x)")

    path = _write_artifact(rows, accesses, sweep=sweep, smoke=args.smoke,
                           trace_io=trace_io, profiler=profiler)
    if path:
        print(f"appended run to {path}")


if __name__ == "__main__":
    main()
