"""Synthetic Spec95-like workload models (trace level).

The paper evaluates 18 Spec95 programs.  Those binaries and their traces are
not available here, so each program is replaced by a *workload model*: a
parameterised mixture of access patterns whose conflict structure mirrors the
behaviour the paper reports for that program.

Each model mixes three components:

``hot``
    A small working set (well under the 8 KB L1) accessed repeatedly —
    produces hits regardless of the index function.
``stream``
    A never-reused streaming sweep at block granularity — produces capacity /
    compulsory misses that *no* index function (or doubling of the cache) can
    remove.  Its share of the mix sets the floor miss ratio (what the paper's
    16 KB conventional column shows, net of that cache's remaining conflicts).
``medium``
    A looping sweep over a working set between 8 KB and 16 KB — capacity
    misses in the 8 KB caches regardless of indexing, hits once the cache is
    doubled.  Its share reproduces the gap between the paper's 8 KB and 16 KB
    conventional columns for the low-conflict programs.
``conflict``
    Several small arrays whose bases are separated by a large power of two
    and which are swept in lock-step.  Under conventional placement all the
    arrays' corresponding lines land in the same set and thrash; under
    I-Poly (and, largely, skewed-XOR) placement they spread out and hit.
    Its share sets the *conflict* miss ratio — the gap between the paper's
    conventional and I-Poly columns.

The per-program component fractions below are derived directly from Table 2's
8 KB conventional and I-Poly miss-ratio columns, so the synthetic suite
reproduces the *structure* of the paper's results: tomcatv, swim and wave5
are the three high-conflict programs, everything else is dominated by misses
that indexing cannot fix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

from .generators import _SplitMix64
from .record import MemoryAccess

__all__ = [
    "WorkloadSpec",
    "WORKLOADS",
    "HIGH_CONFLICT_PROGRAMS",
    "LOW_CONFLICT_PROGRAMS",
    "INTEGER_PROGRAMS",
    "FP_PROGRAMS",
    "build_trace",
    "workload_names",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """Mixture description of one synthetic program.

    Attributes
    ----------
    name:
        Spec95 program the model stands in for.
    conflict_fraction:
        Share of accesses drawn from the conflict component (the part of the
        miss ratio that I-Poly indexing eliminates).
    stream_fraction:
        Share of accesses drawn from the streaming component (misses no index
        function can remove).
    conflict_arrays:
        Number of lock-step arrays in the conflict component; more arrays
        means more pressure per set under conventional placement.
    hot_bytes:
        Size of the hot working set.
    is_fp:
        Whether the original program belongs to the floating-point suite.
    write_fraction:
        Fraction of hot-component accesses that are stores.
    """

    name: str
    conflict_fraction: float
    stream_fraction: float
    medium_fraction: float = 0.0
    conflict_arrays: int = 4
    hot_bytes: int = 2048
    is_fp: bool = False
    write_fraction: float = 0.25

    def __post_init__(self) -> None:
        for label, value in (("conflict_fraction", self.conflict_fraction),
                             ("stream_fraction", self.stream_fraction),
                             ("medium_fraction", self.medium_fraction)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} must be in [0, 1]")
        if self.conflict_fraction + self.stream_fraction + self.medium_fraction > 1.0:
            raise ValueError("component fractions must sum to at most 1")
        if self.conflict_arrays < 3:
            raise ValueError("conflict component needs at least 3 arrays to "
                             "defeat 2-way associativity")
        if self.hot_bytes < 64:
            raise ValueError("hot_bytes too small to be meaningful")


def _spec(name: str, conv8_miss: float, ipoly8_miss: float, conv16_miss: float,
          is_fp: bool, conflict_arrays: int = 4,
          write_fraction: float = 0.25) -> WorkloadSpec:
    """Derive mixture fractions from the paper's Table 2 miss-ratio columns.

    ``conflict`` is the part of the 8 KB miss ratio that I-Poly indexing
    removes; ``stream`` is the part that not even the 16 KB cache removes;
    ``medium`` is the capacity part that doubling the cache removes (only
    meaningful for the low-conflict programs, where the 16 KB column is below
    the I-Poly column).
    """
    conflict = max(0.0, (conv8_miss - ipoly8_miss) / 100.0)
    stream = max(0.0, min(ipoly8_miss, conv16_miss, conv8_miss) / 100.0)
    medium = max(0.0, min(ipoly8_miss, conv8_miss) / 100.0 - stream)
    return WorkloadSpec(name=name, conflict_fraction=round(conflict, 4),
                        stream_fraction=round(stream, 4),
                        medium_fraction=round(medium, 4),
                        conflict_arrays=conflict_arrays, is_fp=is_fp,
                        write_fraction=write_fraction)


#: The 18 Spec95 programs of Table 2, modelled from its 16 KB conventional,
#: 8 KB conventional and 8 KB I-Poly miss-ratio columns.
WORKLOADS: Dict[str, WorkloadSpec] = {
    "go":       _spec("go", 10.87, 10.60, 5.45, is_fp=False),
    "m88ksim":  _spec("m88ksim", 2.62, 2.62, 1.41, is_fp=False),
    "gcc":      _spec("gcc", 10.01, 10.01, 5.63, is_fp=False),
    "compress": _spec("compress", 13.63, 13.63, 12.96, is_fp=False,
                      write_fraction=0.35),
    "li":       _spec("li", 8.01, 7.10, 4.72, is_fp=False),
    "ijpeg":    _spec("ijpeg", 3.72, 2.17, 0.94, is_fp=False),
    "perl":     _spec("perl", 9.47, 9.47, 4.52, is_fp=False),
    "vortex":   _spec("vortex", 8.37, 7.87, 4.97, is_fp=False, write_fraction=0.35),
    "tomcatv":  _spec("tomcatv", 54.45, 19.67, 35.14, is_fp=True, conflict_arrays=5),
    "swim":     _spec("swim", 66.62, 8.85, 29.56, is_fp=True, conflict_arrays=5),
    "su2cor":   _spec("su2cor", 14.69, 14.66, 13.74, is_fp=True),
    "hydro2d":  _spec("hydro2d", 17.23, 17.22, 15.40, is_fp=True),
    "applu":    _spec("applu", 6.16, 6.16, 5.54, is_fp=True),
    "mgrid":    _spec("mgrid", 5.05, 5.05, 4.91, is_fp=True),
    "turb3d":   _spec("turb3d", 6.05, 5.38, 4.67, is_fp=True),
    "apsi":     _spec("apsi", 15.19, 13.36, 10.03, is_fp=True),
    "fpppp":    _spec("fpppp", 2.66, 2.47, 1.09, is_fp=True),
    "wave5":    _spec("wave5", 42.76, 14.67, 27.72, is_fp=True, conflict_arrays=5),
}

#: The three programs the paper singles out as having high conflict miss
#: ratios (Table 3's "bad" set).
HIGH_CONFLICT_PROGRAMS: List[str] = ["tomcatv", "swim", "wave5"]

#: The remaining fifteen programs (Table 3's "good" set).
LOW_CONFLICT_PROGRAMS: List[str] = [
    name for name in WORKLOADS if name not in HIGH_CONFLICT_PROGRAMS
]

INTEGER_PROGRAMS: List[str] = [n for n, s in WORKLOADS.items() if not s.is_fp]
FP_PROGRAMS: List[str] = [n for n, s in WORKLOADS.items() if s.is_fp]


def workload_names() -> List[str]:
    """Names of all modelled programs, in the paper's Table 2 order."""
    return list(WORKLOADS)


class _WorkloadState:
    """Mutable per-component cursors used while generating a workload trace."""

    def __init__(self, spec: WorkloadSpec, block_size: int, seed: int) -> None:
        self.spec = spec
        self.rng = _SplitMix64(seed or 1)
        self.block_size = block_size
        # Hot component: a small array reused forever.
        self.hot_slots = max(8, spec.hot_bytes // 8)
        self.hot_cursor = 0
        # Offset the hot region by 1 KB so that, under conventional indexing,
        # it occupies different sets from the conflict component (which sits
        # at the bottom of its 64 KB-aligned arrays); the measured conflict
        # misses then come only from the conflict component itself.
        self.hot_base = 0x0010_0400
        # Stream component: block-strided, never reused.
        self.stream_cursor = 0
        self.stream_base = 0x4000_0000
        # Conflict component: `conflict_arrays` arrays spaced 64 KB apart,
        # swept in lock-step over a footprint small enough to be cached.
        self.conflict_base = 0x0100_0000
        # Arrays are spaced one way-capacity (4 KB for the paper's 8 KB 2-way
        # cache) apart: under conventional indexing of the 8 KB cache every
        # array's element i lands in the same set and the arrays thrash, while
        # a 16 KB conventional cache separates alternate arrays into two set
        # groups and removes part (but not all) of the conflicts — mirroring
        # the partial relief Table 2 shows for doubling the cache size.
        self.conflict_spacing = 4 * 1024
        # 32 * 8 B = 256 B per array keeps the conflict working set (and its
        # reuse distance, once the stream component is interleaved) well
        # inside an 8 KB cache, so these accesses hit under any
        # conflict-avoiding placement and miss only under conventional
        # placement, where all the arrays collide in the same handful of sets.
        self.conflict_elements = 32
        self.conflict_cursor = 0
        self.conflict_array = 0
        # Medium component: a block-strided loop sized so that its *reuse
        # distance* (its own blocks plus the stream blocks interleaved between
        # two visits, plus the hot and conflict sets) lands between the 8 KB
        # and 16 KB capacities.  It then thrashes in the 8 KB caches under LRU
        # whatever the index function, but fits — and hits — once the cache is
        # doubled, reproducing the 8 KB-vs-16 KB gap of the low-conflict
        # programs.
        self.medium_base = 0x0200_0000
        self.medium_cursor = 0
        hot_blocks = (self.hot_slots * 8 + block_size - 1) // block_size
        conflict_blocks = (spec.conflict_arrays * self.conflict_elements * 8
                           + block_size - 1) // block_size
        reuse_target = (14 * 1024) // block_size   # aim between 8 KB and 16 KB
        if spec.medium_fraction > 0:
            dilution = 1.0 + spec.stream_fraction / spec.medium_fraction
            available = max(16, reuse_target - hot_blocks - conflict_blocks)
            self.medium_blocks = max(16, int(available / dilution))
        else:
            self.medium_blocks = 16

    def next_hot(self) -> MemoryAccess:
        address = self.hot_base + (self.hot_cursor % self.hot_slots) * 8
        self.hot_cursor += 1
        is_write = (self.rng.below(1_000_000)
                    < int(self.spec.write_fraction * 1_000_000))
        return MemoryAccess(address=address, is_write=is_write, pc=0x100, size=8)

    def next_stream(self) -> MemoryAccess:
        address = self.stream_base + self.stream_cursor * self.block_size
        self.stream_cursor += 1
        return MemoryAccess(address=address, is_write=False, pc=0x200,
                            size=self.block_size)

    def next_medium(self) -> MemoryAccess:
        address = (self.medium_base
                   + (self.medium_cursor % self.medium_blocks) * self.block_size)
        self.medium_cursor += 1
        return MemoryAccess(address=address, is_write=False, pc=0x280,
                            size=self.block_size)

    def next_conflict(self) -> MemoryAccess:
        spec = self.spec
        address = (self.conflict_base
                   + self.conflict_array * self.conflict_spacing
                   + (self.conflict_cursor % self.conflict_elements) * 8)
        self.conflict_array += 1
        if self.conflict_array >= spec.conflict_arrays:
            self.conflict_array = 0
            self.conflict_cursor += 1
        return MemoryAccess(address=address, is_write=False,
                            pc=0x300 + 8 * self.conflict_array, size=8)


def build_trace(name: str, length: int = 100_000, block_size: int = 32,
                seed: int = 12345) -> Iterator[MemoryAccess]:
    """Generate ``length`` accesses of the named synthetic workload.

    The trace is a probabilistic interleaving of the workload's hot, stream
    and conflict components, using a deterministic PRNG so identical
    arguments always produce identical traces.
    """
    try:
        spec = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; known: {', '.join(WORKLOADS)}"
        ) from None
    if length < 1:
        raise ValueError("length must be positive")

    state = _WorkloadState(spec, block_size, seed)
    conflict_threshold = int(spec.conflict_fraction * 1_000_000)
    stream_threshold = conflict_threshold + int(spec.stream_fraction * 1_000_000)
    medium_threshold = stream_threshold + int(spec.medium_fraction * 1_000_000)

    for _ in range(length):
        draw = state.rng.below(1_000_000)
        if draw < conflict_threshold:
            yield state.next_conflict()
        elif draw < stream_threshold:
            yield state.next_stream()
        elif draw < medium_threshold:
            yield state.next_medium()
        else:
            yield state.next_hot()
