"""Replay recorded access streams through the batch kernels.

The out-of-order processor drives its L1 data cache one access at a time —
the pipeline is inherently sequential, so the CPU path can never consume an
:class:`~repro.engine.batch.AddressBatch` directly.  What it *can* do is
record the functional access stream its :class:`~repro.cpu.dcache.DataCacheModel`
produced (``record_stream=True``) and replay it here: the stream becomes an
:class:`AddressBatch`, the scalar cache's exact configuration is mirrored
into a :class:`~repro.engine.batch_cache.BatchSetAssociativeCache`, and the
batch kernel selected by ``dispatch_strategy`` must reproduce the scalar
cache's hit/miss statistics bit-exactly.

This wires the CPU path into the engine-equivalence story: every fuzzed
program (:mod:`repro.cpu.fuzzer`) exercises a batch kernel against the
scalar model on a *processor-shaped* access stream — issue-order loads with
merged secondary misses, commit-order write-through stores interleaved —
rather than the synthetic traces the trace-level studies use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from ..cache.set_assoc import SetAssociativeCache
from ..cache.stats import CacheStats
from .batch import AddressBatch
from .batch_cache import BatchSetAssociativeCache

__all__ = ["ReplayOutcome", "batch_cache_like", "replay_access_stream"]


@dataclass(frozen=True)
class ReplayOutcome:
    """Result of replaying one recorded stream through a batch kernel."""

    #: Statistics accumulated by the batch cache over the replay.
    stats: CacheStats
    #: Kernel name reported by ``dispatch_strategy`` for the replayed batch.
    strategy: str
    #: Number of accesses replayed.
    accesses: int
    #: Per-access hit mask returned by the kernel.
    hits: np.ndarray

    def matches(self, stats: CacheStats) -> bool:
        """True when the batch statistics equal ``stats`` exactly."""
        return self.stats == stats


def batch_cache_like(cache: SetAssociativeCache) -> BatchSetAssociativeCache:
    """Build a cold batch cache mirroring a scalar cache's configuration.

    Geometry, placement function, write policy and replacement policy are
    carried over verbatim (the index function object is shared — batch
    caches only read it; a configured random policy's draw seed is
    preserved), so replaying the scalar cache's access stream from cold must
    reproduce its statistics exactly.
    """
    return BatchSetAssociativeCache(
        size_bytes=cache.size_bytes,
        block_size=cache.block_size,
        ways=cache.ways,
        index_function=cache.index_function,
        replacement=cache.replacement,
        write_policy=cache.write_policy,
        name=f"{cache.name}-replay",
    )


def replay_access_stream(
    addresses: Union[np.ndarray, Sequence[int]],
    is_write: Union[np.ndarray, Sequence[bool]],
    cache: SetAssociativeCache,
) -> ReplayOutcome:
    """Replay a recorded ``(address, is_store)`` stream through the batch engine.

    ``cache`` is the scalar cache whose configuration the batch kernel must
    mirror — typically the L1 of a finished processor simulation, in which
    case ``ReplayOutcome.matches(cache.stats)`` asserts the batch kernel and
    the scalar model agree bit-exactly on the whole stream.

    The replayed batch cache starts cold, so the stream must be the
    *complete* access history of ``cache`` since its own cold start.
    """
    batch = AddressBatch.from_arrays(addresses, is_write)
    mirror = batch_cache_like(cache)
    strategy = mirror.dispatch_strategy(batch)
    hits = mirror.run(batch)
    return ReplayOutcome(stats=mirror.stats, strategy=strategy,
                         accesses=len(batch), hits=hits)
