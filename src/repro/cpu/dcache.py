"""Data-cache timing model for the processor simulator.

This wraps a functional :class:`~repro.cache.set_assoc.SetAssociativeCache`
(which decides hit or miss, and collects the load/store miss ratios the
paper's tables report) with the timing behaviour of the modelled L1:

* two-cycle hit time;
* an optional extra cycle when the I-Poly XOR stage sits on the critical path
  of the address computation ("Xor in CP" in Tables 2 and 3), which a correct
  address prediction removes;
* a 20-cycle miss penalty to an infinite L2;
* a lockup-free design with 8 MSHRs — up to eight outstanding misses to
  different lines, with misses to an already-outstanding line merged into the
  existing entry;
* a 64-bit L1/L2 bus on which each line transfer is busy for four cycles;
* two cache ports shared by loads (stores are written through at commit and
  are assumed to use free port slots from the store buffer, as in the paper's
  machine where stores leave the critical path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..cache.mshr import MSHRFile
from ..cache.set_assoc import SetAssociativeCache
from ..memory.main_memory import Bus
from .resources import ThroughputLimiter

__all__ = ["DataCacheTiming", "LoadTiming", "DataCacheModel"]


@dataclass(frozen=True)
class DataCacheTiming:
    """Latency parameters of the L1 data cache (paper Section 4 values)."""

    hit_time: int = 2
    miss_penalty: int = 20
    xor_in_critical_path: bool = False
    xor_penalty: int = 1
    ports: int = 2
    mshr_entries: int = 8
    bus_cycles_per_line: int = 4

    def __post_init__(self) -> None:
        if self.hit_time < 1 or self.miss_penalty < 0:
            raise ValueError("hit_time must be >= 1 and miss_penalty >= 0")
        if self.xor_penalty < 0 or self.ports < 1:
            raise ValueError("xor_penalty must be >= 0 and ports >= 1")
        if self.mshr_entries < 1 or self.bus_cycles_per_line < 1:
            raise ValueError("mshr_entries and bus_cycles_per_line must be >= 1")


@dataclass
class LoadTiming:
    """Timing outcome of one load's cache access."""

    start_cycle: int
    ready_cycle: int
    hit: bool
    merged: bool = False
    xor_penalty_paid: bool = False

    @property
    def latency(self) -> int:
        """Observed load-use latency contribution of the cache."""
        return self.ready_cycle - self.start_cycle


class DataCacheModel:
    """Functional + timing model of the lockup-free L1 data cache.

    With ``record_stream=True`` the model additionally records the
    ``(address, is_store)`` sequence of every *functional* cache access, in
    the exact order the underlying cache sees them — loads at issue (merged
    secondary misses included; forwarded loads never reach the cache and are
    therefore absent) and stores at commit.  Replaying that stream through a
    fresh cache of the same configuration reproduces the functional
    statistics exactly, which is what lets the fuzz harness
    (:mod:`repro.cpu.fuzzer`) cross-check the processor's cache behaviour
    against the batch kernels via :func:`repro.engine.replay.replay_access_stream`.
    """

    def __init__(self, cache: SetAssociativeCache,
                 timing: Optional[DataCacheTiming] = None,
                 record_stream: bool = False) -> None:
        self._cache = cache
        self._timing = timing or DataCacheTiming()
        self._ports = ThroughputLimiter(self._timing.ports, name="cache-ports")
        self._bus = Bus(self._timing.bus_cycles_per_line)
        self._mshrs = MSHRFile(num_entries=self._timing.mshr_entries)
        # Completion cycles of in-flight line fills, keyed by block number.
        self._inflight: dict = {}
        self.load_accesses = 0
        self.store_accesses = 0
        self.merged_misses = 0
        self.mshr_stall_cycles = 0
        self._record_stream = record_stream
        self.recorded_addresses: List[int] = []
        self.recorded_is_store: List[bool] = []

    @property
    def cache(self) -> SetAssociativeCache:
        """The underlying functional cache (holds the miss-ratio statistics)."""
        return self._cache

    @property
    def timing(self) -> DataCacheTiming:
        """Latency parameters in force."""
        return self._timing

    @property
    def load_miss_ratio(self) -> float:
        """Load miss ratio of the underlying cache."""
        return self._cache.stats.load_miss_ratio

    @property
    def records_stream(self) -> bool:
        """True when the model records its functional access stream."""
        return self._record_stream

    def recorded_stream(self):
        """The recorded ``(addresses, is_store)`` lists (copies).

        Raises :class:`RuntimeError` unless the model was built with
        ``record_stream=True`` — an empty stream from a model that never
        recorded anything is indistinguishable from a genuinely empty one,
        and silently replaying it would make the differential check vacuous.
        """
        if not self._record_stream:
            raise RuntimeError(
                "access-stream recording is off; build the DataCacheModel "
                "with record_stream=True")
        return list(self.recorded_addresses), list(self.recorded_is_store)

    # ------------------------------------------------------------------ #

    def _expire_inflight(self, now: int) -> None:
        done = [block for block, ready in self._inflight.items() if ready <= now]
        for block in done:
            del self._inflight[block]
            if self._mshrs.lookup(block) is not None:
                self._mshrs.release(block)

    def _outstanding(self, now: int) -> int:
        return sum(1 for ready in self._inflight.values() if ready > now)

    def load(self, address: int, request_cycle: int,
             predicted_index_available: bool = False) -> LoadTiming:
        """Perform a load access whose address is ready at ``request_cycle``.

        ``predicted_index_available`` indicates that a confident, correct
        address prediction allowed the cache index to be computed early; in
        that case the XOR-in-critical-path penalty does not apply (the paper's
        "with pred." columns).
        """
        timing = self._timing
        xor_penalty = 0
        xor_paid = False
        if timing.xor_in_critical_path and not predicted_index_available:
            xor_penalty = timing.xor_penalty
            xor_paid = True

        start = self._ports.record(request_cycle + xor_penalty)
        self._expire_inflight(start)

        block = self._cache.block_number_of(address)
        inflight_ready = self._inflight.get(block)
        result = self._cache.access_block(block, is_write=False)
        self.load_accesses += 1
        if self._record_stream:
            self.recorded_addresses.append(address)
            self.recorded_is_store.append(False)

        if inflight_ready is not None and inflight_ready > start:
            # The line is still being fetched: this is a secondary (merged)
            # miss — it waits for the outstanding fill, whatever the
            # functional cache said about residency.
            self.merged_misses += 1
            ready = max(inflight_ready, start + timing.hit_time)
            return LoadTiming(start, ready, result.hit, merged=True,
                              xor_penalty_paid=xor_paid)

        if result.hit:
            return LoadTiming(start, start + timing.hit_time, True,
                              xor_penalty_paid=xor_paid)

        # Primary miss: need a free MSHR.
        issue = start
        while self._outstanding(issue) >= timing.mshr_entries:
            earliest = min(r for r in self._inflight.values() if r > issue)
            self.mshr_stall_cycles += earliest - issue
            issue = earliest
            self._expire_inflight(issue)

        transfer_done = self._bus.reserve(issue + timing.hit_time + timing.miss_penalty
                                          - timing.bus_cycles_per_line)
        ready = max(issue + timing.hit_time + timing.miss_penalty, transfer_done)
        self._inflight[block] = ready
        self._mshrs.allocate(block, now=issue, ready_at=ready)
        return LoadTiming(start, ready, False, xor_penalty_paid=xor_paid)

    def store(self, address: int, commit_cycle: int) -> bool:
        """Perform a store at commit time; returns True on hit.

        The cache is write-through / no-write-allocate, so a store miss does
        not fetch the line; stores never stall the pipeline in this model
        because the XOR stage and the write itself happen from the store
        buffer after commit (Section 3.4).
        """
        result = self._cache.access(address, is_write=True)
        self.store_accesses += 1
        if self._record_stream:
            self.recorded_addresses.append(address)
            self.recorded_is_store.append(True)
        return result.hit

    def reset_timing_state(self) -> None:
        """Clear in-flight fills and port/bus occupancy (not the cache contents)."""
        self._ports.reset()
        self._bus = Bus(self._timing.bus_cycles_per_line)
        self._mshrs.flush()
        self._inflight.clear()
