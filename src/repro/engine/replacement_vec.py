"""Vectorized replacement-policy state: NumPy tables + tight-kernel views.

The scalar policies in :mod:`repro.cache.replacement` keep their decision
state in flat per-``(way, set)`` Python tables.  This module holds the batch
engine's counterparts: the durable state lives in NumPy arrays (``ways x
num_sets`` timestamp tables, ``num_sets x (ways-1)`` PLRU bit-trees, a draw
counter for the deterministic random policy), and a kernel that is about to
run a batch checks the tables out as plain Python lists
(:meth:`VecReplacementState.kernel_begin`), mutates them at per-access speed,
and checks them back in (:meth:`VecReplacementState.kernel_end`).

Decision logic is *not* re-implemented here: the PLRU tree walk and the
counter-based random draw call the exact same primitive helpers
(:func:`~repro.cache.replacement.plru_touch`,
:func:`~repro.cache.replacement.plru_victim`,
:func:`~repro.cache.replacement.splitmix64`) as the scalar policies, and the
LRU/FIFO comparisons use the same ``(timestamp, way)`` ordering — which is
what makes every (organisation, policy) pair bit-exact across engines,
including identical random-victim sequences from the shared
:data:`~repro.cache.replacement.DEFAULT_RANDOM_SEED`.

The LRU specialisations built directly into
:class:`~repro.engine.batch_cache.BatchSetAssociativeCache` (run-collapse
vectorized path, insertion-ordered dict kernel, per-way skewed kernels) do
not use these objects — they *are* the LRU fast path.  These state tables
serve every non-LRU policy, and all policies of the
:class:`~repro.engine.batch_cache.BatchVictimCache` kernel.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..cache.replacement import (
    DEFAULT_RANDOM_SEED,
    REPLACEMENT_POLICIES,
    plru_touch,
    plru_tree_size,
    plru_victim,
    splitmix64,
)


def splitmix64_array(seed: int, start: int, count: int) -> np.ndarray:
    """Vectorized :func:`~repro.cache.replacement.splitmix64` draw sequence.

    Returns ``splitmix64(seed + n)`` for ``n`` in ``[start, start + count)``
    as a ``uint64`` array — the exact values the scalar policy's counter
    would produce one at a time.  Because the random policy's draws are a
    pure function of the eviction ordinal, a whole batch's worth of victim
    picks can be precomputed up front and consumed by index; this is what
    lets the set-decomposed random kernel stay bit-exact with the scalar
    victim sequence without calling into Python per eviction.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    with np.errstate(over="ignore"):
        x = (np.uint64(seed & ((1 << 64) - 1))
             + np.arange(start, start + count, dtype=np.uint64))
        x = x + np.uint64(0x9E3779B97F4A7C15)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


def min_stamp_way(stamp: List[List[int]], candidate_sets: Sequence[int]) -> int:
    """The way with the smallest timestamp, ties broken by way order.

    Kernel-side counterpart of
    :func:`repro.cache.replacement.min_stamp_victim` over per-way candidate
    set indices — one comparison rule, shared by the timestamp policies and
    the tree-PLRU skewed fallback.
    """
    best_way = 0
    best = stamp[0][candidate_sets[0]]
    for way in range(1, len(candidate_sets)):
        value = stamp[way][candidate_sets[way]]
        if value < best:
            best, best_way = value, way
    return best_way

__all__ = [
    "splitmix64_array",
    "min_stamp_way",
    "VecReplacementState",
    "VecLRU",
    "VecFIFO",
    "VecRandom",
    "VecTreePLRU",
    "make_vec_replacement",
]


class VecReplacementState:
    """Replacement state tables for one batch cache (or victim buffer).

    Durable state is NumPy-resident between runs; ``kernel_begin`` /
    ``kernel_end`` bracket a batch and expose list views the per-access
    hooks operate on.  The hook protocol mirrors the scalar
    :class:`~repro.cache.replacement.ReplacementPolicy`: ``on_hit`` /
    ``on_fill`` observe accesses, :meth:`victim` picks the way to evict
    among the per-way candidate sets of one access.
    """

    name: str = "abstract"

    def __init__(self, ways: int, num_sets: int) -> None:
        if ways < 1 or num_sets < 1:
            raise ValueError("ways and num_sets must be positive")
        self._ways = ways
        self._num_sets = num_sets
        self._in_kernel = False
        self._allocate()

    @property
    def ways(self) -> int:
        """Associativity of the owning cache."""
        return self._ways

    @property
    def num_sets(self) -> int:
        """Sets per way of the owning cache."""
        return self._num_sets

    def _allocate(self) -> None:
        """(Re)create the NumPy state tables (default: none)."""

    def reset(self) -> None:
        """Forget all decision state."""
        self._allocate()

    def kernel_begin(self) -> None:
        """Check the NumPy tables out as plain-list views for a tight kernel."""
        self._in_kernel = True

    def kernel_end(self) -> None:
        """Write the list views back into the NumPy tables."""
        self._in_kernel = False

    # -- durable-state snapshots (used by the epoch rewind of the ---------- #
    # -- multi-level engine in :mod:`repro.engine.hierarchy_vec`) ---------- #

    def _snapshot_guard(self) -> None:
        if self._in_kernel:
            raise RuntimeError("policy state can only be snapshotted or "
                               "restored outside a kernel checkout")

    def state_snapshot(self):
        """Copy of the durable decision state (valid outside a kernel)."""
        self._snapshot_guard()
        return None

    def state_restore(self, snapshot) -> None:
        """Restore a :meth:`state_snapshot` copy (valid outside a kernel)."""
        self._snapshot_guard()

    # -- per-access hooks (valid between kernel_begin and kernel_end) ---- #

    def on_hit(self, way: int, set_index: int, now: int) -> None:
        """Observe a hit."""

    def on_fill(self, way: int, set_index: int, now: int) -> None:
        """Observe a fill."""

    def victim(self, candidate_sets: Sequence[int]) -> int:
        """Pick the way to evict; ``candidate_sets[w]`` is way ``w``'s set."""
        raise NotImplementedError


class _VecTimestamp(VecReplacementState):
    """Shared machinery for timestamp-table policies (LRU / FIFO)."""

    def _allocate(self) -> None:
        self.stamps = np.zeros((self._ways, self._num_sets), dtype=np.int64)
        self._stamp_l: List[List[int]] = []

    def kernel_begin(self) -> None:
        self._stamp_l = [row.tolist() for row in self.stamps]
        self._in_kernel = True

    def kernel_end(self) -> None:
        self.stamps = np.array(self._stamp_l, dtype=np.int64).reshape(
            self._ways, self._num_sets)
        self._stamp_l = []
        self._in_kernel = False

    @property
    def stamp_lists(self) -> List[List[int]]:
        """Checked-out per-way timestamp rows (valid inside a kernel).

        The set-decomposed kernels in :mod:`repro.engine.set_decompose`
        mutate these rows directly instead of going through the per-access
        hooks; :meth:`kernel_end` persists whatever they left behind.
        """
        if not self._in_kernel:
            raise RuntimeError("stamp_lists is only valid between "
                               "kernel_begin() and kernel_end()")
        return self._stamp_l

    def state_snapshot(self):
        self._snapshot_guard()
        return self.stamps.copy()

    def state_restore(self, snapshot) -> None:
        self._snapshot_guard()
        self.stamps = snapshot.copy()

    def victim(self, candidate_sets):
        return min_stamp_way(self._stamp_l, candidate_sets)


class VecLRU(_VecTimestamp):
    """Least recently used: hits and fills refresh the timestamp."""

    name = "lru"

    def on_hit(self, way, set_index, now):
        self._stamp_l[way][set_index] = now

    def on_fill(self, way, set_index, now):
        self._stamp_l[way][set_index] = now


class VecFIFO(_VecTimestamp):
    """First in, first out: only fills set the timestamp."""

    name = "fifo"

    def on_fill(self, way, set_index, now):
        self._stamp_l[way][set_index] = now


class VecRandom(VecReplacementState):
    """Counter-based deterministic random victim (shared draw sequence).

    The n-th eviction consumes ``splitmix64(seed + n) % ways`` — the exact
    sequence of the scalar
    :class:`~repro.cache.replacement.RandomReplacement`, so differential
    tests can compare the engines access-for-access.
    """

    name = "random"

    def __init__(self, ways: int, num_sets: int,
                 seed: int = DEFAULT_RANDOM_SEED) -> None:
        self._seed = int(seed) & ((1 << 64) - 1)
        super().__init__(ways, num_sets)

    def _allocate(self) -> None:
        self.counter = 0

    @property
    def seed(self) -> int:
        """The draw-sequence seed."""
        return self._seed

    def state_snapshot(self):
        self._snapshot_guard()
        return self.counter

    def state_restore(self, snapshot) -> None:
        self._snapshot_guard()
        self.counter = snapshot

    def victim(self, candidate_sets):
        pick = splitmix64(self._seed + self.counter) % len(candidate_sets)
        self.counter += 1
        return pick


class VecTreePLRU(VecReplacementState):
    """Tree pseudo-LRU bit-trees per set, LRU-timestamp fallback when skewed.

    Mirrors :class:`~repro.cache.replacement.TreePLRUReplacement`: whenever
    one access's candidates all share a set index the per-set bit-tree picks
    the victim; when a skewed placement spreads them across sets the policy
    falls back to true LRU over its own timestamp table.  Both structures
    are updated on every hit and fill, exactly like the scalar policy.
    """

    name = "plru"

    def _allocate(self) -> None:
        tree = plru_tree_size(self._ways)
        self.bits = np.zeros((self._num_sets, tree), dtype=bool)
        self.stamps = np.zeros((self._ways, self._num_sets), dtype=np.int64)
        self._bits_l: List[List[bool]] = []
        self._stamp_l: List[List[int]] = []

    def kernel_begin(self) -> None:
        self._bits_l = [row.tolist() for row in self.bits]
        self._stamp_l = [row.tolist() for row in self.stamps]
        self._in_kernel = True

    def kernel_end(self) -> None:
        tree = plru_tree_size(self._ways)
        self.bits = np.array(self._bits_l, dtype=bool).reshape(
            self._num_sets, tree)
        self.stamps = np.array(self._stamp_l, dtype=np.int64).reshape(
            self._ways, self._num_sets)
        self._bits_l = []
        self._stamp_l = []
        self._in_kernel = False

    @property
    def bit_lists(self) -> List[List[bool]]:
        """Checked-out per-set direction-bit rows (valid inside a kernel)."""
        if not self._in_kernel:
            raise RuntimeError("bit_lists is only valid between "
                               "kernel_begin() and kernel_end()")
        return self._bits_l

    @property
    def stamp_lists(self) -> List[List[int]]:
        """Checked-out per-way timestamp rows (valid inside a kernel)."""
        if not self._in_kernel:
            raise RuntimeError("stamp_lists is only valid between "
                               "kernel_begin() and kernel_end()")
        return self._stamp_l

    def state_snapshot(self):
        self._snapshot_guard()
        return self.bits.copy(), self.stamps.copy()

    def state_restore(self, snapshot) -> None:
        self._snapshot_guard()
        bits, stamps = snapshot
        self.bits = bits.copy()
        self.stamps = stamps.copy()

    def _touch(self, way: int, set_index: int, now: int) -> None:
        self._stamp_l[way][set_index] = now
        if self._ways >= 2:
            plru_touch(self._bits_l[set_index], way, self._ways)

    def on_hit(self, way, set_index, now):
        self._touch(way, set_index, now)

    def on_fill(self, way, set_index, now):
        self._touch(way, set_index, now)

    def victim(self, candidate_sets):
        first = candidate_sets[0]
        shared = True
        for set_index in candidate_sets:
            if set_index != first:
                shared = False
                break
        if shared:
            return plru_victim(self._bits_l[first], len(candidate_sets))
        return min_stamp_way(self._stamp_l, candidate_sets)


_VEC_POLICIES = {
    "lru": VecLRU,
    "fifo": VecFIFO,
    "random": VecRandom,
    "plru": VecTreePLRU,
}

assert tuple(sorted(_VEC_POLICIES)) == tuple(sorted(REPLACEMENT_POLICIES))


def make_vec_replacement(name: str, ways: int, num_sets: int,
                         seed: Optional[int] = None) -> VecReplacementState:
    """Build the vectorized state tables for policy ``name``.

    ``seed`` overrides the shared default draw seed of the ``random``
    policy (it is how a scalar :class:`RandomReplacement` instance's
    configuration reaches the batch engine); other policies ignore it.
    """
    try:
        cls = _VEC_POLICIES[name.strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; expected one of "
            f"{sorted(_VEC_POLICIES)}"
        ) from None
    if cls is VecRandom:
        return VecRandom(ways, num_sets,
                         seed=DEFAULT_RANDOM_SEED if seed is None else seed)
    return cls(ways, num_sets)
