"""Batch cache simulators: whole-trace simulation over NumPy address arrays.

This module is the heart of the vectorized engine.  It simulates the same
cache organisations as the scalar models in :mod:`repro.cache` —
set-associative (conventional or skewed, either write policy) and
column-associative — but consumes an :class:`~repro.engine.batch.AddressBatch`
instead of one :class:`~repro.trace.record.MemoryAccess` at a time, and is
bit-exact with the scalar models by construction (the differential suite in
``tests/test_engine_equivalence.py`` asserts identical hit/miss sequences and
identical final :class:`~repro.cache.stats.CacheStats`).

Five execution strategies, picked automatically per cache configuration
and batch:

1. **Fully vectorized** (non-skewed, <= 2 ways, LRU, load-only batch, cold
   cache): set indices are computed for the whole array at once, accesses are
   grouped by set with a stable argsort, and consecutive same-block runs are
   collapsed.  Within a set, adjacent collapsed runs have distinct block
   values, so the LRU contents of a 2-way set before the first access of run
   ``k`` are exactly ``{U[k-1], U[k-2]}`` — which turns exact hit/miss
   classification into a couple of shifted array comparisons.  No per-access
   Python at all.
2. **Tight scalar kernel over pre-vectorized indices** (everything else):
   set indices for all ways are still computed array-at-a-time (including the
   GF(2)-table I-Poly reduction), then a minimal Python loop updates
   plain-list tag/LRU/dirty stores.  This path supports stores under both
   write policies, skewed placement, any associativity, warm caches and the
   3C miss classifier.
3. **Column-associative kernel**: same idea for the two-probe
   column-associative organisation, replicating the swap-on-second-probe-hit
   and displaced-block-retreat behaviour of
   :class:`~repro.cache.column_assoc.ColumnAssociativeCache` exactly.

4. **Set-decomposed replacement kernels** (non-skewed, non-LRU, no 3C
   classifier): the ``replacement`` parameter accepts the same short names
   as the scalar caches (``lru``, ``fifo``, ``random``, ``plru``); on a
   conventional (non-skewed) organisation the non-LRU policies run the
   policy-specific kernels of :mod:`repro.engine.set_decompose` — accesses
   grouped per set, dense local state, FIFO hit-transparency, a precomputed
   vectorized ``splitmix64`` draw table for random — bit-exact with the
   scalar policies (including identical deterministic random-victim
   sequences).  LRU keeps the specialised fast paths above.

5. **Skew-decomposed replacement kernels** (skewed non-LRU, no 3C
   classifier): the policy-specialised trace-order kernels of
   :mod:`repro.engine.skew_decompose` — per-way index streams memoised as
   lists, inline stamp/bit-tree decisions, precomputed ``splitmix64`` draw
   tables — sharing state tables with the generic kernel below.

6. **Generic replacement kernel** (any non-LRU cache with the 3C
   classifier enabled, whose capacity/conflict split needs the classifier
   called in global trace order with per-access hit context; also any
   future policy the specialised kernels do not know): a per-way flat-list
   kernel whose decisions come from the NumPy-backed state tables in
   :mod:`repro.engine.replacement_vec`.  It shares those state tables with
   the decomposed kernels, so any of them can serve the same cache
   interchangeably — and the differential suite pits them against each
   other as well as against the scalar models.

7. **Victim-cache kernels** (:class:`BatchVictimCache`): the main cache and
   its fully-associative victim buffer in one tight loop over
   pre-vectorized indices, replicating
   :class:`~repro.cache.victim.VictimCache` — swap-on-victim-hit, displaced
   lines stashed in the buffer, dirty lines falling out of the buffer
   counted as writebacks — exactly.  Main caches of one or two ways run
   the decomposed victim kernels of :mod:`repro.engine.skew_decompose`;
   wider main caches keep the generic loop.

Every cache exposes ``dispatch_strategy(batch)`` — the name of the kernel
``run`` will execute — as the dispatcher's single source of truth, which
the differential suite introspects to prove each path is covered.

Block-number and set-index arrays are obtained through the sweep-wide memo
tables of :mod:`repro.engine.memo` (including the plain-list views the
tight kernels iterate), so tasks that share one materialised trace (see
:mod:`repro.trace.batching`) also share the derived arrays.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Union

import numpy as np

from ..cache.replacement import (
    RandomReplacement,
    ReplacementPolicy,
    replacement_policy_name,
)
from ..cache.set_assoc import WritePolicy
from ..cache.stats import CacheStats, MissClassifier, MissKind
from ..core.index import BitSelectIndexing, IndexFunction, IPolyIndexing
from .batch import AddressBatch
from .index_vec import VectorizedIndex, _VecIPoly, vectorize_index
from .memo import (
    cached_block_numbers,
    cached_set_index_lists,
    cached_set_indices,
)
from .replacement_vec import VecReplacementState, make_vec_replacement
from .set_decompose import run_decomposed_policy
from .skew_decompose import run_skew_decomposed_policy, run_victim_decomposed

__all__ = [
    "BatchSetAssociativeCache",
    "BatchColumnAssociativeCache",
    "BatchVictimCache",
]


def _resolve_batch_replacement(
        replacement: Union[str, ReplacementPolicy, None]):
    """Normalise a batch cache's ``replacement=`` argument.

    Returns ``(name, seed)``: the validated policy name plus the draw seed
    carried by a scalar :class:`RandomReplacement` instance (``None``
    otherwise), so that passing a configured policy instance to a batch
    cache reproduces the scalar cache's exact victim sequence instead of
    silently falling back to the default seed.
    """
    seed = (replacement.seed
            if isinstance(replacement, RandomReplacement) else None)
    return replacement_policy_name(replacement), seed


class BatchSetAssociativeCache:
    """Batch counterpart of :class:`~repro.cache.set_assoc.SetAssociativeCache`.

    Construction mirrors the scalar cache (same geometry validation, same
    defaults); :meth:`run` consumes an :class:`AddressBatch` and returns the
    per-access hit mask while accumulating into :attr:`stats`.  State persists
    across calls, so a cache can be warmed with one batch and measured with
    the next, exactly like the scalar model.
    """

    def __init__(
        self,
        size_bytes: int,
        block_size: int,
        ways: int,
        index_function: Optional[IndexFunction] = None,
        replacement: Union[str, ReplacementPolicy, None] = None,
        write_policy: str = WritePolicy.WRITE_THROUGH_NO_ALLOCATE,
        classify_misses: bool = False,
        name: str = "",
    ) -> None:
        if block_size < 1 or block_size & (block_size - 1):
            raise ValueError("block_size must be a positive power of two")
        if ways < 1:
            raise ValueError("ways must be at least 1")
        if size_bytes < block_size * ways:
            raise ValueError("cache must hold at least one set")
        if size_bytes % (block_size * ways):
            raise ValueError(
                "size_bytes must be a multiple of block_size * ways "
                f"({block_size * ways}), got {size_bytes}"
            )
        if write_policy not in WritePolicy.ALL:
            raise ValueError(f"unknown write policy {write_policy!r}")

        self._size_bytes = size_bytes
        self._block_size = block_size
        self._ways = ways
        self._num_sets = size_bytes // (block_size * ways)
        if self._num_sets & (self._num_sets - 1):
            raise ValueError(
                f"number of sets must be a power of two, got {self._num_sets}"
            )
        if index_function is None:
            index_function = BitSelectIndexing(self._num_sets)
        if index_function.num_sets != self._num_sets:
            raise ValueError(
                f"index function covers {index_function.num_sets} sets but the "
                f"cache has {self._num_sets}"
            )
        self._index_fn = index_function
        self._vec_index: VectorizedIndex = vectorize_index(index_function)
        self._replacement_name, random_seed = _resolve_batch_replacement(
            replacement)
        self._write_policy = write_policy
        self._name = name or (f"{size_bytes // 1024}KB-{ways}way-"
                              f"{index_function.name}-batch")
        self._skewed = index_function.is_skewed

        self._clock = 0
        self.stats = CacheStats()
        self._classifier = (
            MissClassifier(self.num_blocks) if classify_misses else None
        )
        # Non-skewed LRU state: one dict per set mapping block -> dirty, in
        # LRU-to-MRU insertion order.  Skewed LRU and every non-LRU policy:
        # per-way flat tag / dirty lists (tag -1 == invalid frame), with
        # last-used timestamps in the cache (LRU) or in the policy state
        # tables of :mod:`repro.engine.replacement_vec` (everything else).
        self._use_flat = self._skewed or self._replacement_name != "lru"
        self._vec_policy: Optional[VecReplacementState] = None
        if self._use_flat:
            self._way_tags = [[-1] * self._num_sets for _ in range(ways)]
            self._way_used = [[0] * self._num_sets for _ in range(ways)]
            self._way_dirty = [[False] * self._num_sets for _ in range(ways)]
            self._sets: List[Dict[int, bool]] = []
            if self._replacement_name != "lru":
                self._vec_policy = make_vec_replacement(
                    self._replacement_name, ways, self._num_sets,
                    seed=random_seed)
        else:
            self._sets = [dict() for _ in range(self._num_sets)]

    # ------------------------------------------------------------------ #
    # introspection (mirrors the scalar cache)
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        """Human-readable label for reports."""
        return self._name

    @property
    def size_bytes(self) -> int:
        """Total capacity in bytes."""
        return self._size_bytes

    @property
    def block_size(self) -> int:
        """Line size in bytes."""
        return self._block_size

    @property
    def ways(self) -> int:
        """Associativity."""
        return self._ways

    @property
    def num_sets(self) -> int:
        """Number of sets per way."""
        return self._num_sets

    @property
    def num_blocks(self) -> int:
        """Total number of frames."""
        return self._num_sets * self._ways

    @property
    def index_function(self) -> IndexFunction:
        """The (scalar) placement function this cache vectorizes."""
        return self._index_fn

    @property
    def write_policy(self) -> str:
        """The configured write policy."""
        return self._write_policy

    @property
    def replacement_name(self) -> str:
        """Short name of the configured replacement policy."""
        return self._replacement_name

    def resident_blocks(self) -> List[int]:
        """All resident block numbers (order unspecified)."""
        if self._use_flat:
            return [tag for tags in self._way_tags for tag in tags if tag >= 0]
        return [block for d in self._sets for block in d]

    def reset_stats(self) -> None:
        """Zero the statistics counters."""
        self.stats.reset()

    # ------------------------------------------------------------------ #
    # scalar-shaped point operations (used by the multi-level engine)
    # ------------------------------------------------------------------ #

    def block_number_of(self, address: int) -> int:
        """Map a byte address to its block number (mirrors the scalar cache)."""
        if address < 0:
            raise ValueError("address must be non-negative")
        return address // self._block_size

    def _candidate_sets(self, block_number: int) -> List[int]:
        """Per-way set indices of one block via the scalar index function."""
        if not self._skewed:
            return [self._index_fn.index(block_number, 0)] * self._ways
        return [self._index_fn.index(block_number, way)
                for way in range(self._ways)]

    def contains_block(self, block_number: int) -> bool:
        """Return True if ``block_number`` is resident."""
        if not self._use_flat:
            return block_number in self._sets[self._index_fn.index(block_number, 0)]
        for way, set_index in enumerate(self._candidate_sets(block_number)):
            if self._way_tags[way][set_index] == block_number:
                return True
        return False

    def invalidate_block(self, block_number: int) -> bool:
        """Remove ``block_number`` if resident; returns True if it was found.

        Mirrors :meth:`SetAssociativeCache.invalidate_block` bit-exactly:
        the invalidations counter bumps only when the block was resident, and
        replacement state is untouched (the scalar ``on_invalidate`` hook is
        a universal no-op) — a later fill prefers the invalid frame in way
        order, exactly like the scalar ``_fill``.
        """
        if not self._use_flat:
            d = self._sets[self._index_fn.index(block_number, 0)]
            if block_number in d:
                del d[block_number]
                self.stats.invalidations += 1
                return True
            return False
        for way, set_index in enumerate(self._candidate_sets(block_number)):
            if self._way_tags[way][set_index] == block_number:
                self._way_tags[way][set_index] = -1
                self._way_dirty[way][set_index] = False
                self.stats.invalidations += 1
                return True
        return False

    def flush(self) -> None:
        """Empty the cache (statistics are preserved; reset them separately).

        Mirrors the scalar :meth:`SetAssociativeCache.flush`: every frame is
        invalidated and the replacement state forgets everything, but the
        access clock keeps running.
        """
        if self._use_flat:
            for tags in self._way_tags:
                tags[:] = [-1] * self._num_sets
            for used in self._way_used:
                used[:] = [0] * self._num_sets
            for dirty in self._way_dirty:
                dirty[:] = [False] * self._num_sets
            if self._vec_policy is not None:
                self._vec_policy.reset()
        else:
            for d in self._sets:
                d.clear()
        if self._classifier is not None:
            self._classifier.reset()

    def _snapshot_state(self):
        """Deep copy of simulation state + statistics for epoch rewind."""
        stats = self.stats
        counters = (stats.loads, stats.stores, stats.load_misses,
                    stats.store_misses, stats.evictions, stats.writebacks,
                    stats.invalidations, stats.holes_created,
                    dict(stats.miss_kinds))
        policy_snap = (self._vec_policy.state_snapshot()
                       if self._vec_policy is not None else None)
        if self._use_flat:
            state = ([list(row) for row in self._way_tags],
                     [list(row) for row in self._way_used],
                     [list(row) for row in self._way_dirty])
        else:
            state = [d.copy() for d in self._sets]
        return self._clock, state, counters, policy_snap

    def _restore_state(self, snapshot) -> None:
        """Restore a :meth:`_snapshot_state` copy (state, stats, policy, clock)."""
        clock, state, counters, policy_snap = snapshot
        self._clock = clock
        stats = self.stats
        (stats.loads, stats.stores, stats.load_misses, stats.store_misses,
         stats.evictions, stats.writebacks, stats.invalidations,
         stats.holes_created, kinds) = counters
        stats.miss_kinds = dict(kinds)
        if self._vec_policy is not None:
            self._vec_policy.state_restore(policy_snap)
        if self._use_flat:
            tags, used, dirty = state
            for dst, src in zip(self._way_tags, tags):
                dst[:] = list(src)
            for dst, src in zip(self._way_used, used):
                dst[:] = list(src)
            for dst, src in zip(self._way_dirty, dirty):
                dst[:] = list(src)
        else:
            for dst, src in zip(self._sets, state):
                dst.clear()
                dst.update(src)

    # ------------------------------------------------------------------ #
    # simulation
    # ------------------------------------------------------------------ #

    def dispatch_strategy(self, batch: AddressBatch) -> str:
        """Name of the kernel :meth:`run` would execute for ``batch``.

        The dispatcher's single source of truth — :meth:`run` switches on
        exactly this value, so tests can introspect which kernel serves a
        given (organisation, policy, batch) combination.  Possible values:

        * ``"set-decomposed-{fifo,random,plru}"`` — non-skewed non-LRU,
          no classifier (:mod:`repro.engine.set_decompose`);
        * ``"skew-decomposed-{fifo,random,plru}"`` — skewed non-LRU, no
          classifier (:mod:`repro.engine.skew_decompose`);
        * ``"generic-policy-kernel"`` — any other non-LRU configuration
          (3C classifier, unknown future policy);
        * ``"lru-run-collapse"`` — the fully vectorized LRU fast path
          (non-skewed, <= 2 ways, cold cache, load-only batch);
        * ``"lru-skewed-2way"`` / ``"lru-skewed-generic"`` — the skewed
          LRU kernels;
        * ``"lru-dict"`` — the insertion-ordered dict kernel (everything
          else).
        """
        if self._vec_policy is not None:
            if self._classifier is not None:
                return "generic-policy-kernel"
            name = self._vec_policy.name
            if name not in ("fifo", "random", "plru"):
                return "generic-policy-kernel"
            if self._skewed:
                return f"skew-decomposed-{name}"
            return f"set-decomposed-{name}"
        if (not self._skewed and self._ways <= 2 and self._classifier is None
                and self._clock == 0 and not batch.has_stores):
            return "lru-run-collapse"
        if self._skewed:
            return "lru-skewed-2way" if self._ways == 2 else "lru-skewed-generic"
        return "lru-dict"

    def run(self, batch: AddressBatch) -> np.ndarray:
        """Simulate a whole batch; returns the per-access hit mask (bool).

        Statistics accumulate into :attr:`stats` and cache state carries over
        to the next call, exactly like feeding the scalar model one access at
        a time.  The kernel is picked by :meth:`dispatch_strategy`.
        """
        n = len(batch)
        if n == 0:
            return np.zeros(0, dtype=bool)
        strategy = self.dispatch_strategy(batch)
        blocks = cached_block_numbers(batch, self._block_size)
        if strategy.startswith("set-decomposed-"):
            sets = cached_set_indices(self._vec_index, blocks, 0)
            return run_decomposed_policy(self, blocks, sets, batch.is_write)
        if strategy.startswith("skew-decomposed-"):
            return run_skew_decomposed_policy(self, blocks, batch.is_write)
        if strategy == "generic-policy-kernel":
            return self._run_policy_kernel(blocks, batch.is_write)
        if strategy == "lru-run-collapse":
            return self._run_vectorized(blocks)
        if strategy == "lru-skewed-2way":
            return self._run_skewed_kernel_2way(blocks, batch.is_write)
        if strategy == "lru-skewed-generic":
            return self._run_skewed_kernel_generic(blocks, batch.is_write)
        return self._run_dict_kernel(blocks, batch.is_write)

    def run_chunks(self, chunks: Iterable[AddressBatch]) -> int:
        """Consume a stream of batches; returns the accesses simulated.

        The chunk-consume entry point of the streaming trace layer
        (:func:`repro.trace.stream.iter_trace_chunks`): state and statistics
        carry across chunks exactly as across :meth:`run` calls, so a
        chunked replay is bit-exact with one ``run()`` over the whole trace
        — including mid-stream kernel handoffs (e.g. a cold load-only first
        chunk on the run-collapse kernel, later chunks on the dict kernel).
        """
        total = 0
        for batch in chunks:
            self.run(batch)
            total += len(batch)
        return total

    # -- strategy 1: fully vectorized (non-skewed, <= 2 ways, loads, cold) --

    def _run_vectorized(self, blocks: np.ndarray) -> np.ndarray:
        n = blocks.shape[0]
        ways = self._ways
        sets = cached_set_indices(self._vec_index, blocks, 0)

        order = np.argsort(sets, kind="stable")
        gb = blocks[order]
        gs = sets[order]
        new_set = np.empty(n, dtype=bool)
        new_set[0] = True
        np.not_equal(gs[1:], gs[:-1], out=new_set[1:])
        new_run = np.empty(n, dtype=bool)
        new_run[0] = True
        np.not_equal(gb[1:], gb[:-1], out=new_run[1:])
        new_run |= new_set
        run_id = np.cumsum(new_run) - 1

        run_values = gb[new_run]
        run_new_set = new_set[new_run]
        num_runs = run_values.shape[0]
        run_pos = np.arange(num_runs)
        set_start = np.maximum.accumulate(np.where(run_new_set, run_pos, 0))
        run_in_set = run_pos - set_start

        if ways == 1:
            # A first-of-run access never matches the single resident block
            # (adjacent runs differ by construction), so it always misses.
            run_hit = np.zeros(num_runs, dtype=bool)
        else:
            prev2 = np.empty(num_runs, dtype=np.int64)
            prev2[:2] = -1
            prev2[2:] = run_values[:-2]
            run_hit = (run_in_set >= 2) & (run_values == prev2)

        grouped_hits = ~new_run | run_hit[run_id]
        hits = np.empty(n, dtype=bool)
        hits[order] = grouped_hits

        misses = int(n - np.count_nonzero(grouped_hits))
        self.stats.loads += n
        self.stats.load_misses += misses
        # The first `ways` misses of each set fill invalid frames; every
        # later miss evicts exactly one (clean — the batch has no stores).
        miss_counts = np.bincount(gs[~grouped_hits], minlength=self._num_sets)
        self.stats.evictions += int(
            np.maximum(miss_counts - ways, 0).sum())
        self._clock += n

        # Materialise the final LRU state so later (kernel) runs continue
        # bit-exactly: the residents of each set are the values of its last
        # `ways` collapsed runs, inserted LRU-first.
        last_of_set = np.empty(num_runs, dtype=bool)
        last_of_set[:-1] = run_new_set[1:]
        last_of_set[-1] = True
        run_sets = gs[new_run]
        for r in np.flatnonzero(last_of_set):
            d = self._sets[int(run_sets[r])]
            if ways == 2 and run_in_set[r] >= 1:
                d[int(run_values[r - 1])] = False
            d[int(run_values[r])] = False
        return hits

    # -- strategy 2a: non-skewed tight kernel --------------------------- #

    def _run_dict_kernel(self, blocks: np.ndarray,
                         is_write: np.ndarray) -> np.ndarray:
        n = blocks.shape[0]
        sets_l = cached_set_index_lists(self._vec_index, blocks, 0)
        blocks_l = blocks.tolist()
        writes_l = is_write.tolist()
        sets_state = self._sets
        ways = self._ways
        write_back = self._write_policy == WritePolicy.WRITE_BACK_ALLOCATE
        classifier = self._classifier
        stats = self.stats

        hits_l = []
        hit_append = hits_l.append
        loads = stores = load_misses = store_misses = evictions = writebacks = 0
        kinds = {MissKind.COMPULSORY: 0, MissKind.CAPACITY: 0, MissKind.CONFLICT: 0}

        for b, s, w in zip(blocks_l, sets_l, writes_l):
            d = sets_state[s]
            if b in d:
                dirty = d.pop(b)
                d[b] = dirty or (w and write_back)
                if w:
                    stores += 1
                else:
                    loads += 1
                hit_append(True)
                if classifier is not None:
                    classifier.classify(b, True)
                continue
            # Miss.
            hit_append(False)
            if classifier is not None:
                kind = classifier.classify(b, False)
                kinds[kind] += 1
            if w:
                stores += 1
                store_misses += 1
                if not write_back:
                    continue  # write-through / no-write-allocate
            else:
                loads += 1
                load_misses += 1
            if len(d) >= ways:
                victim = next(iter(d))
                if d.pop(victim):
                    writebacks += 1
                evictions += 1
            d[b] = w and write_back

        self._clock += n
        stats.loads += loads
        stats.stores += stores
        stats.load_misses += load_misses
        stats.store_misses += store_misses
        stats.evictions += evictions
        stats.writebacks += writebacks
        if classifier is not None:
            for kind, count in kinds.items():
                stats.miss_kinds[kind] += count
        return np.array(hits_l, dtype=bool)

    # -- strategy 2b: skewed tight kernel ------------------------------- #

    def _run_skewed_kernel_2way(self, blocks: np.ndarray,
                                is_write: np.ndarray) -> np.ndarray:
        n = blocks.shape[0]
        s0_l = cached_set_index_lists(self._vec_index, blocks, 0)
        s1_l = cached_set_index_lists(self._vec_index, blocks, 1)
        blocks_l = blocks.tolist()
        writes_l = is_write.tolist()
        t0, t1 = self._way_tags
        u0, u1 = self._way_used
        d0, d1 = self._way_dirty
        write_back = self._write_policy == WritePolicy.WRITE_BACK_ALLOCATE
        classifier = self._classifier
        stats = self.stats
        clock = self._clock

        hits_l = []
        hit_append = hits_l.append
        loads = stores = load_misses = store_misses = evictions = writebacks = 0
        kinds = {MissKind.COMPULSORY: 0, MissKind.CAPACITY: 0, MissKind.CONFLICT: 0}

        for b, sa, sb, w in zip(blocks_l, s0_l, s1_l, writes_l):
            clock += 1
            if t0[sa] == b:
                u0[sa] = clock
                if w:
                    stores += 1
                    if write_back:
                        d0[sa] = True
                else:
                    loads += 1
                hit_append(True)
                if classifier is not None:
                    classifier.classify(b, True)
                continue
            if t1[sb] == b:
                u1[sb] = clock
                if w:
                    stores += 1
                    if write_back:
                        d1[sb] = True
                else:
                    loads += 1
                hit_append(True)
                if classifier is not None:
                    classifier.classify(b, True)
                continue
            # Miss.
            hit_append(False)
            if classifier is not None:
                kind = classifier.classify(b, False)
                kinds[kind] += 1
            if w:
                stores += 1
                store_misses += 1
                if not write_back:
                    continue
            else:
                loads += 1
                load_misses += 1
            dirty = w and write_back
            # Invalid frames first (in way order), then the LRU victim with
            # ties broken towards way 0 — the scalar `_fill` ordering.
            if t0[sa] < 0:
                t0[sa] = b
                u0[sa] = clock
                d0[sa] = dirty
            elif t1[sb] < 0:
                t1[sb] = b
                u1[sb] = clock
                d1[sb] = dirty
            elif u0[sa] <= u1[sb]:
                evictions += 1
                if d0[sa]:
                    writebacks += 1
                t0[sa] = b
                u0[sa] = clock
                d0[sa] = dirty
            else:
                evictions += 1
                if d1[sb]:
                    writebacks += 1
                t1[sb] = b
                u1[sb] = clock
                d1[sb] = dirty

        self._clock = clock
        stats.loads += loads
        stats.stores += stores
        stats.load_misses += load_misses
        stats.store_misses += store_misses
        stats.evictions += evictions
        stats.writebacks += writebacks
        if classifier is not None:
            for kind, count in kinds.items():
                stats.miss_kinds[kind] += count
        return np.array(hits_l, dtype=bool)

    def _run_skewed_kernel_generic(self, blocks: np.ndarray,
                                   is_write: np.ndarray) -> np.ndarray:
        n = blocks.shape[0]
        ways = self._ways
        way_sets = [cached_set_index_lists(self._vec_index, blocks, w)
                    for w in range(ways)]
        blocks_l = blocks.tolist()
        writes_l = is_write.tolist()
        tags = self._way_tags
        used = self._way_used
        dirty = self._way_dirty
        write_back = self._write_policy == WritePolicy.WRITE_BACK_ALLOCATE
        classifier = self._classifier
        stats = self.stats
        clock = self._clock
        way_range = range(ways)

        hits_l = []
        hit_append = hits_l.append
        loads = stores = load_misses = store_misses = evictions = writebacks = 0
        kinds = {MissKind.COMPULSORY: 0, MissKind.CAPACITY: 0, MissKind.CONFLICT: 0}

        for i, b in enumerate(blocks_l):
            clock += 1
            w = writes_l[i]
            hit_way = -1
            for wy in way_range:
                s = way_sets[wy][i]
                if tags[wy][s] == b:
                    hit_way = wy
                    used[wy][s] = clock
                    if w and write_back:
                        dirty[wy][s] = True
                    break
            if hit_way >= 0:
                if w:
                    stores += 1
                else:
                    loads += 1
                hit_append(True)
                if classifier is not None:
                    classifier.classify(b, True)
                continue
            hit_append(False)
            if classifier is not None:
                kind = classifier.classify(b, False)
                kinds[kind] += 1
            if w:
                stores += 1
                store_misses += 1
                if not write_back:
                    continue
            else:
                loads += 1
                load_misses += 1
            fill_dirty = w and write_back
            target = -1
            for wy in way_range:
                if tags[wy][way_sets[wy][i]] < 0:
                    target = wy
                    break
            if target < 0:
                best_used = None
                for wy in way_range:
                    stamp = used[wy][way_sets[wy][i]]
                    if best_used is None or stamp < best_used:
                        best_used = stamp
                        target = wy
                s = way_sets[target][i]
                evictions += 1
                if dirty[target][s]:
                    writebacks += 1
            s = way_sets[target][i]
            tags[target][s] = b
            used[target][s] = clock
            dirty[target][s] = fill_dirty

        self._clock = clock
        stats.loads += loads
        stats.stores += stores
        stats.load_misses += load_misses
        stats.store_misses += store_misses
        stats.evictions += evictions
        stats.writebacks += writebacks
        if classifier is not None:
            for kind, count in kinds.items():
                stats.miss_kinds[kind] += count
        return np.array(hits_l, dtype=bool)

    # -- strategy 4: generic replacement kernel (any skew, non-LRU) ------ #

    def _run_policy_kernel(self, blocks: np.ndarray,
                           is_write: np.ndarray) -> np.ndarray:
        ways = self._ways
        if self._skewed:
            way_sets = [
                cached_set_index_lists(self._vec_index, blocks, w)
                for w in range(ways)
            ]
        else:
            shared = cached_set_index_lists(self._vec_index, blocks, 0)
            way_sets = [shared] * ways
        blocks_l = blocks.tolist()
        writes_l = is_write.tolist()
        tags = self._way_tags
        dirty = self._way_dirty
        write_back = self._write_policy == WritePolicy.WRITE_BACK_ALLOCATE
        classifier = self._classifier
        stats = self.stats
        clock = self._clock
        way_range = range(ways)
        policy = self._vec_policy
        policy.kernel_begin()
        on_hit = policy.on_hit
        on_fill = policy.on_fill
        choose = policy.victim

        hits_l = []
        hit_append = hits_l.append
        loads = stores = load_misses = store_misses = evictions = writebacks = 0
        kinds = {MissKind.COMPULSORY: 0, MissKind.CAPACITY: 0, MissKind.CONFLICT: 0}

        try:
            for i, b in enumerate(blocks_l):
                clock += 1
                w = writes_l[i]
                hit_way = -1
                for wy in way_range:
                    s = way_sets[wy][i]
                    if tags[wy][s] == b:
                        hit_way = wy
                        on_hit(wy, s, clock)
                        if w and write_back:
                            dirty[wy][s] = True
                        break
                if hit_way >= 0:
                    if w:
                        stores += 1
                    else:
                        loads += 1
                    hit_append(True)
                    if classifier is not None:
                        classifier.classify(b, True)
                    continue
                hit_append(False)
                if classifier is not None:
                    kind = classifier.classify(b, False)
                    kinds[kind] += 1
                if w:
                    stores += 1
                    store_misses += 1
                    if not write_back:
                        continue
                else:
                    loads += 1
                    load_misses += 1
                fill_dirty = w and write_back
                target = -1
                for wy in way_range:
                    if tags[wy][way_sets[wy][i]] < 0:
                        target = wy
                        break
                if target < 0:
                    target = choose([way_sets[wy][i] for wy in way_range])
                    s = way_sets[target][i]
                    evictions += 1
                    if dirty[target][s]:
                        writebacks += 1
                s = way_sets[target][i]
                tags[target][s] = b
                dirty[target][s] = fill_dirty
                on_fill(target, s, clock)
        finally:
            policy.kernel_end()

        self._clock = clock
        stats.loads += loads
        stats.stores += stores
        stats.load_misses += load_misses
        stats.store_misses += store_misses
        stats.evictions += evictions
        stats.writebacks += writebacks
        if classifier is not None:
            for kind, count in kinds.items():
                stats.miss_kinds[kind] += count
        return np.array(hits_l, dtype=bool)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchSetAssociativeCache({self._size_bytes}B, {self._ways}-way, "
            f"{self._block_size}B blocks, index={self._index_fn.name})"
        )


class BatchColumnAssociativeCache:
    """Batch counterpart of :class:`~repro.cache.column_assoc.ColumnAssociativeCache`.

    The two probe indices are computed array-at-a-time; the per-access state
    machine (swap on second-probe hit, displaced-block retreat on miss) runs
    in a tight kernel over flat tag/dirty lists and replicates the scalar
    model's behaviour — including its statistics — exactly.
    """

    def __init__(
        self,
        size_bytes: int,
        block_size: int,
        primary_index: Optional[IndexFunction] = None,
        secondary_index: Optional[IndexFunction] = None,
        swap_on_rehash_hit: bool = True,
        classify_misses: bool = False,
        address_bits: Optional[int] = None,
        replacement: Union[str, ReplacementPolicy, None] = None,
        name: str = "",
    ) -> None:
        if block_size < 1 or block_size & (block_size - 1):
            raise ValueError("block_size must be a positive power of two")
        if size_bytes % block_size:
            raise ValueError("size_bytes must be a multiple of block_size")
        num_frames = size_bytes // block_size
        if num_frames & (num_frames - 1):
            raise ValueError("number of frames must be a power of two")

        # Accepted and validated for sweep symmetry, but behaviourally inert:
        # the organisation is direct-mapped per probe location, so placement
        # is fully determined (see the scalar model's docstring).
        self._replacement_name, _ = _resolve_batch_replacement(replacement)
        self._block_size = block_size
        self._num_frames = num_frames
        self._primary = primary_index or BitSelectIndexing(num_frames)
        self._secondary = secondary_index or IPolyIndexing(
            num_frames, address_bits=address_bits)
        for fn, label in ((self._primary, "primary"), (self._secondary, "secondary")):
            if fn.num_sets != num_frames:
                raise ValueError(f"{label} index covers {fn.num_sets} sets, "
                                 f"cache has {num_frames} frames")
        self._vec_primary = vectorize_index(self._primary)
        self._vec_secondary = vectorize_index(self._secondary)
        # Scalar rehash of an arbitrary (displaced) block: the GF(2) chunk
        # tables make this a couple of list lookups for I-Poly functions.
        if isinstance(self._vec_secondary, _VecIPoly):
            self._rehash_scalar: Callable[[int], int] = (
                self._vec_secondary.table_for_way(0).reduce_scalar)
        else:
            self._rehash_scalar = self._secondary.index
        self._swap = bool(swap_on_rehash_hit)
        self._name = name or f"column-{size_bytes // 1024}KB-batch"

        self._tags = [-1] * num_frames
        self._dirty = [False] * num_frames
        self.stats = CacheStats()
        self.first_probe_hits = 0
        self.second_probe_hits = 0
        self.total_probes = 0
        self._classifier = (
            MissClassifier(num_frames) if classify_misses else None
        )

    @property
    def name(self) -> str:
        """Label used in reports."""
        return self._name

    @property
    def block_size(self) -> int:
        """Line size in bytes."""
        return self._block_size

    @property
    def num_frames(self) -> int:
        """Total number of frames (direct-mapped)."""
        return self._num_frames

    @property
    def replacement_name(self) -> str:
        """Configured (inert — see class docstring) replacement policy name."""
        return self._replacement_name

    @property
    def first_probe_hit_ratio(self) -> float:
        """Fraction of hits satisfied on the first probe."""
        hits = self.first_probe_hits + self.second_probe_hits
        return self.first_probe_hits / hits if hits else 0.0

    @property
    def average_probes(self) -> float:
        """Average number of probes per access (>= 1)."""
        return self.total_probes / self.stats.accesses if self.stats.accesses else 0.0

    def run(self, batch: AddressBatch) -> np.ndarray:
        """Simulate a whole batch; returns the per-access hit mask (bool)."""
        n = len(batch)
        if n == 0:
            return np.zeros(0, dtype=bool)
        blocks = cached_block_numbers(batch, self._block_size)
        prim_l = cached_set_indices(self._vec_primary, blocks, 0).tolist()
        sec_l = cached_set_indices(self._vec_secondary, blocks, 0).tolist()
        blocks_l = blocks.tolist()
        writes_l = batch.is_write.tolist()
        tags = self._tags
        dirty = self._dirty
        swap = self._swap
        rehash = self._rehash_scalar
        classifier = self._classifier
        stats = self.stats

        hits_l = []
        hit_append = hits_l.append
        loads = stores = load_misses = store_misses = evictions = 0
        first_hits = second_hits = probes_total = 0
        kinds = {MissKind.COMPULSORY: 0, MissKind.CAPACITY: 0, MissKind.CONFLICT: 0}

        for b, p, s, w in zip(blocks_l, prim_l, sec_l, writes_l):
            first_hit = tags[p] == b
            second_hit = (not first_hit) and s != p and tags[s] == b
            hit = first_hit or second_hit
            probes_total += 1 if first_hit else 2

            if classifier is not None:
                kind = classifier.classify(b, hit)
                if kind is not None:
                    kinds[kind] += 1
            if w:
                stores += 1
                if not hit:
                    store_misses += 1
            else:
                loads += 1
                if not hit:
                    load_misses += 1
            hit_append(hit)

            if first_hit:
                first_hits += 1
                continue
            if second_hit:
                second_hits += 1
                if swap:
                    # Promote the block to its primary slot; the displaced
                    # primary occupant retreats to the secondary slot (and,
                    # as in the scalar model, the promoted line comes back
                    # clean).
                    displaced = tags[p]
                    displaced_dirty = dirty[p]
                    tags[p] = b
                    dirty[p] = False
                    if displaced >= 0:
                        tags[s] = displaced
                        dirty[s] = displaced_dirty
                    else:
                        tags[s] = -1
                        dirty[s] = False
                continue
            # Miss: install at the primary slot; its previous occupant
            # retreats to that block's own rehash location.
            if tags[p] < 0:
                tags[p] = b
                dirty[p] = False
                continue
            displaced = tags[p]
            displaced_dirty = dirty[p]
            tags[p] = b
            dirty[p] = False
            retreat = rehash(displaced)
            if retreat == p:
                evictions += 1
                continue
            if tags[retreat] >= 0:
                evictions += 1
            tags[retreat] = displaced
            dirty[retreat] = displaced_dirty

        stats.loads += loads
        stats.stores += stores
        stats.load_misses += load_misses
        stats.store_misses += store_misses
        stats.evictions += evictions
        if classifier is not None:
            for kind, count in kinds.items():
                stats.miss_kinds[kind] += count
        self.first_probe_hits += first_hits
        self.second_probe_hits += second_hits
        self.total_probes += probes_total
        return np.array(hits_l, dtype=bool)

    def run_chunks(self, chunks: Iterable[AddressBatch]) -> int:
        """Consume a stream of batches (see
        :meth:`BatchSetAssociativeCache.run_chunks`); returns the accesses
        simulated.  State, statistics and probe counters carry across
        chunks, so chunked replay is bit-exact with a one-shot run."""
        total = 0
        for batch in chunks:
            self.run(batch)
            total += len(batch)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BatchColumnAssociativeCache({self._num_frames} frames, "
                f"{self._block_size}B blocks)")


class BatchVictimCache:
    """Batch counterpart of :class:`~repro.cache.victim.VictimCache`.

    A main cache backed by a small fully-associative victim buffer, run as
    one tight kernel over pre-vectorized main-cache indices.  The per-access
    state machine replicates the scalar model exactly: a main miss probes
    the buffer; a buffer hit invalidates the entry and refills the main
    cache; any line the main cache displaces is stashed in the buffer; and a
    dirty line falling out of the buffer counts as a writeback on
    :attr:`stats` (the only writeback the scalar model surfaces).  Both
    structures honour the same ``replacement`` policy names as the scalar
    cache, with independent policy state per structure — so the whole
    organisation is differential-testable policy-for-policy.

    :meth:`run` returns the per-access overall hit mask; :attr:`main_hits`
    and :attr:`victim_hits` split the hits like the scalar model.
    """

    def __init__(
        self,
        size_bytes: int,
        block_size: int,
        ways: int = 1,
        victim_entries: int = 8,
        index_function: Optional[IndexFunction] = None,
        replacement: Union[str, ReplacementPolicy, None] = None,
        name: str = "",
    ) -> None:
        if victim_entries < 1:
            raise ValueError("victim_entries must be positive")
        if block_size < 1 or block_size & (block_size - 1):
            raise ValueError("block_size must be a positive power of two")
        if ways < 1:
            raise ValueError("ways must be at least 1")
        if size_bytes < block_size * ways:
            raise ValueError("cache must hold at least one set")
        if size_bytes % (block_size * ways):
            raise ValueError(
                "size_bytes must be a multiple of block_size * ways "
                f"({block_size * ways}), got {size_bytes}"
            )
        self._size_bytes = size_bytes
        self._block_size = block_size
        self._ways = ways
        self._num_sets = size_bytes // (block_size * ways)
        if self._num_sets & (self._num_sets - 1):
            raise ValueError(
                f"number of sets must be a power of two, got {self._num_sets}"
            )
        if index_function is None:
            index_function = BitSelectIndexing(self._num_sets)
        if index_function.num_sets != self._num_sets:
            raise ValueError(
                f"index function covers {index_function.num_sets} sets but the "
                f"cache has {self._num_sets}"
            )
        self._index_fn = index_function
        self._vec_index = vectorize_index(index_function)
        self._skewed = index_function.is_skewed
        self._replacement_name, random_seed = _resolve_batch_replacement(
            replacement)
        self._entries = victim_entries
        self._name = name or f"victim-{size_bytes // 1024}KB+{victim_entries}-batch"

        # Main-cache state (per-way flat lists) and its policy tables.
        self._way_tags = [[-1] * self._num_sets for _ in range(ways)]
        self._way_dirty = [[False] * self._num_sets for _ in range(ways)]
        self._main_policy = make_vec_replacement(
            self._replacement_name, ways, self._num_sets, seed=random_seed)
        self._main_clock = 0
        # Victim-buffer state (one set of `victim_entries` ways).
        self._victim_tags = [-1] * victim_entries
        self._victim_dirty = [False] * victim_entries
        self._victim_policy = make_vec_replacement(
            self._replacement_name, victim_entries, 1, seed=random_seed)
        self._victim_clock = 0

        self.stats = CacheStats()
        self.main_hits = 0
        self.victim_hits = 0

    @property
    def name(self) -> str:
        """Label used in reports."""
        return self._name

    @property
    def block_size(self) -> int:
        """Line size in bytes."""
        return self._block_size

    @property
    def victim_entries(self) -> int:
        """Number of lines in the victim buffer."""
        return self._entries

    @property
    def replacement_name(self) -> str:
        """Replacement policy applied to the main cache and the buffer."""
        return self._replacement_name

    @property
    def miss_ratio(self) -> float:
        """Overall miss ratio (misses in both structures)."""
        return self.stats.miss_ratio

    @property
    def victim_hit_ratio(self) -> float:
        """Fraction of all accesses satisfied by the victim buffer."""
        return self.victim_hits / self.stats.accesses if self.stats.accesses else 0.0

    def dispatch_strategy(self, batch: AddressBatch) -> str:
        """Name of the kernel :meth:`run` would execute for ``batch``.

        ``"victim-decomposed-{lru,fifo,random,plru}"`` for a 1- or 2-way
        main cache (the decomposed kernels of
        :mod:`repro.engine.skew_decompose`, with the buffer as a dense
        side-structure); ``"victim-generic-kernel"`` for wider main caches.
        """
        if self._ways <= 2:
            return f"victim-decomposed-{self._replacement_name}"
        return "victim-generic-kernel"

    def run(self, batch: AddressBatch) -> np.ndarray:
        """Simulate a whole batch; returns the per-access overall hit mask.

        The kernel is picked by :meth:`dispatch_strategy`.
        """
        n = len(batch)
        if n == 0:
            return np.zeros(0, dtype=bool)
        blocks = cached_block_numbers(batch, self._block_size)
        if self.dispatch_strategy(batch).startswith("victim-decomposed-"):
            return run_victim_decomposed(self, blocks, batch.is_write)
        return self._run_generic_kernel(blocks, batch.is_write)

    def run_chunks(self, chunks: Iterable[AddressBatch]) -> int:
        """Consume a stream of batches (see
        :meth:`BatchSetAssociativeCache.run_chunks`); returns the accesses
        simulated.  Main-cache and victim-buffer state carry across chunks,
        so chunked replay is bit-exact with a one-shot run."""
        total = 0
        for batch in chunks:
            self.run(batch)
            total += len(batch)
        return total

    def _run_generic_kernel(self, blocks: np.ndarray,
                            is_write: np.ndarray) -> np.ndarray:
        """The retained per-access victim kernel (any geometry, any policy).

        Serves main caches wider than two ways, and remains the reference
        implementation the differential suite pits the decomposed victim
        kernels of :mod:`repro.engine.skew_decompose` against.
        """
        ways = self._ways
        if self._skewed:
            way_sets = [
                cached_set_index_lists(self._vec_index, blocks, w)
                for w in range(ways)
            ]
        else:
            shared = cached_set_index_lists(self._vec_index, blocks, 0)
            way_sets = [shared] * ways
        blocks_l = blocks.tolist()
        writes_l = is_write.tolist()
        tags = self._way_tags
        dirty = self._way_dirty
        vtags = self._victim_tags
        vdirty = self._victim_dirty
        entries = self._entries
        entry_range = range(entries)
        way_range = range(ways)
        #: Candidate sets of the single-set victim buffer (one per entry).
        buffer_sets = [0] * entries
        stats = self.stats
        main_clock = self._main_clock
        victim_clock = self._victim_clock
        main_policy = self._main_policy
        victim_policy = self._victim_policy
        main_policy.kernel_begin()
        victim_policy.kernel_begin()

        hits_l = []
        hit_append = hits_l.append
        loads = stores = load_misses = store_misses = writebacks = 0
        main_hits = victim_hits = 0

        try:
            for i, b in enumerate(blocks_l):
                w = writes_l[i]
                # Probe the main cache.
                hit_way = -1
                for wy in way_range:
                    s = way_sets[wy][i]
                    if tags[wy][s] == b:
                        hit_way = wy
                        break
                if hit_way >= 0:
                    main_clock += 1
                    main_policy.on_hit(hit_way, s, main_clock)
                    if w:
                        dirty[hit_way][s] = True  # main cache is write-back
                        stores += 1
                    else:
                        loads += 1
                    main_hits += 1
                    hit_append(True)
                    continue
                # Main miss: probe the victim buffer.
                victim_slot = -1
                for j in entry_range:
                    if vtags[j] == b:
                        victim_slot = j
                        break
                victim_hit = victim_slot >= 0
                if w:
                    stores += 1
                    if not victim_hit:
                        store_misses += 1
                else:
                    loads += 1
                    if not victim_hit:
                        load_misses += 1
                hit_append(victim_hit)
                if victim_hit:
                    victim_hits += 1
                    # The promoted entry leaves the buffer; the line the main
                    # cache displaces will take a slot below.
                    vtags[victim_slot] = -1
                    vdirty[victim_slot] = False
                # Refill the main cache (write-back / write-allocate).
                main_clock += 1
                fill_dirty = bool(w)
                target = -1
                for wy in way_range:
                    if tags[wy][way_sets[wy][i]] < 0:
                        target = wy
                        break
                evicted = -1
                evicted_dirty = False
                if target < 0:
                    target = main_policy.victim(
                        [way_sets[wy][i] for wy in way_range])
                    s = way_sets[target][i]
                    evicted = tags[target][s]
                    evicted_dirty = dirty[target][s]
                s = way_sets[target][i]
                tags[target][s] = b
                dirty[target][s] = fill_dirty
                main_policy.on_fill(target, s, main_clock)
                if evicted < 0:
                    continue
                # Stash the displaced line in the victim buffer.
                victim_clock += 1
                slot = -1
                for j in entry_range:
                    if vtags[j] < 0:
                        slot = j
                        break
                if slot < 0:
                    slot = victim_policy.victim(buffer_sets)
                    if vdirty[slot]:
                        # A dirty line falling out of the buffer would be
                        # written back to the next level.
                        writebacks += 1
                vtags[slot] = evicted
                vdirty[slot] = evicted_dirty
                victim_policy.on_fill(slot, 0, victim_clock)
        finally:
            main_policy.kernel_end()
            victim_policy.kernel_end()

        self._main_clock = main_clock
        self._victim_clock = victim_clock
        stats.loads += loads
        stats.stores += stores
        stats.load_misses += load_misses
        stats.store_misses += store_misses
        stats.writebacks += writebacks
        self.main_hits += main_hits
        self.victim_hits += victim_hits
        return np.array(hits_l, dtype=bool)

    def flush(self) -> None:
        """Empty both structures (statistics are preserved)."""
        for tags in self._way_tags:
            tags[:] = [-1] * self._num_sets
        for d in self._way_dirty:
            d[:] = [False] * self._num_sets
        self._victim_tags[:] = [-1] * self._entries
        self._victim_dirty[:] = [False] * self._entries
        self._main_policy.reset()
        self._victim_policy.reset()
        self._main_clock = 0
        self._victim_clock = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BatchVictimCache({self._size_bytes}B, {self._ways}-way, "
                f"+{self._entries} victim entries)")
