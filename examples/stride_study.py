#!/usr/bin/env python3
"""Stride study: a scaled-down Figure 1 with an ASCII histogram.

The paper's Figure 1 sweeps every vector stride from 1 to 4095 through four
cache organisations and plots how many strides fall into each miss-ratio
decile.  This example runs a subsampled sweep (every 8th stride by default,
~2 seconds) and prints the resulting histograms plus the pathological-stride
summary, so you can see the qualitative result without waiting for the full
benchmark (``pytest benchmarks/bench_figure1.py --benchmark-only`` runs the
dense sweep).

Run it with::

    python examples/stride_study.py [max_stride] [stride_step]
"""

import sys

from repro.experiments import run_figure1


def main(argv):
    max_stride = int(argv[1]) if len(argv) > 1 else 2048
    stride_step = int(argv[2]) if len(argv) > 2 else 8

    print(f"Sweeping strides 1..{max_stride - 1} (step {stride_step}) through "
          "an 8 KB, 2-way, 32-byte-line cache\n")
    result = run_figure1(max_stride=max_stride, sweeps=8, stride_step=stride_step)
    print(result.render())

    print("\nReading the result:")
    print("  * 'a2'       — conventional bit-selection indexing")
    print("  * 'a2-Hx-Sk' — skewed-associative XOR indexing")
    print("  * 'a2-Hp'    — I-Poly indexing, same polynomial in both ways")
    print("  * 'a2-Hp-Sk' — I-Poly indexing, distinct polynomial per way")
    print("\nThe paper's observation: only the skewed I-Poly scheme keeps every")
    print("stride out of the pathological (>50% miss) region.")


if __name__ == "__main__":
    main(sys.argv)
