"""Experiment E-MR: trace-level miss-ratio comparison across organisations.

Section 2.1 summarises the earlier ICS'97 study [10]: on Spec95, an 8 KB
two-way set-associative cache has an average miss ratio of 13.84%, the I-Poly
cache of the same size and associativity reduces it to 7.14%, and a
fully-associative cache of the same capacity achieves 6.80%.  The point is
that I-Poly indexing recovers almost all of the benefit of full associativity
at two-way cost.

This driver replays the synthetic workload suite through a configurable set
of cache organisations (conventional, skewed-XOR, I-Poly, prime-modulus,
fully-associative, victim and column-associative are all available) and
reports per-program and suite-average miss ratios, so the ordering
``conventional > I-Poly >= fully-associative`` — and the near-equality of the
last two — can be checked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..analysis.metrics import arithmetic_mean
from ..analysis.reporting import TableBuilder
from ..cache.column_assoc import ColumnAssociativeCache
from ..cache.fully_assoc import FullyAssociativeCache
from ..cache.victim import VictimCache
from ..trace.workloads import build_trace, workload_names
from .config import PAPER_HASH_BITS, PAPER_L1_8KB, CacheGeometry, build_cache

__all__ = ["MissRatioStudyResult", "default_organisations", "run_miss_ratio_study"]


@dataclass
class MissRatioStudyResult:
    """Per-program miss ratios (percent) for each cache organisation."""

    accesses_per_program: int
    miss_ratios: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def programs(self) -> List[str]:
        """Programs replayed."""
        return list(self.miss_ratios)

    @property
    def organisations(self) -> List[str]:
        """Cache organisations compared."""
        if not self.miss_ratios:
            return []
        return list(next(iter(self.miss_ratios.values())))

    def average(self, organisation: str) -> float:
        """Suite-average miss ratio (percent) of one organisation."""
        return arithmetic_mean([self.miss_ratios[p][organisation]
                                for p in self.programs])

    def averages(self) -> Dict[str, float]:
        """Suite-average miss ratio per organisation."""
        return {org: self.average(org) for org in self.organisations}

    def table(self) -> TableBuilder:
        """Per-program table with an average row."""
        table = TableBuilder(self.organisations, row_label="program")
        for program in self.programs:
            table.add_row(program, self.miss_ratios[program])
        table.add_row("Average", self.averages())
        return table

    def render(self) -> str:
        """Render as text."""
        return self.table().render(title="Load miss ratio (%) by cache organisation")


def default_organisations(geometry: CacheGeometry = PAPER_L1_8KB) -> Dict[str, Callable]:
    """Factories for the organisations compared in the Section 2.1 summary.

    Returns a mapping from label to a zero-argument callable building a fresh
    cache.  Callers can extend the mapping with victim or column-associative
    organisations (both available in :mod:`repro.cache`) for wider studies.
    """
    return {
        "conventional-2way": lambda: build_cache(geometry, "a2"),
        "skewed-xor-2way": lambda: build_cache(geometry, "a2-Hx-Sk"),
        "ipoly-2way": lambda: build_cache(geometry, "a2-Hp",
                                          address_bits=PAPER_HASH_BITS),
        "ipoly-skewed-2way": lambda: build_cache(geometry, "a2-Hp-Sk",
                                                 address_bits=PAPER_HASH_BITS),
        "fully-associative": lambda: FullyAssociativeCache(geometry.size_bytes,
                                                           geometry.block_size),
        "victim-direct+8": lambda: VictimCache(geometry.size_bytes,
                                               geometry.block_size,
                                               ways=1, victim_entries=8),
        "column-assoc-ipoly": lambda: ColumnAssociativeCache(
            geometry.size_bytes, geometry.block_size,
            address_bits=PAPER_HASH_BITS),
    }


def run_miss_ratio_study(programs: Optional[Sequence[str]] = None,
                         accesses: int = 40_000,
                         organisations: Optional[Mapping[str, Callable]] = None,
                         seed: int = 12345) -> MissRatioStudyResult:
    """Replay the workload suite through every organisation and collect miss ratios."""
    if accesses < 1_000:
        raise ValueError("accesses should be at least 1000 for stable ratios")
    program_list = list(programs) if programs is not None else workload_names()
    organisation_map = (dict(organisations) if organisations is not None
                        else default_organisations())

    result = MissRatioStudyResult(accesses_per_program=accesses)
    for name in program_list:
        per_org: Dict[str, float] = {}
        for label, factory in organisation_map.items():
            cache = factory()
            for access in build_trace(name, length=accesses, seed=seed):
                cache.access(access.address, is_write=access.is_write)
            per_org[label] = 100.0 * cache.stats.load_miss_ratio
        result.miss_ratios[name] = per_org
    return result
