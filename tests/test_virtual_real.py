"""Unit tests for the virtual-real two-level hierarchy (Wang et al. style)."""

import pytest

from repro.cache.set_assoc import SetAssociativeCache, WritePolicy
from repro.cache.virtual_real import VirtualRealHierarchy
from repro.core.index import IPolyIndexing
from repro.memory.paging import PageTable


def build(l1_size=512, l2_size=2048, block=32, page_size=4096,
          allocation="scatter"):
    page_table = PageTable(page_size=page_size, allocation=allocation, seed=7)
    l1 = SetAssociativeCache(
        l1_size, block, 2,
        index_function=IPolyIndexing(l1_size // (block * 2), ways=2,
                                     skewed=True, address_bits=16))
    l2 = SetAssociativeCache(l2_size, block, 2,
                             write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
    return VirtualRealHierarchy(l1, l2, translate=page_table.translate), page_table


class TestBasicFlow:
    def test_miss_then_hit(self):
        hierarchy, _ = build()
        first = hierarchy.access(0x1000)
        assert not first.l1_hit
        second = hierarchy.access(0x1000)
        assert second.l1_hit

    def test_l1_indexed_by_virtual_l2_by_physical(self):
        hierarchy, page_table = build()
        virtual = 0x4000
        hierarchy.access(virtual)
        physical = page_table.translate(virtual)
        assert hierarchy.l1.contains_block(virtual // 32)
        assert hierarchy.l2.contains_block(physical // 32)

    def test_memory_access_flag(self):
        hierarchy, _ = build()
        assert hierarchy.access(0x9000).memory_access
        assert not hierarchy.access(0x9000).memory_access


class TestAliases:
    def test_at_most_one_alias_resident(self):
        """Two virtual pages mapped to the same frame may not both live in L1."""
        page_table = PageTable(page_size=4096, allocation="sequential")
        # Force aliasing: map virtual pages 0 and 1 to the same frame.
        page_table._mapping[0] = 0
        page_table._mapping[1] = 0
        l1 = SetAssociativeCache(512, 32, 2)
        l2 = SetAssociativeCache(2048, 32, 2,
                                 write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
        hierarchy = VirtualRealHierarchy(l1, l2, translate=page_table.translate)

        hierarchy.access(0x0000)            # alias A
        result = hierarchy.access(0x1000)   # alias B -> same physical line
        assert result.alias_invalidation
        assert not hierarchy.l1.contains_block(0)          # alias A gone
        assert hierarchy.alias_invalidations == 1

    def test_interleaved_aliases_increase_l1_traffic_not_l2(self):
        page_table = PageTable(page_size=4096, allocation="sequential")
        page_table._mapping[0] = 0
        page_table._mapping[1] = 0
        l1 = SetAssociativeCache(512, 32, 2)
        l2 = SetAssociativeCache(2048, 32, 2,
                                 write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
        hierarchy = VirtualRealHierarchy(l1, l2, translate=page_table.translate)
        for _ in range(5):
            hierarchy.access(0x0000)
            hierarchy.access(0x1000)
        # L2 keeps the single physical copy throughout: one miss only.
        assert hierarchy.l2.stats.misses == 1
        assert hierarchy.alias_invalidations >= 9


class TestInclusionAndHoles:
    def test_inclusion_maintained(self):
        hierarchy, _ = build(l1_size=512, l2_size=1024)
        for i in range(300):
            hierarchy.access((i * 53 % 197) * 32)
        assert hierarchy.check_inclusion()

    def test_holes_counted_when_l2_evicts_live_l1_lines(self):
        hierarchy, _ = build(l1_size=512, l2_size=1024)
        for _ in range(4):
            for i in range(64):
                hierarchy.access(i * 32)
        assert hierarchy.l2.stats.misses > 0
        assert 0.0 <= hierarchy.hole_rate_per_l2_miss <= 1.0
        assert hierarchy.check_inclusion()

    def test_hole_rate_small_for_large_l2(self):
        """With a large L2:L1 ratio the hole rate should be tiny (Section 3.3)."""
        hierarchy, _ = build(l1_size=512, l2_size=16 * 1024)
        for i in range(2000):
            hierarchy.access((i * 97) % 4096 * 32)
        assert hierarchy.hole_rate_per_l2_miss <= 0.1

    def test_external_invalidation(self):
        hierarchy, page_table = build()
        virtual = 0x2000
        hierarchy.access(virtual)
        physical = page_table.translate(virtual)
        assert hierarchy.external_invalidate(physical)
        assert not hierarchy.l1.contains_block(virtual // 32)
        assert not hierarchy.l2.contains_block(physical // 32)

    def test_flush_clears_maps(self):
        hierarchy, _ = build()
        hierarchy.access(0x3000)
        hierarchy.flush()
        assert hierarchy.l1.resident_blocks() == []
        assert hierarchy.l2.resident_blocks() == []
        assert hierarchy.check_inclusion()


class TestPhysicalEventEdges:
    def test_external_invalidate_of_block_resident_in_both_levels(self):
        """A coherence invalidation must remove the line from both levels and
        unmap the pointer state, so the next access misses all the way."""
        hierarchy, page_table = build()
        virtual = 0x5000
        hierarchy.access(virtual)
        physical = page_table.translate(virtual)
        assert hierarchy.l1.contains_block(virtual // 32)
        assert hierarchy.l2.contains_block(physical // 32)
        assert hierarchy.external_invalidate(physical)
        assert hierarchy.external_invalidations == 1
        assert hierarchy.check_inclusion()
        again = hierarchy.access(virtual)
        assert again.memory_access

    def test_external_invalidate_without_l1_copy(self):
        hierarchy, page_table = build(l1_size=128)
        hierarchy.access(0x0)
        physical = page_table.translate(0x0)
        # Push the line out of L1 but not out of the much larger L2.
        for i in range(1, 9):
            hierarchy.access(i * 0x1000)
        if hierarchy.l1.contains_block(0):
            pytest.skip("line survived the tiny L1")
        assert not hierarchy.external_invalidate(physical)
        assert hierarchy.external_invalidations == 0

    def test_check_inclusion_after_midstream_flush(self):
        hierarchy, _ = build(l1_size=512, l2_size=1024)
        for i in range(64):
            hierarchy.access(i * 32)
        hierarchy.flush()
        assert hierarchy.check_inclusion()
        for i in range(64, 128):
            hierarchy.access(i * 32)
        assert hierarchy.check_inclusion()


class TestValidation:
    def test_page_size_must_be_power_of_two(self):
        l1 = SetAssociativeCache(512, 32, 2)
        l2 = SetAssociativeCache(2048, 32, 2)
        with pytest.raises(ValueError, match="power of two"):
            VirtualRealHierarchy(l1, l2, translate=lambda a: a, page_size=3000)

    def test_page_size_must_cover_a_block(self):
        l1 = SetAssociativeCache(512, 32, 2)
        l2 = SetAssociativeCache(2048, 32, 2)
        with pytest.raises(ValueError, match="multiple of the cache block"):
            VirtualRealHierarchy(l1, l2, translate=lambda a: a, page_size=16)

    def test_valid_page_size_is_exposed(self):
        l1 = SetAssociativeCache(512, 32, 2)
        l2 = SetAssociativeCache(2048, 32, 2)
        hierarchy = VirtualRealHierarchy(l1, l2, translate=lambda a: a,
                                         page_size=4096)
        assert hierarchy.page_size == 4096
        assert build()[0].page_size is None

    def test_block_sizes_must_match(self):
        l1 = SetAssociativeCache(512, 32, 2)
        l2 = SetAssociativeCache(2048, 64, 2)
        with pytest.raises(ValueError):
            VirtualRealHierarchy(l1, l2, translate=lambda a: a)

    def test_l2_not_smaller_than_l1(self):
        l1 = SetAssociativeCache(2048, 32, 2)
        l2 = SetAssociativeCache(512, 32, 2)
        with pytest.raises(ValueError):
            VirtualRealHierarchy(l1, l2, translate=lambda a: a)
