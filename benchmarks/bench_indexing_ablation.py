"""Ablation benches for the design choices called out in DESIGN.md.

Not a paper artefact per se, but the design-space questions the paper's
Section 2/3 discussion raises:

* skewed versus non-skewed I-Poly indexing (a2-Hp vs a2-Hp-Sk);
* irreducible versus reducible modulus polynomials;
* replacement-policy interaction with skewing (LRU vs random vs PLRU).
"""

import pytest

from repro.cache.replacement import make_replacement_policy
from repro.cache.set_assoc import SetAssociativeCache
from repro.core.index import IPolyIndexing
from repro.experiments.figure1 import run_figure1
from repro.trace.workloads import build_trace


@pytest.mark.benchmark(group="ablation")
def test_skewing_ablation(benchmark):
    """Skewed I-Poly should be at least as conflict-resistant as non-skewed."""
    result = benchmark.pedantic(
        lambda: run_figure1(max_stride=1024, sweeps=8, stride_step=2,
                            schemes=["a2-Hp", "a2-Hp-Sk"]),
        rounds=1, iterations=1)
    summary = result.summary()
    print()
    print(result.render())
    assert summary["a2-Hp-Sk"] <= summary["a2-Hp"]


@pytest.mark.benchmark(group="ablation")
def test_irreducible_vs_reducible_polynomial(benchmark):
    """An irreducible modulus avoids the stride pathologies a reducible one keeps.

    x^7 + 1 is reducible (divisible by x + 1); using it as the modulus leaves
    entire stride families mapping onto few sets, while the default
    irreducible polynomial spreads them.
    """
    def run(poly):
        fn = IPolyIndexing(128, ways=2, skewed=False, address_bits=19,
                           polynomials=[poly])
        cache = SetAssociativeCache(8 * 1024, 32, 2, index_function=fn)
        worst = 0.0
        for stride in range(2, 512, 2):
            cache.flush()
            cache.reset_stats()
            for sweep in range(6):
                for i in range(64):
                    cache.access(i * stride * 8)
            worst = max(worst, cache.stats.miss_ratio)
        return worst

    reducible = 0b10000001          # x^7 + 1 = (x+1)(x^6+x^5+...+1)
    irreducible = 0b10000011        # x^7 + x + 1

    worst_irreducible = benchmark.pedantic(lambda: run(irreducible),
                                           rounds=1, iterations=1)
    worst_reducible = run(reducible)
    print(f"\nworst stride miss ratio: irreducible={worst_irreducible:.2f} "
          f"reducible={worst_reducible:.2f}")
    assert worst_irreducible <= worst_reducible


@pytest.mark.benchmark(group="ablation")
def test_replacement_policy_interaction(benchmark, bench_accesses):
    """LRU, random and PLRU all keep the I-Poly advantage on a bad program."""
    def miss_ratio(policy_name):
        fn = IPolyIndexing(128, ways=2, skewed=True, address_bits=19)
        cache = SetAssociativeCache(8 * 1024, 32, 2, index_function=fn,
                                    replacement=make_replacement_policy(policy_name))
        for access in build_trace("swim", length=bench_accesses // 2):
            cache.access(access.address, is_write=access.is_write)
        return cache.stats.load_miss_ratio

    ratios = benchmark.pedantic(
        lambda: {name: miss_ratio(name) for name in ("lru", "random", "plru")},
        rounds=1, iterations=1)
    print(f"\nswim / I-Poly skewed, by replacement policy: "
          + ", ".join(f"{k}={100 * v:.1f}%" for k, v in ratios.items()))
    # Whatever the replacement policy, the I-Poly cache stays far below the
    # conventional cache's ~65-75% miss ratio on this workload.
    for name, ratio in ratios.items():
        assert ratio < 0.35, name
