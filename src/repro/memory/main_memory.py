"""Main-memory and bus timing model.

The paper's processor experiments assume a fixed 20-cycle miss penalty, an
infinite L2 and a 64-bit bus between L1 and L2 on which "a line transaction
occupies the bus during four cycles" (32-byte lines / 8 bytes per cycle).
This module models exactly that: a fixed access latency plus a bus whose
occupancy serialises overlapping line transfers.

The model is deliberately simple — a single channel with FIFO occupancy — but
it is enough to capture the bandwidth pressure created when many outstanding
misses complete close together, which matters for the lockup-free cache.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryRequest", "MainMemory", "Bus"]


@dataclass(frozen=True)
class MemoryRequest:
    """A completed memory request: when it was issued and when data returns."""

    block_number: int
    issued_at: int
    ready_at: int

    @property
    def latency(self) -> int:
        """Total observed latency in cycles."""
        return self.ready_at - self.issued_at


class Bus:
    """A single shared channel with fixed per-transaction occupancy."""

    def __init__(self, cycles_per_transaction: int = 4) -> None:
        if cycles_per_transaction < 1:
            raise ValueError("cycles_per_transaction must be positive")
        self._occupancy = cycles_per_transaction
        self._free_at = 0
        self.transactions = 0
        self.busy_cycles = 0

    @property
    def cycles_per_transaction(self) -> int:
        """Bus cycles one line transfer occupies."""
        return self._occupancy

    def next_free(self, now: int) -> int:
        """Earliest cycle at which a new transaction could start."""
        return max(now, self._free_at)

    def reserve(self, now: int) -> int:
        """Reserve the bus for one transaction starting no earlier than ``now``.

        Returns the cycle at which the transfer completes.
        """
        start = self.next_free(now)
        end = start + self._occupancy
        self._free_at = end
        self.transactions += 1
        self.busy_cycles += self._occupancy
        return end

    def utilisation(self, elapsed_cycles: int) -> float:
        """Fraction of ``elapsed_cycles`` the bus spent busy."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed_cycles)


class MainMemory:
    """Fixed-latency memory behind a shared bus.

    Parameters
    ----------
    access_latency:
        Cycles from request issue to the first data beat (the paper's
        20-cycle miss penalty).
    bus:
        Optional :class:`Bus`; when provided, a line transfer additionally
        occupies the bus and contention can delay completion.
    """

    def __init__(self, access_latency: int = 20, bus: Bus = None) -> None:
        if access_latency < 1:
            raise ValueError("access_latency must be positive")
        self._latency = access_latency
        self._bus = bus
        self.requests = 0
        self.total_latency = 0

    @property
    def access_latency(self) -> int:
        """Nominal access latency in cycles."""
        return self._latency

    @property
    def bus(self) -> Bus:
        """The attached bus (may be ``None``)."""
        return self._bus

    def request(self, block_number: int, now: int) -> MemoryRequest:
        """Issue a line fetch at cycle ``now``; returns its completion record."""
        if now < 0:
            raise ValueError("now must be non-negative")
        ready = now + self._latency
        if self._bus is not None:
            ready = self._bus.reserve(ready - self._bus.cycles_per_transaction
                                      if ready >= self._bus.cycles_per_transaction
                                      else now)
            ready = max(ready, now + self._latency)
        self.requests += 1
        self.total_latency += ready - now
        return MemoryRequest(block_number=block_number, issued_at=now, ready_at=ready)

    @property
    def average_latency(self) -> float:
        """Mean observed latency including bus contention."""
        return self.total_latency / self.requests if self.requests else 0.0
