"""Experiment E-T3: Table 3 — the high-conflict programs in isolation.

Table 3 repeats the Table 2 metrics for the three programs with high conflict
miss ratios (tomcatv, swim, wave5), adds their averages ("Average-bad") and
the averages of the remaining fifteen programs ("Average-good").  The paper's
headline numbers derived from this table are:

* the bad programs gain about 27% IPC from I-Poly indexing even with the XOR
  stage on the critical path and no address prediction, and about 33% with
  prediction — up to 16% more than simply doubling the cache to 16 KB;
* the good programs lose only about 1.7% IPC when the XOR stage is on the
  critical path, and nothing when it is not.

:func:`run_table3` reuses the Table 2 machinery (optionally an existing
:class:`~repro.experiments.table2.Table2Result`) and adds the group rows and
the derived improvement percentages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis.metrics import arithmetic_mean, geometric_mean, percent_change
from ..analysis.reporting import TableBuilder
from ..trace.workloads import HIGH_CONFLICT_PROGRAMS, LOW_CONFLICT_PROGRAMS
from .table2 import Table2Result, run_table2

__all__ = ["Table3Result", "run_table3"]


@dataclass
class Table3Result:
    """Table 3 view over a full Table 2 run."""

    table2: Table2Result

    @property
    def bad_programs(self) -> List[str]:
        """The high-conflict programs present in the underlying run."""
        return [p for p in self.table2.programs if p in HIGH_CONFLICT_PROGRAMS]

    @property
    def good_programs(self) -> List[str]:
        """The low-conflict programs present in the underlying run."""
        return [p for p in self.table2.programs if p in LOW_CONFLICT_PROGRAMS]

    def group_ipc(self, programs: List[str], configuration: str) -> float:
        """Geometric-mean IPC of a program group under one configuration."""
        return geometric_mean([self.table2.ipc(p, configuration) for p in programs])

    def group_miss_ratio(self, programs: List[str], configuration: str) -> float:
        """Arithmetic-mean load miss ratio (percent) of a program group."""
        return arithmetic_mean([self.table2.miss_ratio_percent(p, configuration)
                                for p in programs])

    def ipc_table(self) -> TableBuilder:
        """Per-program rows for the bad programs plus the two average rows."""
        columns = self.table2.configurations
        table = TableBuilder(columns, row_label="program")
        for program in self.bad_programs:
            table.add_row(program, {cfg: self.table2.ipc(program, cfg)
                                    for cfg in columns})
        if self.bad_programs:
            table.add_row("Average-bad", {cfg: self.group_ipc(self.bad_programs, cfg)
                                          for cfg in columns})
        if self.good_programs:
            table.add_row("Average-good", {cfg: self.group_ipc(self.good_programs, cfg)
                                           for cfg in columns})
        return table

    def improvement_summary(self) -> Dict[str, float]:
        """The paper's headline percentages, computed from the simulated IPCs.

        Keys:

        ``bad_ipoly_cp_vs_8k_conv``
            IPC gain of the bad programs from I-Poly with the XOR stage on the
            critical path and no prediction (paper: ~27%).
        ``bad_ipoly_cp_pred_vs_8k_conv``
            As above but with address prediction (paper: ~33%).
        ``bad_ipoly_cp_pred_vs_16k_conv``
            I-Poly 8 KB with prediction versus doubling the cache (paper: ~16%).
        ``good_ipoly_cp_pred_vs_8k_conv``
            IPC change of the good programs with I-Poly on the critical path
            and prediction (paper: about -1.7% without prediction; with
            prediction the deficit should shrink towards zero).
        ``good_ipoly_cp_vs_8k_conv``
            IPC change of the good programs with the XOR stage on the critical
            path and no prediction.
        """
        bad, good = self.bad_programs, self.good_programs
        summary: Dict[str, float] = {}
        if bad:
            base_bad = self.group_ipc(bad, "8K-conv")
            summary["bad_ipoly_cp_vs_8k_conv"] = percent_change(
                base_bad, self.group_ipc(bad, "8K-ipoly-CP"))
            summary["bad_ipoly_cp_pred_vs_8k_conv"] = percent_change(
                base_bad, self.group_ipc(bad, "8K-ipoly-CP-pred"))
            summary["bad_ipoly_cp_pred_vs_16k_conv"] = percent_change(
                self.group_ipc(bad, "16K-conv"),
                self.group_ipc(bad, "8K-ipoly-CP-pred"))
        if good:
            base_good = self.group_ipc(good, "8K-conv")
            summary["good_ipoly_cp_vs_8k_conv"] = percent_change(
                base_good, self.group_ipc(good, "8K-ipoly-CP"))
            summary["good_ipoly_cp_pred_vs_8k_conv"] = percent_change(
                base_good, self.group_ipc(good, "8K-ipoly-CP-pred"))
        return summary

    def render(self) -> str:
        """Render the Table 3 IPC view and the headline percentages."""
        lines = [self.ipc_table().render(title="Table 3 (IPC)")]
        lines.append("")
        for key, value in self.improvement_summary().items():
            lines.append(f"{key}: {value:+.1f}%")
        return "\n".join(lines)


def run_table3(instructions: int = 30_000,
               table2_result: Optional[Table2Result] = None,
               seed: int = 2027,
               engine: str = "reference",
               workers: Optional[int] = None,
               chunksize: Optional[int] = None,
               timeout: Optional[float] = None,
               retries: int = 0,
               on_error: str = "raise",
               resume: Optional[str] = None) -> Table3Result:
    """Run (or reuse) the underlying simulations and build the Table 3 view.

    When ``table2_result`` is provided it must contain at least the three
    high-conflict programs; otherwise the full 18-program Table 2 experiment
    is run first.  ``engine`` is forwarded to :func:`run_table2` (the
    vectorized engine accelerates the I-Poly index computation bit-exactly),
    as are ``workers`` and ``chunksize`` (per-program process-pool fan-out
    of the underlying sweep — results identical to the serial run) and the
    fault-tolerance knobs ``timeout``/``retries``/``on_error``/``resume``.
    """
    if table2_result is None:
        table2_result = run_table2(instructions=instructions, seed=seed,
                                   engine=engine, workers=workers,
                                   chunksize=chunksize, timeout=timeout,
                                   retries=retries, on_error=on_error,
                                   resume=resume)
    return Table3Result(table2=table2_result)
