"""Column-associative cache with a polynomial rehash.

Section 3.1 (option 4) of the paper sketches a physically-tagged
direct-mapped cache that probes twice: first at the conventional
(bit-selected) index built from unmapped address bits, and — only if that
probe misses — at a second index computed with the I-Poly hash over the full
physical address.  Lines are swapped between their primary and secondary
locations so that recently used blocks migrate to the fast first-probe slot;
the paper reports a typical first-probe hit probability of about 90%.

The model follows the column-associative cache of Agarwal & Pudar (ISCA
1993), with the rehash function replaced by an I-Poly hash and with the
swap-on-second-probe-hit behaviour the paper describes.  It reports, besides
ordinary hit/miss counters, the split between first-probe and second-probe
hits and the average number of probes per access — the quantities needed to
evaluate the scheme's average hit time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..core.index import BitSelectIndexing, IndexFunction, IPolyIndexing
from .block import CacheBlock
from .replacement import ReplacementPolicy, replacement_policy_name
from .stats import CacheStats, MissClassifier

__all__ = ["ColumnAssociativeResult", "ColumnAssociativeCache"]


@dataclass
class ColumnAssociativeResult:
    """Outcome of one access to a :class:`ColumnAssociativeCache`."""

    block_number: int
    hit: bool
    first_probe_hit: bool
    second_probe_hit: bool
    probes: int
    evicted_block: Optional[int] = None
    miss_kind: Optional[str] = None


class ColumnAssociativeCache:
    """Direct-mapped cache with a secondary, polynomially-hashed location.

    Parameters
    ----------
    size_bytes, block_size:
        Geometry; the cache is direct-mapped over ``size_bytes / block_size``
        frames.
    primary_index, secondary_index:
        Index functions for the first and second probes.  They default to
        conventional bit selection and (non-skewed) I-Poly respectively,
        matching the paper's description.
    swap_on_rehash_hit:
        When a block is found at its secondary location, swap it with the
        occupant of its primary location so the next access hits on the first
        probe.  This is the behaviour the paper's ~90% first-probe figure
        relies on.
    classify_misses:
        Attach a 3C classifier (see :class:`~repro.cache.stats.MissClassifier`).
    replacement:
        Accepted for sweep symmetry with the other organisations and
        validated against the known policy names, but *behaviourally inert*:
        a column-associative cache is direct-mapped per probe location, so
        there is never a victim to choose among — the install-at-primary /
        displaced-block-retreat rules (driven by the rehash bit) fully
        determine placement.  This is exactly why the organisation sidesteps
        the paper's LRU-is-impractical-for-skewed-placement problem.
    """

    def __init__(
        self,
        size_bytes: int,
        block_size: int,
        primary_index: Optional[IndexFunction] = None,
        secondary_index: Optional[IndexFunction] = None,
        swap_on_rehash_hit: bool = True,
        classify_misses: bool = False,
        address_bits: Optional[int] = None,
        replacement: Union[str, ReplacementPolicy, None] = None,
        name: str = "",
    ) -> None:
        if block_size < 1 or block_size & (block_size - 1):
            raise ValueError("block_size must be a positive power of two")
        if size_bytes % block_size:
            raise ValueError("size_bytes must be a multiple of block_size")
        num_frames = size_bytes // block_size
        if num_frames & (num_frames - 1):
            raise ValueError("number of frames must be a power of two")

        self._block_size = block_size
        self._offset_bits = block_size.bit_length() - 1
        self._num_frames = num_frames
        self._primary = primary_index or BitSelectIndexing(num_frames)
        self._secondary = secondary_index or IPolyIndexing(
            num_frames, address_bits=address_bits)
        for fn, label in ((self._primary, "primary"), (self._secondary, "secondary")):
            if fn.num_sets != num_frames:
                raise ValueError(f"{label} index covers {fn.num_sets} sets, "
                                 f"cache has {num_frames} frames")
        # Validate the name even though the policy never gets to choose.
        self._replacement_name = replacement_policy_name(replacement)
        self._swap = bool(swap_on_rehash_hit)
        self._frames = [CacheBlock() for _ in range(num_frames)]
        self._clock = 0
        self._name = name or f"column-{size_bytes // 1024}KB"

        self.stats = CacheStats()
        self.first_probe_hits = 0
        self.second_probe_hits = 0
        self.total_probes = 0
        self._classifier = MissClassifier(num_frames) if classify_misses else None

    @property
    def name(self) -> str:
        """Label used in reports."""
        return self._name

    @property
    def block_size(self) -> int:
        """Line size in bytes."""
        return self._block_size

    @property
    def num_frames(self) -> int:
        """Total number of frames (direct-mapped)."""
        return self._num_frames

    @property
    def replacement_name(self) -> str:
        """Configured (inert — see class docstring) replacement policy name."""
        return self._replacement_name

    def block_number_of(self, address: int) -> int:
        """Map a byte address to its block number."""
        if address < 0:
            raise ValueError("address must be non-negative")
        return address >> self._offset_bits

    # ------------------------------------------------------------------ #

    def access(self, address: int, is_write: bool = False) -> ColumnAssociativeResult:
        """Probe the primary location, then the secondary, then refill."""
        block = self.block_number_of(address)
        return self.access_block(block, is_write=is_write)

    def access_block(self, block_number: int,
                     is_write: bool = False) -> ColumnAssociativeResult:
        """Access by block number."""
        if block_number < 0:
            raise ValueError("block_number must be non-negative")
        self._clock += 1
        primary_idx = self._primary.index(block_number)
        secondary_idx = self._secondary.index(block_number)

        primary_frame = self._frames[primary_idx]
        first_hit = primary_frame.valid and primary_frame.block_number == block_number

        second_hit = False
        if not first_hit and secondary_idx != primary_idx:
            secondary_frame = self._frames[secondary_idx]
            second_hit = (secondary_frame.valid and
                          secondary_frame.block_number == block_number)

        hit = first_hit or second_hit
        probes = 1 if first_hit else 2
        self.total_probes += probes

        miss_kind = None
        if self._classifier is not None:
            miss_kind = self._classifier.classify(block_number, hit)
        self.stats.record_access(is_write, hit, miss_kind)

        if first_hit:
            self.first_probe_hits += 1
            primary_frame.touch(self._clock)
            return ColumnAssociativeResult(block_number, True, True, False, probes)

        if second_hit:
            self.second_probe_hits += 1
            if self._swap:
                self._swap_frames(primary_idx, secondary_idx)
                self._frames[primary_idx].touch(self._clock)
            else:
                self._frames[secondary_idx].touch(self._clock)
            return ColumnAssociativeResult(block_number, True, False, True, probes)

        # Miss: install the new block at its primary (conventional) location
        # so the next access hits on the first probe; the block it displaces
        # retreats to *its own* rehash (polynomial) location, evicting
        # whatever lived there.
        evicted = self._fill_on_miss(block_number, primary_idx)
        return ColumnAssociativeResult(block_number, False, False, False, probes,
                                       evicted_block=evicted, miss_kind=miss_kind)

    def _fill_on_miss(self, block_number: int, primary_idx: int) -> Optional[int]:
        primary_frame = self._frames[primary_idx]
        if not primary_frame.valid:
            primary_frame.fill(block_number, self._clock)
            return None

        displaced = primary_frame.block_number
        displaced_dirty = primary_frame.dirty
        primary_frame.fill(block_number, self._clock)

        # The displaced block retreats to its own polynomial location.  If
        # that happens to be the frame it already occupied (the two hashes
        # coincide) it is simply evicted.
        retreat_idx = self._secondary.index(displaced)
        if retreat_idx == primary_idx:
            self.stats.evictions += 1
            return displaced
        retreat_frame = self._frames[retreat_idx]
        evicted = retreat_frame.block_number if retreat_frame.valid else None
        if evicted is not None:
            self.stats.evictions += 1
        retreat_frame.fill(displaced, self._clock, dirty=displaced_dirty,
                           rehashed=True)
        return evicted

    def _swap_frames(self, primary_idx: int, secondary_idx: int) -> None:
        a, b = self._frames[primary_idx], self._frames[secondary_idx]
        a_block, a_dirty = a.block_number, a.dirty
        if b.block_number is None:
            raise AssertionError("secondary hit on an invalid frame")
        a.fill(b.block_number, self._clock)
        if a_block is not None:
            b.fill(a_block, self._clock, dirty=a_dirty, rehashed=True)
        else:
            b.invalidate()

    # ------------------------------------------------------------------ #

    @property
    def first_probe_hit_ratio(self) -> float:
        """Fraction of *hits* satisfied on the first probe (the paper's ~90%)."""
        hits = self.first_probe_hits + self.second_probe_hits
        return self.first_probe_hits / hits if hits else 0.0

    @property
    def average_probes(self) -> float:
        """Average number of probes per access (>= 1)."""
        return self.total_probes / self.stats.accesses if self.stats.accesses else 0.0

    def average_hit_time(self, first_probe_time: float = 1.0,
                         second_probe_penalty: float = 1.0) -> float:
        """Average hit time given per-probe costs (arbitrary time units)."""
        hits = self.first_probe_hits + self.second_probe_hits
        if not hits:
            return first_probe_time
        return first_probe_time + second_probe_penalty * self.second_probe_hits / hits

    def flush(self) -> None:
        """Empty the cache."""
        for frame in self._frames:
            frame.invalidate()
        if self._classifier is not None:
            self._classifier.reset()
