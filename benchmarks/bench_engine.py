"""E-ENG: scalar-reference versus vectorized-engine throughput.

Drives the same 1M-access strided trace through the scalar
:class:`~repro.cache.set_assoc.SetAssociativeCache` and through the batch
engine for each of the paper's four index-function families, reporting
accesses/second for both paths.  Besides tracking the speedup, each
benchmark asserts *bit-exact* :class:`~repro.cache.stats.CacheStats`
agreement, so the performance claim can never drift away from correctness.

Every row is bounded — no organisation is merely "tracked" any more:

* the LRU batch paths must stay >= 10x over scalar on every index family;
* the set-decomposed replacement kernels (FIFO, random, PLRU) must stay
  >= 10x over scalar on the conventional organisation;
* the skew-decomposed kernels (FIFO, random, PLRU on skewed I-Poly
  placement) and the decomposed victim kernels (all four policies) must
  also stay >= 10x over scalar.

The trace is built
through the process-global trace cache, so the vectorized timings include
the sweep-wide reuse of materialised addresses and per-scheme index arrays
that a real sweep worker enjoys (the scalar path replays per access and
cannot benefit).

Runs under pytest-benchmark::

    pytest benchmarks/bench_engine.py --benchmark-only

or standalone, printing a comparison table and appending a run record to the
machine-readable ``BENCH_engine.json`` trajectory artifact (one entry per
invocation, newest last) so performance can be tracked across PRs without
overwriting history::

    PYTHONPATH=src python benchmarks/bench_engine.py
    PYTHONPATH=src python benchmarks/bench_engine.py --smoke

``--smoke`` runs a short trace through every kernel-dispatch path —
bit-exactness still asserted, speedup bounds and the artifact skipped — so
CI can catch dispatch regressions on every push without flaky wall-clock
assertions.  ``REPRO_BENCH_ENGINE_ACCESSES`` overrides the trace length
(default 1M); ``REPRO_BENCH_ENGINE_JSON`` overrides the artifact path
(empty disables it).
"""

import argparse
import json
import os
import platform
import time

import pytest

from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.victim import VictimCache
from repro.core.index import make_index_function
from repro.engine import AddressBatch, BatchSetAssociativeCache, BatchVictimCache
from repro.experiments.config import PAPER_HASH_BITS, PAPER_L1_8KB
from repro.trace.batching import cached_strided_arrays

#: The four families of Figure 1 / Table 2.
SCHEMES = ["a2", "a2-Hx-Sk", "a2-Hp", "a2-Hp-Sk"]

#: Strided workload shape: 512 elements spaced 67 elements apart sweeps a
#: footprint comparable to the 8 KB cache, so every family sees a mix of
#: hits, conflict misses and evictions rather than a degenerate all-hit loop.
ELEMENTS = 512
STRIDE = 67

#: Minimum vectorized-over-scalar throughput ratio for the LRU fast paths.
REQUIRED_SPEEDUP = 10.0

#: Minimum ratio for the set-decomposed replacement kernels on the
#: conventional organisation, the skew-decomposed kernels on skewed
#: placement, and the decomposed victim kernels (same bar as LRU — the
#: point of these layers).
REQUIRED_SPEEDUP_POLICY = 10.0

#: Below this trace length the constant batch-setup overhead dominates and
#: wall-clock ratios are noise, so the speedup assertions are skipped (the
#: bit-exactness assertions always run).
MIN_ACCESSES_FOR_SPEEDUP_CHECK = 200_000

#: Trace length of ``--smoke`` runs: big enough to leave the trivial-batch
#: regime, small enough to finish in seconds on a shared runner.
SMOKE_ACCESSES = 60_000

#: Trajectory length bound of the JSON artifact (newest runs kept).
MAX_TRAJECTORY_RUNS = 50


def _env_int(name, default):
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


BENCH_ENGINE_ACCESSES = _env_int("REPRO_BENCH_ENGINE_ACCESSES", 1_000_000)

#: Path of the machine-readable artifact ``main()`` appends to (empty disables).
BENCH_ENGINE_JSON = os.environ.get("REPRO_BENCH_ENGINE_JSON",
                                   "BENCH_engine.json")

#: Non-LRU replacement policies benchmarked per organisation kind.
POLICY_ROWS = ["fifo", "random", "plru"]


def _build_trace(accesses):
    sweeps = max(1, accesses // ELEMENTS)
    addresses, writes = cached_strided_arrays(STRIDE, elements=ELEMENTS,
                                              sweeps=sweeps)
    return AddressBatch.from_arrays(addresses, writes)


def _make_caches(scheme, replacement=None):
    geometry = PAPER_L1_8KB

    def index_fn():
        return make_index_function(scheme, num_sets=geometry.num_sets,
                                   ways=geometry.ways,
                                   address_bits=PAPER_HASH_BITS)

    scalar = SetAssociativeCache(geometry.size_bytes, geometry.block_size,
                                 geometry.ways, index_function=index_fn(),
                                 replacement=replacement)
    batch = BatchSetAssociativeCache(geometry.size_bytes, geometry.block_size,
                                     geometry.ways, index_function=index_fn(),
                                     replacement=replacement)
    return scalar, batch


def _stats_tuple(stats):
    return (stats.loads, stats.stores, stats.load_misses, stats.store_misses,
            stats.evictions, stats.writebacks, tuple(sorted(stats.miss_kinds.items())))


def _run_scalar(scalar, batch_trace):
    access = scalar.access
    for address in batch_trace.addresses.tolist():
        access(address, False)


def compare_engines(scheme, accesses=BENCH_ENGINE_ACCESSES, replacement=None):
    """Time both engines on the same trace; returns a result dict."""
    trace = _build_trace(accesses)
    scalar, batch = _make_caches(scheme, replacement=replacement)

    start = time.perf_counter()
    _run_scalar(scalar, trace)
    scalar_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batch.run(trace)
    vector_seconds = time.perf_counter() - start

    assert _stats_tuple(scalar.stats) == _stats_tuple(batch.stats), (
        f"CacheStats diverged between engines for {scheme}")
    n = len(trace)
    return {
        "scheme": scheme,
        "replacement": replacement or "lru",
        "accesses": n,
        "scalar_aps": n / scalar_seconds,
        "vector_aps": n / vector_seconds,
        "speedup": scalar_seconds / vector_seconds,
        "miss_ratio": scalar.stats.miss_ratio,
    }


def compare_victim_kernel(accesses=BENCH_ENGINE_ACCESSES, replacement=None):
    """Time the scalar victim cache against the BatchVictimCache kernel."""
    trace = _build_trace(accesses)
    geometry = PAPER_L1_8KB
    scalar = VictimCache(geometry.size_bytes, geometry.block_size,
                         ways=1, victim_entries=8, replacement=replacement)
    batch = BatchVictimCache(geometry.size_bytes, geometry.block_size,
                             ways=1, victim_entries=8,
                             replacement=replacement)

    start = time.perf_counter()
    access = scalar.access
    for address in trace.addresses.tolist():
        access(address, False)
    scalar_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batch.run(trace)
    vector_seconds = time.perf_counter() - start

    assert scalar.stats.load_misses == batch.stats.load_misses, (
        "victim-cache kernels diverged")
    assert scalar.victim_hits == batch.victim_hits
    assert scalar.main_hits == batch.main_hits
    n = len(trace)
    return {
        "scheme": "victim-direct+8",
        "replacement": replacement or "lru",
        "accesses": n,
        "scalar_aps": n / scalar_seconds,
        "vector_aps": n / vector_seconds,
        "speedup": scalar_seconds / vector_seconds,
        "miss_ratio": scalar.stats.miss_ratio,
    }


def _load_trajectory(path):
    """Previously recorded runs, upgrading the legacy single-run schema."""
    if not path or not os.path.exists(path):
        return []
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return []
    if isinstance(data, dict) and isinstance(data.get("runs"), list):
        return data["runs"]
    if isinstance(data, dict) and "rows" in data:
        # Legacy schema: one flat run per file.  Keep it as the first
        # trajectory entry instead of silently discarding the baseline.
        return [{key: data[key] for key in
                 ("python", "machine", "workload", "rows",
                  "required_speedup_lru", "required_speedup_policy")
                 if key in data}]
    return []


def _write_artifact(rows, accesses, path=BENCH_ENGINE_JSON):
    """Append this run to the machine-readable trajectory artifact."""
    if not path:
        return None
    runs = _load_trajectory(path)
    runs.append({
        "unix_time": int(time.time()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workload": {"elements": ELEMENTS, "stride": STRIDE,
                     "accesses": accesses, "cache": PAPER_L1_8KB.label},
        "required_speedup_lru": REQUIRED_SPEEDUP,
        "required_speedup_policy": REQUIRED_SPEEDUP_POLICY,
        "rows": rows,
    })
    artifact = {
        "benchmark": "bench_engine",
        "runs": runs[-MAX_TRAJECTORY_RUNS:],
    }
    with open(path, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


@pytest.mark.benchmark(group="engine")
@pytest.mark.parametrize("scheme", SCHEMES)
def test_engine_throughput(benchmark, scheme):
    trace = _build_trace(BENCH_ENGINE_ACCESSES)
    scalar, batch = _make_caches(scheme)

    start = time.perf_counter()
    _run_scalar(scalar, trace)
    scalar_seconds = time.perf_counter() - start

    def _vector_run():
        _, fresh = _make_caches(scheme)
        fresh.run(trace)
        return fresh

    fresh = benchmark.pedantic(_vector_run, rounds=3, iterations=1)
    vector_seconds = benchmark.stats.stats.min

    assert _stats_tuple(scalar.stats) == _stats_tuple(fresh.stats), (
        f"CacheStats diverged between engines for {scheme}")
    speedup = scalar_seconds / vector_seconds
    print(f"\n{scheme}: scalar {len(trace) / scalar_seconds:,.0f} acc/s, "
          f"vectorized {len(trace) / vector_seconds:,.0f} acc/s "
          f"({speedup:.1f}x)")
    if len(trace) >= MIN_ACCESSES_FOR_SPEEDUP_CHECK:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"{scheme}: vectorized engine only {speedup:.1f}x over scalar "
            f"(required {REQUIRED_SPEEDUP}x)")


@pytest.mark.benchmark(group="engine-policy")
@pytest.mark.parametrize("policy", POLICY_ROWS)
def test_policy_kernel_throughput(benchmark, policy):
    """Set-decomposed kernels hold the same bar as the LRU fast paths."""
    trace = _build_trace(BENCH_ENGINE_ACCESSES)
    scalar, batch = _make_caches("a2", replacement=policy)

    start = time.perf_counter()
    _run_scalar(scalar, trace)
    scalar_seconds = time.perf_counter() - start

    def _vector_run():
        _, fresh = _make_caches("a2", replacement=policy)
        fresh.run(trace)
        return fresh

    fresh = benchmark.pedantic(_vector_run, rounds=3, iterations=1)
    vector_seconds = benchmark.stats.stats.min

    assert _stats_tuple(scalar.stats) == _stats_tuple(fresh.stats), (
        f"CacheStats diverged between engines for a2/{policy}")
    speedup = scalar_seconds / vector_seconds
    print(f"\na2/{policy}: scalar {len(trace) / scalar_seconds:,.0f} acc/s, "
          f"vectorized {len(trace) / vector_seconds:,.0f} acc/s "
          f"({speedup:.1f}x)")
    if len(trace) >= MIN_ACCESSES_FOR_SPEEDUP_CHECK:
        assert speedup >= REQUIRED_SPEEDUP_POLICY, (
            f"a2/{policy}: set-decomposed kernel only {speedup:.1f}x over "
            f"scalar (required {REQUIRED_SPEEDUP_POLICY}x)")


@pytest.mark.benchmark(group="engine-skew-policy")
@pytest.mark.parametrize("policy", POLICY_ROWS)
def test_skew_policy_kernel_throughput(benchmark, policy):
    """Skew-decomposed kernels hold the same bar on skewed placement."""
    trace = _build_trace(BENCH_ENGINE_ACCESSES)
    scalar, batch = _make_caches("a2-Hp-Sk", replacement=policy)

    start = time.perf_counter()
    _run_scalar(scalar, trace)
    scalar_seconds = time.perf_counter() - start

    def _vector_run():
        _, fresh = _make_caches("a2-Hp-Sk", replacement=policy)
        fresh.run(trace)
        return fresh

    fresh = benchmark.pedantic(_vector_run, rounds=3, iterations=1)
    vector_seconds = benchmark.stats.stats.min

    assert _stats_tuple(scalar.stats) == _stats_tuple(fresh.stats), (
        f"CacheStats diverged between engines for a2-Hp-Sk/{policy}")
    speedup = scalar_seconds / vector_seconds
    print(f"\na2-Hp-Sk/{policy}: scalar {len(trace) / scalar_seconds:,.0f} "
          f"acc/s, vectorized {len(trace) / vector_seconds:,.0f} acc/s "
          f"({speedup:.1f}x)")
    if len(trace) >= MIN_ACCESSES_FOR_SPEEDUP_CHECK:
        assert speedup >= REQUIRED_SPEEDUP_POLICY, (
            f"a2-Hp-Sk/{policy}: skew-decomposed kernel only {speedup:.1f}x "
            f"over scalar (required {REQUIRED_SPEEDUP_POLICY}x)")


@pytest.mark.benchmark(group="engine-victim")
@pytest.mark.parametrize("policy", [None] + POLICY_ROWS,
                         ids=["lru"] + POLICY_ROWS)
def test_victim_kernel_throughput(benchmark, policy):
    """Decomposed victim kernels hold the same bar for every policy."""
    trace = _build_trace(BENCH_ENGINE_ACCESSES)
    geometry = PAPER_L1_8KB
    scalar = VictimCache(geometry.size_bytes, geometry.block_size,
                         ways=1, victim_entries=8, replacement=policy)

    start = time.perf_counter()
    access = scalar.access
    for address in trace.addresses.tolist():
        access(address, False)
    scalar_seconds = time.perf_counter() - start

    def _vector_run():
        fresh = BatchVictimCache(geometry.size_bytes, geometry.block_size,
                                 ways=1, victim_entries=8,
                                 replacement=policy)
        fresh.run(trace)
        return fresh

    fresh = benchmark.pedantic(_vector_run, rounds=3, iterations=1)
    vector_seconds = benchmark.stats.stats.min

    assert scalar.stats.load_misses == fresh.stats.load_misses
    assert scalar.victim_hits == fresh.victim_hits
    assert scalar.main_hits == fresh.main_hits
    speedup = scalar_seconds / vector_seconds
    label = policy or "lru"
    print(f"\nvictim/{label}: scalar {len(trace) / scalar_seconds:,.0f} "
          f"acc/s, vectorized {len(trace) / vector_seconds:,.0f} acc/s "
          f"({speedup:.1f}x)")
    if len(trace) >= MIN_ACCESSES_FOR_SPEEDUP_CHECK:
        assert speedup >= REQUIRED_SPEEDUP_POLICY, (
            f"victim/{label}: decomposed victim kernel only {speedup:.1f}x "
            f"over scalar (required {REQUIRED_SPEEDUP_POLICY}x)")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="short trace through every kernel-dispatch path; "
                             "bit-exactness asserted, speedup bounds and the "
                             "JSON artifact skipped")
    args = parser.parse_args(argv)
    accesses = SMOKE_ACCESSES if args.smoke else BENCH_ENGINE_ACCESSES

    print(f"strided trace: {ELEMENTS} elements, stride {STRIDE}, "
          f"{accesses:,} accesses, {PAPER_L1_8KB.label} cache"
          + (" [smoke]" if args.smoke else "") + "\n")
    header = (f"{'scheme':16s} {'repl':6s} {'scalar acc/s':>14s} "
              f"{'vector acc/s':>14s} {'speedup':>8s} {'miss%':>7s}")
    print(header)
    print("-" * len(header))

    def show(row):
        print(f"{row['scheme']:16s} {row['replacement']:6s} "
              f"{row['scalar_aps']:14,.0f} "
              f"{row['vector_aps']:14,.0f} {row['speedup']:7.1f}x "
              f"{100 * row['miss_ratio']:6.2f}%")

    check_bounds = accesses >= MIN_ACCESSES_FOR_SPEEDUP_CHECK
    rows = []
    for scheme in SCHEMES:
        row = compare_engines(scheme, accesses=accesses)
        rows.append(row)
        show(row)
        if check_bounds:
            assert row["speedup"] >= REQUIRED_SPEEDUP, (
                f"{row['scheme']}: only {row['speedup']:.1f}x")
    # Set-decomposed kernels on the conventional organisation: bounded.
    for policy in POLICY_ROWS:
        row = compare_engines("a2", accesses=accesses, replacement=policy)
        rows.append(row)
        show(row)
        if check_bounds:
            assert row["speedup"] >= REQUIRED_SPEEDUP_POLICY, (
                f"a2/{policy}: only {row['speedup']:.1f}x")
    # Skew-decomposed kernels on the skewed organisation: bounded.
    for policy in POLICY_ROWS:
        row = compare_engines("a2-Hp-Sk", accesses=accesses,
                              replacement=policy)
        rows.append(row)
        show(row)
        if check_bounds:
            assert row["speedup"] >= REQUIRED_SPEEDUP_POLICY, (
                f"a2-Hp-Sk/{policy}: only {row['speedup']:.1f}x")
    # Decomposed victim kernels, every policy: bounded.
    for policy in [None] + POLICY_ROWS:
        row = compare_victim_kernel(accesses=accesses, replacement=policy)
        rows.append(row)
        show(row)
        if check_bounds:
            assert row["speedup"] >= REQUIRED_SPEEDUP_POLICY, (
                f"victim/{row['replacement']}: only {row['speedup']:.1f}x")
    if check_bounds:
        print(f"\nevery row (LRU fast paths, set-decomposed, skew-decomposed "
              f"and victim kernels) >= {REQUIRED_SPEEDUP:.0f}x with "
              f"bit-exact CacheStats")
    else:
        print("\nbit-exact CacheStats on every kernel path "
              "(speedup bounds skipped below "
              f"{MIN_ACCESSES_FOR_SPEEDUP_CHECK:,} accesses)")
    if not args.smoke:
        path = _write_artifact(rows, accesses)
        if path:
            print(f"appended run to {path}")


if __name__ == "__main__":
    main()
