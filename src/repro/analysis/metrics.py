"""Aggregation metrics used by the paper's tables.

Table 2's caption spells out the conventions this module implements: "Miss
ratios are averaged with arithmetic mean, and IPC rates are averaged with
geometric means."  The conclusions additionally quote the standard deviation
of miss ratios across the suite (18.49 conventional vs 5.16 I-Poly), and the
per-program comparisons are expressed as percentage improvements.  Keeping
these small statistical helpers in one place ensures every experiment driver
aggregates numbers the same way the paper does.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

__all__ = [
    "arithmetic_mean",
    "geometric_mean",
    "std_deviation",
    "percent_change",
    "speedup",
    "summarise_miss_ratios",
    "summarise_ipc",
]


def arithmetic_mean(values: Sequence[float]) -> float:
    """Plain average; raises on an empty sequence."""
    values = list(values)
    if not values:
        raise ValueError("cannot average an empty sequence")
    return sum(values) / len(values)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; every value must be positive."""
    values = list(values)
    if not values:
        raise ValueError("cannot average an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def std_deviation(values: Sequence[float]) -> float:
    """Population standard deviation (the paper's cross-suite spread metric)."""
    values = list(values)
    if not values:
        raise ValueError("cannot take the deviation of an empty sequence")
    mean = arithmetic_mean(values)
    return math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))


def percent_change(baseline: float, value: float) -> float:
    """Signed percentage change from ``baseline`` to ``value``.

    >>> round(percent_change(1.0, 1.33), 1)
    33.0
    """
    if baseline == 0:
        raise ValueError("baseline must be non-zero")
    return (value - baseline) / baseline * 100.0


def speedup(baseline: float, value: float) -> float:
    """Ratio ``value / baseline`` (IPC improvements are usually quoted this way)."""
    if baseline == 0:
        raise ValueError("baseline must be non-zero")
    return value / baseline


def summarise_miss_ratios(per_program: Dict[str, float],
                          groups: Dict[str, Iterable[str]]) -> Dict[str, float]:
    """Arithmetic-mean miss ratios per named group of programs.

    ``groups`` maps a label (e.g. ``"Int average"``) to the programs it
    covers; programs absent from ``per_program`` raise ``KeyError`` so typos
    in experiment configurations fail loudly.
    """
    summary = {}
    for label, names in groups.items():
        names = list(names)
        summary[label] = arithmetic_mean([per_program[name] for name in names])
    return summary


def summarise_ipc(per_program: Dict[str, float],
                  groups: Dict[str, Iterable[str]]) -> Dict[str, float]:
    """Geometric-mean IPC per named group of programs."""
    summary = {}
    for label, names in groups.items():
        names = list(names)
        summary[label] = geometric_mean([per_program[name] for name in names])
    return summary
