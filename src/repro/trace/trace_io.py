"""Reading and writing address traces.

Two formats are supported:

* a human-readable text format (one access per line:
  ``R|W <hex address> <hex pc> <size>``), convenient for small fixture traces
  and for inspecting generated workloads; and
* a compact binary format (little-endian fixed-width records) for larger
  traces, so experiments that replay the same trace across many cache
  configurations do not pay generator cost each time.

Both round-trip exactly through :class:`~repro.trace.record.MemoryAccess`,
and both readers validate what they parse — bad magic, truncated records,
non-hex fields, zero/negative sizes and corrupt flag bytes are reported
with ``path:line`` (text) or record/byte-offset (binary) precision instead
of surfacing as ``struct.error`` or silently producing garbage accesses.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable, Iterator, Union

from .record import MemoryAccess

__all__ = [
    "write_text_trace",
    "read_text_trace",
    "write_binary_trace",
    "read_binary_trace",
]

_BINARY_MAGIC = b"CACTR1\0\0"
_RECORD = struct.Struct("<QQIB3x")  # address, pc, size, is_write, padding


def write_text_trace(path: Union[str, Path], trace: Iterable[MemoryAccess]) -> int:
    """Write a trace in the text format; returns the number of records written."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="ascii") as handle:
        handle.write("# repro cache trace v1: R|W address pc size (hex, hex, dec)\n")
        for access in trace:
            kind = "W" if access.is_write else "R"
            handle.write(f"{kind} {access.address:#x} {access.pc:#x} {access.size}\n")
            count += 1
    return count


def read_text_trace(path: Union[str, Path]) -> Iterator[MemoryAccess]:
    """Lazily read a text-format trace."""
    path = Path(path)
    with path.open("r", encoding="ascii") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 4 or parts[0] not in ("R", "W"):
                raise ValueError(f"{path}:{line_number}: malformed record {line!r}")
            try:
                address = int(parts[1], 16)
                pc = int(parts[2], 16)
            except ValueError:
                raise ValueError(f"{path}:{line_number}: non-hex address/pc "
                                 f"field in {line!r}") from None
            try:
                size = int(parts[3], 10)
            except ValueError:
                raise ValueError(f"{path}:{line_number}: non-integer size "
                                 f"field in {line!r}") from None
            if address < 0 or pc < 0:
                raise ValueError(f"{path}:{line_number}: negative address/pc "
                                 f"in {line!r}")
            if size <= 0:
                raise ValueError(f"{path}:{line_number}: size must be "
                                 f"positive, got {size}")
            yield MemoryAccess(address=address, is_write=parts[0] == "W",
                               pc=pc, size=size)


def write_binary_trace(path: Union[str, Path], trace: Iterable[MemoryAccess]) -> int:
    """Write a trace in the binary format; returns the number of records written."""
    path = Path(path)
    count = 0
    with path.open("wb") as handle:
        handle.write(_BINARY_MAGIC)
        for access in trace:
            try:
                record = _RECORD.pack(access.address, access.pc, access.size,
                                      1 if access.is_write else 0)
            except struct.error as exc:
                raise ValueError(
                    f"{path}: record {count} does not fit the binary format "
                    f"(address/pc are u64, size is u32): {exc}") from None
            handle.write(record)
            count += 1
    return count


def read_binary_trace(path: Union[str, Path]) -> Iterator[MemoryAccess]:
    """Lazily read a binary-format trace."""
    path = Path(path)
    with path.open("rb") as handle:
        magic = handle.read(len(_BINARY_MAGIC))
        if len(magic) < len(_BINARY_MAGIC):
            raise ValueError(f"{path}: truncated header ({len(magic)} of "
                             f"{len(_BINARY_MAGIC)} magic bytes) — not a "
                             "repro binary trace")
        if magic != _BINARY_MAGIC:
            raise ValueError(f"{path} is not a repro binary trace (bad magic)")
        offset = len(_BINARY_MAGIC)
        record_index = 0
        while True:
            raw = handle.read(_RECORD.size)
            if not raw:
                break
            if len(raw) != _RECORD.size:
                raise ValueError(
                    f"{path}: truncated record {record_index} at byte offset "
                    f"{offset} ({len(raw)} of {_RECORD.size} bytes)")
            address, pc, size, is_write = _RECORD.unpack(raw)
            where = f"{path}: record {record_index} at byte offset {offset}"
            if size == 0:
                raise ValueError(f"{where}: size must be positive, got 0")
            if is_write not in (0, 1):
                raise ValueError(f"{where}: corrupt write flag "
                                 f"{is_write:#04x} (expected 0 or 1)")
            if raw[-3:] != b"\x00\x00\x00":
                raise ValueError(f"{where}: corrupt padding bytes "
                                 f"{raw[-3:]!r} (expected zeros)")
            yield MemoryAccess(address=address, is_write=bool(is_write),
                               pc=pc, size=size)
            offset += _RECORD.size
            record_index += 1
