#!/usr/bin/env python3
"""Tiled matrix multiply: conflict misses that depend on the matrix dimension.

The paper's conclusions point at blocked (tiled) scientific kernels as a
prime beneficiary of conflict-avoiding caches: tiling is done to exploit
locality, but with a conventional cache the conflicts *between* the tiles of
A, B and C depend on the array dimensions — a power-of-two matrix size can
ruin an otherwise perfectly tiled loop nest, forcing programmers to compute
"conflict-free" tile sizes or pad their arrays.  An I-Poly cache removes the
dimension sensitivity.

This example runs the same blocked matrix-multiply reference stream over a
conventional and an I-Poly 8 KB cache for a power-of-two dimension (n = 64)
and a padded dimension (n = 65), and shows that:

* the conventional cache's miss ratio swings wildly between the two
  dimensions (the padding "fixes" it);
* the I-Poly cache gives roughly the padded behaviour for both, without any
  padding.

Run it with::

    python examples/tiled_matmul.py
"""

from repro.cache import MissKind, SetAssociativeCache
from repro.core import IPolyIndexing
from repro.trace import tiled_matrix_multiply


def run(cache, n, tile):
    """Drive one cache with the blocked matmul stream; return (miss%, conflict%)."""
    for access in tiled_matrix_multiply(n=n, tile=tile):
        cache.access(access.address, is_write=access.is_write)
    stats = cache.stats
    return 100 * stats.miss_ratio, 100 * stats.conflict_miss_ratio


def build(scheme):
    if scheme == "conventional":
        return SetAssociativeCache(8 * 1024, 32, 2, classify_misses=True)
    index = IPolyIndexing(num_sets=128, ways=2, skewed=True, address_bits=19)
    return SetAssociativeCache(8 * 1024, 32, 2, index_function=index,
                               classify_misses=True)


def main():
    tile = 16
    print(f"Blocked matrix multiply, tile={tile}, 8 KB 2-way cache, 32 B lines\n")
    print(f"{'n':>4}  {'indexing':<14}{'miss ratio':>12}{'conflict part':>15}")
    for n in (64, 65):
        for scheme in ("conventional", "ipoly"):
            cache = build(scheme)
            miss, conflict = run(cache, n, tile)
            print(f"{n:>4}  {scheme:<14}{miss:>11.1f}%{conflict:>14.1f}%")
        print()

    print("With conventional indexing the power-of-two dimension (n=64) makes")
    print("the tiles of A, B and C collide; padding to n=65 fixes it.  The")
    print("I-Poly cache gives the padded behaviour for both dimensions, which")
    print("is the paper's argument that it frees programmers and compilers")
    print("from computing conflict-free tile sizes.")


if __name__ == "__main__":
    main()
