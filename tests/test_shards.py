"""Unit tests for SHARDS-style sampled reuse-distance profiling.

The sampled profiles of :mod:`repro.engine.shards` trade exactness for
speed, so the suite pins the three properties that make them usable:
**determinism** (a profile is a pure function of (trace, rate, seed) —
identical for any chunking), **degeneracy** (rate 1.0 must be bit-identical
to the exact twins, as must levels whose mini cache hits the set floor),
and a **bounded error envelope** at the production rate R = 0.01 across
several seeds on a spread-mass trace.  Hypothesis drives the degeneracy
claims over random geometries.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.set_assoc import WritePolicy
from repro.engine import (
    AddressBatch,
    MultiConfigLRUProfile,
    MultiConfigProfileBuilder,
    SampledMultiConfigLRUProfile,
    SampledMultiConfigProfileBuilder,
    SampledStackDistanceBuilder,
    SampledStackDistanceProfile,
    StackDistanceProfile,
    run_lru_grid,
)
from repro.engine.shards import (
    MIN_MINI_SETS,
    AdaptiveSpatialSampler,
    SpatialSampler,
    check_sample_rate,
    hash_blocks,
    level_rate_exponent,
    sample_threshold,
)

BLOCK = 32


def spread_trace(n, seed, store_fraction=0.3):
    """A mixed-working-set trace whose access mass is *spread*: a small hot
    region, two mid-size regions and a streaming component.  Spatial
    sampling is a per-block coin flip, so bounded-error claims need traces
    where no single block carries a macroscopic mass fraction."""
    rng = np.random.default_rng(seed)
    comp = rng.choice(4, size=n, p=[0.35, 0.30, 0.20, 0.15])
    blocks = np.empty(n, dtype=np.int64)
    blocks[comp == 0] = rng.integers(0, 4096, size=(comp == 0).sum())
    blocks[comp == 1] = 4096 + rng.integers(0, 32768, size=(comp == 1).sum())
    blocks[comp == 2] = 40000 + rng.integers(0, 1 << 18,
                                             size=(comp == 2).sum())
    stream = comp == 3
    blocks[stream] = (1 << 19) + np.arange(stream.sum())
    addresses = blocks.astype(np.uint64) << np.uint64(5)
    writes = rng.random(n) < store_fraction
    return AddressBatch.from_arrays(addresses, writes)


class TestHashAndSamplers:
    def test_hash_is_deterministic_and_seed_sensitive(self):
        blocks = np.arange(1000, dtype=np.int64)
        assert (hash_blocks(blocks, 7) == hash_blocks(blocks, 7)).all()
        assert (hash_blocks(blocks, 7) != hash_blocks(blocks, 8)).any()
        with pytest.raises(ValueError):
            hash_blocks(blocks, -1)

    def test_rate_validation(self):
        assert check_sample_rate(1) == 1.0
        for bad in (0.0, -0.5, 1.5, 2):
            with pytest.raises(ValueError):
                check_sample_rate(bad)
        assert sample_threshold(1.0) == 1 << 64
        assert sample_threshold(0.5) == 1 << 63

    def test_sampler_keeps_roughly_rate_of_blocks(self):
        blocks = np.arange(100_000, dtype=np.int64)
        kept = SpatialSampler(0.01, seed=0).mask(blocks).sum()
        assert 500 < kept < 1500   # ~1000 expected, hash-uniformity slack
        assert SpatialSampler(1.0).mask(blocks).all()

    def test_sampler_selection_is_spatial(self):
        """Whole blocks are kept or dropped — the mask of a shuffled
        stream is the shuffle of the mask."""
        rng = np.random.default_rng(3)
        blocks = rng.integers(0, 500, size=2000)
        sampler = SpatialSampler(0.2, seed=5)
        mask = sampler.mask(blocks)
        perm = rng.permutation(2000)
        assert (sampler.mask(blocks[perm]) == mask[perm]).all()

    def test_adaptive_sampler_enforces_smax(self):
        sampler = AdaptiveSpatialSampler(max_blocks=8, seed=0)
        blocks = np.arange(200, dtype=np.int64)
        hashes = hash_blocks(blocks, 0)
        for b, h in zip(blocks.tolist(), hashes.tolist()):
            sampler.admit(b, h)
            sampler.shrink()
        assert sampler.active_blocks <= 8
        assert sampler.threshold < 1 << 64   # it had to drop
        with pytest.raises(ValueError):
            AdaptiveSpatialSampler(max_blocks=0)

    def test_level_rate_exponent_floors_small_levels(self):
        # Plenty of headroom: 2^-6 is the largest power of two >= 0.01.
        assert level_rate_exponent(1 << 12, 0.01) == 6
        # The floor: a 64-set level may only shrink to MIN_MINI_SETS sets.
        assert level_rate_exponent(64, 0.01) == 2
        assert 64 >> 2 == MIN_MINI_SETS
        # At or below the floor the level is exact.
        assert level_rate_exponent(MIN_MINI_SETS, 0.01) == 0
        assert level_rate_exponent(1, 0.01) == 0
        # Rate 1.0 is always exact.
        assert level_rate_exponent(1 << 12, 1.0) == 0


class TestSampledStackDistance:
    def test_rate_one_matches_exact_profile(self):
        rng = np.random.default_rng(11)
        blocks = rng.integers(0, 300, size=5000)
        exact = StackDistanceProfile.from_blocks(blocks)
        sampled = SampledStackDistanceProfile.from_blocks(blocks, rate=1.0)
        for capacity in (1, 2, 7, 16, 33, 64, 128, 300):
            assert sampled.miss_count(capacity) == exact.miss_count(capacity)
        assert sampled.accesses == exact.accesses
        assert sampled.sampled_accesses == exact.accesses

    def test_deterministic_per_seed_and_chunking_invariant(self):
        rng = np.random.default_rng(12)
        blocks = rng.integers(0, 2000, size=20_000)
        one_shot = SampledStackDistanceProfile.from_blocks(
            blocks, rate=0.1, seed=4)
        builder = SampledStackDistanceBuilder(rate=0.1, seed=4)
        for start in range(0, 20_000, 777):
            builder.feed(blocks[start:start + 777])
        chunked = builder.finish()
        assert chunked.distances.tolist() == one_shot.distances.tolist()
        assert chunked.weights.tolist() == one_shot.weights.tolist()
        assert chunked.accesses == one_shot.accesses
        again = SampledStackDistanceProfile.from_blocks(
            blocks, rate=0.1, seed=4)
        assert again.distances.tolist() == one_shot.distances.tolist()
        other_seed = SampledStackDistanceProfile.from_blocks(
            blocks, rate=0.1, seed=5)
        assert (other_seed.sampled_accesses != one_shot.sampled_accesses
                or other_seed.distances.tolist()
                != one_shot.distances.tolist())

    def test_fixed_size_mode_bounds_the_sample(self):
        rng = np.random.default_rng(13)
        blocks = rng.integers(0, 5000, size=30_000)
        builder = SampledStackDistanceBuilder(seed=1, max_blocks=64)
        builder.feed(blocks)
        assert builder._sampler.active_blocks <= 64
        assert builder.rate < 1.0
        profile = builder.finish()
        curve = profile.miss_ratio_curve([1, 8, 64, 512, 4096])
        assert ((0.0 <= curve) & (curve <= 1.0)).all()
        assert (np.diff(curve) <= 1e-12).all()

    def test_builder_requires_rate_or_bound(self):
        with pytest.raises(ValueError):
            SampledStackDistanceBuilder()
        with pytest.raises(ValueError):
            SampledStackDistanceBuilder(rate=0.5, seed=-1)

    def test_curve_error_bounded_on_spread_trace(self):
        batch = spread_trace(100_000, seed=21, store_fraction=0.0)
        from repro.engine.memo import cached_block_numbers
        blocks = cached_block_numbers(batch, BLOCK)
        exact = StackDistanceProfile.from_blocks(blocks)
        capacities = [256, 1024, 4096, 16384, 65536]
        exact_curve = exact.miss_ratio_curve(capacities)
        for seed in range(3):
            sampled = SampledStackDistanceProfile.from_blocks(
                blocks, rate=0.01, seed=seed)
            curve = sampled.miss_ratio_curve(capacities)
            assert np.abs(curve - exact_curve).max() <= 0.05, seed

    def test_empty_profile(self):
        profile = SampledStackDistanceProfile.from_blocks(
            np.empty(0, dtype=np.int64), rate=0.5)
        assert profile.accesses == 0
        assert profile.miss_ratio(4) == 0.0


class TestSampledMultiConfig:
    GRID = {64: 8, 1024: 8}

    def test_rate_one_is_bit_exact(self):
        batch = spread_trace(5000, seed=31)
        for policy in (WritePolicy.WRITE_THROUGH_NO_ALLOCATE,
                       WritePolicy.WRITE_BACK_ALLOCATE):
            exact = MultiConfigLRUProfile(batch, BLOCK, self.GRID,
                                          write_policy=policy)
            sampled = SampledMultiConfigLRUProfile(
                batch, BLOCK, self.GRID, write_policy=policy, rate=1.0)
            for num_sets in self.GRID:
                for ways in (1, 2, 4, 8):
                    assert (sampled.miss_counts(num_sets, ways)
                            == exact.miss_counts(num_sets, ways)), (
                        policy, num_sets, ways)

    def test_floored_levels_are_bit_exact_at_any_rate(self):
        """A level at or below MIN_MINI_SETS sets never samples (k == 0),
        so its counters are exact even at R = 0.01."""
        batch = spread_trace(4000, seed=32)
        grid = {1: 8, MIN_MINI_SETS: 4}
        exact = MultiConfigLRUProfile(batch, BLOCK, grid)
        sampled = SampledMultiConfigLRUProfile(batch, BLOCK, grid, rate=0.01)
        assert sampled.level_rate(1) == 1.0
        assert sampled.level_rate(MIN_MINI_SETS) == 1.0
        for num_sets, cap in grid.items():
            for ways in range(1, cap + 1):
                assert (sampled.miss_counts(num_sets, ways)
                        == exact.miss_counts(num_sets, ways))

    def test_deterministic_per_seed_and_chunking_invariant(self):
        batch = spread_trace(20_000, seed=33)
        one_shot = SampledMultiConfigLRUProfile(batch, BLOCK, self.GRID,
                                                rate=0.05, seed=9)
        builder = SampledMultiConfigProfileBuilder(
            BLOCK, self.GRID, has_stores=True, rate=0.05, seed=9)
        addresses, writes = batch.addresses, batch.is_write
        for start in range(0, 20_000, 3001):
            builder.feed(AddressBatch.from_arrays(
                addresses[start:start + 3001], writes[start:start + 3001]))
        chunked = builder.finish()
        again = SampledMultiConfigLRUProfile(batch, BLOCK, self.GRID,
                                             rate=0.05, seed=9)
        for num_sets in self.GRID:
            assert chunked.level_rate(num_sets) == one_shot.level_rate(num_sets)
            for ways in (1, 3, 8):
                counts = one_shot.miss_counts(num_sets, ways)
                assert chunked.miss_counts(num_sets, ways) == counts
                assert again.miss_counts(num_sets, ways) == counts

    def test_grid_error_bounded_at_production_rate(self):
        """The tentpole's accuracy claim at suite scale: R = 0.01, three
        seeds, dense (sets x ways) grid on a spread-mass trace — max
        miss-ratio error within the SHARDS envelope."""
        batch = spread_trace(200_000, seed=99)
        grid = {1024: 8, 2048: 8}
        exact = MultiConfigLRUProfile(batch, BLOCK, grid)
        for seed in range(3):
            sampled = SampledMultiConfigLRUProfile(batch, BLOCK, grid,
                                                   rate=0.01, seed=seed)
            for num_sets in grid:
                assert sampled.level_rate(num_sets) < 1.0
                for ways in (1, 2, 4, 8):
                    delta = abs(sampled.miss_counts(num_sets, ways).miss_ratio
                                - exact.miss_counts(num_sets, ways).miss_ratio)
                    assert delta <= 0.05, (seed, num_sets, ways, delta)

    def test_sample_size_caps_the_rate(self):
        batch = spread_trace(50_000, seed=34)
        capped = SampledMultiConfigLRUProfile(batch, BLOCK, {1024: 4},
                                              rate=1.0, sample_size=500)
        assert capped.rate == pytest.approx(500 / 50_000)
        with pytest.raises(ValueError):
            SampledMultiConfigLRUProfile(batch, BLOCK, {1024: 4},
                                         sample_size=0)

    def test_readout_guards_match_exact_twin(self):
        batch = spread_trace(2000, seed=35)
        sampled = SampledMultiConfigLRUProfile(batch, BLOCK, {64: 4})
        with pytest.raises(KeyError):
            sampled.miss_counts(128, 2)
        with pytest.raises(KeyError):
            sampled.level_rate(128)
        with pytest.raises(ValueError):
            sampled.miss_counts(64, 1000)
        with pytest.raises(ValueError):
            SampledMultiConfigLRUProfile(batch, BLOCK, {64: 4}, rate=0.0)
        with pytest.raises(ValueError):
            SampledMultiConfigLRUProfile(batch, BLOCK, {64: 4}, seed=-1)

    def test_builder_rejects_mid_stream_store_mode_change(self):
        loads = AddressBatch.from_arrays(
            np.arange(8, dtype=np.uint64) * BLOCK)
        stores = AddressBatch.from_arrays(
            np.arange(8, dtype=np.uint64) * BLOCK, [True] * 8)
        builder = SampledMultiConfigProfileBuilder(BLOCK, {64: 2},
                                                   has_stores=False)
        builder.feed(loads)
        with pytest.raises(ValueError, match="store mode changed mid-stream"):
            builder.feed(stores)

    def test_plan_sampled_mode_routes_lru_grids(self):
        """run_lru_grid(profile="sampled") at rate 1.0 degenerates to the
        exact plan result; at a real rate it still prices every cell."""
        batch = spread_trace(10_000, seed=36)
        grid = [(num_sets, ways) for num_sets in (64, 256)
                for ways in (1, 2, 4)]
        exact = run_lru_grid(batch, BLOCK, grid, profile="always")
        degenerate = run_lru_grid(batch, BLOCK, grid, profile="sampled",
                                  sample_rate=1.0)
        assert degenerate == exact
        sampled = run_lru_grid(batch, BLOCK, grid, profile="sampled",
                               sample_rate=0.05, profile_seed=2)
        assert set(sampled) == set(exact)
        for key in grid:
            assert sampled[key].accesses == exact[key].accesses
            assert abs(sampled[key].miss_ratio - exact[key].miss_ratio) < 0.5


@settings(max_examples=30, deadline=None)
@given(
    addresses=st.lists(st.integers(0, 4095), min_size=1, max_size=200),
    writes=st.data(),
    set_bits=st.integers(0, 5),
    ways=st.integers(1, 4),
    seed=st.integers(0, 3),
)
def test_sampled_profile_rate_one_matches_exact_on_random_geometries(
        addresses, writes, set_bits, ways, seed):
    """Degeneracy property: at rate 1.0 the sampled profile is the exact
    profile, over random traces, geometries and hash seeds."""
    is_write = writes.draw(st.lists(st.booleans(), min_size=len(addresses),
                                    max_size=len(addresses)))
    num_sets = 1 << set_bits
    batch = AddressBatch.from_arrays(np.array(addresses, dtype=np.uint64),
                                     np.array(is_write, dtype=bool))
    exact = MultiConfigLRUProfile(batch, 16, {num_sets: ways})
    sampled = SampledMultiConfigLRUProfile(batch, 16, {num_sets: ways},
                                           rate=1.0, seed=seed)
    assert (sampled.miss_counts(num_sets, ways)
            == exact.miss_counts(num_sets, ways))


@settings(max_examples=30, deadline=None)
@given(
    addresses=st.lists(st.integers(0, (1 << 20) - 1), min_size=1,
                       max_size=300),
    set_bits=st.integers(4, 10),
    ways=st.integers(1, 4),
    rate_percent=st.integers(1, 100),
    seed=st.integers(0, 5),
)
def test_sampled_profile_is_sane_on_random_geometries(
        addresses, set_bits, ways, rate_percent, seed):
    """Structural property at *any* rate: counts stay within the exact
    totals, ratios stay in [0, 1], and rebuilding is bit-identical."""
    num_sets = 1 << set_bits
    rate = rate_percent / 100.0
    batch = AddressBatch.from_arrays(np.array(addresses, dtype=np.uint64))
    sampled = SampledMultiConfigLRUProfile(batch, 16, {num_sets: ways},
                                           rate=rate, seed=seed)
    counts = sampled.miss_counts(num_sets, ways)
    assert counts.accesses == len(addresses)
    assert 0 <= counts.load_misses <= counts.loads
    assert 0.0 <= counts.miss_ratio <= 1.0
    rebuilt = SampledMultiConfigLRUProfile(batch, 16, {num_sets: ways},
                                           rate=rate, seed=seed)
    assert rebuilt.miss_counts(num_sets, ways) == counts
