"""Miss Status Holding Registers (MSHRs) for a lockup-free cache.

The paper's processor model uses a lockup-free data cache (Kroft, ISCA 1981)
that "allows 8 outstanding misses to different cache lines".  The MSHR file
is the structure that makes that possible: each entry tracks one in-flight
line fill, and further misses to the same line are *merged* into the existing
entry instead of occupying a new one (a "secondary miss").

The model is timing-agnostic — the processor pipeline decides when fills
complete — but enforces the structural limits: a bounded number of entries
and a bounded number of merged requests per entry.  When either limit is hit
the cache must stall, which the pipeline models as a structural hazard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["MSHREntry", "MSHRFile", "MSHRAllocation"]


@dataclass
class MSHREntry:
    """One in-flight line fill.

    ``waiters`` holds opaque tags supplied by the requester (typically ROB or
    load/store-queue entry ids) so the pipeline can wake the right
    instructions when the fill completes.
    """

    block_number: int
    issued_at: int
    ready_at: Optional[int] = None
    is_prefetch: bool = False
    waiters: List[int] = field(default_factory=list)


class MSHRAllocation:
    """Result labels returned by :meth:`MSHRFile.allocate`."""

    NEW = "new"            # a fresh entry was allocated (primary miss)
    MERGED = "merged"      # an existing entry absorbed the request (secondary miss)
    FULL = "full"          # no entry available: structural stall
    MERGE_FULL = "merge-full"  # entry exists but its waiter list is full


class MSHRFile:
    """A bounded file of MSHR entries with per-line merging."""

    def __init__(self, num_entries: int = 8, max_merged: int = 4) -> None:
        if num_entries < 1:
            raise ValueError("num_entries must be positive")
        if max_merged < 1:
            raise ValueError("max_merged must be positive")
        self._num_entries = num_entries
        self._max_merged = max_merged
        self._entries: Dict[int, MSHREntry] = {}
        self.primary_misses = 0
        self.secondary_misses = 0
        self.structural_stalls = 0

    @property
    def num_entries(self) -> int:
        """Capacity of the MSHR file."""
        return self._num_entries

    @property
    def occupancy(self) -> int:
        """Number of entries currently in flight."""
        return self._entries.values().__len__()

    @property
    def is_full(self) -> bool:
        """True when no new line fill can be tracked."""
        return len(self._entries) >= self._num_entries

    def outstanding_blocks(self) -> List[int]:
        """Block numbers currently being fetched."""
        return list(self._entries)

    def lookup(self, block_number: int) -> Optional[MSHREntry]:
        """Return the in-flight entry for ``block_number``, if any."""
        return self._entries.get(block_number)

    def allocate(self, block_number: int, now: int, waiter: Optional[int] = None,
                 ready_at: Optional[int] = None,
                 is_prefetch: bool = False) -> str:
        """Register a miss for ``block_number``.

        Returns one of the :class:`MSHRAllocation` labels.  ``ready_at`` lets
        the caller fix the completion time up front (fixed-latency memory);
        it can also be set later via :meth:`set_ready`.
        """
        entry = self._entries.get(block_number)
        if entry is not None:
            if len(entry.waiters) >= self._max_merged:
                self.structural_stalls += 1
                return MSHRAllocation.MERGE_FULL
            if waiter is not None:
                entry.waiters.append(waiter)
            self.secondary_misses += 1
            return MSHRAllocation.MERGED
        if self.is_full:
            self.structural_stalls += 1
            return MSHRAllocation.FULL
        entry = MSHREntry(block_number=block_number, issued_at=now,
                          ready_at=ready_at, is_prefetch=is_prefetch)
        if waiter is not None:
            entry.waiters.append(waiter)
        self._entries[block_number] = entry
        self.primary_misses += 1
        return MSHRAllocation.NEW

    def set_ready(self, block_number: int, ready_at: int) -> None:
        """Fix the completion time of an in-flight fill."""
        entry = self._entries.get(block_number)
        if entry is None:
            raise KeyError(f"no MSHR entry for block {block_number}")
        entry.ready_at = ready_at

    def completed(self, now: int) -> List[MSHREntry]:
        """Pop and return every entry whose fill has completed by ``now``."""
        done = [e for e in self._entries.values()
                if e.ready_at is not None and e.ready_at <= now]
        for entry in done:
            del self._entries[entry.block_number]
        return done

    def release(self, block_number: int) -> MSHREntry:
        """Explicitly retire the entry for ``block_number`` (e.g. on squash)."""
        try:
            return self._entries.pop(block_number)
        except KeyError:
            raise KeyError(f"no MSHR entry for block {block_number}") from None

    def flush(self) -> None:
        """Drop all in-flight entries (pipeline squash / cache flush)."""
        self._entries.clear()
