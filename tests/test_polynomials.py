"""Unit tests for the polynomial catalogue."""

import pytest

from repro.core.gf2 import degree, is_irreducible
from repro.core.polynomials import (
    DEFAULT_IRREDUCIBLE,
    _verify_table,
    default_polynomial,
    find_irreducible,
    skewing_polynomials,
    validate_polynomial,
)


class TestDefaultTable:
    def test_every_entry_has_matching_degree(self):
        for deg, poly in DEFAULT_IRREDUCIBLE.items():
            assert degree(poly) == deg

    def test_every_entry_is_irreducible(self):
        assert _verify_table() == []

    def test_covers_useful_cache_sizes(self):
        # 2^5 sets (1 KB direct-mapped, 32 B lines) up to 2^20 sets.
        for bits in range(5, 21):
            assert bits in DEFAULT_IRREDUCIBLE

    def test_default_polynomial_matches_table(self):
        assert default_polynomial(7) == DEFAULT_IRREDUCIBLE[7]
        assert default_polynomial(8) == DEFAULT_IRREDUCIBLE[8]

    def test_default_polynomial_beyond_table_falls_back_to_search(self):
        poly = default_polynomial(25)
        assert degree(poly) == 25
        assert is_irreducible(poly)


class TestValidate:
    def test_accepts_matching_degree(self):
        validate_polynomial(0b10000011, 7)

    def test_rejects_mismatched_degree(self):
        with pytest.raises(ValueError):
            validate_polynomial(0b1011, 7)

    def test_rejects_non_positive_width(self):
        with pytest.raises(ValueError):
            validate_polynomial(0b1011, 0)


class TestSearch:
    def test_find_single(self):
        polys = find_irreducible(6)
        assert len(polys) == 1
        assert is_irreducible(polys[0])

    def test_find_several_distinct(self):
        polys = find_irreducible(7, count=4)
        assert len(polys) == 4
        assert len(set(polys)) == 4
        assert all(degree(p) == 7 for p in polys)

    def test_find_too_many_raises(self):
        # Only one irreducible polynomial of degree 2 exists.
        with pytest.raises(ValueError):
            find_irreducible(2, count=2)

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError):
            find_irreducible(4, count=0)


class TestSkewing:
    def test_first_is_default(self):
        polys = skewing_polynomials(7, 2)
        assert polys[0] == default_polynomial(7)

    def test_distinct_per_way(self):
        polys = skewing_polynomials(7, 4)
        assert len(set(polys)) == 4
        assert all(is_irreducible(p) for p in polys)

    def test_single_way(self):
        assert skewing_polynomials(5, 1) == [default_polynomial(5)]

    def test_too_many_ways_raises(self):
        with pytest.raises(ValueError):
            skewing_polynomials(2, 3)

    def test_invalid_ways(self):
        with pytest.raises(ValueError):
            skewing_polynomials(5, 0)
