"""Reading and writing address traces (v1 formats).

Two record-oriented formats are supported here:

* a human-readable text format (one access per line:
  ``R|W <hex address> <hex pc> <size>``), convenient for small fixture traces
  and for inspecting generated workloads; and
* a compact binary format (little-endian fixed-width records) for larger
  traces, so experiments that replay the same trace across many cache
  configurations do not pay generator cost each time.

The columnar, mmap-able v2 format (and compressed/``.din`` ingestion) lives
in :mod:`repro.trace.stream`, which reuses this module's parsers for the
record-oriented inputs.

Both round-trip exactly through :class:`~repro.trace.record.MemoryAccess`,
and both readers validate what they parse — bad magic, truncated records,
non-hex fields, zero/negative sizes and corrupt flag bytes are reported
with ``path:line`` (text) or record/byte-offset (binary) precision instead
of surfacing as ``struct.error`` or silently producing garbage accesses.
The writers enforce the same invariants (negative address/pc, non-positive
size, fields too wide for the binary layout), so a writer can never produce
a trace its own reader refuses.

Readers are returned as :class:`TraceReader` objects: plain iterators that
also work as context managers and close their file deterministically — on
exhaustion, on a parse error, on ``close()``, or on leaving a ``with``
block — so a consumer that stops early does not hold the fd until garbage
collection.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import IO, Iterable, Iterator, Union

from .record import MemoryAccess

__all__ = [
    "TraceReader",
    "write_text_trace",
    "read_text_trace",
    "write_binary_trace",
    "read_binary_trace",
]

_BINARY_MAGIC = b"CACTR1\0\0"
_RECORD = struct.Struct("<QQIB3x")  # address, pc, size, is_write, padding

#: Widest value each binary field can hold (address/pc are u64, size u32).
_U64_MAX = (1 << 64) - 1
_U32_MAX = (1 << 32) - 1


class TraceReader:
    """An iterator of :class:`MemoryAccess` records that owns its file.

    Wraps an open handle and a parser generator reading from it.  The handle
    is closed deterministically: when the records are exhausted, when the
    parser raises, when :meth:`close` is called, or when a ``with`` block
    exits — whichever comes first.  Iterating a closed reader raises
    ``StopIteration`` (it never reopens the file).
    """

    def __init__(self, handle: IO, records: Iterator[MemoryAccess]) -> None:
        self._handle = handle
        self._records = records

    @property
    def closed(self) -> bool:
        """True once the underlying file handle has been released."""
        return self._handle.closed

    def close(self) -> None:
        """Release the file handle (idempotent)."""
        self._records.close()
        self._handle.close()

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __iter__(self) -> "TraceReader":
        return self

    def __next__(self) -> MemoryAccess:
        try:
            return next(self._records)
        except BaseException:
            # Exhaustion and parse errors both release the fd immediately.
            self.close()
            raise


def _validate_access(access: MemoryAccess, count: int, path: Path) -> None:
    """Reject records the readers would refuse, before writing them.

    :class:`MemoryAccess` validates at construction, but the writers accept
    any object with the right attributes — this guard keeps a duck-typed
    (or ``object.__setattr__``-mutated) record from producing a trace file
    its own reader rejects.
    """
    if access.address < 0 or access.pc < 0:
        raise ValueError(f"{path}: record {count}: negative address/pc "
                         f"(address={access.address}, pc={access.pc})")
    if access.size <= 0:
        raise ValueError(f"{path}: record {count}: size must be positive, "
                         f"got {access.size}")


def write_text_trace(path: Union[str, Path], trace: Iterable[MemoryAccess]) -> int:
    """Write a trace in the text format; returns the number of records written."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="ascii") as handle:
        handle.write("# repro cache trace v1: R|W address pc size (hex, hex, dec)\n")
        for access in trace:
            _validate_access(access, count, path)
            kind = "W" if access.is_write else "R"
            handle.write(f"{kind} {access.address:#x} {access.pc:#x} {access.size}\n")
            count += 1
    return count


def _parse_text(handle: IO[str], label: str) -> Iterator[MemoryAccess]:
    """Parse text-format records from an open text handle.

    ``label`` names the source in error messages (``label:line``).  Shared
    with :mod:`repro.trace.stream`, which feeds it decompressed streams.
    """
    for line_number, line in enumerate(handle, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 4 or parts[0] not in ("R", "W"):
            raise ValueError(f"{label}:{line_number}: malformed record {line!r}")
        try:
            address = int(parts[1], 16)
            pc = int(parts[2], 16)
        except ValueError:
            raise ValueError(f"{label}:{line_number}: non-hex address/pc "
                             f"field in {line!r}") from None
        try:
            size = int(parts[3], 10)
        except ValueError:
            raise ValueError(f"{label}:{line_number}: non-integer size "
                             f"field in {line!r}") from None
        if address < 0 or pc < 0:
            raise ValueError(f"{label}:{line_number}: negative address/pc "
                             f"in {line!r}")
        if size <= 0:
            raise ValueError(f"{label}:{line_number}: size must be "
                             f"positive, got {size}")
        yield MemoryAccess(address=address, is_write=parts[0] == "W",
                           pc=pc, size=size)


def read_text_trace(path: Union[str, Path]) -> TraceReader:
    """Lazily read a text-format trace (iterator + context manager)."""
    path = Path(path)
    handle = path.open("r", encoding="ascii")
    return TraceReader(handle, _parse_text(handle, str(path)))


def write_binary_trace(path: Union[str, Path], trace: Iterable[MemoryAccess]) -> int:
    """Write a trace in the binary format; returns the number of records written."""
    path = Path(path)
    count = 0
    with path.open("wb") as handle:
        handle.write(_BINARY_MAGIC)
        for access in trace:
            _validate_access(access, count, path)
            if access.address > _U64_MAX or access.pc > _U64_MAX \
                    or access.size > _U32_MAX:
                raise ValueError(
                    f"{path}: record {count} does not fit the binary format "
                    f"(address/pc are u64, size is u32)")
            record = _RECORD.pack(access.address, access.pc, access.size,
                                  1 if access.is_write else 0)
            handle.write(record)
            count += 1
    return count


def _parse_binary(handle: IO[bytes], label: str) -> Iterator[MemoryAccess]:
    """Parse binary-format records (header included) from an open handle.

    Shared with :mod:`repro.trace.stream`; errors carry record/byte-offset
    precision against ``label``.
    """
    magic = handle.read(len(_BINARY_MAGIC))
    if len(magic) < len(_BINARY_MAGIC):
        raise ValueError(f"{label}: truncated header ({len(magic)} of "
                         f"{len(_BINARY_MAGIC)} magic bytes) — not a "
                         "repro binary trace")
    if magic != _BINARY_MAGIC:
        raise ValueError(f"{label} is not a repro binary trace (bad magic)")
    offset = len(_BINARY_MAGIC)
    record_index = 0
    while True:
        raw = handle.read(_RECORD.size)
        if not raw:
            break
        if len(raw) != _RECORD.size:
            raise ValueError(
                f"{label}: truncated record {record_index} at byte offset "
                f"{offset} ({len(raw)} of {_RECORD.size} bytes)")
        address, pc, size, is_write = _RECORD.unpack(raw)
        where = f"{label}: record {record_index} at byte offset {offset}"
        if size == 0:
            raise ValueError(f"{where}: size must be positive, got 0")
        if is_write not in (0, 1):
            raise ValueError(f"{where}: corrupt write flag "
                             f"{is_write:#04x} (expected 0 or 1)")
        if raw[-3:] != b"\x00\x00\x00":
            raise ValueError(f"{where}: corrupt padding bytes "
                             f"{raw[-3:]!r} (expected zeros)")
        yield MemoryAccess(address=address, is_write=bool(is_write),
                           pc=pc, size=size)
        offset += _RECORD.size
        record_index += 1


def read_binary_trace(path: Union[str, Path]) -> TraceReader:
    """Lazily read a binary-format trace (iterator + context manager)."""
    path = Path(path)
    handle = path.open("rb")
    return TraceReader(handle, _parse_binary(handle, str(path)))
