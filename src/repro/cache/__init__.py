"""Cache simulators: single-level organisations and multi-level hierarchies.

Everything in this package is driven by block-level accesses and is
independent of where the addresses come from (synthetic traces or the
processor model).  The placement function is always injected from
:mod:`repro.core`, which is what lets a single cache model cover the paper's
conventional, skewed-XOR and I-Poly organisations.
"""

from .block import CacheBlock
from .column_assoc import ColumnAssociativeCache, ColumnAssociativeResult
from .fully_assoc import FullyAssociativeCache
from .hierarchy import HierarchyAccessResult, TwoLevelHierarchy
from .mshr import MSHRAllocation, MSHREntry, MSHRFile
from .replacement import (
    DEFAULT_RANDOM_SEED,
    REPLACEMENT_POLICIES,
    FIFOReplacement,
    LRUReplacement,
    RandomReplacement,
    ReplacementPolicy,
    TreePLRUReplacement,
    clone_replacement,
    make_replacement_policy,
    replacement_policy_name,
    resolve_replacement,
)
from .set_assoc import AccessResult, SetAssociativeCache, WritePolicy
from .stats import CacheStats, MissClassifier, MissKind
from .victim import VictimCache, VictimCacheResult
from .virtual_real import VirtualRealAccessResult, VirtualRealHierarchy

__all__ = [
    "CacheBlock",
    "AccessResult",
    "SetAssociativeCache",
    "WritePolicy",
    "FullyAssociativeCache",
    "VictimCache",
    "VictimCacheResult",
    "ColumnAssociativeCache",
    "ColumnAssociativeResult",
    "TwoLevelHierarchy",
    "HierarchyAccessResult",
    "VirtualRealHierarchy",
    "VirtualRealAccessResult",
    "MSHRFile",
    "MSHREntry",
    "MSHRAllocation",
    "ReplacementPolicy",
    "LRUReplacement",
    "FIFOReplacement",
    "RandomReplacement",
    "TreePLRUReplacement",
    "REPLACEMENT_POLICIES",
    "DEFAULT_RANDOM_SEED",
    "make_replacement_policy",
    "replacement_policy_name",
    "clone_replacement",
    "resolve_replacement",
    "CacheStats",
    "MissClassifier",
    "MissKind",
]
