"""Deterministic fault injection for the sweep executor.

``run_sweep``'s recovery paths — retry-on-raise, timeout-and-rebuild,
``BrokenProcessPool`` resubmission, degrade-to-serial — are exactly the
code that never runs in a healthy test environment.  This module makes the
unhealthy environment reproducible: :class:`ChaosWorker` wraps any
picklable sweep worker and, at task positions chosen by a seed
(:func:`plan_faults`), injects one of three faults *inside the worker
process*:

* ``"raise"`` — raise :class:`ChaosError`;
* ``"hang"`` — sleep past the scheduler's per-task timeout, then finish
  normally (the result is discarded by the scheduler that abandoned it);
* ``"kill"`` — ``os._exit`` the worker process, which surfaces to the
  scheduler as a ``BrokenProcessPool`` mid-sweep.

Faults are keyed by :func:`~repro.engine.checkpoint.task_digest`, so they
follow the task wherever the scheduler re-dispatches it.  By default each
fault fires **once**, coordinated across worker processes through marker
files in a scratch directory (created with ``O_EXCL``, so exactly one
process wins the right to misbehave): the retried attempt runs clean,
which is what lets a test assert the recovered sweep is bit-exact with a
fault-free serial run.  ``once=False`` makes a fault persistent — the way
to drive a task all the way to a ``TaskFailure``.

``"kill"`` faults are only meaningful under ``mode="process"``: in thread
or serial execution ``os._exit`` would take the interpreter down with it.
Keep persistent ``"kill"`` faults out of degradable sweeps for the same
reason.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Sequence

from .checkpoint import task_digest

__all__ = ["FAULT_KINDS", "ChaosError", "ChaosWorker", "FaultSpec",
           "plan_faults"]

#: Fault kinds understood by :class:`ChaosWorker`.
FAULT_KINDS = ("raise", "hang", "kill")


class ChaosError(RuntimeError):
    """The exception an injected ``"raise"`` fault throws."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: what to do, and whether it repeats."""

    kind: str
    once: bool = True

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected "
                             f"one of {FAULT_KINDS}")


@dataclass
class ChaosWorker:
    """Picklable wrapper injecting planned faults around a sweep worker.

    ``worker`` must itself be picklable (module-level) for process pools;
    ``faults`` maps task digests to :class:`FaultSpec`; ``scratch_dir``
    hosts the cross-process once-only marker files.
    """

    worker: Callable[[Any], Any]
    faults: Dict[str, FaultSpec] = field(default_factory=dict)
    scratch_dir: str = "."
    hang_seconds: float = 30.0
    exit_code: int = 17

    def __call__(self, task: Any) -> Any:
        digest = task_digest(task)
        spec = self.faults.get(digest)
        if spec is not None and self._arm(digest, spec):
            if spec.kind == "raise":
                raise ChaosError(f"injected fault for task {task!r}")
            if spec.kind == "hang":
                time.sleep(self.hang_seconds)
            elif spec.kind == "kill":
                os._exit(self.exit_code)
        return self.worker(task)

    def _arm(self, digest: str, spec: FaultSpec) -> bool:
        """Claim the right to fire this fault (cross-process, atomic)."""
        if not spec.once:
            return True
        marker = Path(self.scratch_dir) / f"chaos-{digest[:24]}.fired"
        try:
            marker.touch(exist_ok=False)
        except FileExistsError:
            return False
        return True


def plan_faults(tasks: Sequence[Any], seed: int, count: int = 3,
                kinds: Sequence[str] = FAULT_KINDS,
                once: bool = True) -> Dict[str, FaultSpec]:
    """Pick ``count`` seeded task positions and assign each a fault kind.

    Deterministic for a given ``(tasks, seed, count, kinds)``, so a failing
    chaos run is reproduced by echoing its seed.  Duplicate tasks share a
    digest and therefore a fault slot; the returned plan can be smaller
    than ``count`` in that case.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    kinds = tuple(kinds)
    for kind in kinds:
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; expected one of "
                             f"{FAULT_KINDS}")
    rng = random.Random(seed)
    tasks = list(tasks)
    picked = sorted(rng.sample(range(len(tasks)), min(count, len(tasks))))
    return {task_digest(tasks[index]): FaultSpec(kind=rng.choice(kinds),
                                                 once=once)
            for index in picked}
