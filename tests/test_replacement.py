"""Unit tests for cache blocks and the externalized replacement policies."""

import pytest

from repro.cache.block import CacheBlock
from repro.cache.fully_assoc import FullyAssociativeCache
from repro.cache.replacement import (
    DEFAULT_RANDOM_SEED,
    REPLACEMENT_POLICIES,
    FIFOReplacement,
    LRUReplacement,
    RandomReplacement,
    TreePLRUReplacement,
    make_replacement_policy,
    plru_touch,
    plru_tree_size,
    plru_victim,
    resolve_replacement,
    splitmix64,
)


class TestCacheBlock:
    def test_starts_invalid(self):
        frame = CacheBlock()
        assert not frame.valid
        assert not frame.dirty

    def test_fill_and_touch(self):
        frame = CacheBlock()
        frame.fill(42, now=3)
        assert frame.valid
        assert frame.block_number == 42
        assert frame.inserted_at == 3
        frame.touch(now=9)
        assert frame.last_used_at == 9
        assert frame.inserted_at == 3

    def test_invalidate(self):
        frame = CacheBlock()
        frame.fill(7, now=1, dirty=True)
        frame.invalidate()
        assert not frame.valid
        assert not frame.dirty

    def test_touch_invalid_raises(self):
        with pytest.raises(ValueError):
            CacheBlock().touch(1)

    def test_fill_negative_block_rejected(self):
        with pytest.raises(ValueError):
            CacheBlock().fill(-1, now=0)


def bound(policy, ways=4, num_sets=2):
    policy.bind(ways, num_sets)
    return policy


class TestInterface:
    def test_unbound_policy_rejects_victim_choice(self):
        with pytest.raises(RuntimeError):
            LRUReplacement().choose_victim([(0, 0), (1, 0)])

    def test_bind_validates_geometry(self):
        with pytest.raises(ValueError):
            LRUReplacement().bind(0, 4)
        with pytest.raises(ValueError):
            LRUReplacement().bind(2, 0)

    def test_rebinding_a_policy_instance_is_rejected(self):
        """One policy instance holds one cache's state: sharing it between
        two caches must fail loudly instead of corrupting both."""
        policy = LRUReplacement()
        policy.bind(2, 64)
        with pytest.raises(RuntimeError):
            policy.bind(2, 8)
        from repro.cache.set_assoc import SetAssociativeCache
        shared = TreePLRUReplacement()
        SetAssociativeCache(2048, 32, 2, replacement=shared)
        with pytest.raises(RuntimeError):
            SetAssociativeCache(512, 32, 2, replacement=shared)

    def test_clone_replacement_carries_configuration_not_state(self):
        from repro.cache.replacement import clone_replacement
        original = RandomReplacement(seed=123)
        original.bind(2, 4)
        original.choose_victim([(0, 0), (1, 0)])
        clone = clone_replacement(original)
        assert isinstance(clone, RandomReplacement)
        assert clone.seed == 123
        assert clone.ways == 0  # unbound
        assert clone.draws == 0  # stateless
        assert isinstance(clone_replacement("plru"), TreePLRUReplacement)
        assert isinstance(clone_replacement(None), LRUReplacement)

    def test_resolve_replacement(self):
        assert isinstance(resolve_replacement(None), LRUReplacement)
        assert isinstance(resolve_replacement("fifo"), FIFOReplacement)
        policy = TreePLRUReplacement()
        assert resolve_replacement(policy) is policy
        with pytest.raises(TypeError):
            resolve_replacement(42)


class TestLRU:
    def test_evicts_least_recently_used(self):
        policy = bound(LRUReplacement(), ways=3, num_sets=1)
        policy.on_fill(0, 0, now=1)
        policy.on_fill(1, 0, now=2)
        policy.on_fill(2, 0, now=3)
        policy.on_hit(0, 0, now=10)
        candidates = [(0, 0), (1, 0), (2, 0)]
        assert policy.choose_victim(candidates) == (1, 0)

    def test_tie_broken_by_way(self):
        policy = bound(LRUReplacement(), ways=2, num_sets=1)
        # Both frames untouched: identical timestamps, way 0 wins.
        assert policy.choose_victim([(0, 0), (1, 0)]) == (0, 0)

    def test_state_is_per_set(self):
        policy = bound(LRUReplacement(), ways=2, num_sets=2)
        policy.on_fill(0, 0, now=1)
        policy.on_fill(1, 0, now=2)
        policy.on_fill(0, 1, now=4)
        policy.on_fill(1, 1, now=3)
        assert policy.choose_victim([(0, 0), (1, 0)]) == (0, 0)
        assert policy.choose_victim([(0, 1), (1, 1)]) == (1, 1)


class TestFIFO:
    def test_evicts_oldest_insertion_despite_hits(self):
        policy = bound(FIFOReplacement(), ways=3, num_sets=1)
        policy.on_fill(0, 0, now=5)
        policy.on_fill(1, 0, now=1)
        policy.on_fill(2, 0, now=9)
        policy.on_hit(1, 0, now=200)  # hits must not refresh FIFO order
        assert policy.choose_victim([(0, 0), (1, 0), (2, 0)]) == (1, 0)


class TestRandom:
    def test_counter_based_draws_are_deterministic(self):
        a = bound(RandomReplacement(seed=99))
        b = bound(RandomReplacement(seed=99))
        candidates = [(w, 0) for w in range(4)]
        picks_a = [a.choose_victim(candidates) for _ in range(20)]
        picks_b = [b.choose_victim(candidates) for _ in range(20)]
        assert picks_a == picks_b

    def test_nth_draw_is_pure_function_of_seed_and_counter(self):
        policy = bound(RandomReplacement(seed=7))
        candidates = [(w, 0) for w in range(4)]
        picks = [policy.choose_victim(candidates) for _ in range(10)]
        expected = [(splitmix64(7 + n) % 4, 0) for n in range(10)]
        assert [(way, 0) for way, _ in picks] == expected
        assert policy.draws == 10

    def test_picks_are_valid_candidates(self):
        policy = bound(RandomReplacement())
        assert policy.seed == DEFAULT_RANDOM_SEED
        candidates = [(w, 0) for w in range(3)]
        for _ in range(50):
            way, set_index = policy.choose_victim(candidates)
            assert way in (0, 1, 2)
            assert set_index == 0

    def test_reset_restores_sequence(self):
        policy = bound(RandomReplacement(seed=7))
        candidates = [(w, 0) for w in range(4)]
        first = [policy.choose_victim(candidates) for _ in range(10)]
        policy.reset()
        second = [policy.choose_victim(candidates) for _ in range(10)]
        assert first == second


class TestTreePLRU:
    def test_falls_back_to_lru_for_skewed_candidates(self):
        policy = bound(TreePLRUReplacement(), ways=2, num_sets=16)
        policy.on_fill(0, 3, now=1)
        policy.on_fill(1, 9, now=2)
        # Different set indices -> skewed cache shape -> timestamp fallback.
        assert policy.choose_victim([(0, 3), (1, 9)]) == (0, 3)

    def test_victim_rotates_away_from_touched_way(self):
        policy = bound(TreePLRUReplacement(), ways=4, num_sets=1)
        candidates = [(w, 0) for w in range(4)]
        way, _ = policy.choose_victim(candidates)
        policy.on_hit(way, 0, now=100)
        next_way, _ = policy.choose_victim(candidates)
        assert next_way != way

    def test_two_way_plru_is_exact_lru(self):
        plru = bound(TreePLRUReplacement(), ways=2, num_sets=4)
        lru = bound(LRUReplacement(), ways=2, num_sets=4)
        accesses = [(0, 1), (1, 1), (0, 1), (1, 2), (0, 2)]
        for now, (way, s) in enumerate(accesses, start=1):
            plru.on_hit(way, s, now)
            lru.on_hit(way, s, now)
        for s in (1, 2):
            assert (plru.choose_victim([(0, s), (1, s)])
                    == lru.choose_victim([(0, s), (1, s)]))

    def test_reset_clears_state(self):
        policy = bound(TreePLRUReplacement(), ways=4, num_sets=2)
        policy.on_hit(2, 0, now=1)
        assert any(any(bits) for bits in policy._bits)
        policy.reset()
        assert not any(any(bits) for bits in policy._bits)
        assert all(stamp == 0 for row in policy._stamp for stamp in row)


class TestPLRUTreePrimitives:
    def test_tree_size(self):
        assert plru_tree_size(1) == 1
        assert plru_tree_size(2) == 1
        assert plru_tree_size(8) == 7

    def test_single_way_victim_is_way_zero(self):
        bits = [False]
        assert plru_victim(bits, 1) == 0
        plru_touch(bits, 0, 1)  # must be a no-op
        assert bits == [False]

    @pytest.mark.parametrize("ways", [2, 3, 4, 5, 6, 7, 8])
    def test_full_rotation_covers_all_ways(self, ways):
        """Touching the victim each round cycles through every way — also
        for ragged (non-power-of-two) trees, whose pre-order node packing
        must keep the highest ways reachable."""
        bits = [False] * plru_tree_size(ways)
        seen = set()
        for _ in range(4 * ways):
            victim = plru_victim(bits, ways)
            assert 0 <= victim < ways
            seen.add(victim)
            plru_touch(bits, victim, ways)
        assert seen == set(range(ways))

    @pytest.mark.parametrize("ways", [3, 5, 6])
    def test_ragged_tree_never_walks_outside_the_bit_table(self, ways):
        """Every touch/victim walk stays within the ways-1 bit table for
        every possible bit pattern and way."""
        size = plru_tree_size(ways)
        for pattern in range(1 << size):
            bits = [bool(pattern >> i & 1) for i in range(size)]
            assert 0 <= plru_victim(list(bits), ways) < ways
            for way in range(ways):
                plru_touch(list(bits), way, ways)  # must not raise


class TestPLRUCornerCasesThroughCache:
    """Scalar tree-PLRU corner cases exercised through a real cache."""

    def _full_cache(self):
        # 4 frames of 32 bytes, fully associative, PLRU.
        cache = FullyAssociativeCache(128, 32, replacement="plru")
        for block in range(4):
            cache.access_block(block)
        return cache

    def test_invalidate_then_fill_reuses_the_invalidated_frame(self):
        """Refill ordering: an invalidated frame is refilled before any
        eviction, regardless of what the PLRU bits point at."""
        cache = self._full_cache()
        assert cache.invalidate_block(2)
        result = cache.access_block(7)
        assert not result.hit
        assert result.evicted_block is None  # reused the invalid frame
        assert sorted(cache.resident_blocks()) == [0, 1, 3, 7]
        # The next miss *does* evict (all frames valid again).
        result = cache.access_block(8)
        assert result.evicted_block is not None

    def test_refilled_frame_is_protected_from_immediate_eviction(self):
        """Refilling must touch the tree: the just-refilled way cannot be
        the next victim."""
        cache = self._full_cache()
        cache.invalidate_block(1)
        refill = cache.access_block(9)
        evict = cache.access_block(10)
        assert evict.way != refill.way
        assert evict.evicted_block != 9

    def test_reset_after_flush_restores_cold_behaviour(self):
        """flush() must reset the PLRU bit-trees: a flushed cache replays a
        trace exactly like a fresh one."""
        trace = [0, 1, 2, 3, 1, 4, 0, 5, 2, 6, 3, 1, 7, 0]
        warm = FullyAssociativeCache(128, 32, replacement="plru")
        for block in trace:
            warm.access_block(block)
        warm.flush()
        assert not any(any(bits) for bits in warm.replacement._bits)
        fresh = FullyAssociativeCache(128, 32, replacement="plru")
        replay = [(warm.access_block(b).hit, fresh.access_block(b).hit)
                  for b in trace]
        assert [w for w, _ in replay] == [f for _, f in replay]
        assert sorted(warm.resident_blocks()) == sorted(fresh.resident_blocks())


class TestFactory:
    @pytest.mark.parametrize("name, cls", [
        ("lru", LRUReplacement),
        ("fifo", FIFOReplacement),
        ("random", RandomReplacement),
        ("plru", TreePLRUReplacement),
    ])
    def test_known_names(self, name, cls):
        policy = make_replacement_policy(name)
        assert isinstance(policy, cls)
        assert policy.name == name
        assert name in REPLACEMENT_POLICIES

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_replacement_policy("mru")
